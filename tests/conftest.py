"""Suite-wide wiring: every test runs under the global timeout so a
wedged supervisor loop fails fast instead of stalling CI."""

from repro.testing.timeout import pytest_runtest_call  # noqa: F401
