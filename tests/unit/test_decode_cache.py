"""The decoded-instruction cache: hit accounting and — more importantly —
its three invalidation triggers: code writes (self-modifying code, DMA),
CR3 / TLB flushes, and breakpoint mutation.  Every test asserts on
architectural outcomes, not just counters: a stale cache entry would
produce the wrong register values or miss a #DB."""

from repro.asm import assemble
from repro.hw import Cpu, IoBus, PhysicalMemory
from repro.hw import firmware
from repro.hw.isa import BY_MNEMONIC, VEC_DB
from repro.hw.paging import PageTableBuilder


def make_cpu(decode_cache=True, memory_size=1 << 20):
    memory = PhysicalMemory(memory_size)
    cpu = Cpu(memory, IoBus(), decode_cache=decode_cache)
    firmware.install_flat_firmware(cpu)
    return cpu


def load(cpu, source, origin=0x4000):
    program = assemble(source, origin=origin)
    program.load_into(cpu.memory)
    cpu.pc = origin
    return program


LOOP = """
    MOVI R0, 50
loop:
    ADDI R1, 1
    SUBI R0, 1
    JNZ  loop
    HLT
"""


class TestHitPath:
    def test_hot_loop_mostly_hits(self):
        cpu = make_cpu()
        load(cpu, LOOP)
        cpu.run(10_000)
        assert cpu.halted and cpu.regs[1] == 50
        stats = cpu.decode_cache_stats()
        assert stats["hits"] > stats["misses"]
        assert stats["misses"] <= 5  # one per distinct instruction
        assert stats["hit_rate"] > 0.9

    def test_ablation_flag_disables_but_preserves_semantics(self):
        fast = make_cpu(decode_cache=True)
        slow = make_cpu(decode_cache=False)
        for cpu in (fast, slow):
            load(cpu, LOOP)
            cpu.run(10_000)
        assert fast.regs == slow.regs
        assert fast.flags == slow.flags
        assert fast.instret == slow.instret
        assert fast.cycle_count == slow.cycle_count
        assert slow.decode_cache_stats()["hits"] == 0
        assert slow.decode_cache_stats()["misses"] == 0


class TestCodeWriteInvalidation:
    def test_guest_store_into_own_code_redecodes(self):
        """A guest ST into its own code page must re-decode: the patched
        immediate (not the cached one) executes on the second pass."""
        cpu = make_cpu()
        # patch_me's imm32 lives at 0x4006 + 2 = 0x4008.
        load(cpu, """
            MOVI R3, 0
        patch_me:
            MOVI R5, 0x11111111
            CMPI R3, 0
            JNZ  done
            MOVI R3, 1
            MOVI R1, 0x4008
            MOVI R2, 0x22222222
            ST   [R1+0], R2
            JMP  patch_me
        done:
            HLT
        """)
        cpu.sp = 0x3000
        cpu.run(1_000)
        assert cpu.halted
        assert cpu.regs[5] == 0x22222222

    def test_host_write_over_cached_instruction(self):
        """Any PhysicalMemory write (monitor pokes, DMA) invalidates."""
        cpu = make_cpu()
        load(cpu, "MOVI R0, 1\nHLT\n")
        cpu.run(10)
        assert cpu.regs[0] == 1
        # Overwrite the imm32 of the cached MOVI directly in RAM.
        cpu.memory.write(0x4002, (7).to_bytes(4, "little"))
        cpu.halted = False
        cpu.pc = 0x4000
        cpu.run(10)
        assert cpu.regs[0] == 7


class TestBreakpointInvalidation:
    def _warmed(self):
        cpu = make_cpu()
        load(cpu, "MOVI R0, 1\nMOVI R1, 2\nHLT\n")
        cpu.run(10)          # all three instructions now cached
        assert cpu.decode_cache_stats()["hits"] == 0  # first pass: misses
        cpu.halted = False
        cpu.pc = 0x4000
        cpu.regs[0] = cpu.regs[1] = 0
        return cpu

    def test_breakpoint_set_on_cached_instruction_fires(self):
        cpu = self._warmed()
        hits = []
        cpu.exception_hook = lambda c, vec, err: hits.append(vec) or True
        before = cpu.decode_cache_invalidations
        cpu.code_breakpoints.add(0x4006)
        assert cpu.decode_cache_invalidations == before + 1
        cpu.step()           # MOVI R0 executes (re-decoded)
        cpu.step()           # breakpoint fires, MOVI R1 does NOT execute
        assert hits == [VEC_DB]
        assert cpu.regs[1] == 0
        assert cpu.pc == 0x4006

    def test_breakpoint_clear_resumes_normally(self):
        cpu = self._warmed()
        cpu.exception_hook = lambda c, vec, err: True
        cpu.code_breakpoints.add(0x4006)
        cpu.step()
        cpu.step()           # stops at the breakpoint
        cpu.code_breakpoints.discard(0x4006)
        cpu.step()           # now executes
        assert cpu.regs[1] == 2

    def test_resume_flag_suppresses_cached_breakpoint(self):
        """RF semantics must survive the fast path: resuming over a
        breakpointed, already-cached instruction makes progress."""
        cpu = self._warmed()
        cpu.exception_hook = lambda c, vec, err: True
        cpu.code_breakpoints.add(0x4006)
        cpu.step()           # MOVI R0; also re-warms the cache
        cpu.pc = 0x4006
        cpu.resume_flag = True
        cpu.step()           # suppressed: MOVI R1 executes
        assert cpu.regs[1] == 2

    def test_watchpoint_overlapping_cached_code_fires_on_fetch(self):
        cpu = self._warmed()
        hits = []
        cpu.exception_hook = lambda c, vec, err: hits.append(vec) or True
        cpu.watchpoints.append((0x4006, 1, False))
        cpu.step()           # MOVI R0 (no overlap)
        assert hits == []
        cpu.step()           # fetch of MOVI R1 trips the read watch
        assert hits == [VEC_DB]
        assert cpu.regs[1] == 0


class TestCr3Invalidation:
    def test_cr3_switch_to_alias_mapping_executes_new_code(self):
        """Same virtual PC, two address spaces, different code behind
        each: the decode cache must not leak code across the switch."""
        cpu = make_cpu()
        memory = cpu.memory
        movi = BY_MNEMONIC["MOVI"]
        hlt = BY_MNEMONIC["HLT"]
        # Frame A: MOVI R0, 1; HLT.  Frame B: MOVI R0, 2; HLT.
        for frame, value in ((0x20000, 1), (0x21000, 2)):
            memory.write(frame, bytes([movi.opcode, 0])
                         + value.to_bytes(4, "little")
                         + bytes([hlt.opcode]))
        space_a = PageTableBuilder(memory, alloc_base=0x40000)
        space_a.identity_map(0, 0x10000)
        space_a.map(0x80000, 0x20000)
        space_b = PageTableBuilder(memory, alloc_base=0x50000)
        space_b.identity_map(0, 0x10000)
        space_b.map(0x80000, 0x21000)

        cpu.crs[0] |= 1 << 31
        cpu.crs[3] = space_a.directory
        cpu.mmu.set_cr3(space_a.directory)
        cpu.pc = 0x80000
        cpu.run(10)
        assert cpu.halted and cpu.regs[0] == 1
        # Warm pass in space A so the entry is definitely cached.
        cpu.halted = False
        cpu.pc = 0x80000
        cpu.run(10)
        assert cpu.decode_cache_stats()["hits"] > 0

        cpu.crs[3] = space_b.directory
        cpu.mmu.set_cr3(space_b.directory)   # flush: the invalidation
        cpu.halted = False
        cpu.pc = 0x80000
        cpu.run(10)
        assert cpu.halted and cpu.regs[0] == 2
