"""Unit tests for the MC146818 RTC model."""

import datetime

import pytest

from repro.errors import DeviceError
from repro.hw.rtc import (
    ALARM_ANY,
    REG_DAY,
    REG_HOURS,
    REG_MINUTES,
    REG_MINUTES_ALARM,
    REG_MONTH,
    REG_SECONDS,
    REG_SECONDS_ALARM,
    REG_STATUS_A,
    REG_STATUS_B,
    REG_STATUS_C,
    REG_YEAR,
    STATUS_B_24H,
    STATUS_B_ALARM_IRQ,
    STATUS_B_BINARY,
    STATUS_B_PERIODIC_IRQ,
    STATUS_C_ALARM,
    STATUS_C_PERIODIC,
    Rtc,
)
from repro.sim.events import EventQueue

CPU_HZ = 1.26e9
EPOCH = datetime.datetime(2005, 3, 7, 9, 30, 0)


def make_rtc():
    queue = EventQueue()
    irqs = []
    rtc = Rtc(queue, CPU_HZ, raise_irq=lambda: irqs.append(queue.now),
              epoch=EPOCH)
    return queue, rtc, irqs


def read_reg(rtc, register):
    rtc.port_write(0, register, 1)
    return rtc.port_read(1, 1)


def write_reg(rtc, register, value):
    rtc.port_write(0, register, 1)
    rtc.port_write(1, value, 1)


class TestClockReading:
    def test_epoch_in_bcd(self):
        _, rtc, _ = make_rtc()
        assert read_reg(rtc, REG_HOURS) == 0x09
        assert read_reg(rtc, REG_MINUTES) == 0x30
        assert read_reg(rtc, REG_SECONDS) == 0x00
        assert read_reg(rtc, REG_DAY) == 0x07
        assert read_reg(rtc, REG_MONTH) == 0x03
        assert read_reg(rtc, REG_YEAR) == 0x05

    def test_time_advances_with_cycles(self):
        queue, rtc, _ = make_rtc()
        queue.schedule_at(int(CPU_HZ * 61), lambda: None)
        queue.run()
        assert read_reg(rtc, REG_MINUTES) == 0x31
        assert read_reg(rtc, REG_SECONDS) == 0x01

    def test_binary_mode(self):
        _, rtc, _ = make_rtc()
        write_reg(rtc, REG_STATUS_B, STATUS_B_24H | STATUS_B_BINARY)
        assert read_reg(rtc, REG_MINUTES) == 30

    def test_setting_clock_registers_rejected(self):
        _, rtc, _ = make_rtc()
        with pytest.raises(DeviceError):
            write_reg(rtc, REG_SECONDS, 0x15)


class TestPeriodicInterrupt:
    def test_default_rate_when_enabled(self):
        queue, rtc, irqs = make_rtc()
        write_reg(rtc, REG_STATUS_B,
                  STATUS_B_24H | STATUS_B_PERIODIC_IRQ)
        queue.run_until(int(CPU_HZ))  # one second: ~1024 ticks
        assert 1000 <= rtc.periodic_fired <= 1048
        assert len(irqs) == rtc.periodic_fired

    def test_rate_select(self):
        queue, rtc, _ = make_rtc()
        write_reg(rtc, REG_STATUS_A, 0x0F)  # 2 Hz
        write_reg(rtc, REG_STATUS_B,
                  STATUS_B_24H | STATUS_B_PERIODIC_IRQ)
        queue.run_until(int(CPU_HZ * 2))
        assert rtc.periodic_fired == 4

    def test_status_c_reports_and_clears(self):
        queue, rtc, _ = make_rtc()
        write_reg(rtc, REG_STATUS_A, 0x0F)
        write_reg(rtc, REG_STATUS_B,
                  STATUS_B_24H | STATUS_B_PERIODIC_IRQ)
        queue.run_until(int(CPU_HZ))
        value = read_reg(rtc, REG_STATUS_C)
        assert value & STATUS_C_PERIODIC
        assert read_reg(rtc, REG_STATUS_C) == 0  # cleared by the read

    def test_disable_stops_ticks(self):
        queue, rtc, _ = make_rtc()
        write_reg(rtc, REG_STATUS_A, 0x0F)
        write_reg(rtc, REG_STATUS_B,
                  STATUS_B_24H | STATUS_B_PERIODIC_IRQ)
        queue.run_until(int(CPU_HZ))
        fired = rtc.periodic_fired
        write_reg(rtc, REG_STATUS_B, STATUS_B_24H)
        queue.run_until(int(CPU_HZ * 3))
        assert rtc.periodic_fired == fired


class TestAlarm:
    def test_alarm_fires_at_matching_second(self):
        queue, rtc, irqs = make_rtc()
        write_reg(rtc, REG_SECONDS_ALARM, 0x30)  # at :30 seconds (BCD)
        write_reg(rtc, REG_MINUTES_ALARM, ALARM_ANY)
        write_reg(rtc, REG_STATUS_B, STATUS_B_24H | STATUS_B_ALARM_IRQ)
        queue.run_until(int(CPU_HZ * 31))
        assert rtc.alarms_fired == 1
        assert read_reg(rtc, REG_STATUS_C) & STATUS_C_ALARM

    def test_dont_care_alarm_fires_every_minute(self):
        queue, rtc, _ = make_rtc()
        write_reg(rtc, REG_SECONDS_ALARM, 0x00)  # at :00 of any minute
        write_reg(rtc, REG_STATUS_B, STATUS_B_24H | STATUS_B_ALARM_IRQ)
        queue.run_until(int(CPU_HZ * 121))
        assert rtc.alarms_fired == 2

    def test_alarm_disabled_never_fires(self):
        queue, rtc, _ = make_rtc()
        write_reg(rtc, REG_SECONDS_ALARM, 0x30)
        queue.run_until(int(CPU_HZ * 61))
        assert rtc.alarms_fired == 0


class TestOnTheMachine:
    def test_machine_has_rtc_on_irq8(self):
        from repro.hw.machine import Machine
        machine = Machine()
        machine.program_pic_defaults()
        machine.rtc.port_write(0, REG_STATUS_A, 1)
        machine.rtc.port_write(1, 0x0F, 1)
        machine.rtc.port_write(0, REG_STATUS_B, 1)
        machine.rtc.port_write(1, STATUS_B_24H | STATUS_B_PERIODIC_IRQ, 1)
        machine.queue.run_until(int(machine.config.cpu_hz))
        # IRQ 8 pending on the slave.
        assert machine.pic.pending_vector() == 40

    def test_lvmm_leaves_rtc_to_the_guest(self):
        from repro.vmm.intercept import LVMM_INTERCEPTED_PORTS
        assert 0x70 not in LVMM_INTERCEPTED_PORTS
        assert 0x71 not in LVMM_INTERCEPTED_PORTS


class TestRtcFromGuestAssembly:
    def test_guest_reads_wall_clock_under_lvmm(self):
        """An assembly guest reads the RTC through port I/O while
        deprivileged — wall-clock access as device passthrough."""
        from repro.asm import assemble
        from repro.hw import firmware
        from repro.hw.machine import Machine
        from repro.vmm import LightweightVmm

        machine = Machine()
        monitor = LightweightVmm(machine)
        program = assemble(f"""
        .org {firmware.GUEST_KERNEL_BASE}
            MOVI R2, 0x70
            MOVI R0, {REG_HOURS}
            OUTB R0, R2
            MOVI R2, 0x71
            INB  R3, R2          ; hours, BCD
            MOVI R2, 0x70
            MOVI R0, {REG_MINUTES}
            OUTB R0, R2
            MOVI R2, 0x71
            INB  R5, R2          ; minutes, BCD
            MOVI R4, 1
        spin:
            JMP spin
        """)
        program.load_into(machine.memory)
        monitor.install()
        machine.cpu.io_allowed_ports.update({0x70, 0x71})
        monitor.boot_guest(program.origin)
        monitor.run(40, until=lambda: machine.cpu.regs[4] == 1)
        assert machine.cpu.regs[3] == 0x09   # epoch hour, BCD
        assert machine.cpu.regs[5] == 0x30   # epoch minutes
        # Passthrough: the RTC accesses never trapped.
        assert "INB" not in monitor.stats.traps_by_mnemonic
        assert "OUTB" not in monitor.stats.traps_by_mnemonic
