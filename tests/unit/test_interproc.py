"""Interprocedural analysis: call graph, function summaries, the
cross-call value-set sharpening they enable, and checks AN012/AN013."""

from repro.analysis import SEV_ERROR, analyze_program
from repro.analysis.cfg import recover_cfg
from repro.analysis.interproc import build_call_graph, compute_summaries
from repro.asm import assemble
from repro.hw import firmware, isa

ORG = firmware.GUEST_KERNEL_BASE
MONITOR_BASE = 0xF0_0000


def run_analysis(source, entry_ring=0):
    program = assemble(source, origin=ORG)
    return analyze_program(program, monitor_base=MONITOR_BASE,
                           entry_ring=entry_ring)


def check_ids(report, severity=None):
    return {f.check for f in report.findings
            if severity is None or f.severity == severity}


def graph_and_summaries(source):
    program = assemble(source, origin=ORG)
    cfg = recover_cfg(program.image, ORG, {ORG}, {})
    graph, summaries = compute_summaries(cfg)
    return program, graph, summaries


TWO_FUNCTIONS = """
    MOVI R7, 0x8000
    CALL outer
    HLT
outer:
    PUSH R1
    CALL inner
    POP  R1
    RET
inner:
    ADDI R2, 1
    RET
"""


class TestCallGraph:
    def test_entries_and_edges(self):
        program, graph, _ = graph_and_summaries(TWO_FUNCTIONS)
        outer = program.symbol("outer")
        inner = program.symbol("inner")
        assert graph.entries == sorted([outer, inner])
        assert graph.callees[outer] == frozenset({inner})
        assert graph.callees[inner] == frozenset()

    def test_sites_map_call_addresses_to_callees(self):
        program, graph, _ = graph_and_summaries(TWO_FUNCTIONS)
        inner = program.symbol("inner")
        assert frozenset({inner}) in graph.sites.values()

    def test_regions_stop_at_callee_edges(self):
        program, graph, _ = graph_and_summaries(TWO_FUNCTIONS)
        outer = program.symbol("outer")
        inner = program.symbol("inner")
        assert inner not in graph.regions[outer]


class TestFunctionSummaries:
    def test_balanced_function(self):
        program, _, summaries = graph_and_summaries(TWO_FUNCTIONS)
        for label in ("outer", "inner"):
            summary = summaries[program.symbol(label)]
            assert summary.balanced, label
            assert summary.ret_deltas == frozenset({0})
            assert not summary.resets_sp
            assert not summary.clobbers_all

    def test_clobbered_includes_transitive_callees(self):
        program, _, summaries = graph_and_summaries(TWO_FUNCTIONS)
        outer = summaries[program.symbol("outer")]
        assert 2 in outer.clobbered, \
            "inner's R2 write must show through outer's summary"

    def test_imbalanced_function_reports_delta(self):
        program, _, summaries = graph_and_summaries("""
            CALL leaky
            HLT
        leaky:
            PUSH R1
            RET
        """)
        summary = summaries[program.symbol("leaky")]
        assert not summary.balanced
        assert summary.ret_deltas == frozenset({4})

    def test_sp_repoint_sets_escape_hatch(self):
        program, _, summaries = graph_and_summaries("""
            CALL pivot
            HLT
        pivot:
            MOVI R7, 0x9000
            RET
        """)
        assert summaries[program.symbol("pivot")].resets_sp

    def test_int_sets_clobbers_all(self):
        program, _, summaries = graph_and_summaries("""
            CALL trapper
            HLT
        trapper:
            INT  3
            RET
        """)
        summary = summaries[program.symbol("trapper")]
        assert summary.clobbers_all
        assert summary.clobbered >= \
            frozenset(range(isa.NUM_GPRS)) - {isa.REG_SP}


class TestCrossCallSharpening:
    def test_register_untouched_by_callee_survives_the_call(self):
        """Without summaries the CALL fall-through havocs everything
        and the JMPR is unresolvable (AN009); with them R3 survives."""
        report = run_analysis("""
            MOVI R7, 0x8000
            MOVI R3, done
            CALL helper
            JMPR R3
        helper:
            ADDI R1, 1
            RET
        done:
            HLT
        """)
        assert "AN009" not in check_ids(report)
        assert report.stats["functions"] == 1
        assert report.stats["balanced_functions"] == 1
        assert report.stats["call_sites"] >= 1

    def test_clobbered_register_does_not_survive(self):
        report = run_analysis("""
            MOVI R7, 0x8000
            MOVI R3, done
            CALL helper
            JMPR R3
        helper:
            MOVI R3, 0
            RET
        done:
            HLT
        """)
        assert "AN009" in check_ids(report)


class TestStackImbalanceCheck:
    def test_an012_fires_on_leaky_ret(self):
        report = run_analysis("""
            MOVI R7, 0x8000
            JMP  start
        helper:
            PUSH R1
            RET
        start:
            CALL helper
        hang:
            JMP  hang
        """)
        assert "AN012" in check_ids(report, SEV_ERROR)
        finding = next(f for f in report.findings if f.check == "AN012")
        assert "net stack delta" in finding.message

    def test_an012_clean_on_balanced_function(self):
        report = run_analysis(TWO_FUNCTIONS)
        assert "AN012" not in check_ids(report)


class TestIndirectCallEscapeCheck:
    def test_an013_fires_when_target_escapes_the_image(self):
        report = run_analysis("""
            MOVI R7, 0x8000
            MOVI R5, 0xF00100
            CALLR R5
            HLT
        """)
        assert "AN013" in check_ids(report, SEV_ERROR)

    def test_an013_clean_for_in_image_targets(self):
        report = run_analysis("""
            MOVI R7, 0x8000
            MOVI R5, helper
            CALLR R5
            HLT
        helper:
            ADDI R1, 1
            RET
        """)
        assert "AN013" not in check_ids(report)
