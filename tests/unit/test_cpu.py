"""Unit tests for the HX32 CPU interpreter: ALU semantics, control flow,
privilege checks, interrupt delivery and ring transitions."""

import pytest

from repro.asm import assemble
from repro.errors import TripleFault
from repro.hw import Cpu, CpuFault, IoBus, PhysicalMemory
from repro.hw import firmware
from repro.hw.cpu import GATE_TYPE_TRAP
from repro.hw.isa import (
    FLAG_CF,
    FLAG_IF,
    FLAG_OF,
    FLAG_SF,
    FLAG_TF,
    FLAG_ZF,
    IOPL_SHIFT,
    VEC_BP,
    VEC_DB,
    VEC_DE,
    VEC_GP,
    VEC_PF,
    VEC_UD,
)
from repro.hw.paging import PAGE_SIZE, PageTableBuilder
from repro.hw.seg import SegmentDescriptor


def make_cpu(memory_size=1 << 20):
    memory = PhysicalMemory(memory_size)
    cpu = Cpu(memory, IoBus())
    return cpu


def run_asm(source, origin=0x4000, steps=500, cpu=None, setup=None):
    """Assemble, load at origin, run until HLT or fault; return the CPU."""
    if cpu is None:
        cpu = make_cpu()
        firmware.install_flat_firmware(cpu)
    program = assemble(source, origin=origin)
    program.load_into(cpu.memory)
    cpu.pc = origin
    if setup:
        setup(cpu, program)
    for _ in range(steps):
        if cpu.halted:
            break
        cpu.step()
    return cpu


class TestAlu:
    def test_add_sets_carry_and_zero(self):
        cpu = run_asm("""
            MOVI R0, 0xFFFFFFFF
            MOVI R1, 1
            ADD  R0, R1
            HLT
        """)
        assert cpu.regs[0] == 0
        assert cpu.flags & FLAG_CF
        assert cpu.flags & FLAG_ZF

    def test_signed_overflow_flag(self):
        cpu = run_asm("""
            MOVI R0, 0x7FFFFFFF
            ADDI R0, 1
            HLT
        """)
        assert cpu.regs[0] == 0x80000000
        assert cpu.flags & FLAG_OF
        assert cpu.flags & FLAG_SF

    def test_sub_borrow(self):
        cpu = run_asm("""
            MOVI R0, 3
            SUBI R0, 5
            HLT
        """)
        assert cpu.regs[0] == 0xFFFFFFFE
        assert cpu.flags & FLAG_CF
        assert cpu.flags & FLAG_SF

    def test_logic_clears_carry(self):
        cpu = run_asm("""
            MOVI R0, 0xFFFFFFFF
            MOVI R1, 1
            ADD  R0, R1
            MOVI R0, 0xF0F0
            ANDI R0, 0x0FF0
            HLT
        """)
        assert cpu.regs[0] == 0x00F0
        assert not cpu.flags & FLAG_CF

    def test_mul_div(self):
        cpu = run_asm("""
            MOVI R0, 7
            MULI R0, 6
            MOVI R1, 4
            DIV  R0, R1
            HLT
        """)
        assert cpu.regs[0] == 10

    def test_shifts(self):
        cpu = run_asm("""
            MOVI R0, 1
            SHLI R0, 8
            MOVI R1, 0x100
            SHRI R1, 4
            HLT
        """)
        assert cpu.regs[0] == 0x100
        assert cpu.regs[1] == 0x10

    def test_not_neg(self):
        cpu = run_asm("""
            MOVI R0, 0
            NOT  R0
            MOVI R1, 5
            NEG  R1
            HLT
        """)
        assert cpu.regs[0] == 0xFFFFFFFF
        assert cpu.regs[1] == 0xFFFFFFFB

    def test_divide_by_zero_faults(self):
        cpu = make_cpu()
        firmware.install_flat_firmware(cpu)
        seen = []
        cpu.exception_hook = lambda c, vec, err: seen.append(vec) or True
        program = assemble("MOVI R0, 1\nMOVI R1, 0\nDIV R0, R1\nHLT\n",
                           origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        cpu.step()
        cpu.step()
        cpu.step()
        assert seen == [VEC_DE]


class TestControlFlow:
    def test_conditional_branches(self):
        cpu = run_asm("""
            MOVI R2, 0
            MOVI R0, 5
            CMPI R0, 5
            JNZ  bad
            ADDI R2, 1
            CMPI R0, 9
            JGE  bad
            ADDI R2, 2
            CMPI R0, 1
            JLE  bad
            ADDI R2, 4
            HLT
        bad:
            MOVI R2, 0xBAD
            HLT
        """)
        assert cpu.regs[2] == 7

    def test_loop_counts(self):
        cpu = run_asm("""
            MOVI R0, 0
            MOVI R1, 10
        loop:
            ADDI R0, 3
            SUBI R1, 1
            JNZ  loop
            HLT
        """)
        assert cpu.regs[0] == 30

    def test_call_ret(self):
        cpu = run_asm("""
            MOVI R0, 1
            CALL fn
            ADDI R0, 100
            HLT
        fn:
            ADDI R0, 10
            RET
        """)
        assert cpu.regs[0] == 111

    def test_indirect_jump_and_call(self):
        cpu = run_asm("""
            MOVI R1, fn
            CALLR R1
            MOVI R2, done
            JMPR R2
            MOVI R0, 0xBAD
        done:
            HLT
        fn:
            MOVI R0, 0x77
            RET
        """)
        assert cpu.regs[0] == 0x77

    def test_push_pop(self):
        cpu = run_asm("""
            MOVI R0, 0x1234
            PUSH R0
            PUSHI 0x5678
            POP R1
            POP R2
            HLT
        """)
        assert cpu.regs[1] == 0x5678
        assert cpu.regs[2] == 0x1234

    def test_signed_compare_branches(self):
        cpu = run_asm("""
            MOVI R0, 0xFFFFFFFF   ; -1
            CMPI R0, 1
            JL   neg
            MOVI R3, 0
            HLT
        neg:
            MOVI R3, 1
            HLT
        """)
        assert cpu.regs[3] == 1


class TestMemoryAccess:
    def test_byte_and_halfword(self):
        cpu = run_asm("""
            MOVI R1, 0x9000
            MOVI R0, 0xA1B2C3D4
            ST   [R1+0], R0
            LD8  R2, [R1+0]
            LD16 R3, [R1+2]
            HLT
        """)
        assert cpu.regs[2] == 0xD4
        assert cpu.regs[3] == 0xA1B2

    def test_lea(self):
        cpu = run_asm("""
            MOVI R1, 0x100
            LEA  R0, [R1+0x20]
            HLT
        """)
        assert cpu.regs[0] == 0x120

    def test_segment_limit_violation_faults(self):
        cpu = make_cpu()
        firmware.install_flat_firmware(cpu)
        # Shrink DS so the store lands outside.
        small = SegmentDescriptor(0, 0x1000, 0)
        cpu.force_segment(1, cpu.segments[1].selector, small)
        seen = []
        cpu.exception_hook = lambda c, vec, err: seen.append(vec) or True
        program = assemble("MOVI R1, 0x2000\nST [R1+0], R0\nHLT\n",
                           origin=0x500)
        # Code must stay within CS, which is still flat.
        program.load_into(cpu.memory)
        cpu.pc = 0x500
        cpu.step()
        cpu.step()
        assert seen == [VEC_GP]


class TestPrivilege:
    def _ring3_cpu(self):
        """A CPU mid-flight at ring 3 with firmware tables installed."""
        cpu = make_cpu()
        selectors = firmware.install_flat_firmware(cpu)
        code3 = SegmentDescriptor(0, cpu.memory.size, 3, code=True)
        data3 = SegmentDescriptor(0, cpu.memory.size, 3)
        cpu.force_segment(0, selectors.code3, code3)
        cpu.force_segment(1, selectors.data3, data3)
        cpu.force_segment(2, selectors.data3, data3)
        cpu.sp = firmware.RING3_STACK_TOP
        return cpu

    @pytest.mark.parametrize("insn", ["CLI", "STI", "HLT"])
    def test_iopl_instructions_fault_at_ring3(self, insn):
        cpu = self._ring3_cpu()
        seen = []
        cpu.exception_hook = lambda c, vec, err: seen.append(vec) or True
        program = assemble(f"{insn}\nHLT\n", origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        cpu.step()
        assert seen == [VEC_GP]

    @pytest.mark.parametrize(
        "source",
        ["MOVCR CR3, R0", "MOVRC R0, CR0", "LGDT R0", "LIDT R0", "LTSS R0"])
    def test_ring0_instructions_fault_at_ring3(self, source):
        cpu = self._ring3_cpu()
        seen = []
        cpu.exception_hook = lambda c, vec, err: seen.append(vec) or True
        program = assemble(f"{source}\nHLT\n", origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        cpu.step()
        assert seen == [VEC_GP]

    def test_iopl_raised_allows_cli_at_ring3(self):
        cpu = self._ring3_cpu()
        cpu.flags |= 0b11 << IOPL_SHIFT  # IOPL = 3
        cpu.flags |= FLAG_IF
        program = assemble("CLI\nHLT\n", origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        cpu.step()
        assert not cpu.flags & FLAG_IF

    def test_ring0_can_use_everything(self):
        cpu = run_asm("""
            MOVI R0, 0
            MOVCR CR3, R0
            MOVRC R1, CR3
            CLI
            STI
            HLT
        """)
        assert cpu.halted

    def test_invalid_opcode_faults(self):
        cpu = make_cpu()
        firmware.install_flat_firmware(cpu)
        seen = []
        cpu.exception_hook = lambda c, vec, err: seen.append(vec) or True
        cpu.memory.write(0x4000, b"\xEE")
        cpu.pc = 0x4000
        cpu.step()
        assert seen == [VEC_UD]


class TestInterruptDelivery:
    def _cpu_with_handler(self, vector, handler_source, dpl=0,
                          gate_type=None):
        cpu = make_cpu()
        selectors = firmware.install_flat_firmware(cpu)
        handler = assemble(handler_source, origin=0x6000)
        handler.load_into(cpu.memory)
        kwargs = {}
        if gate_type is not None:
            kwargs["gate_type"] = gate_type
        firmware.write_idt_gate(cpu.memory, vector, 0x6000,
                                selectors.code0, dpl=dpl, **kwargs)
        return cpu, selectors

    def test_software_interrupt_and_iret(self):
        cpu, _ = self._cpu_with_handler(0x21, """
            MOVI R5, 0xCAFE
            IRET
        """)
        program = assemble("INT 0x21\nMOVI R6, 1\nHLT\n", origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        for _ in range(10):
            if cpu.halted:
                break
            cpu.step()
        assert cpu.regs[5] == 0xCAFE
        assert cpu.regs[6] == 1

    def test_interrupt_gate_clears_if_trap_gate_does_not(self):
        cpu, _ = self._cpu_with_handler(0x21, "HLT\n")
        cpu.flags |= FLAG_IF
        cpu.deliver(0x21, software=True)
        assert not cpu.flags & FLAG_IF

        cpu2, _ = self._cpu_with_handler(0x22, "HLT\n",
                                         gate_type=GATE_TYPE_TRAP)
        cpu2.flags |= FLAG_IF
        cpu2.deliver(0x22, software=True)
        assert cpu2.flags & FLAG_IF

    def test_gate_dpl_blocks_ring3_int(self):
        cpu, selectors = self._cpu_with_handler(0x30, "IRET\n", dpl=0)
        code3 = SegmentDescriptor(0, cpu.memory.size, 3, code=True)
        data3 = SegmentDescriptor(0, cpu.memory.size, 3)
        cpu.force_segment(0, selectors.code3, code3)
        cpu.force_segment(1, selectors.data3, data3)
        cpu.force_segment(2, selectors.data3, data3)
        cpu.sp = firmware.RING3_STACK_TOP
        seen = []
        cpu.exception_hook = lambda c, vec, err: seen.append(vec) or True
        program = assemble("INT 0x30\nHLT\n", origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        cpu.step()
        assert seen == [VEC_GP]

    def test_ring3_to_ring0_switches_stack_and_back(self):
        cpu, selectors = self._cpu_with_handler(0x40, """
            MOVSGR R4, SS      ; observe ring-0 SS
            IRET
        """, dpl=3)
        code3 = SegmentDescriptor(0, cpu.memory.size, 3, code=True)
        data3 = SegmentDescriptor(0, cpu.memory.size, 3)
        cpu.force_segment(0, selectors.code3, code3)
        cpu.force_segment(1, selectors.data3, data3)
        cpu.force_segment(2, selectors.data3, data3)
        cpu.sp = firmware.RING3_STACK_TOP
        program = assemble("INT 0x40\nMOVI R6, 1\nHLT\n", origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        for _ in range(10):
            if cpu.regs[6] == 1:
                break
            cpu.step()
        assert cpu.regs[4] == selectors.data0      # was on ring-0 stack
        assert cpu.cpl == 3                        # back at ring 3
        assert cpu.sp == firmware.RING3_STACK_TOP  # stack restored

    def test_error_code_pushed_for_gp(self):
        cpu, _ = self._cpu_with_handler(VEC_GP, """
            POP R3          ; error code
            HLT
        """)
        # Trigger #GP from ring 0 via a bad segment load.
        program = assemble("MOVI R0, 0x7F\nMOVSEG DS, R0\nHLT\n",
                           origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        for _ in range(10):
            if cpu.halted:
                break
            cpu.step()
        assert cpu.regs[3] == 0x7F  # the offending selector

    def test_breakpoint_instruction_traps(self):
        cpu, _ = self._cpu_with_handler(VEC_BP, "MOVI R5, 1\nHLT\n")
        program = assemble("BKPT\nNOP\n", origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        cpu.step()
        cpu.step()
        assert cpu.regs[5] == 1

    def test_single_step_traps_after_each_instruction(self):
        cpu = make_cpu()
        firmware.install_flat_firmware(cpu)
        hits = []
        cpu.exception_hook = (
            lambda c, vec, err: hits.append((vec, c.pc)) or True)
        program = assemble("MOVI R0, 1\nMOVI R1, 2\nHLT\n", origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        cpu.flags |= FLAG_TF
        cpu.step()
        assert hits == [(VEC_DB, 0x4006)]

    def test_code_breakpoint_fires_before_execution(self):
        cpu = make_cpu()
        firmware.install_flat_firmware(cpu)
        hits = []
        cpu.exception_hook = lambda c, vec, err: hits.append(vec) or True
        program = assemble("MOVI R0, 1\nMOVI R1, 2\nHLT\n", origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        cpu.code_breakpoints.add(0x4006)
        cpu.step()          # MOVI R0 executes
        cpu.step()          # breakpoint fires, MOVI R1 does NOT execute
        assert hits == [VEC_DB]
        assert cpu.regs[1] == 0
        assert cpu.pc == 0x4006

    def test_watchpoint_on_write(self):
        cpu = make_cpu()
        firmware.install_flat_firmware(cpu)
        hits = []
        cpu.exception_hook = lambda c, vec, err: hits.append(vec) or True
        cpu.watchpoints.append((0x9000, 4, True))
        program = assemble(
            "MOVI R1, 0x9000\nLD R2, [R1+0]\nST [R1+0], R0\nHLT\n",
            origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        cpu.step()
        cpu.step()   # read does not trigger a write watchpoint
        assert hits == []
        cpu.step()   # write triggers
        assert hits == [VEC_DB]

    def test_triple_fault_raises(self):
        cpu = make_cpu()
        firmware.install_flat_firmware(cpu)
        # Empty the IDT so #GP delivery faults, then #DF delivery faults.
        cpu.idtr_limit = 0
        program = assemble("INT 0x21\n", origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        with pytest.raises(TripleFault):
            cpu.step()

    def test_page_fault_sets_cr2(self):
        cpu = make_cpu()
        selectors = firmware.install_flat_firmware(cpu)
        builder = PageTableBuilder(cpu.memory, alloc_base=0x40000)
        builder.identity_map(0, 0x10000)     # tables, stacks, code low
        cpu.mmu.set_cr3(builder.directory)
        cpu.crs[0] |= 1 << 31                # enable paging
        seen = []
        cpu.exception_hook = (
            lambda c, vec, err: seen.append((vec, c.crs[2])) or True)
        # 0x80000 is inside the flat segment but has no page mapping.
        program = assemble("MOVI R1, 0x80000\nLD R0, [R1+4]\nHLT\n",
                           origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        cpu.step()
        cpu.step()
        assert seen == [(VEC_PF, 0x80004)]
        assert selectors is not None

    def test_hlt_wakes_on_interrupt(self):
        cpu, _ = self._cpu_with_handler(0x20 + 0, "MOVI R5, 7\nHLT\n")

        class OneShot:
            def __init__(self):
                self.fired = False

            def has_pending(self):
                return not self.fired

            def acknowledge(self):
                self.fired = True
                return 0x20

        cpu.irq_source = OneShot()
        cpu.flags |= FLAG_IF
        program = assemble("HLT\nNOP\n", origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        for _ in range(10):
            cpu.step()
            if cpu.regs[5] == 7:
                break
        assert cpu.regs[5] == 7

    def test_sti_interrupt_shadow(self):
        """The instruction right after STI runs before interrupts hit."""
        cpu, _ = self._cpu_with_handler(0x20, "HLT\n")

        class Always:
            def has_pending(self):
                return True

            def acknowledge(self):
                return 0x20

        cpu.irq_source = Always()
        program = assemble("CLI\nSTI\nMOVI R3, 9\nNOP\n", origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        cpu.step()  # CLI
        cpu.step()  # STI
        cpu.step()  # shadow: MOVI executes, not the interrupt
        assert cpu.regs[3] == 9


class TestIretAtomicity:
    def test_faulting_iret_leaves_sp_and_frame_intact(self):
        """IRET validates the whole frame before committing: a #GP'd
        IRET must leave SP pointing at the frame so a monitor can
        emulate the return (regression test for the ring-compression
        IRET-emulation path)."""
        cpu = make_cpu()
        firmware.install_flat_firmware(cpu)
        seen = []
        cpu.exception_hook = lambda c, vec, err: seen.append(
            (vec, err)) or True
        # Build a frame whose CS selector has RPL 0 but CPL will be 1.
        from repro.hw.seg import SegmentDescriptor
        code1 = SegmentDescriptor(0, cpu.memory.size, 1, code=True)
        data1 = SegmentDescriptor(0, cpu.memory.size, 1)
        from repro.hw.seg import selector
        cpu.force_segment(0, selector(3, 1), code1)
        cpu.force_segment(1, selector(4, 1), data1)
        cpu.force_segment(2, selector(4, 1), data1)
        cpu.sp = 0xB000
        cpu.push32(0x202)      # FLAGS
        cpu.push32(selector(1, 0))  # CS with RPL 0: refused from ring 1
        cpu.push32(0x4000)     # PC
        sp_before = cpu.sp
        program = assemble("IRET\n", origin=0x4100)
        program.load_into(cpu.memory)
        cpu.pc = 0x4100
        cpu.step()
        assert seen and seen[0][0] == VEC_GP
        assert cpu.sp == sp_before            # nothing consumed
        assert cpu.pc == 0x4100               # fault restarts IRET
        # The frame is still readable exactly as built.
        assert int.from_bytes(
            cpu.read_virtual(2, cpu.sp, 4), "little") == 0x4000

    def test_outward_iret_with_bad_ss_commits_nothing(self):
        cpu = make_cpu()
        selectors = firmware.install_flat_firmware(cpu)
        # Ring 0, frame returning to ring 3 but with a garbage SS.
        cpu.push32(0)                     # SS: null selector
        cpu.push32(0xF000)                # SP
        cpu.push32(0x202)                 # FLAGS
        cpu.push32(selectors.code3)       # CS ring 3
        cpu.push32(0x5000)                # PC
        sp_before = cpu.sp
        seen = []
        cpu.exception_hook = lambda c, vec, err: seen.append(vec) or True
        program = assemble("IRET\n", origin=0x4100)
        program.load_into(cpu.memory)
        cpu.pc = 0x4100
        cpu.step()
        assert seen == [VEC_GP]
        assert cpu.cpl == 0                # still ring 0
        assert cpu.sp == sp_before         # frame untouched
