"""Retry determinism across both transports.

The RSP client backs off in *pump quanta* (simulated time) and the
fleet supervisor backs off in seconds, but both are the same bounded
exponential shape — and both must be exactly reproducible: a flaky
retry schedule would make recorded debugging sessions diverge on
replay.
"""

from repro.fleet.jobs import RetrySchedule
from repro.rsp.client import RetryPolicy, RspClient
from repro.rsp.packets import frame


class TestBackoffSchedule:
    def test_pump_schedule_is_bounded_exponential(self):
        policy = RetryPolicy(max_attempts=8, backoff_base_pumps=2,
                             backoff_multiplier=2.0,
                             backoff_max_pumps=32)
        pumps = [policy.backoff_pumps(attempt) for attempt in range(8)]
        assert pumps == [0, 2, 4, 8, 16, 32, 32, 32]

    def test_no_base_means_no_backoff(self):
        policy = RetryPolicy(max_attempts=5)
        assert [policy.backoff_pumps(n) for n in range(5)] == [0] * 5

    def test_rsp_and_fleet_schedules_share_one_shape(self):
        """The fleet schedule is the RSP policy lifted to seconds:
        same base, same multiplier, same cap semantics."""
        pumps = RetryPolicy(max_attempts=6, backoff_base_pumps=1,
                            backoff_multiplier=2.0,
                            backoff_max_pumps=8)
        seconds = RetrySchedule(max_attempts=6, backoff_base_s=1.0,
                                multiplier=2.0, backoff_max_s=8.0)
        # RetryPolicy indexes backoff by the *upcoming* transmission
        # (0-based, first has none); RetrySchedule by the *failed*
        # attempt (1-based).  Same curve, shifted by one.
        assert [pumps.backoff_pumps(n) for n in range(1, 6)] \
            == [seconds.backoff_s(n) for n in range(1, 6)]


class _LossyTransport:
    """A scripted transport that swallows the first N transmissions,
    then answers.  Everything is counted so two runs can be compared
    event-for-event."""

    def __init__(self, drop_first: int, reply: bytes) -> None:
        self.drop_first = drop_first
        self.reply = reply
        self.transmissions = 0
        self.pumps = 0
        self.pump_log = []
        self._pending = b""

    def send(self, data: bytes) -> None:
        if not data or data == b"+":
            return
        self.transmissions += 1
        if self.transmissions > self.drop_first:
            self._pending = b"+" + frame(self.reply)

    def recv(self) -> bytes:
        data, self._pending = self._pending, b""
        return data

    def pump(self) -> None:
        self.pumps += 1
        self.pump_log.append(self.transmissions)


def _lossy_exchange(drop_first: int):
    transport = _LossyTransport(drop_first, b"OK")
    client = RspClient(send=transport.send, recv=transport.recv,
                       pump=transport.pump,
                       retry_policy=RetryPolicy(
                           max_attempts=8, pumps_per_attempt=16,
                           backoff_base_pumps=2,
                           backoff_max_pumps=32))
    reply = client.exchange(b"?")
    return reply, transport, client


class TestRetryDeterminism:
    def test_lossy_exchange_recovers(self):
        reply, transport, client = _lossy_exchange(drop_first=2)
        assert reply == b"OK"
        assert transport.transmissions == 3
        assert client.recoveries["retransmit"] == 2
        assert client.recoveries["backoff"] == 2

    def test_identical_runs_pump_identically(self):
        """Same loss pattern, same policy -> the exact same sequence
        of pumps, transmissions and recovery actions, run after run."""
        runs = [_lossy_exchange(drop_first=3) for _ in range(2)]
        (_, t_a, c_a), (_, t_b, c_b) = runs
        assert t_a.pumps == t_b.pumps
        assert t_a.pump_log == t_b.pump_log
        assert t_a.transmissions == t_b.transmissions
        assert c_a.recoveries == c_b.recoveries

    def test_backoff_consumes_simulated_time_before_retransmit(self):
        _, transport, _ = _lossy_exchange(drop_first=1)
        # The first retransmission happens only after the scheduled
        # backoff quanta: pump_log records the transmission count at
        # each pump, so the prefix pumped while only one transmission
        # was out must cover timeout + backoff.
        first_retransmit_at = transport.pump_log.index(2)
        assert first_retransmit_at \
            >= 16 + 2  # pumps_per_attempt + backoff_pumps(1)

    def test_exhausted_policy_raises_not_fabricates(self):
        import pytest
        from repro.errors import RspTransportError
        transport = _LossyTransport(drop_first=10 ** 9, reply=b"OK")
        client = RspClient(send=transport.send, recv=transport.recv,
                           pump=transport.pump,
                           retry_policy=RetryPolicy(
                               max_attempts=3, pumps_per_attempt=4))
        with pytest.raises(RspTransportError):
            client.exchange(b"?")
        assert transport.transmissions == 3
