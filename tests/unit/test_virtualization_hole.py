"""Unit tests for PUSHF/POPF/XCHG — including the classic x86
virtualisation hole (POPF silently dropping IF from deprivileged code)
and how the LVMM's interrupt virtualisation sidesteps it."""

import pytest

from repro.asm import assemble
from repro.hw import Cpu, IoBus, PhysicalMemory, firmware
from repro.hw.isa import FLAG_CF, FLAG_IF, FLAG_ZF, IOPL_SHIFT
from repro.vmm import LightweightVmm
from repro.hw.machine import Machine


def run_ring0(source, flags=0):
    cpu = Cpu(PhysicalMemory(1 << 20), IoBus())
    firmware.install_flat_firmware(cpu)
    cpu.flags = flags
    program = assemble(source, origin=0x4000)
    program.load_into(cpu.memory)
    cpu.pc = 0x4000
    while not cpu.halted:
        cpu.step()
    return cpu


class TestPushfPopf:
    def test_round_trip_at_ring0(self):
        cpu = run_ring0("""
            MOVI R0, 1
            CMPI R0, 1        ; ZF set
            PUSHF
            MOVI R1, 0
            CMPI R1, 1        ; ZF cleared, CF set
            POPF              ; ZF back, CF gone
            HLT
        """)
        assert cpu.flags & FLAG_ZF
        assert not cpu.flags & FLAG_CF

    def test_popf_changes_if_at_ring0(self):
        cpu = run_ring0("""
            PUSHF
            POP  R0
            ORI  R0, 0x200    ; set IF in the image
            PUSH R0
            POPF
            HLT
        """)
        assert cpu.flags & FLAG_IF

    def test_xchg(self):
        cpu = run_ring0("""
            MOVI R0, 0x11
            MOVI R1, 0x22
            XCHG R0, R1
            HLT
        """)
        assert cpu.regs[0] == 0x22
        assert cpu.regs[1] == 0x11


class TestTheVirtualisationHole:
    def test_popf_silently_preserves_if_when_deprivileged(self):
        """The deprivileged kernel *believes* it enabled interrupts;
        the hardware quietly ignored it — no fault, no trap."""
        machine = Machine()
        vmm = LightweightVmm(machine)
        program = assemble(f"""
        .org 0x200000
            PUSHF
            POP  R0
            ORI  R0, 0x200    ; try to set IF via POPF
            PUSH R0
            POPF
            PUSHF
            POP  R3           ; read back what actually happened
            HLT
        """)
        program.load_into(machine.memory)
        vmm.install()
        vmm.boot_guest(program.origin)
        vmm.run(50)
        assert not machine.cpu.flags & FLAG_IF      # hardware IF unmoved
        assert not machine.cpu.regs[3] & 0x200      # and readback shows it
        # Crucially: POPF did NOT trap (the hole), yet nothing broke,
        # because the monitor owns interrupt delivery outright.
        assert "POPF" not in vmm.stats.traps_by_mnemonic

    def test_sti_by_contrast_traps_and_is_virtualised(self):
        machine = Machine()
        vmm = LightweightVmm(machine)
        program = assemble(".org 0x200000\nSTI\nHLT\n")
        program.load_into(machine.memory)
        vmm.install()
        vmm.boot_guest(program.origin)
        vmm.run(10)
        assert vmm.stats.traps_by_mnemonic.get("STI") == 1
        assert vmm.shadow.vif                        # virtual IF tracked

    def test_popf_respects_iopl_at_ring3(self):
        cpu = Cpu(PhysicalMemory(1 << 20), IoBus())
        selectors = firmware.install_flat_firmware(cpu)
        from repro.hw.seg import SegmentDescriptor
        code3 = SegmentDescriptor(0, cpu.memory.size, 3, code=True)
        data3 = SegmentDescriptor(0, cpu.memory.size, 3)
        cpu.force_segment(0, selectors.code3, code3)
        cpu.force_segment(1, selectors.data3, data3)
        cpu.force_segment(2, selectors.data3, data3)
        cpu.sp = firmware.RING3_STACK_TOP
        cpu.flags = 0b11 << IOPL_SHIFT  # IOPL 3: ring 3 may toggle IF
        program = assemble(
            "PUSHF\nPOP R0\nORI R0, 0x200\nPUSH R0\nPOPF\nNOP\n",
            origin=0x4000)
        program.load_into(cpu.memory)
        cpu.pc = 0x4000
        for _ in range(6):
            cpu.step()
        assert cpu.flags & FLAG_IF  # allowed because IOPL == CPL

    def test_ring3_cannot_raise_its_own_iopl(self):
        cpu = run_ring0("NOP\nHLT")  # ring 0 reference works trivially
        machine = Machine()
        vmm = LightweightVmm(machine)
        program = assemble("""
        .org 0x200000
            PUSHF
            POP  R0
            ORI  R0, 0x3000   ; try IOPL=3 via POPF
            PUSH R0
            POPF
            HLT
        """)
        program.load_into(machine.memory)
        vmm.install()
        vmm.boot_guest(program.origin)
        vmm.run(20)
        assert machine.cpu.iopl == 0  # silently preserved at ring 1
        assert cpu.halted
