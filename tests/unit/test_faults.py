"""Unit: the fault-injection subsystem — plans, rules, injectors, the
RSP retry policy, the monitor trigger API and the watchdog."""

import pytest

from repro.asm import assemble
from repro.core.session import DebugSession
from repro.errors import FaultPlanError, ProtocolError, RspTransportError
from repro.faults import FaultPlan, FaultRule, UartInjector
from repro.faults.injectors import RspTransportInjector
from repro.hw import Cpu, IoBus, PhysicalMemory, firmware
from repro.hw.uart import SerialLink
from repro.rsp.client import RetryPolicy, RspClient
from repro.rsp.packets import frame
from repro.rsp.stub import DebugStub
from repro.rsp.target import CpuTargetAdapter
from repro.vmm.watchdog import (
    DEGRADE_FROZEN,
    DEGRADE_FULL,
    DEGRADE_STUB_ONLY,
    MonitorWatchdog,
)


class TestFaultRules:
    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule("disk0", "medium-error", probability=1.5)

    def test_never_firing_rule_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule("disk0", "medium-error")

    def test_bad_counts_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule("disk0", "x", at_count=0)
        with pytest.raises(FaultPlanError):
            FaultRule("disk0", "x", every=0)

    def test_wildcard_site_matching(self):
        rule = FaultRule("disk*", "medium-error", every=1)
        assert rule.matches("disk0", "medium-error")
        assert rule.matches("disk17", "medium-error")
        assert not rule.matches("nic.tx", "medium-error")
        assert not rule.matches("disk0", "transport-error")


class TestFaultPlan:
    def test_at_count_fires_exactly_once(self):
        plan = FaultPlan(1, rules=[FaultRule("a", "x", at_count=3)])
        fired = [plan.decide("a", "x") is not None for _ in range(6)]
        assert fired == [False, False, True, False, False, False]

    def test_every_nth_fires_periodically(self):
        plan = FaultPlan(1, rules=[FaultRule("a", "x", every=2)])
        fired = [plan.decide("a", "x") is not None for _ in range(6)]
        assert fired == [False, True, False, True, False, True]

    def test_max_fires_bounds_a_rule(self):
        plan = FaultPlan(1, rules=[
            FaultRule("a", "x", every=1, max_fires=2)])
        fired = [plan.decide("a", "x") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_sites_count_opportunities_independently(self):
        plan = FaultPlan(1, rules=[FaultRule("*", "x", at_count=2)])
        assert plan.decide("a", "x") is None
        assert plan.decide("b", "x") is None
        assert plan.decide("a", "x") is not None   # a's 2nd opportunity
        assert plan.decide("b", "x") is not None   # b's 2nd opportunity

    def test_disarmed_plan_consumes_nothing(self):
        plan = FaultPlan(1, rules=[FaultRule("a", "x", every=1)])
        plan.disarm()
        assert plan.decide("a", "x") is None
        assert plan.opportunities == {}
        plan.arm()
        assert plan.decide("a", "x") is not None

    def test_same_seed_identical_trace_and_stats(self):
        def run():
            plan = FaultPlan(42, rules=[
                FaultRule("a", "x", probability=0.5),
                FaultRule("*", "x", at_count=4),
                FaultRule("b", "x", probability=0.3),
            ])
            for index in range(50):
                plan.decide("a" if index % 3 else "b", "x",
                            detail=f"i={index}")
            return plan
        first, second = run(), run()
        assert first.trace.format() == second.trace.format()
        assert first.stats() == second.stats()
        assert first.trace.digest() == second.trace.digest()

    def test_probability_rules_draw_even_after_a_hit(self):
        """RNG consumption is a pure function of the opportunity
        stream: adding an earlier always-firing rule must not shift the
        draws of a later probability rule."""
        stream = [("a", "x")] * 30

        def fires(rules):
            plan = FaultPlan(7, rules=rules)
            return [plan.decide(site, kind) is not None
                    for site, kind in stream]

        probability_only = fires([FaultRule("a", "x", probability=0.4)])
        with_shadowing_rule = fires([
            FaultRule("a", "x", every=1),
            FaultRule("a", "x", probability=0.4)])
        # The shadowing rule wins every time, but the probability rule
        # consumed the same RNG draws in both runs — so a run *without*
        # the shadow sees the same coin flips.
        assert all(with_shadowing_rule)
        assert probability_only == fires(
            [FaultRule("a", "x", probability=0.4)])

    def test_trace_format_is_stable_text(self):
        plan = FaultPlan(1, rules=[FaultRule("disk0", "medium-error",
                                             at_count=1)])
        plan.decide("disk0", "medium-error", detail="cdb=0x28")
        assert plan.trace.format() == \
            "000000 disk0 medium-error op=1 cdb=0x28\n"

    def test_recovery_recorder(self):
        plan = FaultPlan(1)
        observer = plan.recovery_recorder("rsp")
        observer("retransmit")
        observer("retransmit")
        assert plan.recoveries == {("rsp", "retransmit"): 2}
        assert plan.stats()["recoveries"] == {"rsp.retransmit": 2}


class TestUartInjector:
    def test_drop_and_noise_counted_on_the_link(self):
        link = SerialLink()
        plan = FaultPlan(3, rules=[
            FaultRule("uart.h2t", "drop", at_count=1),
            FaultRule("uart.h2t", "noise", at_count=2),
        ])
        UartInjector(plan, link)
        assert link.filter_byte("h2t", 0x41) is None        # dropped
        # A dropped byte never reaches the noise decision, so noise
        # opportunity #2 is the third byte on the wire.
        assert link.filter_byte("h2t", 0x41) == 0x41        # clean
        corrupted = link.filter_byte("h2t", 0x41)
        assert corrupted is not None and corrupted != 0x41  # noisy
        assert link.bytes_dropped == 1
        assert link.bytes_corrupted == 1
        # The other direction has its own opportunity stream.
        assert link.filter_byte("t2h", 0x41) == 0x41


# ----------------------------------------------------------------------
# RSP retry policy against a lossy synchronous transport
# ----------------------------------------------------------------------

class LossyPipe:
    """Client<->stub pipe with a scriptable per-frame send filter."""

    def __init__(self, drop_first=0, corrupt_first=0):
        cpu = Cpu(PhysicalMemory(1 << 20), IoBus())
        firmware.install_flat_firmware(cpu)
        self._from_stub = bytearray()
        self.stub = DebugStub(CpuTargetAdapter(cpu),
                              send_bytes=self._from_stub.extend)
        self.drop_first = drop_first
        self.corrupt_first = corrupt_first
        self.frames = 0

    def send(self, data):
        if not data:
            return
        self.frames += 1
        if self.frames <= self.drop_first:
            return
        if self.frames <= self.drop_first + self.corrupt_first:
            # Damage the checksum so the stub NAKs (damaging the '$'
            # would make the frame invisible line noise instead).
            data = data[:-1] + bytes([data[-1] ^ 0x01])
        self.stub.feed(data)

    def recv(self):
        out = bytes(self._from_stub)
        self._from_stub.clear()
        return out


class TestRetryPolicy:
    def test_backoff_is_bounded_exponential(self):
        policy = RetryPolicy(backoff_base_pumps=4, backoff_multiplier=2.0,
                             backoff_max_pumps=10)
        assert [policy.backoff_pumps(a) for a in range(5)] == \
            [0, 4, 8, 10, 10]

    def test_no_backoff_by_default(self):
        policy = RetryPolicy()
        assert policy.backoff_pumps(2) == 0

    def test_lossless_exchange_unaffected(self):
        pipe = LossyPipe()
        client = RspClient(pipe.send, pipe.recv, pump=lambda: None,
                           max_pumps=4)
        assert client.exchange(b"?") == b"S05"
        assert client.recoveries == {}

    def test_dropped_frames_retransmitted(self):
        pipe = LossyPipe(drop_first=2)
        client = RspClient(pipe.send, pipe.recv, pump=lambda: None,
                           max_pumps=4,
                           retry_policy=RetryPolicy(max_attempts=4))
        assert client.exchange(b"?") == b"S05"
        assert client.recoveries["retransmit"] == 2

    def test_corrupted_frame_naked_and_fast_retransmitted(self):
        pipe = LossyPipe(corrupt_first=1)
        client = RspClient(pipe.send, pipe.recv, pump=lambda: None,
                           max_pumps=4,
                           retry_policy=RetryPolicy(max_attempts=4))
        assert client.exchange(b"g")
        assert client.naks_seen >= 1
        assert client.recoveries.get("nak-retransmit", 0) >= 1

    def test_exhausted_attempts_raise_typed_error(self):
        pipe = LossyPipe(drop_first=99)
        client = RspClient(pipe.send, pipe.recv, pump=lambda: None,
                           max_pumps=2,
                           retry_policy=RetryPolicy(max_attempts=3))
        with pytest.raises(RspTransportError):
            client.exchange(b"?")
        # The typed error still satisfies legacy except clauses.
        assert issubclass(RspTransportError, ProtocolError)

    def test_legacy_retries_argument_still_works(self):
        pipe = LossyPipe(drop_first=1)
        client = RspClient(pipe.send, pipe.recv, pump=lambda: None,
                           max_pumps=2)
        assert client.exchange(b"?", retries=2) == b"S05"
        with pytest.raises(RspTransportError):
            RspClient(LossyPipe(drop_first=9).send,
                      pipe.recv, pump=lambda: None,
                      max_pumps=2).exchange(b"?", retries=1)

    def test_backoff_spends_pump_quanta(self):
        pumps = []
        pipe = LossyPipe(drop_first=1)
        client = RspClient(pipe.send, pipe.recv,
                           pump=lambda: pumps.append(1), max_pumps=2,
                           retry_policy=RetryPolicy(
                               max_attempts=3, backoff_base_pumps=5))
        assert client.exchange(b"?") == b"S05"
        assert client.recoveries["backoff"] == 1
        # 2 reply pumps for attempt 0, then 5 backoff pumps, then the
        # successful attempt's single reply pump.
        assert len(pumps) >= 7


class TestRspTransportInjector:
    def test_clean_plan_is_transparent(self):
        pipe = LossyPipe()
        injector = RspTransportInjector(FaultPlan(1), pipe.send,
                                        pipe.recv)
        injector.send(frame(b"?"))
        assert b"S05" in injector.recv()

    def test_dropped_then_recovered_by_policy(self):
        pipe = LossyPipe()
        plan = FaultPlan(1, rules=[
            FaultRule("rsp.h2t", "drop", at_count=1)])
        injector = RspTransportInjector(plan, pipe.send, pipe.recv)
        client = RspClient(injector.send, injector.recv,
                           pump=lambda: None, max_pumps=2,
                           retry_policy=RetryPolicy(max_attempts=3))
        assert client.exchange(b"?") == b"S05"
        assert plan.stats()["injected"] == {"rsp.h2t.drop": 1}

    def test_reorder_holds_then_flushes(self):
        sent = []
        plan = FaultPlan(1, rules=[
            FaultRule("rsp.h2t", "reorder", at_count=1)])
        injector = RspTransportInjector(plan, sent.append, bytes)
        injector.send(b"AAA")
        assert sent == []          # held
        injector.send(b"BBB")
        assert sent == [b"BBB", b"AAA"]   # swapped order
        injector.flush()
        assert sent == [b"BBB", b"AAA"]   # nothing left to flush


# ----------------------------------------------------------------------
# Monitor trigger API + watchdog
# ----------------------------------------------------------------------

def make_session(body):
    sess = DebugSession(monitor="lvmm")
    program = assemble(f".org {firmware.GUEST_KERNEL_BASE}\n{body}\n")
    sess.load_and_boot(program)
    sess.attach()
    return sess


class TestMonitorTriggers:
    def test_wild_write_below_monitor_lands(self):
        sess = make_session("loop:\n    NOP\n    JMP loop")
        monitor = sess.monitor
        addr = monitor.monitor_base - 0x100
        assert monitor.inject_wild_write(addr, b"\xde\xad\xbe\xef")
        assert sess.machine.memory.read(addr, 4) == b"\xde\xad\xbe\xef"
        assert not monitor.guest_dead
        assert monitor.stats.wild_writes_injected == 1

    def test_wild_write_into_monitor_region_kills_guest_not_monitor(self):
        sess = make_session("loop:\n    NOP\n    JMP loop")
        monitor = sess.monitor
        before = monitor.monitor_region_hash()
        assert not monitor.inject_wild_write(
            monitor.monitor_base - 2, b"\x00" * 8)
        assert monitor.guest_dead
        assert "wild write" in monitor.guest_dead_reason
        # The two bytes below the boundary landed; the region did not.
        assert monitor.monitor_region_hash() == before
        # Debugger still served.
        assert len(sess.client.read_registers()) == 10

    def test_spurious_interrupt_counted(self):
        sess = make_session("loop:\n    NOP\n    JMP loop")
        sess.monitor.inject_spurious_interrupt(5)
        assert sess.monitor.stats.spurious_interrupts_injected == 1

    def test_region_hash_stable_while_guest_runs(self):
        sess = make_session("loop:\n    NOP\n    JMP loop")
        before = sess.monitor.monitor_region_hash()
        sess.run_guest(5_000)
        assert sess.monitor.monitor_region_hash() == before

    def test_resume_refused_when_degraded(self):
        sess = make_session("loop:\n    NOP\n    JMP loop")
        monitor = sess.monitor
        monitor.degradation_level = DEGRADE_STUB_ONLY
        reply = sess.client.cont()    # bounces straight back
        assert reply.startswith(b"S")
        assert monitor.stopped
        assert monitor.stats.resumes_refused == 1

    def test_watchdog_monitor_command(self):
        sess = make_session("loop:\n    NOP\n    JMP loop")
        out = sess.client.monitor_command("watchdog")
        assert "no watchdog attached" in out
        MonitorWatchdog(sess.monitor)
        out = sess.client.monitor_command("watchdog")
        assert "level: full-service" in out
        assert "watchdog" in sess.client.monitor_command("help")


class TestWatchdog:
    def test_healthy_guest_never_degrades(self):
        sess = make_session("""
            STI
        loop:
            NOP
            JMP loop
        """)
        watchdog = MonitorWatchdog(sess.monitor)
        for _ in range(6):
            sess.run_guest(2_000)
            assert watchdog.check() == DEGRADE_FULL
        assert watchdog.stats["degradations"] == 0

    def test_cli_spin_detected_and_degraded(self):
        sess = make_session("    CLI\nhang:\n    JMP hang")
        watchdog = MonitorWatchdog(sess.monitor, spin_checks=3)
        sess.client.send_async(b"c")
        level = DEGRADE_FULL
        for _ in range(10):
            sess._pump()
            level = watchdog.check()
            if level != DEGRADE_FULL:
                break
        assert level == DEGRADE_STUB_ONLY
        assert watchdog.stats["hangs_detected"] == 1
        assert watchdog.stats["forced_stops"] == 1
        assert sess.monitor.stopped
        # The forced stop answered the outstanding 'c'.
        assert sess.client.wait_for_stop(max_pumps=50).startswith(b"S")
        assert len(watchdog.transitions) == 1

    def test_dead_guest_freezes_with_snapshot(self):
        sess = make_session("    INT 0x21\n    HLT")
        watchdog = MonitorWatchdog(sess.monitor)
        sess.run_guest(1_000)
        assert sess.monitor.guest_dead
        assert watchdog.check() == DEGRADE_FROZEN
        assert watchdog.snapshot is not None
        assert sess.monitor.degradation_level == DEGRADE_FROZEN

    def test_levels_only_ratchet_upward(self):
        sess = make_session("    INT 0x21\n    HLT")
        watchdog = MonitorWatchdog(sess.monitor)
        sess.run_guest(1_000)
        assert watchdog.check() == DEGRADE_FROZEN
        assert watchdog.check() == DEGRADE_FROZEN   # stays frozen
        assert watchdog.stats["degradations"] == 1

    def test_reset_restores_full_service(self):
        sess = make_session("loop:\n    NOP\n    JMP loop")
        watchdog = MonitorWatchdog(sess.monitor)
        sess.monitor.degradation_level = DEGRADE_STUB_ONLY
        watchdog.reset()
        assert sess.monitor.degradation_level == DEGRADE_FULL

    def test_stopped_guest_is_not_a_hang(self):
        sess = make_session("loop:\n    NOP\n    JMP loop")
        watchdog = MonitorWatchdog(sess.monitor, spin_checks=1)
        # Attached and stopped: zero progress, but the debugger owns
        # the guest — no false positive.
        for _ in range(5):
            assert watchdog.check() == DEGRADE_FULL
        assert watchdog.stats["hangs_detected"] == 0


class TestNicInjectorRx:
    """FaultRule("nic.rx", ...) wired through NicInjector to the NIC's
    receive path (the tx side has long-standing coverage via the chaos
    campaign; rx landed with the TCP work)."""

    def _nic(self):
        from repro.hw.mem import PhysicalMemory
        from repro.hw.nic import (DESCRIPTOR_SIZE, REG_RDBA, REG_RDLEN,
                                  REG_RDT, Nic, make_rx_descriptor)
        from repro.sim.events import EventQueue
        queue = EventQueue()
        memory = PhysicalMemory(1 << 20)
        nic = Nic(queue, memory, 1.26e9,
                  raise_irq=lambda: None, lower_irq=lambda: None)
        nic.mmio_write(REG_RDBA, 0x2000, 4)
        nic.mmio_write(REG_RDLEN, 8, 4)
        for i in range(8):
            memory.write(0x2000 + i * DESCRIPTOR_SIZE,
                         make_rx_descriptor(0x20000 + i * 2048, 2048))
        nic.mmio_write(REG_RDT, 7, 4)
        return queue, nic

    def test_rx_drop_rule_fires_and_is_traced(self):
        from repro.faults.injectors import NicInjector
        queue, nic = self._nic()
        plan = FaultPlan(5, rules=[FaultRule("nic.rx", "drop",
                                             at_count=2)])
        NicInjector(plan, nic)
        assert nic.receive_frame(bytes(64))          # opportunity 1
        assert not nic.receive_frame(bytes(64))      # opportunity 2: drop
        queue.run()
        assert nic.rx_faults_injected == 1
        assert nic.frames_received == 1
        stats = plan.stats()
        assert stats["injected"] == {"nic.rx.drop": 1}
        assert stats["opportunities"]["nic.rx.drop"] == 2
        assert "nic.rx drop" in plan.trace.format()

    def test_rx_and_tx_sites_are_independent(self):
        from repro.faults.injectors import NicInjector
        queue, nic = self._nic()
        plan = FaultPlan(5, rules=[FaultRule("nic.tx", "drop",
                                             at_count=1)])
        NicInjector(plan, nic)
        assert nic.receive_frame(bytes(64))          # tx rule can't fire
        queue.run()
        assert nic.rx_faults_injected == 0
        assert plan.stats()["injected"] == {}

    def test_rx_reorder_rule_honours_delay_param(self):
        from repro.faults.injectors import NicInjector
        queue, nic = self._nic()
        plan = FaultPlan(5, rules=[
            FaultRule("nic.rx", "reorder", at_count=1,
                      params={"delay_cycles": 10_000})])
        NicInjector(plan, nic)
        assert nic.receive_frame(bytes(64))          # held
        assert nic.frames_received == 0
        queue.run()                                  # failsafe flush
        assert nic.frames_received == 1
        assert nic.rx_faults_injected == 1
