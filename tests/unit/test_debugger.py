"""Unit tests for the command-line debugger and symbol tables."""

import pytest

from repro.asm import assemble
from repro.core import DebugSession
from repro.debugger import Debugger, SymbolTable
from repro.guest import KernelConfig, build_kernel


class TestSymbolTable:
    def _table(self):
        table = SymbolTable()
        table.add("start", 0x1000)
        table.add("loop", 0x1020)
        table.add("data", 0x2000)
        return table

    def test_resolve_names_and_literals(self):
        table = self._table()
        assert table.resolve("loop") == 0x1020
        assert table.resolve("0x30") == 0x30
        assert table.resolve("48") == 48
        assert table.resolve("nonsense") is None

    def test_nearest(self):
        table = self._table()
        assert table.nearest(0x1000) == ("start", 0)
        assert table.nearest(0x1025) == ("loop", 5)
        assert table.nearest(0x0500) is None

    def test_format_address(self):
        table = self._table()
        assert table.format_address(0x1020) == "0x00001020 <loop>"
        assert "loop+0x4" in table.format_address(0x1024)
        assert table.format_address(0x10) == "0x00000010"

    def test_add_program_merges(self):
        table = SymbolTable()
        program = assemble("a:\nNOP\nb:\nNOP\n", origin=0x400)
        table.add_program(program)
        assert table.resolve("a") == 0x400
        assert table.resolve("b") == 0x401
        assert len(table) == 2


@pytest.fixture
def debugger():
    session = DebugSession(monitor="lvmm")
    kernel = build_kernel(KernelConfig(ticks_to_run=6))
    session.load_and_boot(kernel)
    session.attach()
    symbols = SymbolTable()
    symbols.add_program(kernel)
    return Debugger(session, symbols), kernel


class TestDebuggerCommands:
    def test_empty_and_unknown(self, debugger):
        dbg, _ = debugger
        assert dbg.execute("") == ""
        assert "unknown command" in dbg.execute("frobnicate")

    def test_break_continue_cycle(self, debugger):
        dbg, kernel = debugger
        assert "breakpoint at" in dbg.execute("break timer_isr")
        stop = dbg.execute("continue")
        assert "SIGTRAP" in stop and "timer_isr" in stop
        assert "deleted" in dbg.execute("delete timer_isr")

    def test_bad_symbol_reported_not_raised(self, debugger):
        dbg, _ = debugger
        assert "cannot resolve" in dbg.execute("break no_such_place")

    def test_regs_output_shape(self, debugger):
        dbg, _ = debugger
        text = dbg.execute("regs")
        assert "R0=" in text and "PC=" in text and "FLAGS=" in text

    def test_set_register(self, debugger):
        dbg, _ = debugger
        assert dbg.execute("set r3 0x55") == "r3 = 0x55"
        assert "R3=00000055" in dbg.execute("regs")
        assert "unknown register" in dbg.execute("set r9 1")

    def test_examine_hexdump(self, debugger):
        dbg, kernel = debugger
        text = dbg.execute(f"x {kernel.origin:#x} 16")
        assert kernel.image[:4].hex()[:2] in text.lower()
        assert ":" in text

    def test_write_memory(self, debugger):
        dbg, _ = debugger
        assert "wrote 4 bytes" in dbg.execute("write 0x9000 deadbeef")
        assert "de ad be ef" in dbg.execute("x 0x9000 4")

    def test_disas_with_symbols(self, debugger):
        dbg, _ = debugger
        text = dbg.execute("disas timer_isr 3")
        assert "<timer_isr>" in text
        assert "PUSH" in text

    def test_step(self, debugger):
        dbg, _ = debugger
        assert "SIGTRAP" in dbg.execute("step")

    def test_symbols_listing(self, debugger):
        dbg, _ = debugger
        text = dbg.execute("symbols")
        assert "timer_isr" in text and "start" in text

    def test_watch_usage_and_success(self, debugger):
        dbg, _ = debugger
        assert "usage" in dbg.execute("watch")
        assert "watchpoint at" in dbg.execute("watch 0x5000 4")

    def test_help_lists_commands(self, debugger):
        dbg, _ = debugger
        text = dbg.execute("help")
        assert "break" in text and "checkpoint" in text

    def test_quit_sets_done(self, debugger):
        dbg, _ = debugger
        assert dbg.execute("quit") == "bye"
        assert dbg.done

    def test_repl_drives_commands(self, debugger):
        dbg, _ = debugger
        script = iter(["regs", "quit"])
        outputs = []
        dbg.repl(input_fn=lambda prompt: next(script),
                 output_fn=outputs.append)
        assert any("PC=" in text for text in outputs)
        assert outputs[-1] == "bye"

    def test_repl_stops_on_eof(self, debugger):
        dbg, _ = debugger

        def raise_eof(prompt):
            raise EOFError

        dbg.repl(input_fn=raise_eof, output_fn=lambda text: None)
        assert not dbg.done  # left by EOF, not by quit
