"""The translation validator: zero false positives on correct blocks,
structure/equivalence rejections on broken ones, and the verify-on-
compile mode that turns it into a runtime safety net."""

import pytest

from repro.analysis.tv.mutate import FIXTURE_SOURCE, _compile_fixture
from repro.analysis.tv.offline import (
    backward_targets,
    validate_image,
    validate_program,
    validate_random,
)
from repro.analysis.tv.validator import TvResult, validate_block
from repro.asm import assemble
from repro.hw import Cpu, IoBus, PhysicalMemory, firmware
from repro.obs.metrics import MetricsRegistry, collect_tv

ORIGIN = 0x4000

HOT_LOOP = """
    MOVI R0, 500
loop:
    ADDI R1, 3
    XORI R2, 0x55
    CMPI R1, 900
    SUBI R0, 1
    JNZ  loop
    HLT
"""


def make_cpu(**kwargs):
    cpu = Cpu(PhysicalMemory(1 << 20), IoBus(), translate=True,
              **kwargs)
    firmware.install_flat_firmware(cpu)
    return cpu


def load(cpu, source, origin=ORIGIN):
    program = assemble(source, origin=origin)
    program.load_into(cpu.memory)
    cpu.pc = origin
    return program


class TestValidatorOnCorrectBlocks:
    def test_fixture_block_validates(self):
        meta, block, page_gens = _compile_fixture()
        result = validate_block(meta, block=block, page_gens=page_gens)
        assert result.ok, result.failures
        assert result.insns == len(meta.insns)
        assert result.events > 0

    def test_correct_blocks_prove_syntactically(self):
        """The reference semantics share the translator's algebraic
        shape, so a correct block needs no concrete fallback."""
        meta, block, page_gens = _compile_fixture()
        result = validate_block(meta, block=block, page_gens=page_gens)
        assert result.proofs["syntactic"] > 0
        assert result.proofs["concrete"] == 0

    def test_offline_image_validation(self):
        program = assemble(HOT_LOOP, origin=ORIGIN)
        report = validate_program(program)
        assert report.ok
        assert len(report.results) == 1
        assert not report.refused
        assert "0 failed" in report.format_text()

    def test_backward_targets_finds_the_loop(self):
        program = assemble(HOT_LOOP, origin=ORIGIN)
        targets = backward_targets(program.image, program.origin)
        assert targets == [program.symbol("loop")]

    def test_random_programs_have_zero_false_positives(self):
        for report in validate_random(15):
            assert report.ok, report.format_text()


class TestValidatorRejections:
    def _fixture(self):
        meta, block, page_gens = _compile_fixture()
        return meta, block, page_gens

    def test_unrecognizable_source_is_a_structure_failure(self):
        from dataclasses import replace
        meta, block, page_gens = self._fixture()
        broken = replace(meta, source="def _factory(*a):\n"
                                      "    def _block(cpu):\n"
                                      "        cpu.pc = 0\n"
                                      "    return _block\n")
        result = validate_block(broken, block=block,
                                page_gens=page_gens)
        assert not result.ok
        assert any("structure" in f or "events" in f
                   for f in result.failures)

    def test_dropped_commit_barrier_is_killed(self):
        from dataclasses import replace
        meta, block, page_gens = self._fixture()
        broken = replace(
            meta, source=meta.source.replace(
                "                cpu.flags = f\n", "", 1))
        result = validate_block(broken, block=block,
                                page_gens=page_gens)
        assert not result.ok

    def test_stale_generation_guard_is_killed(self):
        meta, block, page_gens = self._fixture()
        tampered = block[:6] + (block[6] + 1,)
        result = validate_block(meta, block=tampered,
                                page_gens=page_gens)
        assert not result.ok
        assert any("generation" in f for f in result.failures)


class TestVerifyOnCompile:
    def test_validates_blocks_at_translation_time(self):
        cpu = make_cpu(verify_translations=True)
        load(cpu, HOT_LOOP)
        cpu.run(100_000)
        assert cpu.halted
        stats = cpu._sb_engine.tv_stats()
        assert stats["enabled"]
        assert stats["validated"] >= 1
        assert stats["rejected"] == 0
        assert stats["failures"] == []
        assert cpu.block_cache_stats()["blocks_compiled"] >= 1

    def test_verify_is_architecturally_invisible(self):
        ledgers = []
        for kwargs in ({"verify_translations": True},
                       {"translate": False}):
            cpu = Cpu(PhysicalMemory(1 << 20), IoBus(), **{
                "translate": True, **kwargs})
            firmware.install_flat_firmware(cpu)
            load(cpu, HOT_LOOP)
            cpu.run(100_000)
            ledgers.append((cpu.regs[:], cpu.flags, cpu.pc,
                            cpu.instret, cpu.cycle_count))
        assert ledgers[0] == ledgers[1]

    def test_rejected_block_falls_back_to_interpreter(self, monkeypatch):
        """A validation failure must refuse the block, count it, and
        leave execution on the (correct) decode-cache path."""
        import repro.analysis.tv.validator as validator_module

        def always_fail(meta, block=None, page_gens=None):
            return TvResult(ok=False, entry_lin=meta.entry_lin,
                            entry_pc=meta.entry_pc,
                            insns=len(meta.insns), events=0,
                            failures=["synthetic miscompile"])

        monkeypatch.setattr(validator_module, "validate_block",
                            always_fail)
        cpu = make_cpu(verify_translations=True)
        load(cpu, HOT_LOOP)
        cpu.run(100_000)
        assert cpu.halted
        stats = cpu._sb_engine.tv_stats()
        assert stats["rejected"] >= 1
        assert any("synthetic miscompile" in f
                   for f in stats["failures"])
        assert cpu.block_cache_stats()["entries"] == 0

        plain = Cpu(PhysicalMemory(1 << 20), IoBus(), translate=False)
        firmware.install_flat_firmware(plain)
        load(plain, HOT_LOOP)
        plain.run(100_000)
        assert cpu.regs == plain.regs
        assert cpu.instret == plain.instret
        assert cpu.cycle_count == plain.cycle_count

    def test_verify_default_class_attr(self, monkeypatch):
        monkeypatch.setattr(Cpu, "VERIFY_DEFAULT", True)
        cpu = make_cpu()
        assert cpu._sb_engine.verify
        explicit = make_cpu(verify_translations=False)
        assert not explicit._sb_engine.verify


class TestCollectTv:
    def test_gauges_published(self):
        cpu = make_cpu(verify_translations=True)
        load(cpu, HOT_LOOP)
        cpu.run(100_000)
        registry = MetricsRegistry()
        stats = collect_tv(cpu, registry)
        assert stats == cpu._sb_engine.tv_stats()
        assert registry.get("analysis.tv.enabled").value == 1
        assert registry.get("analysis.tv.validated").value \
            == stats["validated"]
        assert registry.get("analysis.tv.rejected").value == 0

    def test_without_engine(self):
        cpu = Cpu(PhysicalMemory(1 << 20), IoBus(), translate=False)
        registry = MetricsRegistry()
        stats = collect_tv(cpu, registry)
        assert stats["enabled"] is False
        assert stats["validated"] == 0


class TestFixtureCoverage:
    def test_fixture_exercises_every_structural_feature(self):
        """The mutation harness is only as strong as its fixture."""
        meta, _block, _gens = _compile_fixture()
        mnemonics = {spec.mnemonic for _, spec, _ in meta.insns}
        assert "LD" in mnemonics, "fixture needs an IRQ-exit load"
        assert "ST" in mnemonics, "fixture needs an SMC-exit store"
        assert "JNZ" in mnemonics, "fixture needs a conditional edge"
        assert "loop" in FIXTURE_SOURCE
