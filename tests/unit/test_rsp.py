"""Unit tests for the GDB remote serial protocol layer."""

import pytest

from repro.errors import ProtocolError
from repro.rsp import (
    CpuTargetAdapter,
    DebugStub,
    PacketDecoder,
    RspClient,
    checksum,
    escape,
    frame,
    unescape_and_expand,
)
from repro.rsp.target import TargetAdapter


class TestFraming:
    def test_frame_simple(self):
        assert frame(b"OK") == b"$OK#9a"

    def test_checksum_mod_256(self):
        assert checksum(b"\xff\xff\x03") == 1

    def test_escape_metacharacters(self):
        raw = b"a#b$c}d*e"
        escaped = escape(raw)
        assert b"#" not in escaped.replace(b"}\x03", b"")
        assert unescape_and_expand(escaped) == raw

    def test_rle_expansion(self):
        # "0* " means '0' repeated (ord(' ')-29)=3 more times -> "0000".
        assert unescape_and_expand(b"0* ") == b"0000"

    def test_rle_without_previous_byte_rejected(self):
        with pytest.raises(ProtocolError):
            unescape_and_expand(b"*!")

    def test_dangling_escape_rejected(self):
        with pytest.raises(ProtocolError):
            unescape_and_expand(b"ab}")


class TestPacketDecoder:
    def test_decode_valid_packet_acks(self):
        decoder = PacketDecoder()
        replies = decoder.feed(frame(b"g"))
        assert replies == b"+"
        assert decoder.next_packet() == b"g"

    def test_bad_checksum_naks(self):
        decoder = PacketDecoder()
        replies = decoder.feed(b"$g#00")
        assert replies == b"-"
        assert decoder.next_packet() is None

    def test_partial_packet_across_feeds(self):
        decoder = PacketDecoder()
        data = frame(b"m1000,10")
        assert decoder.feed(data[:4]) == b""
        assert decoder.feed(data[4:]) == b"+"
        assert decoder.next_packet() == b"m1000,10"

    def test_line_noise_ignored(self):
        decoder = PacketDecoder()
        decoder.feed(b"\x00\x01junk")
        assert decoder.next_packet() is None

    def test_interrupt_byte_counted(self):
        decoder = PacketDecoder()
        decoder.feed(b"\x03")
        assert decoder.interrupts == 1

    def test_acks_recorded(self):
        decoder = PacketDecoder()
        decoder.feed(b"+-+")
        assert decoder.acks == [True, False, True]

    def test_multiple_packets_one_feed(self):
        decoder = PacketDecoder()
        decoder.feed(frame(b"a") + frame(b"b"))
        assert decoder.next_packet() == b"a"
        assert decoder.next_packet() == b"b"


class _FakeTarget(TargetAdapter):
    """In-memory adapter for stub tests."""

    def __init__(self):
        self.regs = list(range(8)) + [0x4000, 0x202]
        self.memory = bytearray(0x10000)
        self.breakpoints = set()
        self.watchpoints = []
        self.resume_calls = []

    def read_registers(self):
        return list(self.regs)

    def write_register(self, index, value):
        self.regs[index] = value

    def read_memory(self, addr, length):
        if addr + length > len(self.memory):
            return None
        return bytes(self.memory[addr:addr + length])

    def write_memory(self, addr, data):
        if addr + len(data) > len(self.memory):
            return False
        self.memory[addr:addr + len(data)] = data
        return True

    def set_breakpoint(self, addr):
        self.breakpoints.add(addr)
        return True

    def clear_breakpoint(self, addr):
        self.breakpoints.discard(addr)
        return True

    def set_watchpoint(self, addr, length, kind):
        self.watchpoints.append((addr, length, kind))
        return True

    def clear_watchpoint(self, addr, length, kind):
        entry = (addr, length, kind)
        if entry in self.watchpoints:
            self.watchpoints.remove(entry)
            return True
        return False

    def resume(self, step):
        self.resume_calls.append("step" if step else "cont")


class StubHarness:
    """Wire a stub and a client together over in-memory pipes."""

    def __init__(self, target=None):
        self.target = target or _FakeTarget()
        self.to_host = bytearray()
        self.stub = DebugStub(self.target,
                              send_bytes=self.to_host.extend)
        self.client = RspClient(
            send=lambda data: self.stub.feed(data),
            recv=self._recv,
            pump=lambda: None,
            max_pumps=10)

    def _recv(self):
        data = bytes(self.to_host)
        self.to_host.clear()
        return data


class TestStubCommands:
    def test_halt_reason(self):
        harness = StubHarness()
        assert harness.client.query_halt_reason() == 5  # SIGTRAP

    def test_read_registers(self):
        harness = StubHarness()
        values = harness.client.read_registers()
        assert values == list(range(8)) + [0x4000, 0x202]

    def test_write_registers(self):
        harness = StubHarness()
        new = [0x10 * i for i in range(10)]
        harness.client.write_registers(new)
        assert harness.target.regs == new

    def test_single_register_round_trip(self):
        harness = StubHarness()
        harness.client.write_register(3, 0xDEAD)
        assert harness.client.read_register(3) == 0xDEAD

    def test_memory_round_trip(self):
        harness = StubHarness()
        harness.client.write_memory(0x100, b"\x01\x02\x03\x04")
        assert harness.client.read_memory(0x100, 4) == b"\x01\x02\x03\x04"

    def test_memory_read_fault_reported(self):
        harness = StubHarness()
        with pytest.raises(ProtocolError):
            harness.client.read_memory(0x1000000, 4)

    def test_breakpoint_set_and_clear(self):
        harness = StubHarness()
        harness.client.set_breakpoint(0x4242)
        assert 0x4242 in harness.target.breakpoints
        harness.client.clear_breakpoint(0x4242)
        assert 0x4242 not in harness.target.breakpoints

    def test_watchpoint_set_and_clear(self):
        harness = StubHarness()
        harness.client.set_watchpoint(0x9000, 4, on_write=True)
        assert ("watch" in harness.target.watchpoints[0][2])
        harness.client.clear_watchpoint(0x9000, 4, on_write=True)
        assert not harness.target.watchpoints

    def test_continue_resumes_target(self):
        harness = StubHarness()
        harness.client.send_async(b"c")
        assert harness.target.resume_calls == ["cont"]
        assert harness.stub.running

    def test_step_resumes_target(self):
        harness = StubHarness()
        harness.client.send_async(b"s")
        assert harness.target.resume_calls == ["step"]

    def test_stop_report_reaches_client(self):
        harness = StubHarness()
        harness.client.send_async(b"c")
        harness.stub.report_stop(5)
        reply = harness.client.wait_for_stop()
        assert reply == b"S05"
        assert not harness.stub.running

    def test_qsupported(self):
        harness = StubHarness()
        reply = harness.client.exchange(b"qSupported:swbreak+")
        assert b"PacketSize" in reply

    def test_unknown_command_gets_empty_reply(self):
        harness = StubHarness()
        assert harness.client.exchange(b"qFrobnicate") == b""

    def test_interrupt_while_running_stops(self):
        harness = StubHarness()
        harness.client.send_async(b"c")
        assert harness.stub.running
        harness.client.send_interrupt()
        reply = harness.client.wait_for_stop()
        assert reply == b"S02"  # SIGINT

    def test_kill_sets_flag(self):
        harness = StubHarness()
        harness.client.kill()
        assert harness.stub.killed

    def test_vcont_query(self):
        harness = StubHarness()
        assert harness.client.exchange(b"vCont?") == b"vCont;c;s"

    def test_malformed_packet_returns_error(self):
        harness = StubHarness()
        reply = harness.client.exchange(b"mzz,4")
        assert reply.startswith(b"E")


class TestCpuTargetAdapter:
    def _cpu(self):
        from repro.hw import Cpu, IoBus, PhysicalMemory
        from repro.hw import firmware
        cpu = Cpu(PhysicalMemory(1 << 20), IoBus())
        firmware.install_flat_firmware(cpu)
        return cpu

    def test_register_access(self):
        cpu = self._cpu()
        adapter = CpuTargetAdapter(cpu)
        cpu.regs[2] = 0x1234
        cpu.pc = 0x8000
        values = adapter.read_registers()
        assert values[2] == 0x1234
        assert values[8] == 0x8000
        adapter.write_register(8, 0x9000)
        assert cpu.pc == 0x9000

    def test_memory_access_respects_translation(self):
        cpu = self._cpu()
        adapter = CpuTargetAdapter(cpu)
        assert adapter.write_memory(0x5000, b"abcd")
        assert adapter.read_memory(0x5000, 4) == b"abcd"
        # Beyond segment limit: fails gracefully.
        assert adapter.read_memory(0x10000000, 4) is None
        assert not adapter.write_memory(0x10000000, b"x")

    def test_breakpoints_map_to_cpu(self):
        cpu = self._cpu()
        adapter = CpuTargetAdapter(cpu)
        adapter.set_breakpoint(0x4000)
        assert 0x4000 in cpu.code_breakpoints
        adapter.clear_breakpoint(0x4000)
        assert not cpu.code_breakpoints

    def test_watchpoints_map_to_cpu(self):
        cpu = self._cpu()
        adapter = CpuTargetAdapter(cpu)
        adapter.set_watchpoint(0x9000, 4, "watch")
        assert cpu.watchpoints == [(0x9000, 4, True)]
        assert adapter.clear_watchpoint(0x9000, 4, "watch")
        assert not adapter.clear_watchpoint(0x9000, 4, "watch")


class TestTargetXml:
    def test_qsupported_advertises_xfer(self):
        harness = StubHarness()
        reply = harness.client.exchange(b"qSupported")
        assert b"qXfer:features:read+" in reply

    def test_full_read_in_one_window(self):
        harness = StubHarness()
        reply = harness.client.exchange(
            b"qXfer:features:read:target.xml:0,4096")
        assert reply.startswith(b"l")
        assert b"<architecture>hx32</architecture>" in reply
        assert reply.count(b"<reg ") == 10

    def test_windowed_reads_concatenate(self):
        harness = StubHarness()
        collected = bytearray()
        offset = 0
        while True:
            reply = harness.client.exchange(
                f"qXfer:features:read:target.xml:{offset:x},40"
                .encode())
            collected += reply[1:]
            offset += len(reply) - 1
            if reply.startswith(b"l"):
                break
        whole = harness.client.exchange(
            b"qXfer:features:read:target.xml:0,4096")[1:]
        assert bytes(collected) == whole

    def test_unknown_annex_errors(self):
        harness = StubHarness()
        reply = harness.client.exchange(
            b"qXfer:features:read:nothere.xml:0,100")
        assert reply == b"E00"

    def test_malformed_window_errors(self):
        harness = StubHarness()
        reply = harness.client.exchange(
            b"qXfer:features:read:target.xml:zz")
        assert reply == b"E01"
