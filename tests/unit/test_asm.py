"""Unit tests for the assembler and disassembler."""

import pytest

from repro.asm import assemble, decode_one, disassemble, iter_listing
from repro.errors import AssemblerError, DisassemblerError
from repro.hw import isa


class TestDirectives:
    def test_org_sets_origin(self):
        program = assemble(".org 0x2000\nNOP\n")
        assert program.origin == 0x2000
        assert program.image == b"\x00"

    def test_org_pads_forward(self):
        program = assemble("NOP\n.org 0x10\nNOP\n")
        assert len(program.image) == 0x11
        assert program.image[0] == 0x00
        assert program.image[0x10] == 0x00  # NOP opcode

    def test_org_backwards_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".org 0x100\nNOP\n.org 0x50\n")

    def test_equ_defines_constant(self):
        program = assemble(".equ PORT, 0x3F8\nMOVI R0, PORT\n")
        assert program.image[2:6] == (0x3F8).to_bytes(4, "little")

    def test_equ_duplicate_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".equ A, 1\n.equ A, 2\n")

    def test_word_and_byte(self):
        program = assemble(".word 1, 0x200\n.byte 7, 'A'\n")
        assert program.image == b"\x01\x00\x00\x00\x00\x02\x00\x00\x07A"

    def test_ascii_and_asciz(self):
        program = assemble('.ascii "ab"\n.asciz "cd"\n')
        assert program.image == b"abcd\0"

    def test_ascii_escapes(self):
        program = assemble('.ascii "a\\n\\0b"')
        assert program.image == b"a\n\0b"

    def test_align(self):
        program = assemble("NOP\n.align 4\n.byte 1\n")
        assert len(program.image) == 5
        assert program.image[4] == 1

    def test_align_non_power_of_two_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".align 3\n")

    def test_space(self):
        program = assemble(".space 5\n.byte 9\n")
        assert program.image == b"\0\0\0\0\0\x09"


class TestLabels:
    def test_label_resolves_forward_and_backward(self):
        program = assemble("""
        start:
            JMP end
        middle:
            NOP
            JMP start
        end:
            NOP
        """)
        assert program.symbol("start") == 0
        assert program.symbol("middle") == 5
        assert program.symbol("end") == 11

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\nNOP\na:\nNOP\n")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("JMP nowhere\n")

    def test_label_with_statement_on_same_line(self):
        program = assemble("here: NOP\n")
        assert program.symbol("here") == 0
        assert program.image == b"\x00"

    def test_dot_is_current_address(self):
        program = assemble(".org 0x100\nMOVI R0, .\n")
        assert program.image[2:6] == (0x100).to_bytes(4, "little")


class TestInstructionEncoding:
    def test_movi(self):
        program = assemble("MOVI R3, 0xDEADBEEF\n")
        assert program.image == b"\x10\x03\xef\xbe\xad\xde"

    def test_rr_packing(self):
        program = assemble("ADD R2, R5\n")
        assert program.image == bytes([0x20, (2 << 4) | 5])

    def test_ld_st_operand_order(self):
        load = assemble("LD R1, [R2+8]\n").image
        store = assemble("ST [R2+8], R1\n").image
        assert load[0] == isa.BY_MNEMONIC["LD"].opcode
        assert store[0] == isa.BY_MNEMONIC["ST"].opcode
        assert load[1] == store[1] == (1 << 4) | 2
        assert load[2:6] == store[2:6] == (8).to_bytes(4, "little")

    def test_negative_displacement(self):
        program = assemble("LD R0, [SP-4]\n")
        assert program.image[2:6] == (0x100000000 - 4).to_bytes(4, "little")

    def test_sp_fp_aliases(self):
        program = assemble("MOV SP, FP\n")
        assert program.image[1] == (7 << 4) | 6

    def test_relative_branch_encoding(self):
        program = assemble("start: JMP start\n")
        # rel = 0 - 5 = -5
        assert program.image[1:5] == (0x100000000 - 5).to_bytes(4, "little")

    def test_int_range_check(self):
        with pytest.raises(AssemblerError):
            assemble("INT 256\n")

    def test_movcr_and_movrc(self):
        to_cr = assemble("MOVCR CR3, R1\n").image
        from_cr = assemble("MOVRC R1, CR3\n").image
        assert to_cr[1] == from_cr[1] == (3 << 4) | 1

    def test_movseg(self):
        program = assemble("MOVSEG DS, R2\n")
        assert program.image[1] == (1 << 4) | 2

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("FROB R1\n")

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("MOV R9, R0\n")

    def test_comments_stripped(self):
        program = assemble("NOP ; this is a comment\n; whole line\n")
        assert program.image == b"\x00"

    def test_semicolon_inside_string_kept(self):
        program = assemble('.ascii "a;b"\n')
        assert program.image == b"a;b"

    def test_expression_arithmetic(self):
        program = assemble(".equ BASE, 0x100\nMOVI R0, BASE+0x20+4\n")
        assert program.image[2:6] == (0x124).to_bytes(4, "little")


class TestDisassembler:
    def test_every_instruction_format_round_trips(self):
        source_lines = [
            "NOP", "HLT", "CLI", "STI", "IRET", "RET", "BKPT", "VMCALL",
            "MOVI R1, 0x1234", "MOV R1, R2", "LD R1, [R2+4]",
            "ST [R2+4], R1", "LD8 R0, [R3+1]", "ST8 [R3+1], R0",
            "LD16 R0, [R3+2]", "ST16 [R3+2], R0", "LEA R4, [R5+16]",
            "PUSH R1", "PUSHI 0x99", "POP R1",
            "ADD R1, R2", "ADDI R1, 5", "SUB R1, R2", "SUBI R1, 5",
            "AND R1, R2", "ANDI R1, 5", "OR R1, R2", "ORI R1, 5",
            "XOR R1, R2", "XORI R1, 5", "SHL R1, R2", "SHLI R1, 5",
            "SHR R1, R2", "SHRI R1, 5", "MUL R1, R2", "MULI R1, 5",
            "DIV R1, R2", "DIVI R1, 5", "NOT R1", "NEG R1",
            "CMP R1, R2", "CMPI R1, 5", "TEST R1, R2",
            "JMP 0x40", "JZ 0x40", "JNZ 0x40", "JC 0x40", "JNC 0x40",
            "JG 0x40", "JGE 0x40", "JL 0x40", "JLE 0x40", "JS 0x40",
            "JNS 0x40", "CALL 0x40", "JMPR R1", "CALLR R1",
            "INT 0x21", "INB R0, R1", "OUTB R0, R1", "INW R0, R1",
            "OUTW R0, R1", "MOVCR CR0, R1", "MOVRC R1, CR2",
            "LGDT R1", "LIDT R1", "LTSS R1", "MOVSEG DS, R1",
            "MOVSGR R1, SS",
        ]
        source = "\n".join(source_lines) + "\n"
        program = assemble(source, origin=0x1000)
        decoded = disassemble(program.image, origin=0x1000)
        assert len(decoded) == len(source_lines)
        # Reassembling the disassembly must produce identical bytes.
        round_trip = assemble(
            "\n".join(insn.text for insn in decoded) + "\n", origin=0x1000)
        assert round_trip.image == program.image

    def test_invalid_opcode_rejected(self):
        with pytest.raises(DisassemblerError):
            decode_one(b"\xff", 0, 0)

    def test_truncated_instruction_rejected(self):
        with pytest.raises(DisassemblerError):
            disassemble(b"\x10\x00")  # MOVI missing its immediate

    def test_listing_format(self):
        program = assemble("NOP\n")
        lines = list(iter_listing(program.image))
        assert lines == ["00000000:  00            NOP"]

    def test_branch_target_shown_absolute(self):
        program = assemble(".org 0x100\nhere: JMP here\n")
        decoded = disassemble(program.image, origin=0x100)
        assert decoded[0].text == "JMP 0x100"


class TestProgramApi:
    def test_load_into_memory(self):
        from repro.hw import PhysicalMemory
        memory = PhysicalMemory(0x3000)
        program = assemble(".org 0x2000\n.byte 0xAA\n")
        program.load_into(memory)
        assert memory.read_u8(0x2000) == 0xAA

    def test_unknown_symbol_raises(self):
        program = assemble("NOP\n")
        with pytest.raises(AssemblerError):
            program.symbol("missing")

    def test_end_property(self):
        program = assemble(".org 0x10\n.space 6\n")
        assert program.end == 0x16


class TestAsmCli:
    def _write(self, tmp_path, text):
        path = tmp_path / "prog.s"
        path.write_text(text)
        return path

    def test_build_writes_image_and_symbols(self, tmp_path, capsys):
        from repro.asm.cli import main
        source = self._write(tmp_path, "start:\nMOVI R0, 5\nHLT\n")
        out = tmp_path / "prog.bin"
        assert main(["build", str(source), "-o", str(out),
                     "--org", "0x1000", "--symbols"]) == 0
        text = capsys.readouterr().out
        assert "7 bytes" in text
        assert "start" in text
        assert out.read_bytes() == assemble(
            "start:\nMOVI R0, 5\nHLT\n", origin=0x1000).image

    def test_dump_round_trips(self, tmp_path, capsys):
        from repro.asm.cli import main
        image = assemble("MOVI R1, 0x42\nNOP\n").image
        path = tmp_path / "img.bin"
        path.write_bytes(image)
        assert main(["dump", str(path)]) == 0
        text = capsys.readouterr().out
        assert "MOVI R1, 0x42" in text
        assert "NOP" in text

    def test_listing(self, tmp_path, capsys):
        from repro.asm.cli import main
        source = self._write(tmp_path, "MOVI R0, 1\nHLT\n")
        assert main(["listing", str(source)]) == 0
        text = capsys.readouterr().out
        assert "00000000  MOVI R0, 1" in text

    def test_error_reported_not_raised(self, tmp_path, capsys):
        from repro.asm.cli import main
        source = self._write(tmp_path, "FROB R1\n")
        assert main(["build", str(source)]) == 1
        assert "repro-asm:" in capsys.readouterr().err
