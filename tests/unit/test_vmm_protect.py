"""Unit tests for ring compression, segment truncation, and shadow GDT."""

import pytest

from repro.hw.mem import PhysicalMemory
from repro.hw.seg import DESCRIPTOR_SIZE, SegmentDescriptor, selector
from repro.vmm.protect import (
    ShadowGdt,
    compress_descriptor,
    compress_selector,
    guest_can_reach,
)

MONITOR_BASE = 0xF0_0000


class TestCompressDescriptor:
    def test_ring0_becomes_ring1(self):
        descriptor = SegmentDescriptor(0, 0x100_0000, 0, code=True)
        shadowed = compress_descriptor(descriptor, MONITOR_BASE)
        assert shadowed.dpl == 1

    def test_ring3_untouched(self):
        descriptor = SegmentDescriptor(0, 0x100_0000, 3)
        assert compress_descriptor(descriptor, MONITOR_BASE).dpl == 3

    def test_limit_truncated_below_monitor(self):
        descriptor = SegmentDescriptor(0, 0x100_0000, 0)
        shadowed = compress_descriptor(descriptor, MONITOR_BASE)
        assert shadowed.limit == MONITOR_BASE

    def test_limit_kept_when_already_small(self):
        descriptor = SegmentDescriptor(0, 0x1000, 0)
        assert compress_descriptor(descriptor, MONITOR_BASE).limit == 0x1000

    def test_nonzero_base_accounted(self):
        # Segment starting at 0xE0_0000 may only span up to the monitor.
        descriptor = SegmentDescriptor(0xE0_0000, 0x20_0000, 0)
        shadowed = compress_descriptor(descriptor, MONITOR_BASE)
        assert shadowed.base + shadowed.limit <= MONITOR_BASE

    def test_base_beyond_monitor_collapses_to_empty(self):
        descriptor = SegmentDescriptor(MONITOR_BASE + 0x100, 0x1000, 0)
        assert compress_descriptor(descriptor, MONITOR_BASE).limit == 0

    def test_base_beyond_monitor_marked_not_present(self):
        # A zero-limit segment would still "exist"; a base inside the
        # monitor region must yield a not-present descriptor so loads
        # of it fault cleanly instead of dereferencing an empty window.
        descriptor = SegmentDescriptor(MONITOR_BASE + 0x100, 0x1000, 0)
        assert not compress_descriptor(descriptor, MONITOR_BASE).present

    def test_base_at_monitor_boundary_marked_not_present(self):
        descriptor = SegmentDescriptor(MONITOR_BASE, 0x1000, 0)
        assert not compress_descriptor(descriptor, MONITOR_BASE).present

    def test_base_below_monitor_stays_present(self):
        descriptor = SegmentDescriptor(MONITOR_BASE - 0x1000, 0x4000, 0)
        shadowed = compress_descriptor(descriptor, MONITOR_BASE)
        assert shadowed.present and shadowed.limit == 0x1000

    def test_not_present_input_stays_not_present(self):
        descriptor = SegmentDescriptor(0, 0x1000, 0, present=False)
        assert not compress_descriptor(descriptor, MONITOR_BASE).present

    def test_other_attributes_preserved(self):
        descriptor = SegmentDescriptor(0x10, 0x20, 0, code=True,
                                       writable=False)
        shadowed = compress_descriptor(descriptor, MONITOR_BASE)
        assert shadowed.code and not shadowed.writable and shadowed.present


class TestCompressSelector:
    def test_rpl0_becomes_rpl1(self):
        assert compress_selector(selector(2, 0)) == selector(2, 1)

    def test_rpl3_unchanged(self):
        assert compress_selector(selector(5, 3)) == selector(5, 3)

    def test_index_preserved(self):
        sel = compress_selector(selector(13, 0))
        assert sel >> 2 == 13


class TestShadowGdt:
    def _build(self):
        memory = PhysicalMemory(1 << 20)
        shadow = ShadowGdt(memory, shadow_base=0xF0000,
                           monitor_base=0xE0000)
        guest_base = 0x1000
        for index, descriptor in enumerate([
            SegmentDescriptor(0, 0, 0, present=False),
            SegmentDescriptor(0, 1 << 20, 0, code=True),
            SegmentDescriptor(0, 1 << 20, 0),
            SegmentDescriptor(0, 1 << 20, 3),
        ]):
            memory.write(guest_base + index * DESCRIPTOR_SIZE,
                         descriptor.pack())
        shadow.rebuild(guest_base, 4 * DESCRIPTOR_SIZE)
        return memory, shadow

    def test_rebuild_mirrors_indices(self):
        _, shadow = self._build()
        assert shadow.limit == 4 * DESCRIPTOR_SIZE
        assert shadow.read(1).code
        assert not shadow.read(2).code

    def test_every_entry_compressed(self):
        _, shadow = self._build()
        assert shadow.read(1).dpl == 1
        assert shadow.read(2).dpl == 1
        assert shadow.read(3).dpl == 3
        for index in range(1, 4):
            assert shadow.read(index).limit <= 0xE0000

    def test_monitor_unreachable_through_any_shadow_descriptor(self):
        _, shadow = self._build()
        for index in range(1, 4):
            descriptor = shadow.read(index)
            for offset in (0xE0000, 0xE0001, 0xFFFFF):
                assert not guest_can_reach(descriptor, offset, 0xE0000)

    def test_guest_memory_still_reachable(self):
        _, shadow = self._build()
        descriptor = shadow.read(2)
        assert descriptor.contains(0x5000, 4)
        assert descriptor.contains(0xDFFFC, 4)

    def test_rebuild_counts(self):
        _, shadow = self._build()
        assert shadow.rebuilds == 1
        shadow.rebuild(0x1000, 2 * DESCRIPTOR_SIZE)
        assert shadow.rebuilds == 2
        assert shadow.limit == 2 * DESCRIPTOR_SIZE

    def test_oversized_guest_gdt_clamped(self):
        memory = PhysicalMemory(1 << 20)
        shadow = ShadowGdt(memory, 0xF0000, 0xE0000, max_descriptors=8)
        shadow.rebuild(0x1000, 100 * DESCRIPTOR_SIZE)
        assert shadow.limit == 8 * DESCRIPTOR_SIZE
