"""Unit tests for the discrete-event kernel and cycle budget."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    CAT_COPY,
    CAT_GUEST,
    CAT_WORLD_SWITCH,
    CycleBudget,
    EventQueue,
    cycles_for_seconds,
    seconds_for_cycles,
)


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule_at(30, lambda: order.append("c"))
        queue.schedule_at(10, lambda: order.append("a"))
        queue.schedule_at(20, lambda: order.append("b"))
        queue.run()
        assert order == ["a", "b", "c"]
        assert queue.now == 30

    def test_same_time_events_fire_in_insertion_order(self):
        queue = EventQueue()
        order = []
        for tag in "abcd":
            queue.schedule_at(5, lambda t=tag: order.append(t))
        queue.run()
        assert order == ["a", "b", "c", "d"]

    def test_schedule_in_is_relative(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(100, lambda: queue.schedule_in(
            50, lambda: seen.append(queue.now)))
        queue.run()
        assert seen == [150]

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.schedule_at(10, lambda: None)
        queue.run()
        with pytest.raises(SimulationError):
            queue.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule_in(-1, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule_at(10, lambda: fired.append(1))
        event.cancel()
        queue.run()
        assert not fired
        assert event.cancelled
        assert not event.fired

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        keep = queue.schedule_at(10, lambda: None)
        drop = queue.schedule_at(20, lambda: None)
        drop.cancel()
        assert len(queue) == 1
        assert keep is not None

    def test_run_until_stops_at_deadline(self):
        queue = EventQueue()
        fired = []
        queue.schedule_at(10, lambda: fired.append(10))
        queue.schedule_at(30, lambda: fired.append(30))
        queue.run_until(20)
        assert fired == [10]
        assert queue.now == 20
        queue.run_until(40)
        assert fired == [10, 30]

    def test_run_until_inclusive_of_deadline(self):
        queue = EventQueue()
        fired = []
        queue.schedule_at(20, lambda: fired.append(20))
        queue.run_until(20)
        assert fired == [20]

    def test_runaway_detection(self):
        queue = EventQueue()

        def reschedule():
            queue.schedule_in(1, reschedule)

        queue.schedule_in(1, reschedule)
        with pytest.raises(SimulationError):
            queue.run(max_events=100)

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.schedule_at(5, lambda: None)
        queue.schedule_at(9, lambda: None)
        first.cancel()
        assert queue.peek_time() == 9


class TestCycleConversion:
    def test_round_trip(self):
        hz = 1.26e9
        cycles = cycles_for_seconds(0.5, hz)
        assert cycles == int(round(0.5 * hz))
        assert seconds_for_cycles(cycles, hz) == pytest.approx(0.5)

    def test_negative_seconds_rejected(self):
        with pytest.raises(SimulationError):
            cycles_for_seconds(-1, 1e9)


class TestCycleBudget:
    def test_charges_accumulate_by_category(self):
        budget = CycleBudget()
        budget.charge(100, CAT_GUEST)
        budget.charge(50, CAT_COPY)
        budget.charge(25, CAT_GUEST)
        assert budget.total == 175
        assert budget.by_category() == {CAT_GUEST: 125, CAT_COPY: 50}

    def test_load_is_clamped(self):
        budget = CycleBudget()
        budget.charge(2000, CAT_GUEST)
        assert budget.load(1000) == 1.0
        assert budget.demanded_load(1000) == pytest.approx(2.0)

    def test_load_fraction(self):
        budget = CycleBudget()
        budget.charge(250, CAT_WORLD_SWITCH)
        assert budget.load(1000) == pytest.approx(0.25)

    def test_negative_charge_rejected(self):
        budget = CycleBudget()
        with pytest.raises(SimulationError):
            budget.charge(-1)

    def test_zero_window_rejected(self):
        budget = CycleBudget()
        with pytest.raises(SimulationError):
            budget.load(0)

    def test_snapshot_delta(self):
        budget = CycleBudget()
        budget.charge(10, CAT_GUEST)
        before = budget.snapshot()
        budget.charge(5, CAT_GUEST)
        budget.charge(7, CAT_COPY)
        assert budget.delta_since(before) == {CAT_GUEST: 5, CAT_COPY: 7}

    def test_reset(self):
        budget = CycleBudget()
        budget.charge(10)
        budget.reset()
        assert budget.total == 0

    def test_bad_frequency_rejected(self):
        with pytest.raises(SimulationError):
            CycleBudget(hz=0)
