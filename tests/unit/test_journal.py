"""Unit tests for the replay journal container (format + durability)."""

import pytest

from repro.errors import JournalError
from repro.replay.journal import (
    FRAME_CHECKPOINT,
    FRAME_END,
    FRAME_EVENT,
    FRAME_HEADER,
    MAGIC,
    Frame,
    Journal,
    load_journal,
    loads_journal,
    save_journal,
)


def _journal(n_events=3, with_end=True):
    frames = [Frame(FRAME_EVENT, {"kind": "run", "max": 500,
                                  "executed": 100 + index})
              for index in range(n_events)]
    frames.append(Frame(FRAME_CHECKPOINT,
                        {"kind": "checkpoint", "digest": "ab" * 32}))
    if with_end:
        frames.append(Frame(FRAME_END, {"kind": "end", "violations": [],
                                        "checks": [], "digest": "cd" * 32}))
    return Journal(header={"scenario": "test", "seed": 7,
                           "monitor": "lvmm"}, frames=frames)


class TestRoundTrip:
    def test_bytes_round_trip(self):
        journal = _journal()
        loaded = loads_journal(journal.to_bytes())
        assert loaded.header == journal.header
        assert len(loaded.frames) == len(journal.frames)
        assert [f.data for f in loaded.frames] \
            == [f.data for f in journal.frames]
        assert not loaded.truncated

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "test.journal"
        journal = _journal()
        save_journal(journal, path)
        loaded = load_journal(path)
        assert loaded.header == journal.header
        assert loaded.complete

    def test_complete_and_end_frame(self):
        assert _journal(with_end=True).complete
        incomplete = _journal(with_end=False)
        assert not incomplete.complete
        assert incomplete.end_frame is None

    def test_counts_by_kind(self):
        counts = _journal().counts_by_kind()
        assert counts["run"] == 3
        assert counts["checkpoint"] == 1
        assert counts["end"] == 1

    def test_encoding_is_deterministic(self):
        assert _journal().to_bytes() == _journal().to_bytes()


class TestDurability:
    """Crash-consistency: a damaged tail never loses the intact head."""

    def test_truncated_tail_recovered(self):
        blob = _journal().to_bytes()
        # Cut mid-way through the final frame.
        cut = loads_journal(blob[:len(blob) - 10])
        assert cut.truncated
        assert not cut.complete
        assert len(cut.frames) == len(_journal().frames) - 1

    def test_corrupt_digest_ends_parse(self):
        blob = bytearray(_journal().to_bytes())
        blob[-1] ^= 0xFF          # flip a bit in the last frame digest
        loaded = loads_journal(bytes(blob))
        assert loaded.truncated
        assert not loaded.complete

    def test_corrupt_payload_detected(self):
        journal = _journal()
        blob = bytearray(journal.to_bytes())
        # Flip a payload byte of the final frame (not its digest).
        end_len = len(journal.frames[-1].encode())
        blob[len(blob) - end_len + 8] ^= 0xFF
        loaded = loads_journal(bytes(blob))
        assert loaded.truncated

    def test_strict_mode_raises_on_damage(self):
        blob = _journal().to_bytes()
        with pytest.raises(JournalError):
            loads_journal(blob[:len(blob) - 10], strict=True)

    def test_every_prefix_loads_or_raises_cleanly(self):
        """No prefix length can crash the loader or corrupt a frame."""
        blob = _journal().to_bytes()
        good = 0
        for cut in range(len(blob)):
            try:
                loaded = loads_journal(blob[:cut])
            except JournalError:
                continue
            good += 1
            for frame in loaded.frames:
                assert isinstance(frame.data, dict)
        assert good > 0


class TestValidation:
    def test_bad_magic_rejected(self):
        with pytest.raises(JournalError):
            loads_journal(b"NOTJRNL0" + b"\x01\x00")

    def test_bad_version_rejected(self):
        with pytest.raises(JournalError):
            loads_journal(MAGIC + b"\xff\x00")

    def test_missing_header_rejected(self):
        # Valid magic but zero intact frames.
        with pytest.raises(JournalError):
            loads_journal(MAGIC + b"\x01\x00")

    def test_insane_length_prefix_rejected(self):
        blob = bytearray(_journal().to_bytes())
        # Overwrite the header frame's length with a huge value; the
        # loader must refuse rather than try to slurp it.
        blob[10] = 0xFF
        blob[11] = 0xFF
        blob[12] = 0xFF
        with pytest.raises(JournalError):
            loads_journal(bytes(blob))

    def test_unknown_frame_kind_names_structural_type(self):
        frame = Frame(FRAME_EVENT, {"x": 1})
        assert frame.kind == "event"
        assert Frame(FRAME_END, {}).kind == "end"


# ----------------------------------------------------------------------
# JournalWriter: incremental, kill-safe spooling
# ----------------------------------------------------------------------

import os
import signal
import subprocess
import sys

from repro.replay.journal import JournalWriter, load_journal


class TestJournalWriter:
    def test_spooled_bytes_identical_to_in_memory_encoding(self, tmp_path):
        journal = _journal()
        path = tmp_path / "spool.journal"
        writer = JournalWriter(path, journal.header)
        for frame in journal.frames:
            writer.append(frame)
        writer.close()
        assert path.read_bytes() == journal.to_bytes()
        assert writer.frames_written == len(journal.frames)
        assert writer.bytes_written == len(journal.to_bytes())

    def test_close_is_idempotent_and_seals_appends(self, tmp_path):
        writer = JournalWriter(tmp_path / "x.journal", {"scenario": "t"})
        writer.append(Frame(FRAME_EVENT, {"kind": "run", "max": 1}))
        writer.close()
        writer.close()
        assert writer.closed
        with pytest.raises(JournalError):
            writer.append(Frame(FRAME_EVENT, {"kind": "run", "max": 2}))

    def test_fsync_optional(self, tmp_path):
        path = tmp_path / "nofsync.journal"
        writer = JournalWriter(path, {"scenario": "t"}, fsync=False)
        writer.append(Frame(FRAME_EVENT, {"kind": "run", "max": 1}))
        writer.close()
        loaded = load_journal(path)
        assert len(loaded.frames) == 1


_SPOOL_CHILD = """\
import sys
sys.path[:0] = {sys_path!r}
from repro.replay.journal import FRAME_EVENT, Frame, JournalWriter

writer = JournalWriter({path!r}, {{"scenario": "kill-test"}})
{arm_sigterm}
for index in range(100_000):
    writer.append(Frame(FRAME_EVENT,
                        {{"kind": "run", "max": 500, "executed": index}}))
    if index == 20:
        print("ready", flush=True)
"""


def _spawn_spooler(path, arm_sigterm=False):
    """Run a child that spools frames forever, wait until it has
    written at least 20 of them."""
    code = _SPOOL_CHILD.format(
        sys_path=[entry for entry in sys.path if entry],
        path=str(path),
        arm_sigterm="writer.install_sigterm_close()"
                    if arm_sigterm else "")
    child = subprocess.Popen([sys.executable, "-c", code],
                             stdout=subprocess.PIPE)
    assert child.stdout.readline().strip() == b"ready"
    return child


class TestJournalWriterKillSafety:
    def test_sigkill_mid_write_leaves_a_recoverable_journal(
            self, tmp_path):
        """kill -9 while spooling: everything up to the last frame
        boundary survives; the loader absorbs any torn tail."""
        path = tmp_path / "killed.journal"
        child = _spawn_spooler(path)
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=10)
        assert child.returncode == -signal.SIGKILL
        journal = load_journal(path, strict=False)
        assert not journal.complete          # no END frame, by design
        assert len(journal.frames) >= 20
        # Every recovered frame is intact and in order.
        for index, frame in enumerate(journal.frames):
            assert frame.data["executed"] == index

    def test_sigterm_seals_the_spool_and_exits_143(self, tmp_path):
        """A politely-terminated writer closes the spool from its
        SIGTERM handler: no torn tail at all."""
        path = tmp_path / "terminated.journal"
        child = _spawn_spooler(path, arm_sigterm=True)
        os.kill(child.pid, signal.SIGTERM)
        child.wait(timeout=10)
        assert child.returncode == 143
        journal = load_journal(path, strict=False)
        assert not journal.truncated
        assert len(journal.frames) >= 20

    def test_every_sigkill_prefix_is_loadable(self, tmp_path):
        """Brute-force the crash window: whatever byte the writer died
        on, the spool loads without raising."""
        path = tmp_path / "prefix.journal"
        writer = JournalWriter(path, {"scenario": "t"})
        for index in range(5):
            writer.append(Frame(FRAME_EVENT,
                                {"kind": "run", "executed": index}))
        writer.close()
        blob = path.read_bytes()
        header_len = len(MAGIC) + 2 \
            + len(Frame(FRAME_HEADER, {"scenario": "t"}).encode())
        for cut in range(header_len, len(blob)):
            journal = loads_journal(blob[:cut])
            for frame in journal.frames:
                assert frame.data["kind"] == "run"
