"""Unit tests for the Ethernet/ARP/IPv4/UDP stack."""

import pytest

from repro.errors import ProtocolError
from repro.net import (
    ArpCache,
    ArpPacket,
    EthernetFrame,
    ETHERTYPE_IPV4,
    Ipv4Packet,
    Reassembler,
    UdpDatagram,
    UdpReceiver,
    UdpStack,
    format_ipv4,
    format_mac,
    fragment,
    internet_checksum,
    make_reply,
    make_request,
    parse_ipv4,
    parse_mac,
    verify_checksum,
)

MAC_A = parse_mac("02:00:00:00:00:01")
MAC_B = parse_mac("02:00:00:00:00:02")
IP_A = parse_ipv4("10.0.0.1")
IP_B = parse_ipv4("10.0.0.2")


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example data.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_insert_then_verify(self):
        data = b"\x45\x00\x00\x1c" + bytes(16)
        checksum = internet_checksum(data)
        patched = data[:10] + checksum.to_bytes(2, "big") + data[12:]
        assert verify_checksum(patched)

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xab") == internet_checksum(b"\xab\x00")


class TestAddressParsing:
    def test_mac_round_trip(self):
        assert format_mac(parse_mac("aa:bb:cc:dd:ee:ff")) == \
            "aa:bb:cc:dd:ee:ff"

    def test_ip_round_trip(self):
        assert format_ipv4(parse_ipv4("192.168.1.200")) == "192.168.1.200"

    def test_bad_mac_rejected(self):
        with pytest.raises(ProtocolError):
            parse_mac("not-a-mac")

    def test_bad_ip_rejected(self):
        with pytest.raises(ProtocolError):
            parse_ipv4("1.2.3")


class TestEthernet:
    def test_pack_unpack_round_trip(self):
        frame = EthernetFrame(MAC_A, MAC_B, ETHERTYPE_IPV4, b"x" * 100)
        parsed = EthernetFrame.unpack(frame.pack())
        assert parsed.dst == MAC_A
        assert parsed.src == MAC_B
        assert parsed.payload[:100] == b"x" * 100

    def test_short_payload_padded_to_minimum(self):
        frame = EthernetFrame(MAC_A, MAC_B, ETHERTYPE_IPV4, b"hi")
        assert len(frame.pack()) == 14 + 46

    def test_oversize_payload_rejected(self):
        with pytest.raises(ProtocolError):
            EthernetFrame(MAC_A, MAC_B, ETHERTYPE_IPV4, bytes(1501))

    def test_runt_frame_rejected(self):
        with pytest.raises(ProtocolError):
            EthernetFrame.unpack(bytes(20))


class TestArp:
    def test_request_reply_cycle(self):
        request = make_request(MAC_A, IP_A, IP_B)
        parsed = ArpPacket.unpack(request.pack())
        assert parsed.operation == 1
        reply = make_reply(parsed, MAC_B)
        assert reply.operation == 2
        assert reply.sender_mac == MAC_B
        assert reply.target_mac == MAC_A
        assert reply.sender_ip == IP_B

    def test_cache_learns(self):
        cache = ArpCache()
        cache.handle(make_request(MAC_A, IP_A, IP_B))
        assert cache.lookup(IP_A) == MAC_A
        assert cache.lookup(IP_B) is None
        assert len(cache) == 1


class TestIpv4:
    def test_pack_unpack_round_trip(self):
        packet = Ipv4Packet(IP_A, IP_B, 17, b"payload" * 10,
                            identification=42)
        parsed = Ipv4Packet.unpack(packet.pack())
        assert parsed.src == IP_A
        assert parsed.dst == IP_B
        assert parsed.payload == b"payload" * 10
        assert parsed.identification == 42

    def test_corrupt_header_rejected(self):
        raw = bytearray(Ipv4Packet(IP_A, IP_B, 17, b"data" * 12).pack())
        raw[8] ^= 0xFF  # corrupt TTL without fixing checksum
        with pytest.raises(ProtocolError):
            Ipv4Packet.unpack(bytes(raw))

    def test_no_fragmentation_when_fits(self):
        packet = Ipv4Packet(IP_A, IP_B, 17, bytes(100))
        assert fragment(packet, 1500) == [packet]

    def test_fragmentation_and_reassembly_round_trip(self):
        payload = bytes(range(256)) * 20  # 5120 bytes
        packet = Ipv4Packet(IP_A, IP_B, 17, payload, identification=7)
        pieces = fragment(packet, 1500)
        assert len(pieces) > 1
        assert all(len(p.payload) + 20 <= 1500 for p in pieces)
        reassembler = Reassembler()
        result = None
        for piece in pieces:
            parsed = Ipv4Packet.unpack(piece.pack())
            result = reassembler.push(parsed)
        assert result is not None
        assert result.payload == payload
        assert reassembler.pending_flows == 0

    def test_reassembly_out_of_order(self):
        payload = bytes(3000)
        pieces = fragment(Ipv4Packet(IP_A, IP_B, 17, payload), 1500)
        reassembler = Reassembler()
        result = None
        for piece in reversed(pieces):
            result = reassembler.push(piece) or result
        assert result is not None
        assert len(result.payload) == 3000

    def test_df_flag_prevents_fragmentation(self):
        packet = Ipv4Packet(IP_A, IP_B, 17, bytes(3000), flags=0x2)
        with pytest.raises(ProtocolError):
            fragment(packet, 1500)

    def test_incomplete_reassembly_returns_none(self):
        pieces = fragment(Ipv4Packet(IP_A, IP_B, 17, bytes(3000)), 1500)
        reassembler = Reassembler()
        assert reassembler.push(pieces[0]) is None
        assert reassembler.pending_flows == 1


class TestUdp:
    def test_pack_unpack_with_checksum(self):
        datagram = UdpDatagram(1234, 5678, b"hello")
        raw = datagram.pack(IP_A, IP_B)
        parsed = UdpDatagram.unpack(raw, IP_A, IP_B)
        assert parsed == datagram

    def test_corrupt_payload_detected(self):
        raw = bytearray(UdpDatagram(1, 2, b"payload").pack(IP_A, IP_B))
        raw[10] ^= 0x01
        with pytest.raises(ProtocolError):
            UdpDatagram.unpack(bytes(raw), IP_A, IP_B)

    def test_bad_port_rejected(self):
        with pytest.raises(ProtocolError):
            UdpDatagram(70000, 1, b"")

    def test_unpack_without_ips_skips_checksum(self):
        raw = bytearray(UdpDatagram(1, 2, b"data123").pack(IP_A, IP_B))
        raw[10] ^= 0x01
        parsed = UdpDatagram.unpack(bytes(raw))
        assert parsed.src_port == 1


class TestUdpStack:
    def test_small_payload_single_frame(self):
        stack = UdpStack(mac=MAC_A, ip=IP_A)
        frames = stack.build_udp_frames(b"x" * 100, 9000, MAC_B, IP_B, 9001)
        assert len(frames) == 1

    def test_large_payload_fragments(self):
        stack = UdpStack(mac=MAC_A, ip=IP_A)
        payload = bytes(64 * 1024 - 100)
        frames = stack.build_udp_frames(payload, 9000, MAC_B, IP_B, 9001)
        assert len(frames) == stack.frames_for_payload(len(payload))
        assert len(frames) > 40

    def test_end_to_end_through_receiver(self):
        stack = UdpStack(mac=MAC_A, ip=IP_A)
        receiver = UdpReceiver(ip=IP_B)
        payload = bytes(range(256)) * 64  # 16 KiB
        for raw in stack.build_udp_frames(payload, 9000, MAC_B, IP_B, 9001):
            receiver.receive_frame(raw)
        assert len(receiver.datagrams) == 1
        received = receiver.datagrams[0]
        assert received.datagram.payload == payload
        assert received.datagram.dst_port == 9001
        assert receiver.bytes_received == len(payload)

    def test_receiver_filters_other_ips(self):
        stack = UdpStack(mac=MAC_A, ip=IP_A)
        receiver = UdpReceiver(ip=parse_ipv4("10.9.9.9"))
        for raw in stack.build_udp_frames(b"x" * 64, 1, MAC_B, IP_B, 2):
            receiver.receive_frame(raw)
        assert not receiver.datagrams

    def test_receiver_counts_errors(self):
        receiver = UdpReceiver()
        frame = EthernetFrame(MAC_A, MAC_B, ETHERTYPE_IPV4,
                              b"garbage" * 10).pack()
        receiver.receive_frame(frame)
        assert receiver.errors == 1

    def test_identification_increments(self):
        stack = UdpStack(mac=MAC_A, ip=IP_A)
        first = stack.next_identification()
        second = stack.next_identification()
        assert second == (first + 1) & 0xFFFF


def _eth_ipv4(payload):
    return EthernetFrame(MAC_A, MAC_B, ETHERTYPE_IPV4, payload).pack()


class TestReceiverHardening:
    """receive_frame never raises; every malformed shape is counted
    (and mirrored to the ``net.rx.malformed`` registry counter)."""

    def test_truncated_ipv4_header_dropped(self):
        receiver = UdpReceiver()
        receiver.receive_frame(_eth_ipv4(b"\x45\x00\x00"))
        assert receiver.malformed == 1
        assert not receiver.datagrams

    def test_bad_total_length_dropped(self):
        stack = UdpStack(mac=MAC_A, ip=IP_A)
        raw = bytearray(stack.build_udp_frames(b"x" * 64, 1, MAC_B,
                                               IP_B, 2)[0])
        # Claim more bytes than the frame carries; re-seal the header
        # checksum so only the length lie is wrong.
        raw[16:18] = (4000).to_bytes(2, "big")
        raw[24:26] = b"\x00\x00"
        raw[24:26] = internet_checksum(raw[14:34]).to_bytes(2, "big")
        receiver = UdpReceiver()
        receiver.receive_frame(bytes(raw))
        assert receiver.malformed == 1

    def test_overlapping_fragments_dropped_then_flow_recovers(self):
        receiver = UdpReceiver()
        first = Ipv4Packet(IP_A, IP_B, 17, b"A" * 64,
                           identification=9, flags=0x1)  # MF
        clash = Ipv4Packet(IP_A, IP_B, 17, b"B" * 64,
                           identification=9, flags=0x1,
                           fragment_offset=4)  # overlaps bytes 32..96
        receiver.receive_frame(_eth_ipv4(first.pack()))
        receiver.receive_frame(_eth_ipv4(clash.pack()))
        assert receiver.malformed == 1
        # The poisoned flow was torn down: a clean datagram with the
        # same identification still gets through afterwards.
        stack = UdpStack(mac=MAC_A, ip=IP_A)
        payload = bytes(range(256)) * 16
        for raw in stack.build_udp_frames(payload, 1, MAC_B, IP_B, 2):
            receiver.receive_frame(raw)
        assert receiver.datagrams[-1].datagram.payload == payload

    def test_oversized_fragment_dropped(self):
        receiver = UdpReceiver()
        huge = Ipv4Packet(IP_A, IP_B, 17, b"x" * 100,
                          identification=3, flags=0x1,
                          fragment_offset=8189)  # ends past 65535
        receiver.receive_frame(_eth_ipv4(huge.pack()))
        assert receiver.malformed == 1

    def test_malformed_mirrored_to_global_counter(self):
        from repro.obs.metrics import global_registry
        counter = global_registry().counter("net.rx.malformed")
        before = counter.value
        receiver = UdpReceiver()
        receiver.receive_frame(_eth_ipv4(b"\x00" * 46))
        assert receiver.malformed == 1
        assert counter.value == before + 1

    def test_errors_stays_an_alias_of_malformed(self):
        receiver = UdpReceiver()
        receiver.receive_frame(_eth_ipv4(b"garbage garbage garbage "
                                         b"garbage garbage garba"))
        assert receiver.errors == receiver.malformed == 1


class TestReassemblerHardening:
    def _frag(self, payload, offset_units, more, ident=7):
        return Ipv4Packet(IP_A, IP_B, 17, payload, identification=ident,
                          flags=0x1 if more else 0,
                          fragment_offset=offset_units)

    def test_exact_duplicate_ignored(self):
        reassembler = Reassembler()
        assert reassembler.push(self._frag(b"a" * 64, 0, True)) is None
        assert reassembler.push(self._frag(b"a" * 64, 0, True)) is None
        whole = reassembler.push(self._frag(b"b" * 8, 8, False))
        assert whole is not None
        assert whole.payload == b"a" * 64 + b"b" * 8

    def test_conflicting_overlap_raises(self):
        reassembler = Reassembler()
        reassembler.push(self._frag(b"a" * 64, 0, True))
        with pytest.raises(ProtocolError, match="overlap"):
            reassembler.push(self._frag(b"z" * 64, 4, True))

    def test_conflicting_final_fragments_raise(self):
        reassembler = Reassembler()
        reassembler.push(self._frag(b"a" * 8, 2, False))
        with pytest.raises(ProtocolError, match="final"):
            reassembler.push(self._frag(b"b" * 16, 4, False))

    def test_fragment_past_total_length_raises(self):
        reassembler = Reassembler()
        reassembler.push(self._frag(b"c" * 64, 8, True))
        with pytest.raises(ProtocolError, match="total length"):
            reassembler.push(self._frag(b"end", 2, False))

    def test_oversized_flow_raises(self):
        reassembler = Reassembler()
        with pytest.raises(ProtocolError, match="datagram limit"):
            reassembler.push(self._frag(b"x" * 100, 8189, True))

    def test_poisoned_flow_state_is_dropped(self):
        reassembler = Reassembler()
        reassembler.push(self._frag(b"a" * 64, 0, True))
        with pytest.raises(ProtocolError):
            reassembler.push(self._frag(b"z" * 64, 4, True))
        # Same identification reassembles cleanly from scratch.
        assert reassembler.push(self._frag(b"c" * 64, 0, True)) is None
        whole = reassembler.push(self._frag(b"d" * 8, 8, False))
        assert whole is not None and whole.payload == b"c" * 64 + b"d" * 8
