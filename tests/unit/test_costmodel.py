"""Unit tests for the performance cost model."""

import pytest

from repro.errors import CalibrationError
from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel


class TestValidation:
    def test_defaults_valid(self):
        CostModel().validate()

    def test_negative_cost_rejected(self):
        with pytest.raises(CalibrationError):
            CostModel(guest_byte_cycles=-1).validate()

    def test_zero_frequency_rejected(self):
        with pytest.raises(CalibrationError):
            CostModel(cpu_hz=0).validate()

    def test_coalesce_below_one_rejected(self):
        with pytest.raises(CalibrationError):
            CostModel(nic_coalesce=0).validate()

    def test_world_switch_cheaper_than_host_switch(self):
        with pytest.raises(CalibrationError):
            CostModel(world_switch_cycles=100_000,
                      host_switch_cycles=50_000).validate()

    def test_with_overrides_returns_new_validated_model(self):
        model = DEFAULT_COST_MODEL.with_overrides(world_switch_cycles=9000)
        assert model.world_switch_cycles == 9000
        assert DEFAULT_COST_MODEL.world_switch_cycles != 9000
        with pytest.raises(CalibrationError):
            DEFAULT_COST_MODEL.with_overrides(pic_emulation_cycles=-5)


class TestDerivedCosts:
    def test_lvmm_trap_cost(self):
        model = DEFAULT_COST_MODEL
        assert model.lvmm_trap_cost() == model.world_switch_cycles
        assert model.lvmm_trap_cost(500) == model.world_switch_cycles + 500

    def test_interrupt_cost_ordering(self):
        """The architectural hierarchy must hold: hardware delivery <
        lightweight reflection < hosted double hop."""
        model = DEFAULT_COST_MODEL
        assert model.interrupt_deliver_cycles \
            < model.lvmm_interrupt_cost() \
            < model.fullvmm_interrupt_cost()

    def test_io_cost_ordering(self):
        model = DEFAULT_COST_MODEL
        assert model.device_access_cycles \
            < model.world_switch_cycles \
            < model.fullvmm_io_cost()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_COST_MODEL.cpu_hz = 1.0
