"""Unit tests for the perf-layer execution stacks and dispatcher."""

import pytest

from repro.hw.machine import Machine, MachineConfig
from repro.perf.costmodel import DEFAULT_COST_MODEL
from repro.perf.stacks import (
    FullVmmPerfStack,
    InterruptDispatcher,
    LvmmPerfStack,
    PerfStack,
    make_stack,
)
from repro.sim.budget import CAT_DRIVER, CAT_EMULATION, CAT_WORLD_SWITCH


def machine_with(stack_name):
    machine = Machine(MachineConfig())
    machine.program_pic_defaults()
    stack = make_stack(stack_name, machine)
    return machine, stack


class TestStackFactory:
    def test_all_three_stacks(self):
        for name, cls in (("bare", PerfStack), ("lvmm", LvmmPerfStack),
                          ("fullvmm", FullVmmPerfStack)):
            _, stack = machine_with(name)
            assert type(stack) is cls
            assert stack.name == name

    def test_unknown_stack_rejected(self):
        with pytest.raises(ValueError):
            make_stack("xen", Machine())


class TestAccessCharging:
    def test_bare_charges_hardware_latency(self):
        machine, stack = machine_with("bare")
        machine.bus.port_read(0x20, 1)
        assert machine.budget.by_category()[CAT_DRIVER] \
            == DEFAULT_COST_MODEL.device_access_cycles

    def test_lvmm_pic_access_traps(self):
        machine, stack = machine_with("lvmm")
        machine.bus.port_read(0x21, 1)  # intercepted: virtual PIC
        by = machine.budget.by_category()
        assert by[CAT_WORLD_SWITCH] == DEFAULT_COST_MODEL.world_switch_cycles
        assert CAT_DRIVER not in by  # no hardware access happened

    def test_lvmm_scsi_access_passes_through(self):
        machine, stack = machine_with("lvmm")
        from repro.hw.scsi import PORT_BASE_SCSI, REG_STATUS
        machine.bus.port_read(PORT_BASE_SCSI + REG_STATUS, 4)
        by = machine.budget.by_category()
        assert by[CAT_DRIVER] == DEFAULT_COST_MODEL.device_access_cycles
        assert CAT_WORLD_SWITCH not in by

    def test_fullvmm_scsi_access_takes_hosted_path(self):
        machine, stack = machine_with("fullvmm")
        from repro.hw.scsi import PORT_BASE_SCSI, REG_STATUS
        machine.bus.port_read(PORT_BASE_SCSI + REG_STATUS, 4)
        by = machine.budget.by_category()
        assert by[CAT_EMULATION] >= DEFAULT_COST_MODEL.host_switch_cycles

    def test_fullvmm_nic_mmio_takes_hosted_path(self):
        machine, stack = machine_with("fullvmm")
        from repro.hw.nic import MMIO_BASE_NIC, REG_STATUS
        machine.bus.mmio_read(MMIO_BASE_NIC + REG_STATUS, 4)
        by = machine.budget.by_category()
        assert by[CAT_EMULATION] >= DEFAULT_COST_MODEL.host_switch_cycles

    def test_lvmm_nic_mmio_passes_through(self):
        machine, stack = machine_with("lvmm")
        from repro.hw.nic import MMIO_BASE_NIC, REG_STATUS
        machine.bus.mmio_read(MMIO_BASE_NIC + REG_STATUS, 4)
        by = machine.budget.by_category()
        assert CAT_EMULATION not in by


class TestInterruptDispatch:
    def test_handler_called_with_stack_charges(self):
        machine, stack = machine_with("lvmm")
        dispatcher = InterruptDispatcher(machine, stack)
        fired = []
        dispatcher.register(4, lambda: fired.append(1))
        machine.pic.raise_irq(4)
        dispatcher.dispatch_pending()
        assert fired == [1]
        by = machine.budget.by_category()
        assert by[CAT_WORLD_SWITCH] >= DEFAULT_COST_MODEL.world_switch_cycles
        assert dispatcher.dispatched == 1

    def test_monitored_stack_eois_real_pic(self):
        machine, stack = machine_with("lvmm")
        dispatcher = InterruptDispatcher(machine, stack)
        dispatcher.register(0, lambda: None)
        machine.pic.raise_irq(0)
        dispatcher.dispatch_pending()
        assert machine.pic.master.isr == 0  # monitor EOI'd

    def test_bare_leaves_eoi_to_guest(self):
        machine, stack = machine_with("bare")
        dispatcher = InterruptDispatcher(machine, stack)
        dispatcher.register(
            0, lambda: machine.bus.port_write(0x20, 0x20, 1))
        machine.pic.raise_irq(0)
        dispatcher.dispatch_pending()
        assert machine.pic.master.isr == 0  # guest EOI'd via bus

    def test_unhandled_interrupt_still_consumed(self):
        machine, stack = machine_with("bare")
        dispatcher = InterruptDispatcher(machine, stack)
        machine.pic.raise_irq(3)
        dispatcher.dispatch_pending()
        assert dispatcher.dispatched == 1
        # Bare + no handler: ISR bit stays set (a stuck interrupt, as on
        # real hardware with a missing handler).
        assert machine.pic.master.isr == 1 << 3

    def test_cost_ordering_per_interrupt(self):
        """Interrupt cost must rank bare < lvmm < fullvmm."""
        totals = {}
        for name in ("bare", "lvmm", "fullvmm"):
            machine, stack = machine_with(name)
            dispatcher = InterruptDispatcher(machine, stack)
            dispatcher.register(5, lambda: None)
            machine.pic.raise_irq(5)
            dispatcher.dispatch_pending()
            totals[name] = machine.budget.total
        assert totals["bare"] < totals["lvmm"] < totals["fullvmm"]
