"""The repro-analyze and repro-tv command-line front ends, and the
exit-code contract CI gates on."""

import pytest

from repro.analysis.cli import exceeds_threshold, main as analyze_main
from repro.analysis.tv.cli import main as tv_main
from repro.asm import assemble
from repro.hw import firmware


def _write_image(tmp_path, source):
    program = assemble(source, origin=firmware.GUEST_KERNEL_BASE)
    path = tmp_path / "guest.bin"
    path.write_bytes(program.image)
    return path


CLEAN_GUEST = """
    MOVI R7, 0x8000
    MOVI R0, 10
loop:
    ADDI R1, 1
    SUBI R0, 1
    JNZ  loop
    HLT
hang:
    JMP  hang
"""

# Stores through a pointer into the monitor region: AN001 at error
# severity, plus the usual info-level findings.
DIRTY_GUEST = """
    MOVI R7, 0x8000
    MOVI R6, 0xF00040
    ST   [R6+0], R0
    HLT
"""


class TestFailOnContract:
    def test_clean_image_exits_zero(self, tmp_path, capsys):
        path = _write_image(tmp_path, CLEAN_GUEST)
        assert analyze_main([str(path),
                             "--monitor-base", "0xF00000"]) == 0
        capsys.readouterr()

    def test_error_findings_exit_one_by_default(self, tmp_path, capsys):
        path = _write_image(tmp_path, DIRTY_GUEST)
        assert analyze_main([str(path),
                             "--monitor-base", "0xF00000"]) == 1
        assert "AN001" in capsys.readouterr().out

    def test_fail_on_none_always_exits_zero(self, tmp_path, capsys):
        path = _write_image(tmp_path, DIRTY_GUEST)
        assert analyze_main([str(path), "--monitor-base", "0xF00000",
                             "--fail-on", "none"]) == 0
        capsys.readouterr()

    def test_fail_on_info_fails_on_any_finding(self, tmp_path, capsys):
        # Even the clean guest has info-level coverage findings
        # (e.g. the unresolved HLT fall-through note is info).
        path = _write_image(tmp_path, DIRTY_GUEST)
        assert analyze_main([str(path), "--monitor-base", "0xF00000",
                             "--fail-on", "info"]) == 1
        capsys.readouterr()

    def test_unreadable_image_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.bin"
        assert analyze_main([str(missing)]) == 2
        capsys.readouterr()

    def test_exceeds_threshold_ordering(self, tmp_path):
        program = assemble(DIRTY_GUEST,
                           origin=firmware.GUEST_KERNEL_BASE)
        from repro.analysis import analyze_program
        report = analyze_program(program, monitor_base=0xF0_0000)
        assert exceeds_threshold(report, "error")
        assert exceeds_threshold(report, "warning")
        assert exceeds_threshold(report, "info")
        assert not exceeds_threshold(report, "none")


class TestBuiltinCorpusGate:
    def test_builtin_kernel_passes_fail_on_error(self, capsys):
        assert analyze_main(["--builtin", "kernel",
                             "--fail-on", "error"]) == 0
        capsys.readouterr()


class TestTvCli:
    def test_builtin_image_validates(self, capsys):
        assert tv_main(["--builtin", "kernel"]) == 0
        out = capsys.readouterr().out
        assert "block(s) validated" in out
        assert "0 failed" in out

    def test_random_fuzz_run(self, capsys):
        assert tv_main(["--random", "3"]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out

    def test_image_file_target(self, tmp_path, capsys):
        path = _write_image(tmp_path, CLEAN_GUEST)
        assert tv_main([str(path), "--org",
                        hex(firmware.GUEST_KERNEL_BASE)]) == 0
        capsys.readouterr()

    def test_no_target_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            tv_main([])
        assert excinfo.value.code == 2
        capsys.readouterr()
