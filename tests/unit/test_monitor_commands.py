"""Unit tests for qRcmd / monitor commands and the trace buffer."""

import pytest

from repro.core import DebugSession
from repro.guest import KernelConfig, build_kernel
from repro.vmm.trace import (
    KIND_REFLECT,
    KIND_TRAP,
    TraceBuffer,
    TraceEvent,
)


class TestTraceBuffer:
    def test_records_in_sequence(self):
        trace = TraceBuffer()
        trace.record(10, KIND_TRAP, "CLI", pc=0x100)
        trace.record(20, KIND_REFLECT, "vector=32", pc=0x200)
        events = trace.tail()
        assert [e.sequence for e in events] == [0, 1]
        assert events[0].kind == KIND_TRAP
        assert events[1].cycle == 20

    def test_bounded_capacity(self):
        trace = TraceBuffer(capacity=8)
        for index in range(20):
            trace.record(index, KIND_TRAP, str(index))
        assert len(trace) == 8
        assert trace.total_recorded == 20
        assert trace.tail(100)[0].sequence == 12  # oldest kept

    def test_tail_returns_most_recent(self):
        trace = TraceBuffer()
        for index in range(10):
            trace.record(index, KIND_TRAP, str(index))
        tail = trace.tail(3)
        assert [e.cycle for e in tail] == [7, 8, 9]

    def test_by_kind_filters(self):
        trace = TraceBuffer()
        trace.record(1, KIND_TRAP, "a")
        trace.record(2, KIND_REFLECT, "b")
        trace.record(3, KIND_TRAP, "c")
        assert len(trace.by_kind(KIND_TRAP)) == 2

    def test_disable_stops_recording(self):
        trace = TraceBuffer()
        trace.enabled = False
        trace.record(1, KIND_TRAP, "x")
        assert len(trace) == 0

    def test_format(self):
        event = TraceEvent(5, 1234, KIND_TRAP, "CLI", 0x4000)
        text = event.format()
        assert "CLI" in text and "0x00004000" in text
        assert TraceBuffer().format_tail() == "(trace empty)"

    def test_clear(self):
        trace = TraceBuffer()
        trace.record(1, KIND_TRAP, "x")
        trace.clear()
        assert len(trace) == 0


@pytest.fixture
def session():
    sess = DebugSession(monitor="lvmm")
    kernel = build_kernel(KernelConfig(ticks_to_run=4))
    sess.load_and_boot(kernel)
    sess.attach()
    return sess, kernel


class TestMonitorCommands:
    def test_stats_via_rsp(self, session):
        sess, kernel = session
        sess.client.set_breakpoint(kernel.symbol("timer_isr"))
        sess.client.cont()
        output = sess.client.monitor_command("stats")
        assert "traps emulated" in output
        assert "interrupts fielded/reflected" in output

    def test_trace_via_rsp(self, session):
        sess, kernel = session
        sess.client.set_breakpoint(kernel.symbol("timer_isr"))
        sess.client.cont()
        output = sess.client.monitor_command("trace 64")
        assert "LGDT" in output        # boot traps visible
        assert "reflect" in output     # the timer reflection visible
        assert "debug" in output       # and the stop itself

    def test_shadow_via_rsp(self, session):
        sess, _ = session
        output = sess.client.monitor_command("shadow")
        assert "vif=" in output
        assert "idtr=" in output

    def test_console_via_rsp(self, session):
        sess, _ = session
        sess.monitor.console.extend(b"hello")
        assert "hello" in sess.client.monitor_command("console")

    def test_help_and_unknown(self, session):
        sess, _ = session
        assert "monitor commands" in sess.client.monitor_command("help")
        assert "unknown" in sess.client.monitor_command("frobnicate")

    def test_trace_count_argument(self, session):
        sess, kernel = session
        sess.client.set_breakpoint(kernel.symbol("timer_isr"))
        sess.client.cont()
        short = sess.client.monitor_command("trace 2")
        assert len(short.strip().splitlines()) == 2

    def test_rcmd_unsupported_target_gets_empty(self):
        """A stub whose target lacks monitor_command replies empty
        (the GDB 'not supported' convention)."""
        from repro.hw import Cpu, IoBus, PhysicalMemory
        from repro.hw import firmware
        from repro.rsp.packets import PacketDecoder, frame
        from repro.rsp.stub import DebugStub
        from repro.rsp.target import CpuTargetAdapter

        cpu = Cpu(PhysicalMemory(1 << 20), IoBus())
        firmware.install_flat_firmware(cpu)
        sent = bytearray()
        stub = DebugStub(CpuTargetAdapter(cpu), send_bytes=sent.extend)
        stub.feed(frame(b"qRcmd," + b"stats".hex().encode()))
        decoder = PacketDecoder()
        decoder.feed(bytes(sent))
        assert decoder.next_packet() == b""


class TestHangDiagnosis:
    def _session_with(self, body):
        from repro.asm import assemble
        from repro.hw import firmware
        sess = DebugSession(monitor="lvmm")
        program = assemble(f".org {firmware.GUEST_KERNEL_BASE}\n{body}\n")
        sess.load_and_boot(program)
        sess.attach()
        return sess

    def test_cli_spin_diagnosed(self):
        sess = self._session_with("CLI\nspin:\nNOP\nJMP spin\n")
        sess.monitor.resume_guest(step=False)
        sess.monitor.run(2_000)
        sess.monitor.stopped = True
        report = sess.client.monitor_command("hang")
        assert "virtual IF clear" in report

    def test_dead_idle_diagnosed(self):
        sess = self._session_with("CLI\nHLT\n")
        sess.monitor.resume_guest(step=False)
        sess.monitor.run(2_000)
        report = sess.client.monitor_command("hang")
        assert "can never wake" in report

    def test_healthy_guest_diagnosed(self):
        from repro.guest import KernelConfig, build_kernel
        sess = DebugSession(monitor="lvmm")
        # A large tick target keeps the guest healthily idle (HLT with
        # virtual IF on) when we stop to ask.
        sess.load_and_boot(build_kernel(KernelConfig(ticks_to_run=5000)))
        sess.attach()
        sess.monitor.resume_guest(step=False)
        sess.monitor.run(5_000)
        sess.monitor.stopped = True
        report = sess.client.monitor_command("hang")
        assert "instructions retired" in report
        assert "dead" not in report.splitlines()[-1]

    def test_progress_counter_advances(self):
        sess = self._session_with("spin:\nNOP\nJMP spin\n")
        first = sess.client.monitor_command("hang")
        sess.monitor.resume_guest(step=False)
        sess.monitor.run(500)
        sess.monitor.stopped = True
        second = sess.client.monitor_command("hang")
        assert "+" in first
        import re
        delta = int(re.search(r"\(\+(\d+) since", second).group(1))
        assert delta > 400  # the spin definitely made progress


class TestNetMonitorCommand:
    def test_net_lists_tcp_metrics_after_a_streaming_run(self, session):
        from repro.obs.metrics import collect_net
        from repro.workloads.streaming import (mixed_rate_specs,
                                               run_tcp_streaming)
        sess, _ = session
        result = run_tcp_streaming(mixed_rate_specs(2, bytes_total=2_000),
                                   sim_seconds=0.05, grace_seconds=0.3)
        collect_net(result=result)          # publish to global registry
        output = sess.client.monitor_command("net tcp")
        assert "net.tcp.segments_sent" in output
        assert "net.tcp.retransmits" in output
        # Scope filter: the rx view never shows tcp metrics.
        assert "net.tcp." not in sess.client.monitor_command("net rx")

    def test_net_rejects_unknown_subcommand(self, session):
        sess, _ = session
        output = sess.client.monitor_command("net bogus")
        assert "unknown net subcommand" in output

    def test_net_in_help(self, session):
        sess, _ = session
        assert "net" in sess.client.monitor_command("help")
