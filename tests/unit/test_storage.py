"""Unit tests for the disk model and the SCSI HBA."""

import struct

import pytest

from repro.errors import DeviceError
from repro.hw.disk import BLOCK_SIZE, Disk
from repro.hw.mem import PhysicalMemory
from repro.hw.scsi import (
    COMP_BAD_LBA,
    COMP_BAD_TARGET,
    COMP_CHECK_CONDITION,
    COMP_GOOD,
    REG_COMMAND,
    REG_INTSTAT,
    REG_MAILBOX,
    REG_STATUS,
    CMD_START,
    ScsiHba,
    cdb_inquiry,
    cdb_read10,
    cdb_read_capacity,
    cdb_test_unit_ready,
    cdb_write10,
    encode_request_block,
)
from repro.sim.events import EventQueue

CPU_HZ = 1.26e9


class TestDisk:
    def test_contents_deterministic(self):
        disk_a = Disk(1000, seed=7)
        disk_b = Disk(1000, seed=7)
        assert disk_a.read_blocks(5, 2) == disk_b.read_blocks(5, 2)

    def test_different_seeds_differ(self):
        assert Disk(10, seed=1).read_blocks(0, 1) != \
            Disk(10, seed=2).read_blocks(0, 1)

    def test_write_overlay_persists(self):
        disk = Disk(100)
        payload = b"\xAA" * BLOCK_SIZE
        disk.write_blocks(3, payload)
        assert disk.read_blocks(3, 1) == payload
        # Neighbouring blocks untouched.
        assert disk.read_blocks(4, 1) != payload

    def test_unaligned_write_rejected(self):
        disk = Disk(100)
        with pytest.raises(DeviceError):
            disk.write_blocks(0, b"short")

    def test_out_of_range_rejected(self):
        disk = Disk(10)
        with pytest.raises(DeviceError):
            disk.read_blocks(8, 4)

    def test_sequential_access_skips_seek(self):
        disk = Disk(10000, sustained_bytes_per_sec=50e6,
                    seek_seconds=0.005)
        first = disk.service_seconds(100, 64)   # head at 0: seek needed
        second = disk.service_seconds(164, 64)  # head is already there
        third = disk.service_seconds(5000, 64)  # long seek
        assert first > second
        assert third == pytest.approx(second + 0.005)

    def test_transfer_time_scales_with_size(self):
        disk = Disk(100000, sustained_bytes_per_sec=40e6, seek_seconds=0)
        small = disk.service_seconds(0, 8)
        large = disk.service_seconds(8, 64)
        assert large == pytest.approx(small * 8)


class _HbaFixture:
    def __init__(self, blocks=4096):
        self.queue = EventQueue()
        self.memory = PhysicalMemory(1 << 20)
        self.irqs = []
        self.hba = ScsiHba(self.queue, self.memory, CPU_HZ,
                           raise_irq=lambda: self.irqs.append("+"),
                           lower_irq=lambda: self.irqs.append("-"))
        self.disk = Disk(blocks, seed=9)
        self.hba.attach(0, self.disk)

    def submit(self, target, cdb, buffer=0x8000, length=0x10000,
               block_addr=0x700):
        block = encode_request_block(target, cdb, buffer, length)
        self.memory.write(block_addr, block)
        self.hba.port_write(REG_MAILBOX, block_addr, 4)
        self.hba.port_write(REG_COMMAND, CMD_START, 4)
        return block_addr

    def completion_code(self, block_addr=0x700):
        return self.memory.read_u32(block_addr + 28)


class TestScsiHba:
    def test_read10_dma_matches_disk_contents(self):
        fix = _HbaFixture()
        addr = fix.submit(0, cdb_read10(lba=10, count=4),
                          buffer=0x8000, length=4 * BLOCK_SIZE)
        assert fix.hba.port_read(REG_STATUS, 4) == 1  # in flight
        fix.queue.run()
        assert fix.completion_code(addr) == COMP_GOOD
        assert fix.memory.read(0x8000, 4 * BLOCK_SIZE) == \
            fix.disk.read_blocks(10, 4)
        assert fix.hba.port_read(REG_STATUS, 4) == 0

    def test_write10_persists_to_disk(self):
        fix = _HbaFixture()
        payload = bytes(range(256)) * 2  # one block
        fix.memory.write(0x9000, payload)
        fix.submit(0, cdb_write10(lba=20, count=1),
                   buffer=0x9000, length=BLOCK_SIZE)
        fix.queue.run()
        assert fix.disk.read_blocks(20, 1) == payload

    def test_completion_raises_irq_and_ack_clears(self):
        fix = _HbaFixture()
        fix.submit(0, cdb_test_unit_ready())
        fix.queue.run()
        assert "+" in fix.irqs
        assert fix.hba.port_read(REG_INTSTAT, 4) == 1
        fix.hba.port_write(REG_INTSTAT, 0, 4)
        assert fix.hba.port_read(REG_INTSTAT, 4) == 0
        assert fix.irqs[-1] == "-"

    def test_inquiry_payload(self):
        fix = _HbaFixture()
        fix.submit(0, cdb_inquiry(), buffer=0xA000, length=36)
        fix.queue.run()
        data = fix.memory.read(0xA000, 36)
        assert b"REPRO" in data
        assert b"ULTRA160" in data

    def test_read_capacity(self):
        fix = _HbaFixture(blocks=4096)
        fix.submit(0, cdb_read_capacity(), buffer=0xA000, length=8)
        fix.queue.run()
        last_lba, block_size = struct.unpack(">II",
                                             fix.memory.read(0xA000, 8))
        assert last_lba == 4095
        assert block_size == BLOCK_SIZE

    def test_bad_target(self):
        fix = _HbaFixture()
        addr = fix.submit(5, cdb_test_unit_ready())
        fix.queue.run()
        assert fix.completion_code(addr) == COMP_BAD_TARGET

    def test_bad_lba(self):
        fix = _HbaFixture(blocks=100)
        addr = fix.submit(0, cdb_read10(lba=90, count=20))
        fix.queue.run()
        assert fix.completion_code(addr) == COMP_BAD_LBA

    def test_error_injection_and_request_sense(self):
        fix = _HbaFixture()
        fix.disk.inject_error = 0x03  # MEDIUM ERROR
        addr = fix.submit(0, cdb_read10(lba=0, count=1))
        fix.queue.run()
        assert fix.completion_code(addr) == COMP_CHECK_CONDITION
        addr = fix.submit(0, bytes([0x03]) + bytes(5),
                          buffer=0xB000, length=18)
        fix.queue.run()
        sense = fix.memory.read(0xB000, 3)
        assert sense[2] == 0x03

    def test_read_timing_reflects_disk_rate(self):
        fix = _HbaFixture()
        fix.disk.sustained_bytes_per_sec = 40e6
        fix.disk.seek_seconds = 0.0
        fix.submit(0, cdb_read10(lba=0, count=128),
                   length=128 * BLOCK_SIZE)
        expected_cycles = int(128 * BLOCK_SIZE / 40e6 * CPU_HZ)
        fix.queue.run()
        assert fix.queue.now == pytest.approx(expected_cycles, rel=0.01)

    def test_duplicate_target_rejected(self):
        fix = _HbaFixture()
        with pytest.raises(DeviceError):
            fix.hba.attach(0, Disk(10))

    def test_reset_clears_completions(self):
        fix = _HbaFixture()
        fix.submit(0, cdb_test_unit_ready())
        fix.queue.run()
        fix.hba.port_write(REG_COMMAND, 2, 4)  # reset
        assert fix.hba.port_read(REG_INTSTAT, 4) == 0

    def test_pop_completion_order(self):
        fix = _HbaFixture()
        first = fix.submit(0, cdb_test_unit_ready(), block_addr=0x700)
        fix.queue.run()
        second = fix.submit(0, cdb_test_unit_ready(), block_addr=0x740)
        fix.queue.run()
        assert fix.hba.pop_completion() == first
        assert fix.hba.pop_completion() == second
        assert fix.hba.pop_completion() is None
