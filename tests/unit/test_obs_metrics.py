"""Unit tests: counters, gauges, histograms and the metrics registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == {"type": "counter", "value": 5}

    def test_counter_rejects_negative(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12
        assert gauge.snapshot() == {"type": "gauge", "value": 12}


class TestHistogramBuckets:
    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_buckets_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1, 1, 2))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2, 1))

    def test_boundary_membership_is_inclusive(self):
        hist = Histogram("h", buckets=(10, 20, 30))
        hist.observe(10)   # exactly on a boundary -> that bucket
        hist.observe(11)   # just above -> next bucket
        hist.observe(20)
        snap = hist.snapshot()
        assert snap["buckets"] == {"10": 1, "20": 2, "30": 0}
        assert snap["overflow"] == 0

    def test_overflow_bucket(self):
        hist = Histogram("h", buckets=(1, 2))
        hist.observe(3)
        hist.observe(1000)
        snap = hist.snapshot()
        assert snap["overflow"] == 2
        assert snap["count"] == 2

    def test_min_max_sum_count(self):
        hist = Histogram("h", buckets=(100,))
        for value in (5, 50, 20):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["min"] == 5 and snap["max"] == 50
        assert snap["sum"] == 75 and snap["count"] == 3

    def test_smallest_bucket_catches_floor(self):
        hist = Histogram("h", buckets=(1, 10))
        hist.observe(0)
        hist.observe(1)
        assert hist.snapshot()["buckets"] == {"1": 2, "10": 0}


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        counter = registry.counter("traps")
        assert registry.counter("traps") is counter
        assert "traps" in registry and len(registry) == 1

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1, 2, 3))
        registry.histogram("h", buckets=(1, 2, 3))  # same: fine
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1, 2))

    def test_snapshot_is_sorted_and_json_shaped(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc()
        registry.gauge("a.value").set(3)
        snap = registry.snapshot()
        assert list(snap) == ["a.value", "b.count"]
        assert snap["a.value"] == {"type": "gauge", "value": 3}

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()


class TestCollectors:
    """The legacy-shape bridge: see tests/unit/test_export.py for the
    full shape contracts; here we check the registry side-effects."""

    def test_collect_interp_publishes_gauges(self):
        from repro.asm import assemble
        from repro.hw import Cpu, IoBus, PhysicalMemory, firmware
        from repro.obs.metrics import collect_interp

        memory = PhysicalMemory(1 << 20)
        cpu = Cpu(memory, IoBus())
        firmware.install_flat_firmware(cpu)
        assemble("MOVI R0, 1\nHLT\n", origin=0x4000).load_into(memory)
        cpu.pc = 0x4000
        cpu.run(10)

        registry = MetricsRegistry()
        stats = collect_interp(cpu, registry=registry)
        assert stats["instret"] == cpu.instret
        assert registry.get("interp.instret").value == cpu.instret
        assert "interp.decode_cache.hits" in registry
        assert "interp.tlb.hits" in registry

    def test_publish_skips_text_and_casts_bools(self):
        from repro.obs.metrics import _publish

        registry = MetricsRegistry()
        _publish(registry, "t", {"flag": True, "name": "hello",
                                 "nested": {"n": 2.5}})
        assert registry.get("t.flag").value == 1
        assert registry.get("t.name") is None
        assert registry.get("t.nested.n").value == 2.5
