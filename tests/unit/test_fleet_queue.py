"""Unit tests for the fleet job model: priority queue, bounded retry
with exponential backoff, dead-letter list, and shedding."""

import pytest

from repro.fleet.jobs import (
    Job,
    JobQueue,
    RetrySchedule,
    STATUS_DEAD_LETTER,
    STATUS_DONE,
    STATUS_PENDING,
    STATUS_RUNNING,
    STATUS_SHED,
)


class TestRetrySchedule:
    def test_backoff_grows_exponentially_then_caps(self):
        retry = RetrySchedule(max_attempts=8, backoff_base_s=0.2,
                              multiplier=2.0, backoff_max_s=5.0)
        delays = [retry.backoff_s(n) for n in range(1, 9)]
        assert delays == [0.2, 0.4, 0.8, 1.6, 3.2, 5.0, 5.0, 5.0]

    def test_backoff_is_deterministic(self):
        a = RetrySchedule(max_attempts=5, backoff_base_s=0.1)
        b = RetrySchedule(max_attempts=5, backoff_base_s=0.1)
        assert [a.backoff_s(n) for n in range(1, 6)] \
            == [b.backoff_s(n) for n in range(1, 6)]

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            RetrySchedule().backoff_s(0)


class TestJobValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Job(kind="mystery")

    def test_priority_range_enforced(self):
        with pytest.raises(ValueError):
            Job(kind="noop", priority=10)
        with pytest.raises(ValueError):
            Job(kind="noop", priority=-1)
        Job(kind="noop", priority=0)
        Job(kind="noop", priority=9)


class TestQueueOrdering:
    def test_higher_priority_pops_first(self):
        queue = JobQueue()
        low = queue.submit(Job(kind="noop", priority=3))
        high = queue.submit(Job(kind="noop", priority=9))
        mid = queue.submit(Job(kind="noop", priority=5))
        assert queue.pop_eligible(0.0) is high
        assert queue.pop_eligible(0.0) is mid
        assert queue.pop_eligible(0.0) is low
        assert queue.pop_eligible(0.0) is None

    def test_equal_priority_is_fifo(self):
        queue = JobQueue()
        first = queue.submit(Job(kind="noop", priority=5))
        second = queue.submit(Job(kind="noop", priority=5))
        assert queue.pop_eligible(0.0) is first
        assert queue.pop_eligible(0.0) is second

    def test_backoff_defers_dispatch(self):
        queue = JobQueue()
        record = queue.submit(Job(
            kind="noop",
            retry=RetrySchedule(max_attempts=3, backoff_base_s=1.0)))
        queue.mark_running(record, worker=0, now=10.0)
        assert queue.fail_attempt(record, "boom", now=10.0) \
            == STATUS_PENDING
        # Backed off for 1s: invisible until not_before elapses.
        assert queue.pop_eligible(10.5) is None
        assert queue.pop_eligible(11.5) is record

    def test_deferred_record_does_not_block_others(self):
        queue = JobQueue()
        backed_off = queue.submit(Job(
            kind="noop", priority=9,
            retry=RetrySchedule(max_attempts=3, backoff_base_s=100.0)))
        ready = queue.submit(Job(kind="noop", priority=1))
        queue.mark_running(backed_off, worker=0, now=0.0)
        queue.fail_attempt(backed_off, "boom", now=0.0)
        # The high-priority record is waiting out its backoff; the
        # low-priority one must still dispatch.
        assert queue.pop_eligible(1.0) is ready


class TestRetryLedger:
    def test_dead_letter_after_max_attempts(self):
        queue = JobQueue()
        record = queue.submit(Job(
            kind="noop",
            retry=RetrySchedule(max_attempts=2, backoff_base_s=0.0)))
        for attempt in range(1, 3):
            queue.mark_running(record, worker=0, now=float(attempt))
            status = queue.fail_attempt(record, f"fail {attempt}",
                                        now=float(attempt))
        assert status == STATUS_DEAD_LETTER
        assert record in queue.dead_letter
        assert record.attempts == 2
        assert record.error == "fail 2"
        assert queue.pop_eligible(100.0) is None
        assert queue.idle

    def test_history_records_every_transition(self):
        queue = JobQueue()
        record = queue.submit(Job(kind="noop"))
        queue.mark_running(record, worker=1, now=0.0)
        queue.fail_attempt(record, "boom", now=0.0)
        queue.mark_running(record, worker=2, now=1.0)
        queue.mark_done(record, {"value": 42})
        assert record.status == STATUS_DONE
        assert any("submitted" in note for note in record.history)
        assert any("attempt 1 on worker 1" in note
                   for note in record.history)
        assert any("retry in" in note for note in record.history)
        assert any("done" in note for note in record.history)


class TestShedding:
    def test_shed_below_drops_only_pending_low_priority(self):
        queue = JobQueue()
        low = queue.submit(Job(kind="noop", priority=1))
        high = queue.submit(Job(kind="noop", priority=9))
        running_low = queue.submit(Job(kind="noop", priority=1))
        queue.mark_running(running_low, worker=0, now=0.0)
        dropped = queue.shed_below(5)
        assert dropped == [low]
        assert low.status == STATUS_SHED
        assert low in queue.shed
        assert high.status == STATUS_PENDING
        # Already-running work is never shed, whatever its priority.
        assert running_low.status == STATUS_RUNNING
        assert queue.pop_eligible(0.0) is high

    def test_counts_track_every_status(self):
        queue = JobQueue()
        done = queue.submit(Job(kind="noop"))
        queue.mark_running(done, worker=0, now=0.0)
        queue.mark_done(done, None)
        queue.submit(Job(kind="noop", priority=1))
        queue.shed_below(5)
        pending = queue.submit(Job(kind="noop", priority=9))
        counts = queue.counts()
        assert counts[STATUS_DONE] == 1
        assert counts[STATUS_SHED] == 1
        assert counts[STATUS_PENDING] == 1
        assert not queue.idle
        queue.mark_running(pending, worker=0, now=0.0)
        queue.mark_done(pending, None)
        assert queue.idle
