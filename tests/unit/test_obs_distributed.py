"""Unit tests for the fleet observability pillars in isolation:
span collection and clock alignment, cross-worker metric aggregation
(bucket-wise histogram merge, percentiles, exemplars), and SLO
burn-rate alerting."""

import pytest

from repro.obs.distributed.aggregate import (
    MetricsAggregator,
    histogram_percentile,
    merge_histograms,
)
from repro.obs.distributed.collector import SpanCollector
from repro.obs.distributed.context import (
    SpanAllocator,
    TraceContext,
    mint_trace_id,
    trace_root,
    worker_site,
)
from repro.obs.distributed.service import FleetObservability
from repro.obs.distributed.slo import SloEvaluator, SloSpec
from repro.obs.distributed.spans import WorkerSpanRecorder
from repro.obs.metrics import Histogram, MetricsRegistry


def _wire(ctx, name="slice", ts=0, dur=None, ph=None):
    span = {"trace": ctx.encode(), "name": name,
            "cat": "fleet", "ph": "X" if dur is not None else "i",
            "ts": ts, "instret": 0}
    if dur is not None:
        span["dur"] = dur
    if ph is not None:
        span["ph"] = ph
    return span


class TestSpanCollector:
    def test_supervisor_ticks_count_per_trace(self):
        collector = SpanCollector()
        a = trace_root(mint_trace_id("job-a"))
        b = trace_root(mint_trace_id("job-b"))
        collector.supervisor_event(a, "enqueue", {"job": "job-a"})
        collector.supervisor_event(b, "enqueue", {"job": "job-b"})
        collector.supervisor_event(a, "dispatch")
        ticks = [e["ts"] for e in collector.supervisor]
        assert ticks == [0, 0, 1]   # each trace has its own clock
        assert collector.label(a.trace_id) == "job-a"

    def test_ingest_rejects_malformed_spans(self):
        collector = SpanCollector()
        ctx = trace_root(mint_trace_id("job-a"))
        good = _wire(ctx, dur=5)
        batch = [
            good,
            "not-a-dict",
            {**good, "ph": "B"},              # worker phase unknown
            {**good, "trace": "garbage"},     # undecodable context
            {**good, "ts": "soon"},           # non-integer timestamp
            {k: v for k, v in good.items() if k != "name"},
        ]
        assert collector.ingest(0, batch) == 1
        assert collector.stats()["ingested"] == 1
        assert collector.stats()["rejected"] == 5

    def test_alignment_shifts_clock_restarts_past_frontier(self):
        collector = SpanCollector()
        ctx = trace_root(mint_trace_id("job-a"))
        # Job 1 runs cycles 0..100; job 2's machine restarts at 0.
        collector.ingest(0, [_wire(ctx, ts=0, dur=60),
                             _wire(ctx, ts=60, dur=40),
                             _wire(ctx, ts=0, dur=30)])
        aligned = collector.worker_events(0)
        assert [e["ts"] for e in aligned] == [0, 60, 100]
        assert aligned[2]["ts"] + aligned[2]["dur"] == 130

    def test_alignment_leaves_monotonic_stream_alone(self):
        collector = SpanCollector()
        ctx = trace_root(mint_trace_id("job-a"))
        collector.ingest(0, [_wire(ctx, ts=5, dur=1),
                             _wire(ctx, ts=9, dur=2)])
        assert [e["ts"] for e in collector.worker_events(0)] == [5, 9]

    def test_span_tree_links_supervisor_to_worker_spans(self):
        collector = SpanCollector()
        root = trace_root(mint_trace_id("job-a"))
        dispatch = root.child(2)
        collector.supervisor_event(root, "enqueue", {"job": "job-a"})
        collector.supervisor_event(dispatch, "dispatch")
        alloc = SpanAllocator(worker_site(0))
        job = alloc.child(dispatch)
        collector.ingest(0, [_wire(job, name="job-start"),
                             _wire(alloc.child(job), dur=10)])
        tree = collector.span_tree(root.trace_id)
        assert tree[0] == [root.span_id]            # the root
        assert tree[root.span_id] == [dispatch.span_id]
        assert tree[dispatch.span_id] == [job.span_id]
        assert tree[job.span_id]                    # the slice span

    def test_drop_trace_removes_lane_and_renumbers(self):
        collector = SpanCollector()
        fleet = trace_root(mint_trace_id("fleet-root"))
        job = trace_root(mint_trace_id("job-a"))
        collector.supervisor_event(fleet, "slo-firing", cat="slo")
        collector.supervisor_event(job, "enqueue", {"job": "job-a"})
        assert collector.trace_order[job.trace_id] == 1
        removed = collector.drop_trace(fleet.trace_id)
        assert removed == 1
        assert collector.trace_order == {job.trace_id: 0}
        assert [e["name"] for e in collector.supervisor] == ["enqueue"]


class TestHistogramMerge:
    def _hist(self, values, exemplar=None):
        hist = Histogram("h", buckets=(10, 100, 1000))
        for value in values:
            hist.observe(value, exemplar=exemplar)
        return hist.snapshot()

    def test_bucketwise_merge_sums_counts(self):
        merged = merge_histograms([self._hist([5, 50]),
                                   self._hist([50, 5000])])
        assert merged["count"] == 4
        assert merged["buckets"] == {"10": 1, "100": 2, "1000": 0}
        assert merged["overflow"] == 1
        assert merged["min"] == 5
        assert merged["max"] == 5000

    def test_boundary_mismatch_rejected(self):
        other = Histogram("h", buckets=(1, 2)).snapshot()
        with pytest.raises(ValueError):
            merge_histograms([self._hist([5]), other])

    def test_exemplar_merge_picks_lexicographically_smallest(self):
        first = self._hist([5], exemplar="bbbb-01")
        second = self._hist([5], exemplar="aaaa-02")
        merged = merge_histograms([first, second])
        assert merged["exemplars"]["10"] == "aaaa-02"

    def test_percentiles_walk_cumulative_buckets(self):
        snap = self._hist([5, 5, 50, 50, 50, 500])
        assert histogram_percentile(snap, 50) == 100.0
        assert histogram_percentile(snap, 99) == 1000.0

    def test_percentile_overflow_reports_max(self):
        snap = self._hist([5, 5000])
        assert histogram_percentile(snap, 99) == 5000

    def test_percentile_of_empty_is_none(self):
        assert histogram_percentile(self._hist([]), 50) is None


class TestMetricsAggregator:
    def test_counters_summed_across_workers(self):
        agg = MetricsAggregator()
        agg.update(0, {"jobs": {"type": "counter", "value": 3}})
        agg.update(1, {"jobs": {"type": "counter", "value": 4}})
        fleet = agg.fleet()
        assert fleet["jobs"]["value"] == 7
        assert fleet["jobs"]["workers"] == 2

    def test_update_replaces_and_forget_removes(self):
        agg = MetricsAggregator()
        agg.update(0, {"jobs": {"type": "counter", "value": 3}})
        agg.update(0, {"jobs": {"type": "counter", "value": 5}})
        assert agg.fleet()["jobs"]["value"] == 5
        agg.forget(0)
        assert agg.fleet() == {}

    def test_mixed_types_are_skipped_not_crashed(self):
        agg = MetricsAggregator()
        agg.update(0, {"x": {"type": "counter", "value": 1}})
        agg.update(1, {"x": {"type": "histogram", "count": 1,
                             "sum": 1, "min": 1, "max": 1,
                             "buckets": {"10": 1}, "overflow": 0}})
        assert "x" not in agg.fleet()

    def test_histograms_merge_and_expose_percentiles(self):
        def snap(values):
            hist = Histogram("h", buckets=(10, 100))
            for value in values:
                hist.observe(value)
            return {"lat": hist.snapshot()}

        agg = MetricsAggregator()
        agg.update(0, snap([5, 5, 5]))
        agg.update(1, snap([50]))
        assert agg.fleet()["lat"]["count"] == 4
        assert agg.percentile("lat", 50) == 10.0
        assert agg.percentiles("lat") == {
            "p50": 10.0, "p95": 100.0, "p99": 100.0}


def _spec(**overrides):
    spec = {"name": "latency", "objective": 0.9,
            "short_window": 10.0, "long_window": 100.0,
            "burn_threshold": 2.0}
    spec.update(overrides)
    return SloSpec(**spec)


class TestSloEvaluator:
    def test_fires_only_when_both_windows_burn(self):
        ev = SloEvaluator([_spec()])
        # Old badness: long window burns, short window has recovered.
        for t in range(20):
            ev.record("latency", bad=1, t=float(t))
        for t in range(90, 100):
            ev.record("latency", good=1, t=float(t))
        assert ev.evaluate(100.0) == []
        assert not ev.firing["latency"]

    def test_fire_then_resolve_on_short_recovery(self):
        ev = SloEvaluator([_spec()])
        for t in range(10):
            ev.record("latency", bad=1, t=float(t))
        (alert,) = ev.evaluate(10.0)
        assert alert.state == "firing"
        assert ev.advisory_degrade()
        # Fresh goods crowd the short window; long is still burning.
        for t in range(10, 20):
            ev.record("latency", good=1, t=float(t))
        (resolved,) = ev.evaluate(20.0)
        assert resolved.state == "resolved"
        assert not ev.advisory_degrade()

    def test_no_data_means_no_alert(self):
        ev = SloEvaluator([_spec()])
        assert ev.evaluate(50.0) == []

    def test_unknown_slo_name_ignored(self):
        ev = SloEvaluator([_spec()])
        ev.record("nonexistent", bad=1, t=0.0)
        assert ev.evaluate(1.0) == []

    def test_duplicate_spec_names_rejected(self):
        with pytest.raises(ValueError):
            SloEvaluator([_spec(), _spec()])

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            _spec(objective=1.0)
        with pytest.raises(ValueError):
            _spec(short_window=200.0)   # exceeds long window
        with pytest.raises(ValueError):
            _spec(burn_threshold=0.0)

    def test_gauges_and_fired_counter_published(self):
        registry = MetricsRegistry()
        ev = SloEvaluator([_spec()], registry=registry)
        ev.record("latency", good=1, t=0.0)
        ev.evaluate(1.0)
        # Healthy: burn gauges exist, the alert counter does not (it
        # is created lazily on the first firing only).
        snapshot = registry.snapshot()
        assert snapshot["fleet.slo.latency.burn_short"]["value"] == 0
        assert "fleet.slo.alerts_fired" not in snapshot
        for t in range(2, 12):
            ev.record("latency", bad=1, t=float(t))
        ev.evaluate(12.0)
        snapshot = registry.snapshot()
        assert snapshot["fleet.slo.latency.firing"]["value"] == 1
        assert snapshot["fleet.slo.alerts_fired"]["value"] == 1

    def test_status_panel_shape(self):
        ev = SloEvaluator([_spec()])
        ev.record("latency", good=3, bad=1, t=0.0)
        panel = ev.status(1.0)["latency"]
        assert panel["objective"] == 0.9
        assert panel["burn_short"] == pytest.approx(2.5)
        assert panel["firing"] is False


class TestFleetObservability:
    class _Record:
        def __init__(self, job_id="job-0000"):
            from repro.fleet.jobs import Job

            self.id = job_id
            self.job = Job(kind="noop")
            self.trace = trace_root(mint_trace_id(job_id))
            self.attempts = 1
            self.resumes = 0

    def test_tracing_off_touches_nothing(self):
        obs = FleetObservability(trace=False,
                                 registry=MetricsRegistry())
        record = self._Record()
        obs.on_enqueue(record)
        assert obs.on_dispatch(record, worker=0) is None
        obs.on_complete(record, now=0.0)
        obs.ingest_spans(0, [{"ph": "X"}], now=0.0)
        assert obs.on_rsp_attach(0, 1) is None
        assert obs.collector.stats()["supervisor_events"] == 0
        assert obs.collector.stats()["ingested"] == 0

    def test_dispatch_context_decodes_and_parents_under_root(self):
        obs = FleetObservability(trace=True,
                                 registry=MetricsRegistry())
        record = self._Record()
        obs.on_enqueue(record)
        encoded = obs.on_dispatch(record, worker=2)
        ctx = TraceContext.decode(encoded)
        assert ctx.trace_id == record.trace.trace_id
        assert ctx.parent_id == record.trace.span_id

    def test_per_trace_span_ids_independent_of_interleaving(self):
        """Completing job B between job A's events must not shift job
        A's span ids — the determinism property the golden rests on."""
        def run(interleaved):
            obs = FleetObservability(trace=True,
                                     registry=MetricsRegistry())
            a, b = self._Record("job-a"), self._Record("job-b")
            obs.on_enqueue(a)
            obs.on_dispatch(a, worker=0)
            if interleaved:
                obs.on_enqueue(b)
                obs.on_dispatch(b, worker=1)
                obs.on_complete(b, now=0.0)
            obs.on_complete(a, now=0.0)
            return [e["trace"] for e in obs.collector.supervisor
                    if e["trace"].startswith(a.trace.trace_hex)]

        assert run(interleaved=False) == run(interleaved=True)

    def test_slice_spans_feed_latency_slo(self):
        obs = FleetObservability(trace=True, registry=MetricsRegistry(),
                                 slice_target_cycles=100)
        ctx = trace_root(mint_trace_id("job-a"))
        obs.ingest_spans(0, [_wire(ctx, dur=50),
                             _wire(ctx, dur=500)], now=1.0)
        short, _ = obs.evaluator.burn_rates("slice-latency", 1.0)
        assert short == pytest.approx(0.5 / 0.05)

    def test_worker_spans_flow_to_collector_and_aggregator(self):
        obs = FleetObservability(trace=True,
                                 registry=MetricsRegistry())
        recorder = WorkerSpanRecorder(0, registry=MetricsRegistry())
        record = self._Record()
        encoded = obs.on_dispatch(record, worker=0)
        recorder.start_job(encoded, record.id)
        recorder.note_slice(0, 0, 40, 40)
        recorder.finish_job(ok=True)
        obs.ingest_spans(0, recorder.drain(), now=0.0)
        assert obs.collector.stats()["ingested"] == 3
        tree = obs.collector.span_tree(record.trace.trace_id)
        assert tree   # connected: dispatch -> job -> slice
