"""Superblock translation: the tracing JIT must be observably invisible.

Every test here is differential at heart — the same guest runs on a
translating CPU and a plain decode-cache CPU, and *all* architectural
state (registers, flags, PC, instret, cycle count, memory) must match
instruction-for-instruction.  The invalidation tests then prove that
self-modifying code, host/DMA writes and breakpoint mutation tear
blocks down through exactly the machinery the decode cache uses."""

import random

import pytest

from repro.asm import assemble
from repro.hw import Cpu, IoBus, PhysicalMemory
from repro.hw import firmware
from repro.hw.isa import VEC_DB
from repro.obs.metrics import MetricsRegistry, collect_interp

ORIGIN = 0x4000
SCRATCH = 0x9000


def make_cpu(translate=True, decode_cache=True):
    memory = PhysicalMemory(1 << 20)
    cpu = Cpu(memory, IoBus(), decode_cache=decode_cache,
              translate=translate)
    firmware.install_flat_firmware(cpu)
    return cpu


def load(cpu, source, origin=ORIGIN):
    program = assemble(source, origin=origin)
    program.load_into(cpu.memory)
    cpu.pc = origin
    return program


def run_pair(source, max_instructions=1_000_000, prepare=None):
    """Run ``source`` with translation on and off; return both CPUs."""
    cpus = []
    for translate in (True, False):
        cpu = make_cpu(translate=translate)
        load(cpu, source)
        if prepare is not None:
            prepare(cpu)
        executed = cpu.run(max_instructions)
        cpus.append((cpu, executed))
    return cpus


def assert_architecturally_equal(fast, slow):
    (a, executed_a), (b, executed_b) = fast, slow
    assert a.regs == b.regs
    assert a.flags == b.flags
    assert a.pc == b.pc
    assert a.halted == b.halted
    assert a.instret == b.instret
    assert a.cycle_count == b.cycle_count
    assert executed_a == executed_b
    assert a.memory.read(SCRATCH, 256) == b.memory.read(SCRATCH, 256)


HOT_LOOP = """
    MOVI R0, 500
loop:
    ADDI R1, 3
    XORI R2, 0x55
    CMPI R1, 900
    SUBI R0, 1
    JNZ  loop
    HLT
"""


class TestEquivalence:
    def test_hot_loop_matches_interpreter_exactly(self):
        pair = run_pair(HOT_LOOP)
        assert_architecturally_equal(*pair)
        (fast, _), _ = pair
        stats = fast.block_cache_stats()
        assert stats["blocks_compiled"] >= 1
        assert stats["insns_translated"] > 0
        assert stats["hit_rate"] > 0.5

    def test_memory_loop_matches_interpreter_exactly(self):
        pair = run_pair(f"""
            MOVI R0, 200
            MOVI R6, {SCRATCH}
        loop:
            LD   R1, [R6+0]
            ADDI R1, 7
            ST   [R6+0], R1
            ADD  R3, R1
            SUBI R0, 1
            JNZ  loop
            HLT
        """)
        assert_architecturally_equal(*pair)

    def test_run_cap_lands_on_the_same_instruction(self):
        """Stopping mid-loop must stop at the identical instruction:
        blocks may never overshoot ``max_instructions``."""
        for cap in (7, 64, 129, 333, 1000):
            pair = run_pair(HOT_LOOP, max_instructions=cap)
            assert_architecturally_equal(*pair)
            (_, executed), _ = pair
            assert executed <= cap

    def test_division_and_fault_free_alu_mix(self):
        pair = run_pair("""
            MOVI R0, 100
            MOVI R1, 1000000
        loop:
            DIVI R1, 3
            ADDI R1, 500
            MULI R2, 7
            ADDI R2, 1
            NOT  R3
            NEG  R4
            SUBI R0, 1
            JNZ  loop
            HLT
        """)
        assert_architecturally_equal(*pair)

    def test_divide_fault_inside_block_is_exact(self):
        """#DE raised by a handler mid-block: the fault must see the
        per-instruction instret/cycles and the faulting PC."""
        source = """
            MOVI R0, 60
            MOVI R5, 2
        loop:
            ADDI R1, 1
            DIV  R2, R5
            SUBI R0, 1
            JNZ  loop
            MOVI R5, 0
            MOVI R0, 4
            JMP  loop
        """
        results = []
        for translate in (True, False):
            cpu = make_cpu(translate=translate)
            load(cpu, source)
            faults = []

            def hook(c, vector, error, faults=faults):
                faults.append((vector, c.pc, c.instret, c.cycle_count))
                c.halted = True
                return True

            cpu.exception_hook = hook
            cpu.run(100_000)
            results.append((faults, cpu.regs[:], cpu.instret,
                            cpu.cycle_count))
        assert results[0] == results[1]
        assert results[0][0], "the #DE must actually fire"


class TestDifferentialRandomPrograms:
    """Seeded random guest loops over the translatable subset: ALU,
    shifts, memory traffic, compares and forward branches."""

    REGS = (1, 2, 3, 4, 5)

    def _random_body(self, rng, index):
        kind = rng.randrange(8)
        r = rng.choice(self.REGS)
        s = rng.choice(self.REGS)
        if kind == 0:
            op = rng.choice(("ADDI", "SUBI", "XORI", "ANDI", "ORI",
                             "MULI"))
            return [f"    {op} R{r}, {rng.randrange(1, 1 << 16)}"]
        if kind == 1:
            op = rng.choice(("ADD", "SUB", "AND", "OR", "XOR", "MOV"))
            return [f"    {op} R{r}, R{s}"]
        if kind == 2:
            op = rng.choice(("SHLI", "SHRI"))
            return [f"    {op} R{r}, {rng.randrange(0, 8)}"]
        if kind == 3:
            return [f"    LD R{r}, [R6+{4 * rng.randrange(0, 16)}]"]
        if kind == 4:
            return [f"    ST [R6+{4 * rng.randrange(0, 16)}], R{r}"]
        if kind == 5:
            op = rng.choice(("CMPI", "CMP", "TEST"))
            if op == "CMPI":
                return [f"    CMPI R{r}, {rng.randrange(1 << 12)}"]
            return [f"    {op} R{r}, R{s}"]
        if kind == 6:
            cond = rng.choice(("JZ", "JNZ", "JC", "JNC", "JG", "JGE",
                               "JL", "JLE", "JS", "JNS"))
            # Offset the inner index so nested branches get fresh labels.
            body = self._random_body(rng, index + 100)
            return ([f"    {cond} skip_{index}"] + body
                    + [f"skip_{index}:"])
        return [f"    {rng.choice(('NOT', 'NEG'))} R{r}"]

    def _random_program(self, seed):
        rng = random.Random(seed)
        lines = [f"    MOVI R0, {rng.randrange(40, 200)}",
                 f"    MOVI R6, {SCRATCH}"]
        for r in self.REGS:
            lines.append(f"    MOVI R{r}, {rng.randrange(1 << 31)}")
        lines.append("loop:")
        for index in range(rng.randrange(3, 12)):
            lines.extend(self._random_body(rng, index))
        lines += ["    SUBI R0, 1", "    JNZ loop", "    HLT"]
        return "\n".join(lines)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_program_equivalence(self, seed):
        pair = run_pair(self._random_program(seed))
        assert_architecturally_equal(*pair)

    def test_random_batch_actually_translates(self):
        translated = 0
        for seed in range(20):
            cpu = make_cpu(translate=True)
            load(cpu, self._random_program(seed))
            cpu.run(1_000_000)
            translated += cpu.block_cache_stats()["insns_translated"]
        assert translated > 0, \
            "differential batch never exercised a superblock"


SMC_PATCHER = f"""
    MOVI R0, 40
    MOVI R6, {ORIGIN + 0x0E}
loop:
    MOVI R5, 0x1111
    ADD  R4, R5
    LD   R1, [R6+0]
    ADDI R1, 1
    ST   [R6+0], R1
    SUBI R0, 1
    JNZ  loop
    HLT
"""
# R6 points at the imm32 of "MOVI R5": ORIGIN + MOVI(6) + MOVI(6) +
# opcode/reg bytes(2) = ORIGIN+0x0E.  Every iteration increments the
# immediate the *next* iteration will execute — self-modifying code
# striking inside the compiled block itself.


class TestInvalidation:
    def test_store_into_own_block_matches_interpreter(self):
        pair = run_pair(SMC_PATCHER)
        assert_architecturally_equal(*pair)
        (fast, _), _ = pair
        assert fast.regs[4] != 0

    def test_host_write_over_block_recompiles(self):
        cpu = make_cpu(translate=True)
        load(cpu, """
            MOVI R0, 60
        loop:
            ADDI R1, 1
            SUBI R0, 1
            JNZ  loop
            HLT
        """)
        cpu.run(10_000)
        assert cpu.halted and cpu.regs[1] == 60
        warm = cpu.block_cache_stats()
        assert warm["blocks_compiled"] >= 1
        assert warm["insns_translated"] > 0
        # DMA-style host write: patch the ADDI immediate in RAM.
        cpu.memory.write(ORIGIN + 8, (2).to_bytes(4, "little"))
        cpu.halted = False
        cpu.pc = ORIGIN
        cpu.regs[1] = 0
        cpu.run(10_000)
        assert cpu.regs[1] == 120, "stale superblock executed old code"
        stats = cpu.block_cache_stats()
        assert stats["guard_failures"] >= 1 \
            or stats["invalidations"] >= 1

    def test_breakpoint_mutation_flushes_blocks(self):
        """Inserting a breakpoint into a compiled hot loop must fire
        #DB at exactly the breakpointed PC with exact state — on both
        the translating and the plain CPU."""
        source = """
            MOVI R0, 400
        loop:
            ADDI R1, 1
            XORI R2, 9
            SUBI R0, 1
            JNZ  loop
            HLT
        """
        bp_pc = ORIGIN + 6 + 6  # the XORI
        results = []
        for translate in (True, False):
            cpu = make_cpu(translate=translate)
            load(cpu, source)
            cpu.run(600)  # warm: well past the hot threshold
            assert not cpu.halted
            if translate:
                assert cpu.block_cache_stats()["blocks_compiled"] >= 1
            hits = []

            def hook(c, vector, error, hits=hits):
                hits.append((vector, c.pc, c.instret))
                c.halted = True
                return True

            cpu.exception_hook = hook
            cpu.code_breakpoints.add(bp_pc)
            if translate:
                assert cpu.block_cache_stats()["entries"] == 0, \
                    "breakpoint insertion must flush every block"
            cpu.run(10_000)
            assert hits and hits[0][0] == VEC_DB
            assert hits[0][1] == bp_pc
            results.append((hits[0], cpu.regs[:], cpu.instret,
                            cpu.cycle_count))
        assert results[0] == results[1]

    SMC_FINAL = """
        MOVI R0, 200
        MOVI R6, final
    loop:
        ADDI R1, 1
        LD   R2, [R6+0]
        ST   [R6+0], R2
        SUBI R0, 1
    final:
        JNZ  loop
        HLT
    """
    # The store rewrites the block's *final* instruction (the JNZ)
    # with its own bytes: architecturally a no-op, but the write bumps
    # the code page's generation, so the in-block SMC re-check must
    # exit, tear the block down and re-translate — the guard boundary
    # sits exactly on the last instruction of the trace.

    def test_smc_on_final_instruction_of_block(self):
        pair = run_pair(self.SMC_FINAL)
        assert_architecturally_equal(*pair)
        (fast, _), _ = pair
        assert fast.regs[1] == 200
        stats = fast.block_cache_stats()
        assert stats["blocks_compiled"] >= 2, \
            "SMC on the final instruction must force re-translation"
        assert stats["guard_failures"] >= 1 \
            or stats["invalidations"] >= 1

    def test_breakpoint_removal_retranslates(self):
        """After a #DB inside a formerly-cached block, removing the
        breakpoint must let the loop re-translate and finish with the
        exact interpreter-tier state."""
        source = """
            MOVI R0, 400
        loop:
            ADDI R1, 1
            XORI R2, 9
            SUBI R0, 1
            JNZ  loop
            HLT
        """
        bp_pc = ORIGIN + 6 + 6  # the XORI
        results = []
        for translate in (True, False):
            cpu = make_cpu(translate=translate)
            load(cpu, source)
            cpu.run(600)
            assert not cpu.halted
            hits = []

            def hook(c, vector, error, hits=hits):
                hits.append((vector, c.pc))
                c.halted = True
                return True

            cpu.exception_hook = hook
            cpu.code_breakpoints.add(bp_pc)
            cpu.run(10_000)
            assert hits and hits[0] == (VEC_DB, bp_pc)
            compiled_at_bp = cpu.block_cache_stats()["blocks_compiled"]
            cpu.code_breakpoints.discard(bp_pc)
            cpu.exception_hook = None
            cpu.halted = False
            cpu.run(100_000)
            assert cpu.halted, "loop must run to HLT after bp removal"
            if translate:
                assert cpu.block_cache_stats()["blocks_compiled"] \
                    > compiled_at_bp, \
                    "hot loop must re-translate once the bp is gone"
            results.append((cpu.regs[:], cpu.flags, cpu.pc,
                            cpu.instret, cpu.cycle_count))
        assert results[0] == results[1]

    def test_jit_disabled_cpu_has_no_engine(self):
        cpu = make_cpu(translate=False)
        load(cpu, HOT_LOOP)
        cpu.run(100_000)
        stats = cpu.block_cache_stats()
        assert stats == {
            "enabled": False, "entries": 0, "blocks_compiled": 0,
            "hits": 0, "guard_failures": 0, "invalidations": 0,
            "insns_translated": 0, "hit_rate": 0.0,
        }

    def test_bare_step_never_enters_blocks(self):
        """Outside a run loop both block limits are 0, so single-step
        debugging always uses the interpreter path."""
        cpu = make_cpu(translate=True)
        load(cpu, HOT_LOOP)
        cpu.run(600)  # compile the loop
        stats = cpu.block_cache_stats()
        assert stats["blocks_compiled"] >= 1
        hits_before = stats["hits"]
        assert cpu.block_instret_limit == 0
        assert cpu.block_cycle_limit == 0
        for _ in range(50):
            cpu.step()
        assert cpu.block_cache_stats()["hits"] == hits_before


class TestStats:
    def test_metrics_gauges_mirror_block_cache_stats(self):
        cpu = make_cpu(translate=True)
        load(cpu, HOT_LOOP)
        cpu.run(100_000)
        registry = MetricsRegistry()
        stats = collect_interp(cpu, registry)
        assert stats["block_cache"] == cpu.block_cache_stats()
        for key in ("enabled", "entries", "blocks_compiled", "hits",
                    "guard_failures", "invalidations",
                    "insns_translated", "hit_rate"):
            gauge = registry.get(f"interp.block_cache.{key}")
            assert gauge is not None, key
        assert registry.get("interp.block_cache.hits").value \
            == cpu.block_cache_stats()["hits"]
