"""The ``repro.perf.export`` deprecation is complete.

Two guarantees, both enforced here so they cannot silently regress:

* no repo-internal module imports or references the deprecated
  adapter names any more (a source scan over ``src/``) — every caller
  was migrated to the :mod:`repro.obs.metrics` collectors and
  :func:`repro.obs.exporters.export_stats_json`;
* the adapters that remain for out-of-repo callers are *pure
  warn-and-forward shims*: each one raises a
  :class:`DeprecationWarning` naming its replacement and still
  produces the legacy result/document shape.
"""

import ast
import json
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Every deprecated name the shims keep alive for external callers.
DEPRECATED = (
    "interp_stats",
    "export_interp_stats",
    "fault_stats",
    "export_fault_stats",
    "replay_stats",
    "export_replay_stats",
    "analysis_stats",
    "export_analysis_json",
)


class TestNoInternalCallers:
    @staticmethod
    def _deprecated_imports(tree):
        """(line, name) pairs importing a deprecated adapter.

        Walks the AST, so lazy function-local imports count and
        docstrings / dict keys that merely *mention* a name do not.
        Both ``from repro.perf.export import X`` and attribute access
        ``repro.perf.export.X`` are caught; importing the module
        wholesale is flagged too, since the only non-deprecated names
        are the figure exporters, which have ``from``-style callers.
        """
        hits = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) \
                    and node.module == "repro.perf.export":
                for alias in node.names:
                    if alias.name in DEPRECATED or alias.name == "*":
                        hits.append((node.lineno, alias.name))
            elif isinstance(node, ast.Attribute) \
                    and node.attr in DEPRECATED:
                dotted = ast.unparse(node)
                if dotted.endswith(f"perf.export.{node.attr}"):
                    hits.append((node.lineno, node.attr))
        return hits

    def test_no_repo_module_imports_deprecated_names(self):
        """``src/`` imports no deprecated adapter any more."""
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            if path == SRC / "perf" / "export.py":
                continue
            tree = ast.parse(path.read_text(), filename=str(path))
            for line, name in self._deprecated_imports(tree):
                offenders.append(
                    f"{path.relative_to(SRC.parent)}:{line}: {name}")
        assert not offenders, (
            "deprecated repro.perf.export names imported inside "
            "the repo:\n" + "\n".join(offenders))

    def test_shim_module_still_exports_every_name(self):
        import repro.perf.export as export

        for name in DEPRECATED:
            assert callable(getattr(export, name))


class _FakeRecorder:
    def stats(self):
        return {"frames": 3, "journal_bytes": 120}


class _FakeReport:
    origin = 0x1000
    end = 0x2000
    entry_ring = 0
    monitor_base = 0xF000
    stats = {"blocks": 2}

    clean = True

    def counts_by_severity(self):
        return {"error": 0}

    def counts_by_check(self):
        return {}

    def to_dict(self):
        return {"findings": []}


class TestShimsWarnAndForward:
    def test_replay_writer_warns_and_forwards(self, tmp_path):
        from repro.perf.export import export_replay_stats

        with pytest.warns(DeprecationWarning,
                          match="repro.obs.exporters.export_stats_json"):
            path = export_replay_stats(tmp_path / "replay.json",
                                       recorder=_FakeRecorder(),
                                       extra={"seed": 9})
        document = json.loads(path.read_text())
        assert document["experiment"] == "record-replay"
        assert document["seed"] == 9
        assert document["stats"]["recorder"]["frames"] == 3

    def test_analysis_writer_warns_and_keeps_shape(self, tmp_path):
        from repro.perf.export import export_analysis_json

        with pytest.warns(DeprecationWarning,
                          match="export_stats_json"):
            path = export_analysis_json(_FakeReport(),
                                        tmp_path / "analysis.json",
                                        extra={"image": "demo"})
        document = json.loads(path.read_text())
        assert document["experiment"] == "static-analysis"
        assert document["report"] == {"findings": []}
        assert document["image"] == "demo"
        assert document["stats"]["coverage"] == {"blocks": 2}

    def test_fault_collector_warns_and_delegates(self):
        from repro.faults.plan import FaultPlan
        from repro.perf.export import fault_stats

        with pytest.warns(DeprecationWarning,
                          match="repro.obs.metrics.collect_fault"):
            stats = fault_stats(FaultPlan(seed=1))
        assert stats["plan"]["seed"] == 1

    def test_fault_writer_warns(self, tmp_path):
        from repro.faults.plan import FaultPlan
        from repro.perf.export import export_fault_stats

        with pytest.warns(DeprecationWarning,
                          match="export_stats_json"):
            path = export_fault_stats(FaultPlan(seed=1),
                                      tmp_path / "faults.json")
        document = json.loads(path.read_text())
        assert document["experiment"] == "fault-injection"

    def test_interp_shims_warn(self, tmp_path):
        from repro.hw import Cpu, IoBus, PhysicalMemory
        from repro.perf.export import export_interp_stats, interp_stats

        cpu = Cpu(PhysicalMemory(64 * 1024), IoBus())
        with pytest.warns(DeprecationWarning,
                          match="repro.obs.metrics.collect_interp"):
            stats = interp_stats(cpu)
        assert stats["instret"] == 0
        with pytest.warns(DeprecationWarning,
                          match="export_stats_json"):
            path = export_interp_stats(cpu, tmp_path / "interp.json")
        assert json.loads(path.read_text())["experiment"] \
            == "interp-fast-path"
