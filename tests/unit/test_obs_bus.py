"""Unit tests: the structured trace bus and the multicast tap points."""

import pytest

from repro.obs.bus import (
    CAT_DEVICE,
    CAT_IRQ,
    CAT_MONITOR,
    CAT_TRAP,
    PH_BEGIN,
    PH_COMPLETE,
    PH_END,
    PH_INSTANT,
    TraceBus,
)
from repro.obs.taps import TapPoint, tap_property


class TestTapPoint:
    def test_empty_tap_is_falsy_and_callable(self):
        tap = TapPoint()
        assert not tap
        assert len(tap) == 0
        tap(1, 2)  # no observers: a no-op, not an error

    def test_primary_then_subscribers_in_order(self):
        tap = TapPoint()
        calls = []
        tap.primary = lambda *a: calls.append(("primary", a))
        tap.subscribe(lambda *a: calls.append(("sub1", a)))
        tap.subscribe(lambda *a: calls.append(("sub2", a)))
        assert tap and len(tap) == 3
        tap(7)
        assert calls == [("primary", (7,)), ("sub1", (7,)),
                         ("sub2", (7,))]

    def test_subscribe_returns_callback_for_unsubscribe(self):
        tap = TapPoint()
        seen = []
        callback = tap.subscribe(seen.append)
        tap(1)
        tap.unsubscribe(callback)
        tap(2)
        assert seen == [1]
        tap.unsubscribe(callback)  # second unsubscribe is a no-op

    def test_clear_drops_everything(self):
        tap = TapPoint()
        tap.primary = lambda: None
        tap.subscribe(lambda: None)
        tap.clear()
        assert not tap

    def test_tap_property_exposes_primary_slot(self):
        class Host:
            def __init__(self):
                self.taps = TapPoint()
            tap = tap_property("taps")

        host = Host()
        assert host.tap is None
        sink = []
        callback = sink.append
        host.tap = callback
        assert host.tap is callback
        host.taps(3)
        assert sink == [3]
        host.tap = None
        assert host.tap is None and not host.taps


class TestTraceBusRing:
    def test_disabled_bus_records_nothing(self):
        bus = TraceBus()
        bus.instant(CAT_IRQ, "x", cycle=1)
        bus.begin(CAT_MONITOR, "run", cycle=1)
        bus.end("run")
        assert len(bus) == 0
        assert bus.total_recorded == 0
        assert bus.unbalanced_ends == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceBus(capacity=0)

    def test_ring_wraparound_keeps_newest(self):
        bus = TraceBus(capacity=4)
        bus.enabled = True
        for index in range(10):
            bus.instant(CAT_DEVICE, f"e{index}", cycle=index)
        assert len(bus) == 4
        assert bus.total_recorded == 10
        assert bus.dropped == 6
        assert [e.name for e in bus.events()] == \
            ["e6", "e7", "e8", "e9"]
        assert [e.seq for e in bus.events()] == [6, 7, 8, 9]

    def test_tail_and_filters(self):
        bus = TraceBus()
        bus.enabled = True
        bus.instant(CAT_IRQ, "a", cycle=1)
        bus.instant(CAT_DEVICE, "b", cycle=2)
        bus.instant(CAT_IRQ, "c", cycle=3)
        assert [e.name for e in bus.tail(2)] == ["b", "c"]
        assert [e.name for e in bus.by_category(CAT_IRQ)] == ["a", "c"]
        assert bus.counts_by_category() == {"device": 1, "irq": 2}

    def test_complete_carries_duration(self):
        bus = TraceBus()
        bus.enabled = True
        bus.complete(CAT_TRAP, "trap", cycle=100, dur=11860)
        (event,) = bus.events()
        assert event.phase == PH_COMPLETE
        assert event.dur == 11860
        assert "dur=11860" in event.format()

    def test_stats_shape(self):
        bus = TraceBus(capacity=8)
        bus.enabled = True
        bus.instant(CAT_IRQ, "x", cycle=0)
        assert bus.stats() == {
            "capacity": 8, "retained": 1, "recorded": 1,
            "dropped": 0, "open_spans": 0, "unbalanced_ends": 0,
        }


class TestSpanNesting:
    def _bus(self):
        bus = TraceBus()
        bus.enabled = True
        return bus

    def test_begin_end_pairs_nest(self):
        bus = self._bus()
        bus.begin(CAT_MONITOR, "outer", cycle=1)
        bus.begin(CAT_TRAP, "inner", cycle=2)
        bus.end("inner", cycle=3)
        bus.end("outer", cycle=4)
        phases = [(e.phase, e.name) for e in bus.events()]
        assert phases == [(PH_BEGIN, "outer"), (PH_BEGIN, "inner"),
                          (PH_END, "inner"), (PH_END, "outer")]
        assert bus.open_spans == []
        assert bus.unbalanced_ends == 0

    def test_end_of_outer_implicitly_closes_inner(self):
        bus = self._bus()
        bus.begin(CAT_MONITOR, "outer", cycle=1)
        bus.begin(CAT_TRAP, "inner", cycle=2)
        bus.end("outer", cycle=9)
        events = bus.events()
        assert [(e.phase, e.name) for e in events] == [
            (PH_BEGIN, "outer"), (PH_BEGIN, "inner"),
            (PH_END, "inner"), (PH_END, "outer")]
        assert events[2].args == {"implicit-close": 1}
        # the implicit close keeps the inner span's own category
        assert events[2].category == CAT_TRAP
        assert bus.open_spans == []

    def test_unbalanced_end_is_counted_not_recorded(self):
        bus = self._bus()
        bus.end("never-opened", cycle=5)
        assert bus.unbalanced_ends == 1
        assert len(bus) == 0

    def test_end_closes_innermost_matching_name(self):
        bus = self._bus()
        bus.begin(CAT_MONITOR, "run", cycle=1)
        bus.begin(CAT_MONITOR, "run", cycle=2)
        bus.end("run", cycle=3)
        assert bus.open_spans == ["run"]
        bus.end("run", cycle=4)
        assert bus.open_spans == []

    def test_span_context_manager(self):
        bus = self._bus()
        with bus.span(CAT_MONITOR, "slice", cycle=10):
            bus.instant(CAT_IRQ, "mid", cycle=11)
        assert [e.phase for e in bus.events()] == \
            [PH_BEGIN, PH_INSTANT, PH_END]

    def test_end_without_cycle_uses_last_event_cycle(self):
        bus = self._bus()
        bus.begin(CAT_MONITOR, "run", cycle=10)
        bus.instant(CAT_IRQ, "x", cycle=42)
        bus.end("run")
        assert bus.events()[-1].cycle == 42

    def test_open_span_entries_report_name_and_category(self):
        bus = self._bus()
        bus.begin(CAT_MONITOR, "outer", cycle=1)
        bus.begin(CAT_TRAP, "inner", cycle=2)
        assert bus.open_span_entries() == [
            ("outer", CAT_MONITOR), ("inner", CAT_TRAP)]

    def test_clear_resets_window_and_stack(self):
        bus = self._bus()
        bus.begin(CAT_MONITOR, "run", cycle=1)
        bus.clear()
        assert len(bus) == 0 and bus.open_spans == []
        # sequence numbering (and thus dropped accounting) survives
        assert bus.total_recorded == 1


class TestRingHardening:
    """Satellite hardening: exact capacity boundaries and observable
    span loss (the ``obs.bus.dropped`` counter)."""

    def test_exact_capacity_boundary_drops_nothing(self):
        bus = TraceBus(capacity=4)
        bus.enabled = True
        for index in range(4):
            bus.instant(CAT_DEVICE, f"e{index}", cycle=index)
        assert len(bus) == 4
        assert bus.dropped == 0
        assert bus.stats()["dropped"] == 0

    def test_one_past_capacity_drops_exactly_one(self):
        bus = TraceBus(capacity=4)
        bus.enabled = True
        for index in range(5):
            bus.instant(CAT_DEVICE, f"e{index}", cycle=index)
        assert len(bus) == 4
        assert bus.dropped == 1
        assert [e.name for e in bus.events()] == \
            ["e1", "e2", "e3", "e4"]

    def test_capacity_one_ring(self):
        bus = TraceBus(capacity=1)
        bus.enabled = True
        bus.instant(CAT_IRQ, "first", cycle=0)
        bus.instant(CAT_IRQ, "second", cycle=1)
        assert [e.name for e in bus.events()] == ["second"]
        assert bus.dropped == 1

    def test_end_with_no_begin_never_emits(self):
        bus = TraceBus()
        bus.enabled = True
        bus.end("phantom")
        bus.end("phantom")
        assert len(bus) == 0
        assert bus.unbalanced_ends == 2
        # The bus stays usable: a real span still records cleanly.
        bus.begin(CAT_MONITOR, "real", cycle=1)
        bus.end("real", cycle=2)
        assert [e.phase for e in bus.events()] == [PH_BEGIN, PH_END]
        assert bus.unbalanced_ends == 2

    def test_dropped_metric_created_lazily_on_first_wrap(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        bus = TraceBus(capacity=2)
        bus.bind_metrics(registry)
        bus.enabled = True
        bus.instant(CAT_IRQ, "a", cycle=0)
        bus.instant(CAT_IRQ, "b", cycle=1)
        # At exact capacity: no wrap yet, registry untouched (golden
        # metrics snapshots depend on this).
        assert "obs.bus.dropped" not in registry.snapshot()
        bus.instant(CAT_IRQ, "c", cycle=2)
        bus.instant(CAT_IRQ, "d", cycle=3)
        assert registry.counter("obs.bus.dropped").value == 2
        assert bus.dropped == 2

    def test_unbound_bus_wraps_without_metrics(self):
        bus = TraceBus(capacity=1)
        bus.enabled = True
        bus.instant(CAT_IRQ, "a", cycle=0)
        bus.instant(CAT_IRQ, "b", cycle=1)
        assert bus.dropped == 1   # no registry bound: count-only
