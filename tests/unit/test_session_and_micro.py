"""Unit tests for DebugSession plumbing and the microworkloads."""

import pytest

from repro.core import MONITORS, DebugSession
from repro.errors import MonitorError
from repro.guest import KernelConfig, build_kernel
from repro.workloads.micro import compare, disk_only, net_only


class TestDebugSessionPlumbing:
    def test_unknown_monitor_rejected(self):
        with pytest.raises(MonitorError):
            DebugSession(monitor="xen")

    def test_monitor_registry(self):
        assert set(MONITORS) == {"lvmm", "fullvmm"}

    def test_boot_requires_program(self):
        session = DebugSession()
        with pytest.raises(MonitorError):
            session.load_and_boot()

    def test_run_before_boot_rejected(self):
        session = DebugSession()
        with pytest.raises(MonitorError):
            session.run_guest()

    def test_targets_attach_stopped(self):
        session = DebugSession()
        session.load_and_boot(build_kernel(KernelConfig()))
        assert session.monitor.stopped
        assert session.attach() == 5

    def test_console_property(self):
        session = DebugSession()
        session.load_and_boot(build_kernel(KernelConfig()))
        session.monitor.console.extend(b"xyz")
        assert session.console_output == b"xyz"

    def test_multiple_programs_loaded(self):
        from repro.guest import build_user_task
        session = DebugSession()
        kernel = build_kernel(KernelConfig(with_user_task=True))
        user = build_user_task(2)
        session.load_and_boot(kernel, user)
        # Both images are in memory; PC aims at the first.
        assert session.machine.cpu.pc == kernel.origin
        assert session.machine.memory.read(
            user.origin, 4) == user.image[:4]


class TestMicroWorkloads:
    def test_disk_only_ordering(self):
        results = {stack: disk_only(stack, 0.1)
                   for stack in ("bare", "lvmm", "fullvmm")}
        assert results["bare"].demanded_load \
            <= results["lvmm"].demanded_load \
            < results["fullvmm"].demanded_load
        # Same bytes moved regardless of stack.
        assert results["bare"].bytes_moved == results["lvmm"].bytes_moved

    def test_net_only_ordering(self):
        results = {stack: net_only(stack, 80e6, 0.15)
                   for stack in ("bare", "lvmm", "fullvmm")}
        assert results["bare"].demanded_load \
            < results["lvmm"].demanded_load \
            < results["fullvmm"].demanded_load
        assert results["bare"].bytes_moved > 0

    def test_compare_dispatch(self):
        out = compare("disk", sim_seconds=0.05)
        assert set(out) == {"bare", "lvmm", "fullvmm"}
        with pytest.raises(ValueError):
            compare("tape")

    def test_disk_only_actually_streams(self):
        result = disk_only("bare", 0.2)
        # 3 disks x 40 MB/s for 0.2s less seek time: > 10 MB.
        assert result.bytes_moved > 10 * 1024 * 1024
        assert result.interrupts >= 3


class TestSnapshotDeviceCompleteness:
    """Snapshots round-trip the full device complement (PIT, RTC,
    UART + serial link, NIC) — not just CPU and memory."""

    def _booted_session(self):
        session = DebugSession(monitor="lvmm")
        session.load_and_boot(build_kernel(KernelConfig(ticks_to_run=8)))
        session.attach()
        return session

    def _device_states(self, machine):
        states = {
            "pit": machine.pit.state(),
            "rtc": machine.rtc.state(),
            "uart": machine.uart.state(),
            "serial": machine.serial_link.state(),
        }
        if machine.nic is not None:
            states["nic"] = machine.nic.state()
        return states

    def test_capture_records_device_state(self):
        from repro.core.snapshot import capture
        session = self._booted_session()
        session.run_guest(2_000)
        snap = capture(session.machine, session.monitor)
        for field in ("pit", "rtc", "uart", "serial"):
            assert getattr(snap, field) is not None, field
        assert snap.pit["channels"][0]["reload"] \
            == session.machine.pit.state()["channels"][0]["reload"]

    def test_device_state_round_trips(self):
        from repro.core.snapshot import capture, restore
        session = self._booted_session()
        session.run_guest(2_000)
        snap = capture(session.machine, session.monitor)
        before = self._device_states(session.machine)
        session.run_guest(5_000)          # perturb everything
        assert self._device_states(session.machine) != before
        restore(session.machine, snap, session.monitor)
        assert self._device_states(session.machine) == before

    def test_rerun_after_restore_is_deterministic(self):
        """With timers restored, re-execution takes the same path —
        the property record/replay checkpointing depends on.  Restore
        never rewinds simulated time, so the comparison is over
        clock-relative state (device state dicts store remaining
        delays, not absolute due times)."""
        import hashlib
        from repro.core.snapshot import capture, restore

        def relative_state(session):
            cpu = session.machine.cpu
            return {
                "regs": list(cpu.regs), "pc": cpu.pc,
                "flags": cpu.flags, "halted": cpu.halted,
                "memory": hashlib.sha256(session.machine.memory.read(
                    0, session.machine.memory.size)).hexdigest(),
                "devices": self._device_states(session.machine),
            }

        session = self._booted_session()
        session.run_guest(2_000)
        snap = capture(session.machine, session.monitor)
        session.run_guest(3_000)
        first = relative_state(session)
        restore(session.machine, snap, session.monitor)
        session.run_guest(3_000)
        assert relative_state(session) == first


class TestCheckpointStoreBounds:
    """The checkpoint store is bounded: LRU eviction by count and
    held bytes, with eviction accounting."""

    class _FakeSnapshot:
        def __init__(self, size):
            self.size_bytes = size

    def test_count_cap_evicts_lru(self):
        from repro.core.snapshot import CheckpointStore
        store = CheckpointStore(max_snapshots=2)
        store.save("a", self._FakeSnapshot(10))
        store.save("b", self._FakeSnapshot(10))
        store.get("a")                    # refresh 'a'
        store.save("c", self._FakeSnapshot(10))
        assert store.evictions == 1
        store.get("a")                    # survived (recently used)
        store.get("c")
        with pytest.raises(MonitorError):
            store.get("b")                # the LRU entry went

    def test_byte_cap_evicts_until_under(self):
        from repro.core.snapshot import CheckpointStore
        store = CheckpointStore(max_snapshots=None, max_bytes=100)
        for name in "abc":
            store.save(name, self._FakeSnapshot(40))
        assert store.held_bytes <= 100
        assert store.evictions == 1
        with pytest.raises(MonitorError):
            store.get("a")

    def test_never_evicts_only_entry(self):
        from repro.core.snapshot import CheckpointStore
        store = CheckpointStore(max_snapshots=1, max_bytes=10)
        store.save("huge", self._FakeSnapshot(10_000))
        assert store.get("huge") is not None
        assert store.evictions == 0

    def test_resave_same_name_not_an_eviction(self):
        from repro.core.snapshot import CheckpointStore
        store = CheckpointStore(max_snapshots=2)
        store.save("a", self._FakeSnapshot(10))
        store.save("a", self._FakeSnapshot(20))
        assert store.evictions == 0
        assert store.held_bytes == 20

    def test_stats_shape(self):
        from repro.core.snapshot import CheckpointStore
        store = CheckpointStore(max_snapshots=4, max_bytes=1000)
        store.save("a", self._FakeSnapshot(10))
        stats = store.stats()
        assert stats == {"snapshots": 1, "held_bytes": 10,
                         "max_snapshots": 4, "max_bytes": 1000,
                         "evictions": 0}

    def test_invalid_capacity_rejected(self):
        from repro.core.snapshot import CheckpointStore
        with pytest.raises(MonitorError):
            CheckpointStore(max_snapshots=0)
