"""Unit tests for DebugSession plumbing and the microworkloads."""

import pytest

from repro.core import MONITORS, DebugSession
from repro.errors import MonitorError
from repro.guest import KernelConfig, build_kernel
from repro.workloads.micro import compare, disk_only, net_only


class TestDebugSessionPlumbing:
    def test_unknown_monitor_rejected(self):
        with pytest.raises(MonitorError):
            DebugSession(monitor="xen")

    def test_monitor_registry(self):
        assert set(MONITORS) == {"lvmm", "fullvmm"}

    def test_boot_requires_program(self):
        session = DebugSession()
        with pytest.raises(MonitorError):
            session.load_and_boot()

    def test_run_before_boot_rejected(self):
        session = DebugSession()
        with pytest.raises(MonitorError):
            session.run_guest()

    def test_targets_attach_stopped(self):
        session = DebugSession()
        session.load_and_boot(build_kernel(KernelConfig()))
        assert session.monitor.stopped
        assert session.attach() == 5

    def test_console_property(self):
        session = DebugSession()
        session.load_and_boot(build_kernel(KernelConfig()))
        session.monitor.console.extend(b"xyz")
        assert session.console_output == b"xyz"

    def test_multiple_programs_loaded(self):
        from repro.guest import build_user_task
        session = DebugSession()
        kernel = build_kernel(KernelConfig(with_user_task=True))
        user = build_user_task(2)
        session.load_and_boot(kernel, user)
        # Both images are in memory; PC aims at the first.
        assert session.machine.cpu.pc == kernel.origin
        assert session.machine.memory.read(
            user.origin, 4) == user.image[:4]


class TestMicroWorkloads:
    def test_disk_only_ordering(self):
        results = {stack: disk_only(stack, 0.1)
                   for stack in ("bare", "lvmm", "fullvmm")}
        assert results["bare"].demanded_load \
            <= results["lvmm"].demanded_load \
            < results["fullvmm"].demanded_load
        # Same bytes moved regardless of stack.
        assert results["bare"].bytes_moved == results["lvmm"].bytes_moved

    def test_net_only_ordering(self):
        results = {stack: net_only(stack, 80e6, 0.15)
                   for stack in ("bare", "lvmm", "fullvmm")}
        assert results["bare"].demanded_load \
            < results["lvmm"].demanded_load \
            < results["fullvmm"].demanded_load
        assert results["bare"].bytes_moved > 0

    def test_compare_dispatch(self):
        out = compare("disk", sim_seconds=0.05)
        assert set(out) == {"bare", "lvmm", "fullvmm"}
        with pytest.raises(ValueError):
            compare("tape")

    def test_disk_only_actually_streams(self):
        result = disk_only("bare", 0.2)
        # 3 disks x 40 MB/s for 0.2s less seek time: > 10 MB.
        assert result.bytes_moved > 10 * 1024 * 1024
        assert result.interrupts >= 3
