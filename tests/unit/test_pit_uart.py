"""Unit tests for the 8254 PIT and 16550 UART models."""

import pytest

from repro.errors import DeviceError
from repro.hw.pit import PIT_HZ, Pit8254
from repro.hw.uart import (
    FIFO_DEPTH,
    HostSerialPort,
    IER_RX,
    IER_TX,
    IIR_NONE,
    IIR_RX,
    LCR_DLAB,
    LSR_DATA_READY,
    LSR_OVERRUN,
    LSR_THR_EMPTY,
    REG_DATA,
    REG_IER,
    REG_IIR_FCR,
    REG_LCR,
    REG_LSR,
    SerialLink,
    Uart16550,
)
from repro.sim.events import EventQueue

CPU_HZ = 1.26e9


class TestPit:
    def _pit(self):
        queue = EventQueue()
        fired = []
        pit = Pit8254(queue, CPU_HZ, lambda: fired.append(queue.now))
        return queue, pit, fired

    def test_program_periodic_fires_at_rate(self):
        queue, pit, fired = self._pit()
        pit.program_periodic(1000.0)  # 1 kHz tick
        one_second = int(CPU_HZ)
        queue.run_until(one_second)
        # 1000 Hz for 1 second with divisor rounding: ~1000 ticks.
        assert 995 <= len(fired) <= 1005

    def test_mode0_oneshot_fires_once(self):
        queue, pit, fired = self._pit()
        pit.port_write(3, 0x30, 1)   # channel 0, lo/hi, mode 0
        pit.port_write(0, 0xFF, 1)
        pit.port_write(0, 0x00, 1)   # count 255
        queue.run_until(int(CPU_HZ))
        assert len(fired) == 1

    def test_zero_reload_means_65536(self):
        queue, pit, fired = self._pit()
        pit.port_write(3, 0x34, 1)
        pit.port_write(0, 0, 1)
        pit.port_write(0, 0, 1)
        expected_period = 65536 / PIT_HZ
        queue.run_until(int(CPU_HZ * expected_period * 2.5))
        assert len(fired) == 2

    def test_latch_and_read_count(self):
        _, pit, _ = self._pit()
        pit.port_write(3, 0x34, 1)
        pit.port_write(0, 0x34, 1)
        pit.port_write(0, 0x12, 1)
        pit.port_write(3, 0x00, 1)   # latch channel 0
        low = pit.port_read(0, 1)
        high = pit.port_read(0, 1)
        assert (high << 8) | low == 0x1234

    def test_reprogram_cancels_pending(self):
        queue, pit, fired = self._pit()
        pit.program_periodic(100.0)
        pit.port_write(3, 0x34, 1)   # command alone cancels pending expiry
        queue.run_until(int(CPU_HZ))
        assert not fired

    def test_bad_frequency_rejected(self):
        _, pit, _ = self._pit()
        with pytest.raises(DeviceError):
            pit.program_periodic(0)
        with pytest.raises(DeviceError):
            pit.program_periodic(10_000_000.0)  # divisor would be 0

    def test_unknown_register_rejected(self):
        _, pit, _ = self._pit()
        with pytest.raises(DeviceError):
            pit.port_write(4, 1, 1)


class TestUart:
    def _uart(self):
        link = SerialLink()
        irqs = {"raised": 0, "lowered": 0}
        uart = Uart16550(
            link,
            raise_irq=lambda: irqs.__setitem__("raised", irqs["raised"] + 1),
            lower_irq=lambda: irqs.__setitem__("lowered",
                                               irqs["lowered"] + 1))
        host = HostSerialPort(link)
        return uart, host, irqs

    def test_transmit_reaches_host(self):
        uart, host, _ = self._uart()
        for byte in b"+$OK#9a":
            uart.port_write(REG_DATA, byte, 1)
        assert host.recv() == b"+$OK#9a"

    def test_receive_from_host(self):
        uart, host, _ = self._uart()
        host.send(b"ab")
        assert uart.port_read(REG_LSR, 1) & LSR_DATA_READY
        assert uart.port_read(REG_DATA, 1) == ord("a")
        assert uart.port_read(REG_DATA, 1) == ord("b")
        assert not uart.port_read(REG_LSR, 1) & LSR_DATA_READY

    def test_thr_always_empty(self):
        uart, _, _ = self._uart()
        assert uart.port_read(REG_LSR, 1) & LSR_THR_EMPTY

    def test_rx_interrupt_raised_when_enabled(self):
        uart, host, irqs = self._uart()
        uart.port_write(REG_IER, IER_RX, 1)
        host.send(b"x")
        assert irqs["raised"] == 1
        assert uart.port_read(REG_IIR_FCR, 1) == IIR_RX
        uart.port_read(REG_DATA, 1)
        assert uart.port_read(REG_IIR_FCR, 1) == IIR_NONE

    def test_no_interrupt_when_disabled(self):
        uart, host, irqs = self._uart()
        host.send(b"x")
        assert irqs["raised"] == 0

    def test_fifo_overrun_flagged_and_sticky_until_read(self):
        # Overrun only happens with flow control off (failure injection).
        link = SerialLink()
        uart = Uart16550(link, flow_control=False)
        host = HostSerialPort(link)
        host.send(bytes(FIFO_DEPTH + 5))
        status = uart.port_read(REG_LSR, 1)
        assert status & LSR_OVERRUN
        # Overrun clears on LSR read.
        assert not uart.port_read(REG_LSR, 1) & LSR_OVERRUN

    def test_flow_control_holds_bytes_instead_of_dropping(self):
        uart, host, _ = self._uart()
        payload = bytes(range(FIFO_DEPTH + 8))
        host.send(payload)
        received = bytearray()
        while uart.port_read(REG_LSR, 1) & LSR_DATA_READY:
            received.append(uart.port_read(REG_DATA, 1))
        assert bytes(received) == payload
        assert not uart.overrun

    def test_divisor_latch(self):
        uart, _, _ = self._uart()
        uart.port_write(REG_LCR, LCR_DLAB, 1)
        uart.port_write(REG_DATA, 0x0C, 1)   # DLL: 9600 baud divisor
        uart.port_write(REG_IER, 0x00, 1)    # DLM
        assert uart.port_read(REG_DATA, 1) == 0x0C
        uart.port_write(REG_LCR, 0x03, 1)    # clear DLAB, 8N1
        assert uart.divisor == 0x0C
        # Data port is a FIFO again.
        assert uart.port_read(REG_DATA, 1) == 0

    def test_fifo_clear_via_fcr(self):
        uart, host, _ = self._uart()
        host.send(b"junk")
        uart.port_write(REG_IIR_FCR, 0x02, 1)
        assert not uart.port_read(REG_LSR, 1) & LSR_DATA_READY

    def test_tx_interrupt_mode(self):
        uart, _, irqs = self._uart()
        uart.port_write(REG_IER, IER_TX, 1)
        assert irqs["raised"] >= 1  # THR empty immediately

    def test_counters(self):
        uart, host, _ = self._uart()
        uart.port_write(REG_DATA, 0x41, 1)
        host.send(b"zz")
        assert uart.tx_count == 1
        assert uart.rx_count == 2
