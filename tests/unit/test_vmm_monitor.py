"""Unit tests for the lightweight VMM: trap-and-emulate, interception
policy, interrupt virtualisation, and monitor self-protection."""

import pytest

from repro.asm import assemble
from repro.guest.asmkernel import KernelConfig, build_kernel, read_ticks
from repro.hw import firmware
from repro.hw.machine import Machine
from repro.hw.pic import MASTER_CMD
from repro.hw.scsi import PORT_BASE_SCSI
from repro.hw.uart import PORT_BASE_COM1
from repro.sim.budget import CAT_WORLD_SWITCH
from repro.vmm import (
    LVMM_INTERCEPTED_PORTS,
    LightweightVmm,
    MONITOR_MAGIC,
)


def lvmm_with(source: str, **config):
    """Boot a small assembly snippet (prefixed at the kernel base)."""
    machine = Machine()
    vmm = LightweightVmm(machine)
    program = assemble(f".org {firmware.GUEST_KERNEL_BASE}\n" + source)
    program.load_into(machine.memory)
    vmm.install()
    vmm.boot_guest(program.origin)
    return machine, vmm, program


class TestInterceptionPolicy:
    def test_pic_pit_uart_intercepted(self):
        assert MASTER_CMD in LVMM_INTERCEPTED_PORTS
        assert 0xA0 in LVMM_INTERCEPTED_PORTS
        assert 0x40 in LVMM_INTERCEPTED_PORTS
        assert PORT_BASE_COM1 in LVMM_INTERCEPTED_PORTS

    def test_scsi_passthrough_not_intercepted(self):
        assert PORT_BASE_SCSI not in LVMM_INTERCEPTED_PORTS

    def test_intercept_set_is_small(self):
        # The whole point of "lightweight": single-digit device claims.
        assert len(LVMM_INTERCEPTED_PORTS) <= 16


class TestDeprivilegedBoot:
    def test_guest_runs_at_ring1(self):
        machine, vmm, _ = lvmm_with("MOVI R0, 7\nHLT\n")
        vmm.run(10)
        assert machine.cpu.cpl == 1
        assert machine.cpu.regs[0] == 7

    def test_guest_segments_truncated(self):
        machine, vmm, _ = lvmm_with("NOP\nHLT\n")
        vmm.run(5)
        for cache in machine.cpu.segments:
            assert cache.descriptor.base + cache.descriptor.limit \
                <= vmm.monitor_base

    def test_guest_cannot_read_monitor_memory(self):
        machine, vmm, _ = lvmm_with("""
            MOVI R1, 0xF00000
            LD   R0, [R1+0]
            HLT
        """)
        vmm.run(10)
        # The load faulted; with no guest IDT the guest is declared dead
        # and the monitor survives.
        assert vmm.guest_dead
        assert not vmm.stopped or vmm.guest_dead

    def test_guest_cannot_write_monitor_memory(self):
        machine, vmm, _ = lvmm_with("""
            MOVI R1, 0xF80000
            MOVI R0, 0xDEAD
            ST   [R1+0], R0
            HLT
        """)
        before = machine.memory.read_u32(0xF80000)
        vmm.run(10)
        assert machine.memory.read_u32(0xF80000) == before
        assert vmm.guest_dead

    def test_double_install_rejected(self):
        machine = Machine()
        vmm = LightweightVmm(machine)
        vmm.install()
        from repro.errors import MonitorError
        with pytest.raises(MonitorError):
            vmm.install()

    def test_boot_before_install_rejected(self):
        from repro.errors import MonitorError
        vmm = LightweightVmm(Machine())
        with pytest.raises(MonitorError):
            vmm.boot_guest(0x200000)


class TestTrapAndEmulate:
    def test_cli_sti_virtualised(self):
        machine, vmm, _ = lvmm_with("CLI\nSTI\nHLT\n")
        vmm.run(10)
        assert vmm.stats.traps_by_mnemonic.get("CLI") == 1
        assert vmm.stats.traps_by_mnemonic.get("STI") == 1
        assert vmm.shadow.vif  # STI left the virtual IF on

    def test_movcr_shadowed(self):
        machine, vmm, _ = lvmm_with("""
            MOVI R0, 0x1234
            MOVCR CR3, R0
            MOVRC R2, CR3
            HLT
        """)
        vmm.run(10)
        assert vmm.shadow.cr3 == 0x1234
        assert machine.cpu.regs[2] == 0x1234

    def test_lgdt_rebuilds_shadow(self):
        machine, vmm, _ = lvmm_with("NOP\nHLT\n")
        rebuilds_at_boot = vmm.shadow_gdt.rebuilds
        machine2, vmm2, _ = lvmm_with("""
            MOVI R2, 0x6000
            MOVI R0, 84
            ST   [R2+0], R0
            MOVI R0, 0x1000
            ST   [R2+4], R0
            MOV  R0, R2
            LGDT R0
            HLT
        """)
        vmm2.run(20)
        assert vmm2.shadow_gdt.rebuilds == rebuilds_at_boot + 1
        assert vmm2.shadow.gdtr.base == 0x1000

    def test_world_switch_cycles_charged(self):
        machine, vmm, _ = lvmm_with("CLI\nSTI\nCLI\nHLT\n")
        vmm.run(10)
        charged = machine.budget.by_category().get(CAT_WORLD_SWITCH, 0)
        # 4 traps (CLI, STI, CLI, HLT) at least.
        assert charged >= 4 * vmm.cost.world_switch_cycles

    def test_trap_statistics_accumulate(self):
        machine, vmm, _ = lvmm_with("CLI\nCLI\nCLI\nHLT\n")
        vmm.run(10)
        assert vmm.stats.traps_by_mnemonic["CLI"] == 3

    def test_guest_pic_access_hits_virtual_pic(self):
        machine, vmm, _ = lvmm_with("""
            MOVI R2, 0x21
            MOVI R0, 0xAB
            OUTB R0, R2       ; OCW1 to the (virtual) master PIC
            HLT
        """)
        vmm.run(10)
        assert vmm.shadow.virtual_pic.master.imr == 0xAB
        # The REAL PIC's mask is monitor-owned and untouched.
        assert machine.pic.master.imr == 0x00

    def test_scsi_port_access_does_not_trap(self):
        machine, vmm, _ = lvmm_with(f"""
            MOVI R2, {PORT_BASE_SCSI + 8}
            INW  R0, R2       ; HBA STATUS: passthrough, no trap
            HLT
        """)
        vmm.run(10)
        assert "INW" not in vmm.stats.traps_by_mnemonic
        assert machine.bus.intercepted_accesses == 0

    def test_guest_uart_access_denied_quietly(self):
        machine, vmm, _ = lvmm_with(f"""
            MOVI R2, {PORT_BASE_COM1}
            MOVI R0, 0x41
            OUTB R0, R2       ; guest writing to the debug UART
            INB  R3, R2
            HLT
        """)
        vmm.run(10)
        assert vmm.intercept.uart_denied == 2
        assert machine.cpu.regs[3] == 0
        # Nothing leaked to the host side of the link.
        assert not machine.serial_link.a_to_b


class TestVmcall:
    def test_putc_console(self):
        machine, vmm, _ = lvmm_with("""
            MOVI R0, 0
            MOVI R1, 'h'
            VMCALL
            MOVI R1, 'i'
            VMCALL
            HLT
        """)
        vmm.run(20)
        assert bytes(vmm.console) == b"hi"

    def test_magic(self):
        machine, vmm, _ = lvmm_with("""
            MOVI R0, 1
            VMCALL
            HLT
        """)
        vmm.run(10)
        assert machine.cpu.regs[1] == MONITOR_MAGIC

    def test_panic_kills_guest_not_monitor(self):
        machine, vmm, _ = lvmm_with("""
            MOVI R0, 2
            MOVI R1, 0x42
            VMCALL
            HLT
        """)
        vmm.run(10)
        assert vmm.guest_dead
        assert "0x42" in vmm.guest_dead_reason


class TestInterruptVirtualisation:
    def test_full_kernel_receives_reflected_timer(self):
        machine = Machine()
        vmm = LightweightVmm(machine)
        kernel = build_kernel(KernelConfig(ticks_to_run=4, timer_hz=500))
        kernel.load_into(machine.memory)
        vmm.install()
        vmm.boot_guest(kernel.origin)
        vmm.run(400_000,
                until=lambda: read_ticks(machine.memory) >= 4)
        assert read_ticks(machine.memory) == 4
        assert vmm.stats.interrupts_reflected >= 4

    def test_interrupt_held_while_virtual_if_clear(self):
        # A guest that never enables interrupts never sees the timer.
        machine, vmm, _ = lvmm_with("""
            MOVI R2, 0x43
            MOVI R0, 0x34
            OUTB R0, R2
            MOVI R2, 0x40
            MOVI R0, 100
            OUTB R0, R2
            MOVI R0, 0
            OUTB R0, R2
        spin:
            NOP
            JMP spin
        """)
        vmm.run(400_000)  # PIT divisor 100 fires every ~105k cycles
        assert vmm.stats.interrupts_fielded > 0       # monitor saw them
        assert vmm.stats.interrupts_reflected == 0    # guest (vif=0) did not

    def test_monitor_eois_real_pic(self):
        machine = Machine()
        vmm = LightweightVmm(machine)
        kernel = build_kernel(KernelConfig(ticks_to_run=2, timer_hz=500))
        kernel.load_into(machine.memory)
        vmm.install()
        vmm.boot_guest(kernel.origin)
        vmm.run(300_000, until=lambda: read_ticks(machine.memory) >= 2)
        # Real PIC must have no stuck in-service bits.
        assert machine.pic.master.isr == 0
