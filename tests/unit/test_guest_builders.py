"""Unit tests for the assembly-guest generators themselves."""

import pytest

from repro.asm import assemble
from repro.guest.asmio import build_io_demo, io_demo_source
from repro.guest.asmkernel import (
    KernelConfig,
    build_kernel,
    build_user_task,
    kernel_source,
    user_task_source,
)
from repro.guest.asmthreads import (
    build_threaded_kernel,
    threaded_kernel_source,
)
from repro.hw import firmware


class TestKernelGenerator:
    def test_default_kernel_assembles(self):
        program = build_kernel()
        assert program.origin == firmware.GUEST_KERNEL_BASE
        assert len(program.image) > 200
        for symbol in ("start", "timer_isr", "syscall_entry", "idle",
                       "done"):
            assert symbol in program.symbols

    def test_paging_variant_has_page_table_code(self):
        source = kernel_source(KernelConfig(with_paging=True))
        assert "MOVCR CR3" in source
        assert "pd_loop" in source and "pt_loop" in source
        assemble(source)  # must be valid

    def test_user_task_variant_builds_iret_frame(self):
        source = kernel_source(KernelConfig(with_user_task=True))
        assert "IRET" in source
        assert str(firmware.GUEST_APP_BASE) in source

    def test_user_task_program(self):
        program = build_user_task(7)
        assert program.origin == firmware.GUEST_APP_BASE
        assert "user_loop" in program.symbols

    def test_timer_divisor_in_range(self):
        # Very fast and very slow rates both clamp to valid divisors.
        for hz in (1, 20, 1000, 100000):
            assemble(kernel_source(KernelConfig(timer_hz=hz)))


class TestThreadedGenerator:
    def test_thread_count_validated(self):
        with pytest.raises(ValueError):
            threaded_kernel_source(threads=0)
        with pytest.raises(ValueError):
            threaded_kernel_source(threads=9)

    def test_cooperative_has_yield_not_timer(self):
        source = threaded_kernel_source(2, 3)
        assert "INT  0x31" in source or "INT  49" in source
        assert "preempt_isr" not in source

    def test_preemptive_has_timer_not_yield_in_body(self):
        source = threaded_kernel_source(2, 3, preemptive=True)
        assert "preempt_isr" in source
        assert "busy_loop" in source
        assert "STI" in source

    def test_every_thread_gets_its_own_stack(self):
        from repro.guest.asmthreads import (TASK_STACK_BASE,
                                            TASK_STACK_SIZE,
                                            _task_stack_top)
        tops = [_task_stack_top(i) for i in range(4)]
        assert len(set(tops)) == 4
        assert all(t <= TASK_STACK_BASE + 8 * TASK_STACK_SIZE
                   for t in tops)

    def test_builds_for_all_supported_counts(self):
        for threads in (1, 4, 8):
            program = build_threaded_kernel(threads, 2)
            assert "yield_isr" in program.symbols


class TestIoDemoGenerator:
    def test_static_request_block_matches_encoder(self):
        from repro.hw.scsi import cdb_read10, encode_request_block
        from repro.guest.asmio import DMA_BUFFER
        program = build_io_demo(read_blocks=16, frame_len=1024)
        block_addr = program.symbols["request_block"]
        offset = block_addr - program.origin
        expected = encode_request_block(0, cdb_read10(0, 16),
                                        DMA_BUFFER, 16 * 512)
        assert program.image[offset:offset + 32] == expected

    def test_static_descriptor_matches_layout(self):
        import struct
        from repro.guest.asmio import DMA_BUFFER
        program = build_io_demo(frame_len=777)
        offset = program.symbols["tx_descriptor"] - program.origin
        addr, length, flags, status = struct.unpack(
            "<IIII", program.image[offset:offset + 16])
        assert (addr, length, flags, status) == (DMA_BUFFER, 777, 1, 0)

    def test_source_mentions_no_monitor_ports(self):
        source = io_demo_source()
        # The demo's data path uses SCSI ports and the MMIO hole only.
        from repro.guest.asmio import NIC_MMIO_HOLE
        assert f"{NIC_MMIO_HOLE}" in source
