"""Unit tests for the descriptor-ring NIC."""

import pytest

from repro.errors import DeviceError
from repro.hw.mem import PhysicalMemory
from repro.hw.nic import (
    DESC_STATUS_DD,
    DESCRIPTOR_SIZE,
    ICR_RXDW,
    ICR_TXDW,
    LINE_RATE_BPS,
    REG_COALESCE,
    REG_CTRL,
    REG_ICR,
    REG_IMS,
    REG_RDBA,
    REG_RDLEN,
    REG_RDT,
    REG_STATUS,
    REG_TCTL,
    REG_TDBA,
    REG_TDH,
    REG_TDLEN,
    REG_TDT,
    WIRE_OVERHEAD_BYTES,
    Nic,
    NicFault,
    make_rx_descriptor,
    make_tx_descriptor,
)
from repro.sim.events import EventQueue

CPU_HZ = 1.26e9
RING_BASE = 0x1000
FRAME_BASE = 0x8000


class NicFixture:
    def __init__(self, ring_len=8, coalesce=1):
        self.queue = EventQueue()
        self.memory = PhysicalMemory(1 << 20)
        self.frames = []
        self.irqs = []
        self.nic = Nic(self.queue, self.memory, CPU_HZ,
                       raise_irq=lambda: self.irqs.append("+"),
                       lower_irq=lambda: self.irqs.append("-"),
                       wire=self.frames.append)
        self.ring_len = ring_len
        self.nic.mmio_write(REG_TDBA, RING_BASE, 4)
        self.nic.mmio_write(REG_TDLEN, ring_len, 4)
        self.nic.mmio_write(REG_TCTL, 0x2, 4)
        self.nic.mmio_write(REG_IMS, ICR_TXDW | ICR_RXDW, 4)
        self.nic.mmio_write(REG_COALESCE, coalesce, 4)

    def queue_frame(self, index, payload):
        addr = FRAME_BASE + index * 2048
        self.memory.write(addr, payload)
        self.memory.write(RING_BASE + index * DESCRIPTOR_SIZE,
                          make_tx_descriptor(addr, len(payload)))

    def kick(self, tail):
        self.nic.mmio_write(REG_TDT, tail, 4)


class TestTransmit:
    def test_frame_reaches_wire(self):
        fix = NicFixture()
        fix.queue_frame(0, b"\x01" * 64)
        fix.kick(1)
        fix.queue.run()
        assert fix.frames == [b"\x01" * 64]
        assert fix.nic.frames_sent == 1
        assert fix.nic.bytes_sent == 64

    def test_descriptor_done_written_back(self):
        fix = NicFixture()
        fix.queue_frame(0, b"x" * 100)
        fix.kick(1)
        fix.queue.run()
        status = fix.memory.read_u32(RING_BASE + 12)
        assert status & DESC_STATUS_DD

    def test_head_advances(self):
        fix = NicFixture()
        for i in range(3):
            fix.queue_frame(i, bytes([i]) * 60)
        fix.kick(3)
        assert fix.nic.mmio_read(REG_TDH, 4) == 3
        fix.queue.run()
        assert [f[0] for f in fix.frames] == [0, 1, 2]

    def test_line_rate_pacing(self):
        fix = NicFixture()
        payload = b"z" * 1500
        for i in range(4):
            fix.queue_frame(i, payload)
        fix.kick(4)
        fix.queue.run()
        per_frame = int((1500 + WIRE_OVERHEAD_BYTES) * 8
                        / LINE_RATE_BPS * CPU_HZ)
        assert fix.queue.now == pytest.approx(4 * per_frame, rel=0.01)

    def test_interrupt_per_frame_by_default(self):
        fix = NicFixture()
        for i in range(4):
            fix.queue_frame(i, b"a" * 60)
        fix.kick(4)
        fix.queue.run()
        assert fix.nic.interrupts_raised == 4

    def test_coalescing_reduces_interrupts(self):
        fix = NicFixture(ring_len=16, coalesce=4)
        for i in range(8):
            fix.queue_frame(i, b"a" * 60)
        fix.kick(8)
        fix.queue.run()
        assert fix.nic.interrupts_raised == 2

    def test_icr_read_clears_and_lowers(self):
        fix = NicFixture()
        fix.queue_frame(0, b"a" * 60)
        fix.kick(1)
        fix.queue.run()
        assert fix.nic.mmio_read(REG_ICR, 4) & ICR_TXDW
        assert fix.nic.mmio_read(REG_ICR, 4) == 0
        assert fix.irqs[-1] == "-"

    def test_tx_disabled_does_nothing(self):
        fix = NicFixture()
        fix.nic.mmio_write(REG_TCTL, 0, 4)
        fix.queue_frame(0, b"a" * 60)
        fix.kick(1)
        fix.queue.run()
        assert not fix.frames

    def test_tail_beyond_ring_rejected(self):
        fix = NicFixture(ring_len=4)
        with pytest.raises(DeviceError):
            fix.kick(4)

    def test_head_register_is_read_only(self):
        fix = NicFixture()
        with pytest.raises(DeviceError):
            fix.nic.mmio_write(REG_TDH, 3, 4)

    def test_reset_clears_state(self):
        fix = NicFixture()
        fix.queue_frame(0, b"a" * 60)
        fix.kick(1)
        fix.queue.run()
        fix.nic.mmio_write(REG_CTRL, 1, 4)
        assert fix.nic.mmio_read(REG_TDH, 4) == 0
        assert fix.nic.mmio_read(REG_ICR, 4) == 0

    def test_status_link_up(self):
        fix = NicFixture()
        assert fix.nic.mmio_read(REG_STATUS, 4) & 1


class TestReceive:
    def _rx_setup(self, fix, count=4):
        rx_base = 0x2000
        fix.nic.mmio_write(REG_RDBA, rx_base, 4)
        fix.nic.mmio_write(REG_RDLEN, count, 4)
        for i in range(count):
            addr = 0x20000 + i * 2048
            fix.memory.write(rx_base + i * DESCRIPTOR_SIZE,
                             make_rx_descriptor(addr, 2048))
        fix.nic.mmio_write(REG_RDT, count - 1, 4)
        return rx_base

    def test_receive_into_ring(self):
        fix = NicFixture()
        rx_base = self._rx_setup(fix)
        assert fix.nic.receive_frame(b"hello world" + bytes(53))
        status = fix.memory.read_u32(rx_base + 12)
        assert status & DESC_STATUS_DD
        assert fix.memory.read(0x20000, 11) == b"hello world"
        assert fix.nic.frames_received == 1

    def test_receive_raises_rx_interrupt(self):
        fix = NicFixture()
        self._rx_setup(fix)
        fix.nic.receive_frame(bytes(64))
        assert fix.nic.mmio_read(REG_ICR, 4) & ICR_RXDW

    def test_drop_when_no_ring(self):
        fix = NicFixture()
        assert not fix.nic.receive_frame(bytes(64))
        assert fix.nic.frames_dropped == 1

    def test_drop_when_ring_exhausted(self):
        fix = NicFixture()
        self._rx_setup(fix, count=2)
        assert fix.nic.receive_frame(bytes(64))
        assert not fix.nic.receive_frame(bytes(64))  # RDH == RDT now

    def test_drop_oversized_frame(self):
        fix = NicFixture()
        rx_base = 0x2000
        fix.nic.mmio_write(REG_RDBA, rx_base, 4)
        fix.nic.mmio_write(REG_RDLEN, 2, 4)
        fix.memory.write(rx_base, make_rx_descriptor(0x20000, 100))
        fix.nic.mmio_write(REG_RDT, 1, 4)
        assert not fix.nic.receive_frame(bytes(500))


class TestReceiveFaults:
    """rx_fault_hook semantics, driven by a scripted hook (the policy
    layer — repro.faults.NicInjector — is tested in test_faults.py)."""

    def _fix(self, script):
        fix = NicFixture()
        faults = iter(script)
        fix.nic.rx_fault_hook = lambda frame: next(faults, None)
        return fix

    def test_rx_drop_counted(self):
        fix = self._fix([NicFault(kind="drop")])
        TestReceive()._rx_setup(fix)
        assert not fix.nic.receive_frame(bytes(64))
        assert fix.nic.rx_faults_injected == 1
        assert fix.nic.frames_dropped == 1
        assert fix.nic.frames_received == 0

    def test_rx_corrupt_flips_one_byte(self):
        fix = self._fix([NicFault(kind="corrupt", corrupt_offset=3)])
        TestReceive()._rx_setup(fix)
        assert fix.nic.receive_frame(b"\x00" * 64)
        delivered = fix.memory.read(0x20000, 64)
        assert delivered[3] == 0xFF
        assert delivered.count(0) == 63

    def test_rx_duplicate_delivers_twice(self):
        fix = self._fix([NicFault(kind="duplicate")])
        TestReceive()._rx_setup(fix)
        assert fix.nic.receive_frame(bytes(64))
        assert fix.nic.frames_received == 2

    def test_rx_delay_defers_ring_writeback(self):
        fix = self._fix([NicFault(kind="delay", delay_cycles=50_000)])
        TestReceive()._rx_setup(fix)
        assert fix.nic.receive_frame(bytes(64))  # optimistic
        assert fix.nic.frames_received == 0      # not in the ring yet
        fix.queue.run()
        assert fix.nic.frames_received == 1

    def test_rx_reorder_held_until_next_arrival(self):
        fix = self._fix([NicFault(kind="reorder")])
        rx_base = TestReceive()._rx_setup(fix)
        assert fix.nic.receive_frame(b"A" + bytes(63))  # held
        assert fix.nic.frames_received == 0
        assert fix.nic.receive_frame(b"B" + bytes(63))  # flushes the hold
        assert fix.nic.frames_received == 2
        # Descriptor 0 got B, descriptor 1 got the held A.
        assert fix.memory.read(0x20000, 1) == b"B"
        assert fix.memory.read(0x20000 + 2048, 1) == b"A"

    def test_rx_reorder_failsafe_flush_when_wire_goes_quiet(self):
        fix = self._fix([NicFault(kind="reorder", delay_cycles=10_000)])
        TestReceive()._rx_setup(fix)
        assert fix.nic.receive_frame(bytes(64))
        assert fix.nic.frames_received == 0
        fix.queue.run()                          # failsafe timer fires
        assert fix.nic.frames_received == 1

    def test_clean_frames_bypass_the_hook_counter(self):
        fix = self._fix([])
        TestReceive()._rx_setup(fix)
        assert fix.nic.receive_frame(bytes(64))
        assert fix.nic.rx_faults_injected == 0
