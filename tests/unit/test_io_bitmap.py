"""Unit tests for the CPU-level I/O permission bitmap — the mechanism
behind the LVMM's device passthrough."""

import pytest

from repro.asm import assemble
from repro.hw import Cpu, IoBus, PhysicalMemory, firmware
from repro.hw.bus import PortDevice
from repro.hw.isa import IOPL_SHIFT, VEC_GP
from repro.hw.seg import SegmentDescriptor


class _Latch(PortDevice):
    def __init__(self):
        self.value = 0
        self.reads = 0

    def port_read(self, offset, size):
        self.reads += 1
        return self.value

    def port_write(self, offset, value, size):
        self.value = value


def deprivileged_cpu(ring=1):
    bus = IoBus()
    device = _Latch()
    bus.register_ports(0x5000, 4, device, "latch")
    cpu = Cpu(PhysicalMemory(1 << 20), bus)
    selectors = firmware.install_flat_firmware(cpu)
    code = SegmentDescriptor(0, cpu.memory.size, ring, code=True)
    data = SegmentDescriptor(0, cpu.memory.size, ring)
    sel_code = (firmware.IDX_CODE1 << 2) | ring if ring == 1 \
        else selectors.code3
    sel_data = (firmware.IDX_DATA1 << 2) | ring if ring == 1 \
        else selectors.data3
    cpu.force_segment(0, sel_code, code)
    cpu.force_segment(1, sel_data, data)
    cpu.force_segment(2, sel_data, data)
    cpu.sp = firmware.RING1_STACK_TOP
    return cpu, device


def run_io(cpu, source, steps=12):
    """Run until the guest sets its done marker (R4=1) or faults.

    Guests end with a marker instead of HLT because HLT itself is
    IOPL-privileged and would fault at ring 1."""
    program = assemble(source, origin=0x4000)
    program.load_into(cpu.memory)
    cpu.pc = 0x4000
    faults = []
    cpu.exception_hook = lambda c, vec, err: faults.append(vec) or True
    for _ in range(steps):
        if faults or cpu.regs[4] == 1:
            break
        cpu.step()
    return faults


OUT_PROGRAM = """
    MOVI R2, 0x5000
    MOVI R0, 0x42
    OUTW R0, R2
    MOVI R4, 1
spin:
    JMP spin
"""


class TestIoBitmap:
    def test_unlisted_port_faults_at_ring1(self):
        cpu, device = deprivileged_cpu()
        faults = run_io(cpu, OUT_PROGRAM)
        assert faults == [VEC_GP]
        assert device.value == 0

    def test_listed_port_passes_through(self):
        cpu, device = deprivileged_cpu()
        cpu.io_allowed_ports = set(range(0x5000, 0x5004))
        faults = run_io(cpu, OUT_PROGRAM)
        assert faults == []
        assert device.value == 0x42

    def test_bitmap_is_port_granular(self):
        cpu, device = deprivileged_cpu()
        cpu.io_allowed_ports = {0x5001}  # adjacent port only
        faults = run_io(cpu, OUT_PROGRAM)
        assert faults == [VEC_GP]

    def test_reads_covered_too(self):
        cpu, device = deprivileged_cpu()
        device.value = 0x77
        cpu.io_allowed_ports = {0x5000}
        faults = run_io(cpu, """
            MOVI R2, 0x5000
            INW  R3, R2
            MOVI R4, 1
        spin:
            JMP spin
        """)
        assert faults == []
        assert cpu.regs[3] == 0x77

    def test_iopl_bypasses_bitmap(self):
        cpu, device = deprivileged_cpu()
        cpu.flags |= 0b01 << IOPL_SHIFT  # IOPL 1 == CPL
        faults = run_io(cpu, OUT_PROGRAM)
        assert faults == []
        assert device.value == 0x42

    def test_ring3_obeys_bitmap_as_well(self):
        cpu, device = deprivileged_cpu(ring=3)
        cpu.io_allowed_ports = set(range(0x5000, 0x5004))
        faults = run_io(cpu, OUT_PROGRAM)
        assert faults == []
        assert device.value == 0x42

    def test_byte_and_word_accessors_check_the_same_port(self):
        cpu, device = deprivileged_cpu()
        cpu.io_allowed_ports = {0x5000}
        faults = run_io(cpu, """
            MOVI R2, 0x5000
            MOVI R0, 0x11
            OUTB R0, R2
            INB  R3, R2
            MOVI R4, 1
        spin:
            JMP spin
        """)
        assert faults == []
        assert cpu.regs[3] == 0x11
