"""Unit tests for physical memory, segmentation and paging."""

import pytest

from repro.errors import MemoryError_
from repro.hw.mem import PhysicalMemory
from repro.hw.paging import (
    PAGE_SIZE,
    PF_PRESENT,
    PF_USER,
    PF_WRITE,
    Mmu,
    PageFault,
    Tlb,
    PageTableBuilder,
    make_pte,
    span_pages,
    split_vaddr,
)
from repro.hw.seg import (
    DESCRIPTOR_SIZE,
    GdtView,
    SegmentDescriptor,
    selector,
    selector_index,
    selector_rpl,
)


class TestPhysicalMemory:
    def test_read_write_round_trip(self):
        mem = PhysicalMemory(4096)
        mem.write(100, b"hello")
        assert mem.read(100, 5) == b"hello"

    def test_scalar_little_endian(self):
        mem = PhysicalMemory(4096)
        mem.write_u32(0, 0x11223344)
        assert mem.read(0, 4) == b"\x44\x33\x22\x11"
        assert mem.read_u16(0) == 0x3344
        assert mem.read_u8(3) == 0x11

    def test_out_of_range_rejected(self):
        mem = PhysicalMemory(128)
        with pytest.raises(MemoryError_):
            mem.read(120, 16)
        with pytest.raises(MemoryError_):
            mem.write(-1, b"x")

    def test_fill(self):
        mem = PhysicalMemory(64)
        mem.fill(8, 8, 0xAB)
        assert mem.read(8, 8) == b"\xab" * 8

    def test_zero_size_rejected(self):
        with pytest.raises(MemoryError_):
            PhysicalMemory(0)


class TestSegmentDescriptor:
    def test_pack_unpack_round_trip(self):
        descriptor = SegmentDescriptor(base=0x1000, limit=0x2000, dpl=1,
                                       code=True, writable=False)
        assert SegmentDescriptor.unpack(descriptor.pack()) == descriptor

    def test_contains(self):
        descriptor = SegmentDescriptor(base=0, limit=100, dpl=0)
        assert descriptor.contains(0)
        assert descriptor.contains(96, 4)
        assert not descriptor.contains(97, 4)
        assert not descriptor.contains(100)

    def test_truncated_lowers_limit_only(self):
        descriptor = SegmentDescriptor(base=5, limit=100, dpl=1, code=True)
        cut = descriptor.truncated(40)
        assert cut.limit == 40
        assert cut.base == 5 and cut.dpl == 1 and cut.code
        assert descriptor.truncated(200).limit == 100

    def test_selector_helpers(self):
        sel = selector(7, rpl=3)
        assert selector_index(sel) == 7
        assert selector_rpl(sel) == 3


class TestGdtView:
    def test_read_write_descriptor(self):
        mem = PhysicalMemory(4096)
        gdt = GdtView(mem, base=0x100, limit=4 * DESCRIPTOR_SIZE)
        descriptor = SegmentDescriptor(base=0x8000, limit=0x400, dpl=2)
        gdt.write(2, descriptor)
        assert gdt.read(2) == descriptor

    def test_index_beyond_limit_rejected(self):
        mem = PhysicalMemory(4096)
        gdt = GdtView(mem, base=0, limit=2 * DESCRIPTOR_SIZE)
        with pytest.raises(IndexError):
            gdt.read(2)


class TestSplitVaddr:
    def test_split(self):
        directory, table, offset = split_vaddr(0xC0ABC123)
        assert directory == 0xC0ABC123 >> 22
        assert table == (0xC0ABC123 >> 12) & 0x3FF
        assert offset == 0x123


class TestSpanPages:
    def test_within_page(self):
        assert list(span_pages(100, 50)) == [(100, 50)]

    def test_crossing_boundary(self):
        chunks = list(span_pages(PAGE_SIZE - 10, 30))
        assert chunks == [(PAGE_SIZE - 10, 10), (PAGE_SIZE, 20)]

    def test_multiple_pages(self):
        chunks = list(span_pages(0, 3 * PAGE_SIZE))
        assert len(chunks) == 3
        assert sum(length for _, length in chunks) == 3 * PAGE_SIZE


def _build_mmu(user=False, writable=True):
    mem = PhysicalMemory(1 << 20)
    builder = PageTableBuilder(mem, alloc_base=0x10000)
    builder.map(0x400000, 0x20000, writable=writable, user=user)
    mmu = Mmu(mem)
    mmu.set_cr3(builder.directory)
    return mem, mmu


class TestMmu:
    def test_translate_mapped_page(self):
        _, mmu = _build_mmu()
        assert mmu.translate(0x400123, write=False, user=False) == 0x20123

    def test_not_present_faults(self):
        _, mmu = _build_mmu()
        with pytest.raises(PageFault) as info:
            mmu.translate(0x500000, write=False, user=False)
        assert not info.value.error_code & PF_PRESENT

    def test_user_cannot_touch_supervisor_page(self):
        _, mmu = _build_mmu(user=False)
        with pytest.raises(PageFault) as info:
            mmu.translate(0x400000, write=False, user=True)
        code = info.value.error_code
        assert code & PF_PRESENT and code & PF_USER

    def test_write_to_readonly_faults(self):
        _, mmu = _build_mmu(writable=False)
        with pytest.raises(PageFault) as info:
            mmu.translate(0x400000, write=True, user=False)
        assert info.value.error_code & PF_WRITE

    def test_supervisor_can_read_user_page(self):
        _, mmu = _build_mmu(user=True)
        assert mmu.translate(0x400000, write=False, user=False) == 0x20000

    def test_tlb_hit_counted(self):
        _, mmu = _build_mmu()
        mmu.translate(0x400000, write=False, user=False)
        misses = mmu.tlb.misses
        mmu.translate(0x400004, write=False, user=False)
        assert mmu.tlb.hits >= 1
        assert mmu.tlb.misses == misses

    def test_cr3_write_flushes_tlb(self):
        mem, mmu = _build_mmu()
        mmu.translate(0x400000, write=False, user=False)
        # Remap the page elsewhere and reload CR3.
        builder = PageTableBuilder(mem, alloc_base=0x40000)
        builder.map(0x400000, 0x30000)
        mmu.set_cr3(builder.directory)
        assert mmu.translate(0x400000, write=False, user=False) == 0x30000

    def test_stale_tlb_without_flush(self):
        # Documents the hazard monitors must handle: changing a PTE
        # without a flush leaves the old translation live.
        mem, mmu = _build_mmu()
        assert mmu.translate(0x400000, write=False, user=False) == 0x20000
        builder = PageTableBuilder(mem, alloc_base=0x40000)
        builder.map(0x400000, 0x30000)
        mem.write_u32(mmu.cr3 + (0x400000 >> 22) * 4,
                      mem.read_u32(builder.directory + (0x400000 >> 22) * 4))
        assert mmu.translate(0x400000, write=False, user=False) == 0x20000
        mmu.tlb.flush()
        assert mmu.translate(0x400000, write=False, user=False) == 0x30000

    def test_accessed_and_dirty_bits_set(self):
        mem = PhysicalMemory(1 << 20)
        builder = PageTableBuilder(mem, alloc_base=0x10000)
        builder.map(0x400000, 0x20000)
        mmu = Mmu(mem)
        mmu.set_cr3(builder.directory)
        mmu.translate(0x400010, write=True, user=False)
        pde = mem.read_u32(builder.directory + (0x400000 >> 22) * 4)
        pte_base = pde & 0xFFFFF000
        pte = mem.read_u32(pte_base + ((0x400000 >> 12) & 0x3FF) * 4)
        assert pte & (1 << 5)  # accessed
        assert pte & (1 << 6)  # dirty

    def test_effective_rights_are_and_of_levels(self):
        # PDE says writable, PTE says read-only -> read-only overall.
        mem = PhysicalMemory(1 << 20)
        builder = PageTableBuilder(mem, alloc_base=0x10000)
        builder.map(0x400000, 0x20000, writable=False)
        mmu = Mmu(mem)
        mmu.set_cr3(builder.directory)
        with pytest.raises(PageFault):
            mmu.translate(0x400000, write=True, user=False)


class TestPageTableBuilder:
    def test_map_range_contiguous(self):
        mem = PhysicalMemory(1 << 20)
        builder = PageTableBuilder(mem, alloc_base=0x10000)
        builder.map_range(0x0, 0x80000, 3 * PAGE_SIZE)
        mmu = Mmu(mem)
        mmu.set_cr3(builder.directory)
        for page in range(3):
            assert mmu.translate(page * PAGE_SIZE, False, False) \
                == 0x80000 + page * PAGE_SIZE

    def test_unmap(self):
        mem = PhysicalMemory(1 << 20)
        builder = PageTableBuilder(mem, alloc_base=0x10000)
        builder.identity_map(0x20000, PAGE_SIZE)
        mmu = Mmu(mem)
        mmu.set_cr3(builder.directory)
        assert mmu.translate(0x20000, False, False) == 0x20000
        builder.unmap(0x20000)
        mmu.tlb.flush()
        with pytest.raises(PageFault):
            mmu.translate(0x20000, False, False)

    def test_make_pte_bits(self):
        entry = make_pte(0x12345000, writable=True, user=True)
        assert entry & 1          # present
        assert entry & 2          # writable
        assert entry & 4          # user
        assert entry & 0xFFFFF000 == 0x12345000


class TestTlbLru:
    def _full_tlb(self, capacity=4):
        tlb = Tlb(capacity=capacity)
        for vpn in range(capacity):
            tlb.insert(vpn, vpn << 12, True, False)
        return tlb

    def test_eviction_is_least_recently_used(self):
        tlb = self._full_tlb()
        # Touch vpn 0 so it becomes most-recently used; vpn 1 is now LRU.
        assert tlb.lookup(0) is not None
        tlb.insert(99, 0x99000, True, False)
        assert tlb.lookup(0) is not None     # survived (recently used)
        assert tlb.lookup(1) is None         # evicted (LRU)
        assert tlb.lookup(99) is not None

    def test_default_capacity_raised(self):
        assert Tlb().capacity == Tlb.DEFAULT_CAPACITY >= 256

    def test_flush_bumps_generation(self):
        tlb = self._full_tlb()
        generation = tlb.generation
        tlb.flush()
        assert tlb.generation == generation + 1
        assert len(tlb) == 0

    def test_flush_page_bumps_generation(self):
        tlb = self._full_tlb()
        generation = tlb.generation
        tlb.flush_page(2)
        assert tlb.generation == generation + 1
        assert tlb.lookup(3) is not None     # others untouched

    def test_capacity_eviction_does_not_bump_generation(self):
        tlb = self._full_tlb()
        generation = tlb.generation
        tlb.insert(99, 0x99000, True, False)
        assert tlb.generation == generation

    def test_stats_shape(self):
        tlb = self._full_tlb()
        tlb.lookup(0)
        tlb.lookup(1234)
        stats = tlb.stats()
        assert stats["hits"] == tlb.hits and stats["misses"] == tlb.misses
        assert 0.0 < stats["hit_rate"] < 1.0
        assert stats["entries"] == len(tlb)


class TestPageGenerations:
    def test_write_bumps_only_touched_pages(self):
        mem = PhysicalMemory(4 * PAGE_SIZE)
        before = list(mem.page_gens)
        mem.write(PAGE_SIZE + 8, b"\x01\x02")
        assert mem.page_generation(1) == before[1] + 1
        assert mem.page_generation(0) == before[0]
        assert mem.page_generation(2) == before[2]

    def test_straddling_write_bumps_both_pages(self):
        mem = PhysicalMemory(4 * PAGE_SIZE)
        mem.write(PAGE_SIZE - 2, b"\xAA" * 4)
        assert mem.page_generation(0) == 1
        assert mem.page_generation(1) == 1

    def test_scalar_writes_bump(self):
        mem = PhysicalMemory(4 * PAGE_SIZE)
        mem.write_u8(0, 1)
        mem.write_u16(PAGE_SIZE, 2)
        mem.write_u32(2 * PAGE_SIZE, 3)
        mem.fill(3 * PAGE_SIZE, 16, 0xFF)
        assert [mem.page_generation(page) for page in range(4)] \
            == [1, 1, 1, 1]

    def test_reads_do_not_bump(self):
        mem = PhysicalMemory(4 * PAGE_SIZE)
        mem.read(0, 64)
        mem.read_u32(PAGE_SIZE)
        assert mem.page_generation(0) == 0
        assert mem.page_generation(1) == 0
