"""The watchdog ladder is observable: a metrics gauge tracks the level
and degradations flow onto the structured trace bus."""

from repro.asm import assemble
from repro.core import DebugSession
from repro.hw import firmware
from repro.obs.bus import CAT_WATCHDOG, TraceBus
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.tracer import Tracer
from repro.vmm.watchdog import (
    DEGRADE_FROZEN,
    DEGRADE_FULL,
    DEGRADE_STUB_ONLY,
    MonitorWatchdog,
)


def make_session(body):
    sess = DebugSession(monitor="lvmm")
    program = assemble(f".org {firmware.GUEST_KERNEL_BASE}\n{body}\n")
    sess.load_and_boot(program)
    sess.attach()
    return sess


class TestWatchdogMetrics:
    def test_gauge_starts_at_full_service(self):
        sess = make_session("loop:\n    NOP\n    JMP loop")
        MonitorWatchdog(sess.monitor)
        assert global_registry().gauge("monitor.watchdog.level") \
            .value == 0

    def test_degradation_moves_gauge_and_counter(self):
        sess = make_session("    INT 0x21\n    HLT")
        watchdog = MonitorWatchdog(sess.monitor)
        counter = global_registry().counter(
            "monitor.watchdog.degradations")
        before = counter.value
        sess.run_guest(1_000)
        assert sess.monitor.guest_dead
        assert watchdog.check() == DEGRADE_FROZEN
        assert global_registry().gauge("monitor.watchdog.level") \
            .value == 2
        assert counter.value == before + 1
        # Frozen is terminal: further checks move nothing.
        watchdog.check()
        assert counter.value == before + 1

    def test_reset_returns_gauge_to_zero(self):
        sess = make_session("loop:\n    NOP\n    JMP loop")
        watchdog = MonitorWatchdog(sess.monitor)
        sess.monitor.degradation_level = DEGRADE_STUB_ONLY
        watchdog._level_gauge.set(1)
        watchdog.reset()
        assert sess.monitor.degradation_level == DEGRADE_FULL
        assert global_registry().gauge("monitor.watchdog.level") \
            .value == 0


class TestWatchdogTracing:
    def test_degradation_lands_on_the_trace_bus(self):
        sess = make_session("    INT 0x21\n    HLT")
        tracer = Tracer(TraceBus(), MetricsRegistry())
        tracer.attach(monitor=sess.monitor)
        watchdog = MonitorWatchdog(sess.monitor)
        # The watchdog was created after attach: wire it explicitly.
        tracer.add_watchdog(watchdog)
        sess.run_guest(1_000)
        watchdog.check()
        tracer.detach()
        events = [record for record in tracer.bus.events()
                  if record.category == CAT_WATCHDOG]
        assert len(events) == 1
        assert events[0].name == "degrade"
        assert events[0].args["from"] == DEGRADE_FULL
        assert events[0].args["to"] == DEGRADE_FROZEN
        assert "guest dead" in events[0].args["reason"]
        assert tracer.registry.counter(
            "trace.watchdog.degradations").value == 1

    def test_attach_picks_up_existing_watchdog(self):
        sess = make_session("    INT 0x21\n    HLT")
        watchdog = MonitorWatchdog(sess.monitor)
        tracer = Tracer(TraceBus(), MetricsRegistry())
        # Attach after the watchdog exists: no add_watchdog needed.
        tracer.attach(monitor=sess.monitor)
        sess.run_guest(1_000)
        watchdog.check()
        tracer.detach()
        counts = tracer.bus.counts_by_category()
        assert counts.get(CAT_WATCHDOG, 0) == 1
