"""The mutation-kill harness: a validator that accepts everything is
worse than none, so CI requires every seeded miscompile to be caught."""

from repro.analysis.tv.mutate import (
    SOURCE_MUTATIONS,
    main as mutate_main,
    run_harness,
)


class TestMutationKill:
    def test_all_fifteen_mutations_are_killed(self):
        baseline, outcomes = run_harness()
        assert baseline is not None and baseline.ok, \
            "fixture block must validate before mutation"
        assert len(outcomes) == 15
        missed = [o.name for o in outcomes if not o.killed]
        assert not missed, f"validator missed mutations: {missed}"

    def test_mutation_set_covers_the_advertised_bug_classes(self):
        names = {name for name, _desc, _fn in SOURCE_MUTATIONS}
        for family in ("drop-flags-commit", "zf-wrong-bit",
                       "instret-off-by-one", "drop-smc-check",
                       "drop-irq-check", "negate-branch"):
            assert family in names

    def test_cli_entry_point_exits_zero(self, capsys):
        assert mutate_main([]) == 0
        out = capsys.readouterr().out
        assert "15/15 mutations killed" in out
