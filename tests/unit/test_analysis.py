"""Unit tests for the static analyzer: lattice, decode_range, checks.

Each check gets a tiny hand-written guest program seeded with exactly
the bug class it detects; the clean-kernel corpus lives in
tests/integration/test_analysis_corpus.py.
"""

import json

import pytest

from repro.analysis import (
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    analyze_program,
)
from repro.analysis.lattice import MAX_VALUES, AbsState, ValueSet
from repro.asm import PSEUDO_BYTE, assemble, decode_range
from repro.hw import firmware

ORG = firmware.GUEST_KERNEL_BASE
MONITOR_BASE = 0xF0_0000


def run_analysis(source, entry_ring=0):
    program = assemble(source, origin=ORG)
    return analyze_program(program, monitor_base=MONITOR_BASE,
                           entry_ring=entry_ring)


def check_ids(report, severity=None):
    return {f.check for f in report.findings
            if severity is None or f.severity == severity}


# ---------------------------------------------------------------------------
# ValueSet lattice
# ---------------------------------------------------------------------------

class TestValueSet:
    def test_const_singleton(self):
        assert ValueSet.const(5).singleton() == 5

    def test_masking(self):
        assert ValueSet.const(-1).singleton() == 0xFFFFFFFF

    def test_top_has_no_concrete(self):
        top = ValueSet.top()
        assert top.is_top
        assert top.singleton() is None
        assert top.concrete() == frozenset()

    def test_join(self):
        joined = ValueSet.const(1).join(ValueSet.const(2))
        assert joined.concrete() == frozenset({1, 2})

    def test_join_with_top_is_top(self):
        assert ValueSet.const(1).join(ValueSet.top()).is_top

    def test_widening_to_top(self):
        wide = ValueSet.of(range(MAX_VALUES + 1))
        assert wide.is_top

    def test_map2_cross_product_widens(self):
        a = ValueSet.of(range(8))
        b = ValueSet.of(range(8))
        assert a.map2(b, lambda x, y: x + y).is_top

    def test_add_const(self):
        vs = ValueSet.of({0x100, 0x200}).add_const(4)
        assert vs.concrete() == frozenset({0x104, 0x204})

    def test_equality_and_hash(self):
        assert ValueSet.of({1, 2}) == ValueSet.of({2, 1})
        assert hash(ValueSet.top()) == hash(ValueSet.top())


class TestAbsState:
    def test_entry_state(self):
        state = AbsState.entry(3)
        assert state.rings == frozenset({3})
        assert state.depth == 0
        assert all(r.is_top for r in state.regs)

    def test_join_rings_union(self):
        a = AbsState.entry(0)
        b = AbsState.entry(3)
        assert a.join(b).rings == frozenset({0, 3})

    def test_join_unequal_depths_forgets_stack(self):
        a = AbsState.entry(0)
        b = AbsState.entry(0)
        b.depth = 8
        b.shadow = (ValueSet.const(1), ValueSet.const(2))
        joined = a.join(b)
        assert joined.depth is None
        assert joined.shadow == ()

    def test_join_equal_depths_joins_shadow(self):
        a = AbsState.entry(0)
        b = AbsState.entry(0)
        a.depth = b.depth = 4
        a.shadow = (ValueSet.const(1),)
        b.shadow = (ValueSet.const(2),)
        joined = a.join(b)
        assert joined.depth == 4
        assert joined.shadow[0].concrete() == frozenset({1, 2})


# ---------------------------------------------------------------------------
# decode_range (linear sweep)
# ---------------------------------------------------------------------------

class TestDecodeRange:
    def test_tiles_valid_code(self):
        program = assemble("MOVI R0, 1\nHLT", origin=ORG)
        insns = list(decode_range(program.image, origin=ORG))
        assert [i.mnemonic for i in insns] == ["MOVI", "HLT"]
        assert insns[0].address == ORG
        assert sum(i.length for i in insns) == len(program.image)

    def test_invalid_byte_becomes_pseudo(self):
        insns = list(decode_range(b"\xff", origin=ORG))
        assert len(insns) == 1
        assert insns[0].mnemonic == PSEUDO_BYTE
        assert insns[0].is_pseudo
        assert insns[0].length == 1

    def test_recovers_after_invalid_byte(self):
        good = assemble("HLT", origin=0).image
        insns = list(decode_range(b"\xff" + good, origin=ORG))
        assert [i.mnemonic for i in insns] == [PSEUDO_BYTE, "HLT"]
        assert insns[1].address == ORG + 1

    def test_truncated_insn_starts_with_pseudo_and_tiles(self):
        movi = assemble("MOVI R0, 1", origin=0).image
        truncated = movi[:-2]
        insns = list(decode_range(truncated))
        # The truncated MOVI cannot decode whole: its opcode byte is
        # consumed as a .byte pseudo-insn and the sweep re-syncs.
        assert insns[0].mnemonic == PSEUDO_BYTE
        assert sum(i.length for i in insns) == len(truncated)

    def test_window_bounds(self):
        image = assemble("NOP\nNOP\nHLT", origin=0).image
        insns = list(decode_range(image, origin=ORG, start=1, end=2))
        assert len(insns) == 1
        assert insns[0].address == ORG + 1


# ---------------------------------------------------------------------------
# The check catalogue, one seeded bug each
# ---------------------------------------------------------------------------

class TestChecks:
    def test_clean_program_is_clean(self):
        report = run_analysis("MOVI R0, 1\nhang: JMP hang")
        assert report.clean
        assert report.findings == []

    def test_an001_wild_write_into_monitor(self):
        report = run_analysis(
            "MOVI R0, 0xF00010\n"
            "ST [R0 + 0], R1\n"
            "hang: JMP hang")
        assert "AN001" in check_ids(report, SEV_ERROR)

    def test_an001_write_below_monitor_ok(self):
        report = run_analysis(
            "MOVI R0, 0x400000\n"
            "ST [R0 + 0], R1\n"
            "hang: JMP hang")
        assert "AN001" not in check_ids(report)

    def test_an002_privileged_at_ring3(self):
        report = run_analysis("CLI\nhang: JMP hang", entry_ring=3)
        assert "AN002" in check_ids(report, SEV_ERROR)

    def test_an002_privileged_at_ring0_ok(self):
        report = run_analysis("CLI\nhang: JMP hang", entry_ring=0)
        assert "AN002" not in check_ids(report)

    def test_an003_jump_out_of_image(self):
        report = run_analysis("JMP 0x210000")
        assert "AN003" in check_ids(report, SEV_ERROR)

    def test_an004_jump_into_instruction(self):
        report = run_analysis(
            "JMP target + 1\n"
            "target: MOVI R0, 1\n"
            "hang: JMP hang")
        assert "AN004" in check_ids(report, SEV_ERROR)

    def test_an005_fall_off_image_end(self):
        report = run_analysis("MOVI R0, 1")
        assert "AN005" in check_ids(report, SEV_ERROR)

    def test_an006_unreachable_code(self):
        report = run_analysis(
            "JMP done\n"
            "MOVI R0, 1\n"
            "MOVI R1, 2\n"
            "done: hang: JMP hang")
        assert "AN006" in check_ids(report, SEV_WARNING)

    def test_an008_unbounded_stack_growth(self):
        report = run_analysis("loop: PUSH R0\nJMP loop")
        assert "AN008" in check_ids(report, SEV_ERROR)

    def test_an008_balanced_loop_ok(self):
        report = run_analysis("loop: PUSH R0\nPOP R0\nJMP loop")
        assert "AN008" not in check_ids(report)

    def test_an009_unresolved_indirect(self):
        # R3 is TOP at entry: the JMPR target cannot be resolved.
        report = run_analysis("JMPR R3")
        assert "AN009" in check_ids(report, SEV_INFO)

    def test_resolved_indirect_not_flagged(self):
        report = run_analysis(
            "MOVI R3, target\n"
            "JMPR R3\n"
            "target: hang: JMP hang")
        assert "AN009" not in check_ids(report)
        assert report.clean

    def test_an010_reachable_bad_bytes(self):
        report = run_analysis("JMP bad\nbad: .byte 0xFF")
        assert "AN010" in check_ids(report, SEV_ERROR)

    def test_unreachable_data_not_an010(self):
        # Data after the final jump is never executed: linear sweep
        # sees it, but it must not be an error.
        report = run_analysis("hang: JMP hang\n.byte 0xFF, 0xFE")
        assert "AN010" not in check_ids(report)


# ---------------------------------------------------------------------------
# Report plumbing
# ---------------------------------------------------------------------------

class TestReport:
    def test_json_round_trip(self):
        report = run_analysis("MOVI R0, 0xF00010\n"
                              "ST [R0 + 0], R1\n"
                              "hang: JMP hang")
        document = json.loads(report.to_json())
        assert document["image"]["origin"] == ORG
        assert document["findings"]
        assert document["findings"][0]["check"] == "AN001"

    def test_counts_by_severity(self):
        report = run_analysis("JMPR R3")
        counts = report.counts_by_severity()
        assert counts["info"] >= 1
        assert counts["error"] == 0

    def test_format_text_mentions_counts(self):
        report = run_analysis("MOVI R0, 1\nhang: JMP hang")
        text = report.format_text()
        assert "0 error(s)" in text
