"""Unit tests for the TCP state machine and endpoint (PR 9)."""

import pytest

from repro.errors import ProtocolError
from repro.net.tcp import (
    CLOSE_WAIT,
    CLOSED,
    DEFAULT_MSS,
    ESTABLISHED,
    FLAG_ACK,
    FLAG_RST,
    FLAG_SYN,
    SYN_RCVD,
    TIME_WAIT,
    TcpConnection,
    TcpEndpoint,
    TcpSegment,
    seq_add,
    seq_lt,
    seq_sub,
)
from repro.sim.events import EventQueue, cycles_for_seconds

CPU_HZ = 1.26e9
IP_SERVER = b"\x0a\x00\x00\x01"
IP_CLIENT = b"\x0a\x00\x00\x02"
PORT = 8080


class Wire:
    """One direction of a loopback link with scripted frame drops."""

    def __init__(self, queue, latency=1_000):
        self.queue = queue
        self.latency = latency
        self.deliver = None
        self.sent = 0
        self.drop_next = 0          # drop this many upcoming frames
        self.drop_frames = set()    # drop by 1-based frame number

    def send(self, raw):
        self.sent += 1
        if self.drop_next > 0 or self.sent in self.drop_frames:
            self.drop_next = max(0, self.drop_next - 1)
            return
        self.queue.schedule_in(self.latency,
                               lambda raw=raw: self.deliver(raw))


class Loopback:
    """Two endpoints joined by a pair of scriptable wires."""

    def __init__(self, **listen_kwargs):
        self.queue = EventQueue()
        self.c2s = Wire(self.queue)
        self.s2c = Wire(self.queue)
        self.server = TcpEndpoint(self.queue, CPU_HZ, IP_SERVER,
                                  self.s2c.send, name="srv")
        self.client = TcpEndpoint(self.queue, CPU_HZ, IP_CLIENT,
                                  self.c2s.send, name="cli")
        self.c2s.deliver = self.server.receive_frame
        self.s2c.deliver = self.client.receive_frame
        self.accepted = []
        self.server.listen(PORT, self.accepted.append, **listen_kwargs)

    def connect(self, **kwargs):
        return self.client.connect(IP_SERVER, PORT, **kwargs)

    def run(self, seconds=0.1):
        self.queue.run_until(self.queue.now
                             + cycles_for_seconds(seconds, CPU_HZ))

    def handshake(self, **kwargs):
        conn = self.connect(**kwargs)
        self.run(0.01)
        assert conn.state == ESTABLISHED
        assert self.accepted and self.accepted[0].state == ESTABLISHED
        return conn, self.accepted[0]


class TestSeqArithmetic:
    def test_wraparound_compare(self):
        assert seq_lt(0xFFFF_FFF0, 0x10)
        assert not seq_lt(0x10, 0xFFFF_FFF0)
        assert seq_add(0xFFFF_FFFF, 2) == 1
        assert seq_sub(1, 0xFFFF_FFFF) == 2


class TestTcpSegment:
    def test_pack_unpack_round_trip(self):
        segment = TcpSegment(1234, 80, seq=0xDEAD, ack=0xBEEF,
                             flags=FLAG_ACK, window=4096,
                             payload=b"hello tcp")
        raw = segment.pack(IP_CLIENT, IP_SERVER)
        parsed = TcpSegment.unpack(raw, IP_CLIENT, IP_SERVER)
        assert parsed == segment

    def test_checksum_rejects_corruption(self):
        raw = bytearray(TcpSegment(1, 2, 3, 4, FLAG_ACK, 10,
                                   b"payload").pack(IP_CLIENT, IP_SERVER))
        raw[-1] ^= 0x40
        with pytest.raises(ProtocolError):
            TcpSegment.unpack(bytes(raw), IP_CLIENT, IP_SERVER)

    def test_short_segment_rejected(self):
        with pytest.raises(ProtocolError):
            TcpSegment.unpack(b"\x00" * 10)

    def test_syn_and_fin_occupy_sequence_space(self):
        assert TcpSegment(1, 2, 0, 0, FLAG_SYN, 0).seq_len == 1
        assert TcpSegment(1, 2, 0, 0, FLAG_ACK, 0, b"abc").seq_len == 3


class TestHandshakeAndTransfer:
    def test_three_way_handshake(self):
        loop = Loopback()
        conn, server_conn = loop.handshake()
        assert conn.stats.segments_sent >= 2      # SYN + ACK
        assert server_conn.stats.segments_sent >= 1

    def test_clean_transfer_and_teardown(self):
        loop = Loopback()
        conn, server_conn = loop.handshake()
        payload = bytes(range(256)) * 40          # ~10 KB
        conn.send(payload)
        conn.close()
        loop.run(0.1)
        assert server_conn.take() == payload
        # Server saw FIN -> CLOSE_WAIT; close back and drain TIME_WAIT.
        server_conn.close()
        loop.run(0.2)
        assert conn.state == CLOSED
        assert server_conn.state == CLOSED

    def test_time_wait_holds_then_expires(self):
        loop = Loopback()
        conn, server_conn = loop.handshake()
        conn.close()
        loop.run(0.01)
        server_conn.close()
        loop.run(0.005)
        assert conn.state == TIME_WAIT           # active closer lingers
        loop.run(0.2)                            # > 2 * MSL
        assert conn.state == CLOSED

    def test_abort_sends_rst(self):
        loop = Loopback()
        conn, server_conn = loop.handshake()
        conn.abort()
        loop.run(0.01)
        assert conn.state == CLOSED
        assert server_conn.state == CLOSED
        assert server_conn.stats.resets_received == 1

    def test_send_before_established_rejected(self):
        loop = Loopback()
        conn = loop.connect()
        with pytest.raises(ProtocolError):
            conn.send(b"too early")


class TestLossRecovery:
    def test_rto_retransmits_lost_segment(self):
        loop = Loopback()
        conn, server_conn = loop.handshake()
        loop.c2s.drop_next = 1
        conn.send(b"once more unto the breach")
        loop.run(0.2)
        assert server_conn.take() == b"once more unto the breach"
        assert conn.stats.retransmits >= 1
        assert conn.stats.rto_expirations >= 1

    def test_rto_backs_off_exponentially(self):
        loop = Loopback()
        conn, server_conn = loop.handshake()
        loop.c2s.drop_next = 3                   # eat three attempts
        conn.send(b"persistence")
        loop.run(0.5)
        assert server_conn.take() == b"persistence"
        assert conn.stats.rto_expirations >= 3

    def test_fast_retransmit_on_triple_dupack(self):
        loop = Loopback()
        conn, server_conn = loop.handshake()
        # Grow cwnd past 6 segments so the burst actually flies.
        conn.send(bytes(4 * DEFAULT_MSS))
        loop.run(0.05)
        server_conn.take()
        loop.c2s.drop_next = 1                   # lose the next data frame
        conn.send(bytes(6 * DEFAULT_MSS))
        loop.run(0.01)                           # well inside the RTO
        assert conn.stats.fast_retransmits == 1
        assert conn.stats.dupacks >= 3
        assert len(server_conn.take()) == 6 * DEFAULT_MSS
        assert server_conn.stats.out_of_order >= 1

    def test_lost_handshake_ack_recovers_via_dup_synack(self):
        """Regression: an ESTABLISHED client must re-ACK a retransmitted
        SYN|ACK so a server stuck in SYN_RCVD can complete."""
        loop = Loopback()
        loop.c2s.drop_frames = {2}               # SYN passes, ACK dies
        conn = loop.connect()
        loop.run(0.005)
        assert conn.state == ESTABLISHED
        assert loop.accepted[0].state == SYN_RCVD
        loop.run(0.3)                            # SYN|ACK retransmit cycle
        assert loop.accepted[0].state == ESTABLISHED
        assert loop.accepted[0].stats.retransmits >= 1
        # The repaired connection must still carry data both ways.
        conn.send(b"late but intact")
        loop.run(0.05)
        assert loop.accepted[0].take() == b"late but intact"


class TestFlowControl:
    def test_zero_window_stalls_then_probes(self):
        loop = Loopback(rcv_buf=2048)
        conn, server_conn = loop.handshake()
        payload = bytes(8 * 1024)
        conn.send(payload)
        loop.run(0.3)
        assert conn.stats.zero_window_stalls >= 1
        assert conn.stats.window_probes >= 1
        # Receiver drains; window reopens; the rest flows.
        received = bytearray()
        for _ in range(40):
            received += server_conn.take()
            loop.run(0.05)
            if len(received) == len(payload):
                break
        assert bytes(received) == payload

    def test_advertised_window_tracks_buffer(self):
        loop = Loopback(rcv_buf=4096)
        conn, server_conn = loop.handshake()
        conn.send(bytes(3000))
        loop.run(0.05)
        assert server_conn.rcv_wnd == 4096 - 3000
        server_conn.take()
        assert server_conn.rcv_wnd == 4096


class TestCongestionControl:
    def test_slow_start_growth(self):
        loop = Loopback()
        conn, server_conn = loop.handshake()
        assert conn.cwnd == 2 * DEFAULT_MSS
        conn.send(bytes(8 * DEFAULT_MSS))
        loop.run(0.1)
        server_conn.take()
        assert conn.cwnd > 2 * DEFAULT_MSS

    def test_timeout_collapses_cwnd(self):
        loop = Loopback()
        conn, server_conn = loop.handshake()
        conn.send(bytes(6 * DEFAULT_MSS))
        loop.run(0.05)
        grown = conn.cwnd
        loop.c2s.drop_next = 2
        conn.send(bytes(2 * DEFAULT_MSS))
        loop.run(0.3)
        assert conn.stats.rto_expirations >= 1
        assert conn.cwnd < grown                 # Tahoe: back to one MSS


class TestEndpoint:
    def test_unknown_port_gets_rst(self):
        loop = Loopback()
        conn = loop.client.connect(IP_SERVER, PORT + 1)
        loop.run(0.05)
        assert conn.state == CLOSED
        assert loop.server.rst_sent == 1
        assert conn.stats.resets_received == 1

    def test_malformed_frame_counted_not_raised(self):
        loop = Loopback()
        loop.server.receive_frame(b"\x00" * 10)
        assert loop.server.malformed == 1

    def test_ephemeral_ports_deterministic(self):
        first = Loopback()
        second = Loopback()
        a = first.connect()
        b = second.connect()
        assert a.local_port == b.local_port

    def test_stats_aggregate_connections(self):
        loop = Loopback()
        conn, server_conn = loop.handshake()
        conn.send(b"x" * 100)
        loop.run(0.05)
        stats = loop.server.stats()
        assert stats["bytes_received"] == 100
        assert stats["connections"] == 1
        assert stats["frames_received"] > 0
