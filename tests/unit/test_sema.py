"""Differential anchor for :mod:`repro.analysis.sema`.

The reference semantics the translation validator trusts are checked
here against the interpreter itself: every inlined mnemonic's symbolic
effect, evaluated concretely, must match what ``Cpu.step`` does to the
register file and FLAGS; every branch predicate must agree with the
taken/not-taken decision of the real Jcc.  If sema.py and the CPU ever
drift, this file fails before the validator starts certifying blocks
against the wrong spec."""

import random

import pytest

from repro.analysis import sema
from repro.asm import assemble
from repro.hw import Cpu, IoBus, PhysicalMemory, firmware, isa

ORIGIN = 0x4000

#: Seeded initial FLAGS values: arithmetic-bit combinations on top of
#: the IF the firmware leaves set (never TF — that would single-step
#: into a nonexistent IDT).
FLAG_SEEDS = (0x200, 0x201, 0x240, 0x2C1, 0xAC1, 0xAC9)


def fresh_cpu():
    cpu = Cpu(PhysicalMemory(1 << 20), IoBus(), translate=False)
    firmware.install_flat_firmware(cpu)
    return cpu


def run_one(line, regs_init, flags_init):
    """Execute one instruction; return (regs after, flags after)."""
    cpu = fresh_cpu()
    program = assemble(f"    {line}\n    HLT\n", origin=ORIGIN)
    program.load_into(cpu.memory)
    cpu.pc = ORIGIN
    cpu.regs = list(regs_init)
    cpu.flags = flags_init
    cpu.step()
    return list(cpu.regs), cpu.flags


def symbolic_outcome(mnemonic, ops, regs_init, flags_init):
    """Predict (regs, flags) after one inlined instruction via sema."""
    sym_regs = tuple(sema.reg(index) for index in range(isa.NUM_GPRS))
    effect = sema.inline_effect(mnemonic, ops, sym_regs, sema.FLAGS)
    env = {sema.reg(index): value
           for index, value in enumerate(regs_init)}
    env[sema.FLAGS] = flags_init
    regs = list(regs_init)
    for index, expr in effect.regs.items():
        regs[index] = sema.evaluate(expr, env) & sema.MASK32
    flags = flags_init if effect.flags is None \
        else sema.evaluate(effect.flags, env)
    return regs, flags


def random_regs(rng):
    picks = (0, 1, 3, 64, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF,
             0x12345678, 0x9E3779B9)
    return [rng.choice(picks) if rng.random() < 0.7
            else rng.getrandbits(32) for _ in range(isa.NUM_GPRS)]


#: (mnemonic, operand builder, assembly formatter).
INLINE_FORMS = [
    ("MOVI", lambda rng: (1, rng.getrandbits(16)),
     lambda o: f"MOVI R{o[0]}, {o[1]}"),
    ("MOV", lambda rng: (1, 2), lambda o: f"MOV R{o[0]}, R{o[1]}"),
    ("LEA", lambda rng: (1, 2, rng.randrange(0, 64)),
     lambda o: f"LEA R{o[0]}, [R{o[1]}+{o[2]}]"),
    ("XCHG", lambda rng: (1, 2), lambda o: f"XCHG R{o[0]}, R{o[1]}"),
    ("ADD", lambda rng: (1, 2), lambda o: f"ADD R{o[0]}, R{o[1]}"),
    ("ADDI", lambda rng: (1, rng.getrandbits(16)),
     lambda o: f"ADDI R{o[0]}, {o[1]}"),
    ("SUB", lambda rng: (1, 2), lambda o: f"SUB R{o[0]}, R{o[1]}"),
    ("SUBI", lambda rng: (1, rng.getrandbits(16)),
     lambda o: f"SUBI R{o[0]}, {o[1]}"),
    ("CMP", lambda rng: (1, 2), lambda o: f"CMP R{o[0]}, R{o[1]}"),
    ("CMPI", lambda rng: (1, rng.getrandbits(16)),
     lambda o: f"CMPI R{o[0]}, {o[1]}"),
    ("AND", lambda rng: (1, 2), lambda o: f"AND R{o[0]}, R{o[1]}"),
    ("ANDI", lambda rng: (1, rng.getrandbits(16)),
     lambda o: f"ANDI R{o[0]}, {o[1]}"),
    ("OR", lambda rng: (1, 2), lambda o: f"OR R{o[0]}, R{o[1]}"),
    ("ORI", lambda rng: (1, rng.getrandbits(16)),
     lambda o: f"ORI R{o[0]}, {o[1]}"),
    ("XOR", lambda rng: (1, 2), lambda o: f"XOR R{o[0]}, R{o[1]}"),
    ("XORI", lambda rng: (1, rng.getrandbits(16)),
     lambda o: f"XORI R{o[0]}, {o[1]}"),
    ("TEST", lambda rng: (1, 2), lambda o: f"TEST R{o[0]}, R{o[1]}"),
    ("SHLI", lambda rng: (1, rng.randrange(0, 32)),
     lambda o: f"SHLI R{o[0]}, {o[1]}"),
    ("SHRI", lambda rng: (1, rng.randrange(0, 32)),
     lambda o: f"SHRI R{o[0]}, {o[1]}"),
    ("SHL", lambda rng: (1, 2), lambda o: f"SHL R{o[0]}, R{o[1]}"),
    ("SHR", lambda rng: (1, 2), lambda o: f"SHR R{o[0]}, R{o[1]}"),
    ("MUL", lambda rng: (1, 2), lambda o: f"MUL R{o[0]}, R{o[1]}"),
    ("MULI", lambda rng: (1, rng.getrandbits(12)),
     lambda o: f"MULI R{o[0]}, {o[1]}"),
    ("DIVI", lambda rng: (1, rng.randrange(1, 1 << 12)),
     lambda o: f"DIVI R{o[0]}, {o[1]}"),
    ("NOT", lambda rng: 1, lambda o: f"NOT R{o}"),
    ("NEG", lambda rng: 1, lambda o: f"NEG R{o}"),
    ("NOP", lambda rng: None, lambda o: "NOP"),
]


class TestInlineEffectsMatchCpu:
    @pytest.mark.parametrize(
        "mnemonic,make_ops,fmt", INLINE_FORMS,
        ids=[form[0] for form in INLINE_FORMS])
    def test_against_interpreter(self, mnemonic, make_ops, fmt):
        rng = random.Random(hash(mnemonic) & 0xFFFF)
        for trial in range(8):
            ops = make_ops(rng)
            regs_init = random_regs(rng)
            if mnemonic == "SHL" or mnemonic == "SHR":
                regs_init[2] = rng.randrange(0, 32)
            flags_init = FLAG_SEEDS[trial % len(FLAG_SEEDS)]
            got_regs, got_flags = run_one(fmt(ops), regs_init,
                                          flags_init)
            want_regs, want_flags = symbolic_outcome(
                mnemonic, ops, regs_init, flags_init)
            assert got_regs == want_regs, \
                f"{fmt(ops)} regs diverge on {regs_init}"
            assert got_flags == want_flags, \
                f"{fmt(ops)} flags diverge on {regs_init}"


class TestBranchPredicatesMatchCpu:
    BRANCHES = sorted(sema.CONDITIONAL_BRANCHES)

    @pytest.mark.parametrize("mnemonic", BRANCHES)
    def test_taken_decision(self, mnemonic):
        for flags_init in (0x200, 0x201, 0x240, 0x280, 0xA00, 0x2C1,
                           0xAC1, 0xA80, 0x241, 0xAC9):
            cpu = fresh_cpu()
            program = assemble(f"""
                {mnemonic} hit
                HLT
            hit:
                HLT
            """, origin=ORIGIN)
            program.load_into(cpu.memory)
            cpu.pc = ORIGIN
            cpu.flags = flags_init
            cpu.step()
            actually_taken = cpu.pc == program.symbol("hit")
            taken, not_taken = sema.branch_conditions(mnemonic,
                                                      sema.FLAGS)
            env = {sema.FLAGS: flags_init}
            assert sema.evaluate_bool(taken, env) == actually_taken, \
                f"{mnemonic} with flags {flags_init:#x}"
            assert sema.evaluate_bool(not_taken, env) \
                == (not actually_taken)


class TestClassificationTables:
    def test_partition_of_translatable_set(self):
        assert not (sema.INLINE & sema.HANDLER)
        assert sema.STORE <= sema.MEMORY <= sema.HANDLER
        assert sema.CONDITIONAL_BRANCHES <= sema.TERMINATORS

    def test_stack_delta_basics(self):
        assert sema.stack_delta("PUSH", 1) == 4
        assert sema.stack_delta("POP", 1) == -4
        assert sema.stack_delta("RET", None) == -4
        assert sema.stack_delta("ADDI", (isa.REG_SP, 8)) == -8
        assert sema.stack_delta("SUBI", (isa.REG_SP, 8)) == 8
        assert sema.stack_delta("MOV", (isa.REG_SP, 1)) is None
        assert sema.stack_delta("ADD", (1, 2)) == 0

    def test_regs_written_havoc_set(self):
        assert sema.regs_written("INT", 3) \
            == sema.ALL_GPRS - {isa.REG_SP}
        assert sema.regs_written("POP", 2) == frozenset({2, isa.REG_SP})
        assert sema.regs_written("ST", (1, 0, 2)) == frozenset()


class TestSimplifyAndNormalizer:
    def test_constant_folding(self):
        expr = ("add", sema.const(3), ("add", sema.const(4),
                                       sema.reg(1)))
        assert sema.simplify(expr) \
            == ("add", sema.reg(1), sema.const(7))

    def test_commutative_reordering_proves_equality(self):
        norm = sema.Normalizer()
        a = ("add", sema.reg(1), ("add", sema.reg(2), sema.const(5)))
        b = ("add", ("add", sema.const(5), sema.reg(1)), sema.reg(2))
        equal, how, witness = norm.equal(a, b)
        assert equal and how == "syntactic" and witness is None

    def test_refutation_produces_witness(self):
        norm = sema.Normalizer()
        a = ("add", sema.reg(1), sema.const(1))
        b = ("add", sema.reg(1), sema.const(2))
        equal, how, witness = norm.equal(a, b)
        assert not equal and how == "refuted"
        assert witness is not None and sema.reg(1) in witness

    def test_condition_directed_probe_kills_wrong_zf_bit(self):
        """The generic battery rarely lands on a derived zero; the
        eq0-inversion probe must force it (the zf-wrong-bit mutation)."""
        norm = sema.Normalizer()
        m = ("and", ("add", sema.reg(1), sema.const(3)),
             sema.const(sema.MASK32))
        good = ("cond", ("eq0", m), sema.const(64), sema.const(0))
        bad = ("cond", ("eq0", m), sema.const(32), sema.const(0))
        equal, how, witness = norm.equal(good, bad)
        assert not equal, "wrong ZF bit must be refuted"

    def test_invert_solves_constant_chains(self):
        norm = sema.Normalizer()
        leaf = norm.node("init-reg", 1)
        chain = norm.node("xor",
                          norm.node("add", leaf, norm.node("const", 3)),
                          norm.node("const", 0x55))
        assignment = norm.invert(chain, 0)
        assert assignment is not None
        value = assignment[leaf]
        assert ((value + 3) & sema.MASK32) ^ 0x55 == 0 \
            or ((value + 3) ^ 0x55) & sema.MASK32 == 0

    def test_battery_is_deterministic(self):
        symbols = [sema.reg(1), sema.FLAGS]
        first = sema.battery_environments(symbols)
        second = sema.battery_environments(symbols)
        assert first == second
        assert len(first) > 60
