"""Unit tests for the assembled Machine and the firmware helpers."""

import pytest

from repro.asm import assemble
from repro.errors import BusError
from repro.hw import firmware
from repro.hw.machine import DEFAULT_CPU_HZ, Machine, MachineConfig
from repro.hw.seg import DESCRIPTOR_SIZE, SegmentDescriptor


class TestMachineAssembly:
    def test_default_board_population(self):
        machine = Machine()
        names = machine.bus.devices()
        for expected in ("pic-master", "pic-slave", "pit", "uart",
                         "scsi", "nic"):
            assert expected in names
        assert len(machine.disks) == 3
        assert machine.budget.hz == DEFAULT_CPU_HZ

    def test_nic_optional(self):
        machine = Machine(MachineConfig(with_nic=False))
        assert machine.nic is None
        assert "nic" not in machine.bus.devices()

    def test_custom_disks(self):
        machine = Machine(MachineConfig(disks=[(1000, 42)]))
        assert len(machine.disks) == 1
        assert machine.disks[0].blocks == 1000
        assert machine.disks[0].seed == 42

    def test_overlapping_port_registration_rejected(self):
        machine = Machine()
        from repro.hw.bus import PortDevice

        class Dummy(PortDevice):
            pass

        with pytest.raises(BusError):
            machine.bus.register_ports(0x20, 2, Dummy(), "clash")

    def test_load_program_sets_pc(self):
        machine = Machine()
        program = assemble(".org 0x3000\nNOP\nHLT\n")
        machine.load_program(program)
        assert machine.cpu.pc == 0x3000
        assert machine.memory.read_u8(0x3000) == 0x00

    def test_run_until_predicate(self):
        machine = Machine()
        firmware.install_flat_firmware(machine.cpu)
        program = assemble("""
        loop:
            ADDI R0, 1
            JMP loop
        """, origin=0x4000)
        program.load_into(machine.memory)
        machine.cpu.pc = 0x4000
        machine.run(10_000, until=lambda: machine.cpu.regs[0] >= 5)
        assert machine.cpu.regs[0] == 5

    def test_halted_machine_fast_forwards_to_events(self):
        """HLT with a pending timer wakes at the timer's cycle, not by
        burning instructions."""
        machine = Machine()
        machine.program_pic_defaults()
        firmware.install_flat_firmware(machine.cpu)
        machine.pit.program_periodic(1000.0)
        handler = assemble("MOVI R5, 1\nCLI\nHLT\n", origin=0x6000)
        handler.load_into(machine.memory)
        selectors = firmware.build_gdt(machine.memory,
                                       machine.memory.size)
        firmware.write_idt_gate(machine.memory, 32, 0x6000,
                                selectors.code0)
        program = assemble("STI\nHLT\nJMP .-1\n", origin=0x4000)
        program.load_into(machine.memory)
        machine.cpu.pc = 0x4000
        machine.run(100)
        assert machine.cpu.regs[5] == 1
        # Simulated time jumped to the tick (~1.26e6 cycles at 1 kHz).
        assert machine.cpu.cycle_count > 1_000_000

    def test_dead_halt_terminates_run(self):
        machine = Machine()
        firmware.install_flat_firmware(machine.cpu)
        program = assemble("CLI\nHLT\n", origin=0x4000)
        program.load_into(machine.memory)
        machine.cpu.pc = 0x4000
        executed = machine.run(1_000)
        assert executed < 1_000
        assert machine.cpu.halted


class TestFirmwareHelpers:
    def test_build_gdt_layout(self):
        machine = Machine()
        selectors = firmware.build_gdt(machine.memory, 0x100000)
        raw = machine.memory.read(
            firmware.GDT_BASE + firmware.IDX_CODE3 * DESCRIPTOR_SIZE,
            DESCRIPTOR_SIZE)
        descriptor = SegmentDescriptor.unpack(raw)
        assert descriptor.dpl == 3 and descriptor.code
        assert selectors.code_for_ring(3) == selectors.code3
        assert selectors.data_for_ring(0) == selectors.data0

    def test_clear_idt_makes_gates_absent(self):
        machine = Machine()
        firmware.clear_idt(machine.memory)
        from repro.hw.cpu import IdtGate
        raw = machine.memory.read(firmware.IDT_BASE + 8 * 13, 8)
        assert not IdtGate.unpack(raw).present

    def test_write_tss(self):
        machine = Machine()
        firmware.write_tss(machine.memory, {0: (0x8000, 8),
                                            1: (0xC000, 0x15)})
        assert machine.memory.read_u32(firmware.TSS_BASE) == 0x8000
        assert machine.memory.read_u32(firmware.TSS_BASE + 12) == 0x15

    def test_monitor_base_is_top_megabyte(self):
        assert firmware.monitor_base(16 << 20) == (16 << 20) - (1 << 20)

    def test_install_flat_firmware_boots_ring0(self):
        machine = Machine()
        selectors = firmware.install_flat_firmware(machine.cpu)
        assert machine.cpu.cpl == 0
        assert machine.cpu.sp == firmware.RING0_STACK_TOP
        assert machine.cpu.gdt.base == firmware.GDT_BASE
        assert machine.cpu.segments[0].selector == selectors.code0
