"""Unit tests for the figure/ratio data exporter."""

import json

import pytest

from repro.perf.export import (
    export_figure_csv,
    export_figure_json,
    figure_rows,
    load_figure_csv,
)
from repro.perf.load import LoadSample
from repro.perf.sweep import FigureSeries, HeadlineRatios


def _fake_series():
    series = {}
    for stack, loads in (("bare", (0.1, 0.2)), ("lvmm", (0.5, 0.9))):
        figure = FigureSeries(stack)
        for index, load in enumerate(loads):
            rate = (index + 1) * 50e6
            figure.samples.append(LoadSample(
                stack=stack, target_rate_bps=rate,
                achieved_rate_bps=rate * 0.97,
                demanded_load=load, segments_sent=index + 3,
                interrupts=100 * (index + 1)))
        series[stack] = figure
    return series


class TestFigureRows:
    def test_one_row_per_point(self):
        rows = figure_rows(_fake_series())
        assert len(rows) == 4
        assert {row["stack"] for row in rows} == {"bare", "lvmm"}

    def test_row_fields(self):
        row = figure_rows(_fake_series())[0]
        assert row["rate_mbps"] == 50.0
        assert row["cpu_load_pct"] == 10.0
        assert row["sustainable"] is True
        assert "legend" in row


class TestCsvExport:
    def test_round_trip(self, tmp_path):
        path = export_figure_csv(_fake_series(), tmp_path / "fig.csv")
        rows = load_figure_csv(path)
        assert len(rows) == 4
        assert rows[0]["stack"] == "bare"
        assert float(rows[0]["rate_mbps"]) == 50.0

    def test_empty_sweep_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_figure_csv({}, tmp_path / "fig.csv")


class TestJsonExport:
    def test_document_structure(self, tmp_path):
        ratios = HeadlineRatios(bare_max_bps=700e6, lvmm_max_bps=182e6,
                                fullvmm_max_bps=33.7e6)
        path = export_figure_json(_fake_series(), tmp_path / "fig.json",
                                  ratios)
        document = json.loads(path.read_text())
        assert document["experiment"] == "fig-3.1"
        assert len(document["series"]) == 4
        headline = document["headline_ratios"]
        assert headline["lvmm_vs_fullvmm"] == pytest.approx(5.4, rel=0.01)
        assert headline["paper_lvmm_vs_bare"] == 0.26

    def test_without_ratios(self, tmp_path):
        path = export_figure_json(_fake_series(), tmp_path / "fig.json")
        document = json.loads(path.read_text())
        assert "headline_ratios" not in document
