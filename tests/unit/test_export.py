"""Unit tests for the figure/ratio data exporter."""

import json

import pytest

from repro.perf.export import (
    export_figure_csv,
    export_figure_json,
    figure_rows,
    load_figure_csv,
)
from repro.perf.load import LoadSample
from repro.perf.sweep import FigureSeries, HeadlineRatios


def _fake_series():
    series = {}
    for stack, loads in (("bare", (0.1, 0.2)), ("lvmm", (0.5, 0.9))):
        figure = FigureSeries(stack)
        for index, load in enumerate(loads):
            rate = (index + 1) * 50e6
            figure.samples.append(LoadSample(
                stack=stack, target_rate_bps=rate,
                achieved_rate_bps=rate * 0.97,
                demanded_load=load, segments_sent=index + 3,
                interrupts=100 * (index + 1)))
        series[stack] = figure
    return series


class TestFigureRows:
    def test_one_row_per_point(self):
        rows = figure_rows(_fake_series())
        assert len(rows) == 4
        assert {row["stack"] for row in rows} == {"bare", "lvmm"}

    def test_row_fields(self):
        row = figure_rows(_fake_series())[0]
        assert row["rate_mbps"] == 50.0
        assert row["cpu_load_pct"] == 10.0
        assert row["sustainable"] is True
        assert "legend" in row


class TestCsvExport:
    def test_round_trip(self, tmp_path):
        path = export_figure_csv(_fake_series(), tmp_path / "fig.csv")
        rows = load_figure_csv(path)
        assert len(rows) == 4
        assert rows[0]["stack"] == "bare"
        assert float(rows[0]["rate_mbps"]) == 50.0

    def test_empty_sweep_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_figure_csv({}, tmp_path / "fig.csv")


class TestJsonExport:
    def test_document_structure(self, tmp_path):
        ratios = HeadlineRatios(bare_max_bps=700e6, lvmm_max_bps=182e6,
                                fullvmm_max_bps=33.7e6)
        path = export_figure_json(_fake_series(), tmp_path / "fig.json",
                                  ratios)
        document = json.loads(path.read_text())
        assert document["experiment"] == "fig-3.1"
        assert len(document["series"]) == 4
        headline = document["headline_ratios"]
        assert headline["lvmm_vs_fullvmm"] == pytest.approx(5.4, rel=0.01)
        assert headline["paper_lvmm_vs_bare"] == 0.26

    def test_without_ratios(self, tmp_path):
        path = export_figure_json(_fake_series(), tmp_path / "fig.json")
        document = json.loads(path.read_text())
        assert "headline_ratios" not in document


class TestReplayStatsExport:
    def test_collects_each_source(self, tmp_path):
        from repro.core.snapshot import CheckpointStore
        from repro.obs.metrics import collect_replay
        from repro.perf.export import export_replay_stats

        class _FakeSnapshot:
            size_bytes = 123

        store = CheckpointStore(max_snapshots=4)
        store.save("a", _FakeSnapshot())

        class _FakeRecorder:
            def stats(self):
                return {"frames": 9, "journal_bytes": 400}

        stats = collect_replay(recorder=_FakeRecorder(), store=store)
        assert stats["recorder"]["frames"] == 9
        assert stats["checkpoint_store"]["held_bytes"] == 123
        assert "replay" not in stats

        with pytest.warns(DeprecationWarning, match="export_stats_json"):
            path = export_replay_stats(tmp_path / "replay.json",
                                       recorder=_FakeRecorder(),
                                       store=store, extra={"seed": 7})
        document = json.loads(path.read_text())
        assert document["experiment"] == "record-replay"
        assert document["seed"] == 7
        assert document["stats"]["checkpoint_store"]["snapshots"] == 1

    def test_legacy_adapter_warns_and_delegates(self):
        from repro.perf.export import replay_stats

        class _FakeRecorder:
            def stats(self):
                return {"frames": 2}

        with pytest.warns(DeprecationWarning, match="collect_replay"):
            stats = replay_stats(recorder=_FakeRecorder())
        assert stats["recorder"]["frames"] == 2
