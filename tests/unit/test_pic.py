"""Unit tests for the 8259A PIC pair."""

import pytest

from repro.hw.pic import PicPair, standard_setup


@pytest.fixture
def pic():
    pair = PicPair()
    standard_setup(pair)
    return pair


class TestInitSequence:
    def test_vector_bases_programmed(self, pic):
        assert pic.master.vector_base == 32
        assert pic.slave.vector_base == 40

    def test_init_unmasks(self, pic):
        assert pic.master.imr == 0
        assert pic.slave.imr == 0

    def test_reset_state_masked(self):
        assert PicPair().master.imr == 0xFF


class TestPriorityAndDelivery:
    def test_single_irq_delivers_its_vector(self, pic):
        pic.raise_irq(4)
        assert pic.has_pending()
        assert pic.pending_vector() == 36
        assert pic.acknowledge() == 36

    def test_lower_numbered_irq_wins(self, pic):
        pic.raise_irq(5)
        pic.raise_irq(1)
        assert pic.acknowledge() == 33
        pic.master_port().port_write(0, 0x20, 1)  # EOI for IRQ1
        assert pic.acknowledge() == 37

    def test_in_service_blocks_lower_priority(self, pic):
        pic.raise_irq(3)
        assert pic.acknowledge() == 35
        pic.raise_irq(5)
        assert not pic.has_pending()  # IRQ3 still in service
        pic.master_port().port_write(0, 0x20, 1)  # non-specific EOI
        assert pic.pending_vector() == 37

    def test_higher_priority_preempts_in_service(self, pic):
        pic.raise_irq(5)
        assert pic.acknowledge() == 37
        pic.raise_irq(1)
        # IRQ1 outranks in-service IRQ5.
        assert pic.pending_vector() == 33

    def test_masked_irq_not_delivered(self, pic):
        pic.master_port().port_write(1, 1 << 4, 1)  # mask IRQ4
        pic.raise_irq(4)
        assert not pic.has_pending()
        pic.master_port().port_write(1, 0, 1)  # unmask
        assert pic.pending_vector() == 36

    def test_acknowledge_without_pending_raises(self, pic):
        with pytest.raises(RuntimeError):
            pic.acknowledge()


class TestCascade:
    def test_slave_irq_routes_through_cascade(self, pic):
        pic.raise_irq(11)
        assert pic.pending_vector() == 40 + 3
        assert pic.acknowledge() == 43
        assert pic.slave.isr == 1 << 3
        assert pic.master.isr & (1 << 2)  # cascade line in service

    def test_slave_eoi_sequence(self, pic):
        pic.raise_irq(11)
        pic.acknowledge()
        # OS sends EOI to both chips, slave first.
        pic.slave_port().port_write(0, 0x20, 1)
        pic.master_port().port_write(0, 0x20, 1)
        assert pic.slave.isr == 0
        assert pic.master.isr == 0
        pic.raise_irq(11)
        assert pic.pending_vector() == 43

    def test_lower_irq_clears_cascade_when_slave_idle(self, pic):
        pic.raise_irq(10)
        pic.lower_irq(10)
        assert not pic.has_pending()


class TestEoiModes:
    def test_specific_eoi(self, pic):
        pic.raise_irq(2 + 4)  # IRQ6
        pic.acknowledge()
        pic.master_port().port_write(0, 0x60 | 6, 1)
        assert pic.master.isr == 0

    def test_nonspecific_eoi_clears_highest(self, pic):
        pic.raise_irq(1)
        pic.acknowledge()
        pic.master.isr |= 1 << 6   # pretend IRQ6 also in service
        pic.master_port().port_write(0, 0x20, 1)
        assert pic.master.isr == 1 << 6  # highest priority (1) cleared


class TestReadback:
    def test_read_irr_default(self, pic):
        pic.raise_irq(3)
        assert pic.master_port().port_read(0, 1) == 1 << 3

    def test_read_isr_after_ocw3(self, pic):
        pic.raise_irq(3)
        pic.acknowledge()
        pic.master_port().port_write(0, 0x0B, 1)  # OCW3: read ISR
        assert pic.master_port().port_read(0, 1) == 1 << 3

    def test_read_imr_from_data_port(self, pic):
        pic.master_port().port_write(1, 0xA5, 1)
        assert pic.master_port().port_read(1, 1) == 0xA5

    def test_state_snapshot(self, pic):
        pic.raise_irq(3)
        state = pic.state()
        assert state["master"]["irr"] == 1 << 3
        assert state["master"]["base"] == 32
