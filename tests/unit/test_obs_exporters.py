"""Unit tests: Chrome trace / collapsed-stack / metrics exporters."""

import json

from repro.debugger.symbols import SymbolTable
from repro.obs.bus import CAT_IRQ, CAT_MONITOR, CAT_TRAP, TraceBus
from repro.obs.exporters import (
    TRACK_IDS,
    chrome_trace,
    collapsed_stacks,
    metrics_json,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import GuestProfiler


def _bus_with_events():
    bus = TraceBus()
    bus.enabled = True
    bus.begin(CAT_MONITOR, "run", cycle=10)
    bus.instant(CAT_IRQ, "irq-raise", cycle=20, args={"line": 4})
    bus.complete(CAT_TRAP, "trap", cycle=30, dur=11860, pc=0x4000)
    bus.end("run", cycle=40)
    return bus


class TestChromeTrace:
    def test_document_structure_validates(self):
        document = chrome_trace(_bus_with_events())
        assert validate_chrome_trace(document) == []
        events = document["traceEvents"]
        # metadata names every track
        names = [e["args"]["name"] for e in events if e["ph"] == "M"]
        assert "repro" in names
        for category in TRACK_IDS:
            assert category in names

    def test_category_maps_to_stable_track(self):
        document = chrome_trace(_bus_with_events())
        irq = [e for e in document["traceEvents"]
               if e.get("name") == "irq-raise"]
        assert irq[0]["tid"] == TRACK_IDS["irq"]
        assert irq[0]["s"] == "t"

    def test_complete_event_has_duration_and_symbol(self):
        symbols = SymbolTable()
        symbols.add("start", 0x4000)
        document = chrome_trace(_bus_with_events(), symbols=symbols)
        trap = [e for e in document["traceEvents"]
                if e.get("name") == "trap"][0]
        assert trap["ph"] == "X" and trap["dur"] == 11860
        assert trap["args"]["pc"] == "0x00004000"
        assert trap["args"]["sym"] == "start"

    def test_open_spans_are_virtually_closed(self):
        bus = TraceBus()
        bus.enabled = True
        bus.begin(CAT_MONITOR, "run", cycle=10)
        bus.begin(CAT_TRAP, "nested", cycle=20)
        document = chrome_trace(bus)
        assert validate_chrome_trace(document) == []
        closes = [e for e in document["traceEvents"]
                  if e["ph"] == "E"]
        assert [e["name"] for e in closes] == ["nested", "run"]
        assert all(e["args"]["virtual-close"] == 1 for e in closes)
        # each close lands on its own span's track
        assert closes[0]["tid"] == TRACK_IDS["trap"]
        assert closes[1]["tid"] == TRACK_IDS["monitor"]

    def test_profile_and_metrics_ride_along(self):
        profiler = GuestProfiler(stride=4)
        profiler.start(0)

        class FakeCpu:
            pc, cpl, instret = 0x4000, 0, 4
        profiler.sample(FakeCpu())
        registry = MetricsRegistry()
        registry.counter("trace.irq.raised").inc(3)
        document = chrome_trace(_bus_with_events(), profiler=profiler,
                                registry=registry)
        assert document["guestProfile"]["total_samples"] == 1
        assert document["guestProfile"]["flat"][0]["pc"] == "0x00004000"
        assert document["metrics"]["trace.irq.raised"]["value"] == 3

    def test_write_is_byte_stable(self, tmp_path):
        path_a = tmp_path / "a.json"
        path_b = tmp_path / "b.json"
        write_chrome_trace(path_a, _bus_with_events())
        write_chrome_trace(path_b, _bus_with_events())
        assert path_a.read_bytes() == path_b.read_bytes()
        assert json.loads(path_a.read_text())["otherData"]["clock"] \
            == "simulated-cycles"


class TestOtherExporters:
    def test_collapsed_stacks_text(self):
        profiler = GuestProfiler(stride=4)
        profiler.start(0)

        class FakeCpu:
            pc, cpl, instret = 0x204, 3, 4
        profiler.sample(FakeCpu())
        symbols = SymbolTable()
        symbols.add("loop", 0x200)
        assert collapsed_stacks(profiler, symbols) == \
            "ring3;run;loop+0x4 1\n"

    def test_metrics_json_wrapper(self, tmp_path):
        registry = MetricsRegistry()
        registry.gauge("x").set(2)
        document = metrics_json(registry)
        assert document["format"] == "repro-metrics-v1"
        path = write_metrics(tmp_path / "m.json", registry)
        assert json.loads(path.read_text())["metrics"]["x"]["value"] == 2


class TestValidator:
    def test_rejects_non_object_document(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"noTraceEvents": 1}) != []

    def test_rejects_missing_fields_and_unknown_phase(self):
        document = {"traceEvents": [
            {"name": "x", "ph": "i", "ts": 0, "pid": 1, "tid": 1},
            {"name": "y", "ph": "Z", "ts": 0, "pid": 1, "tid": 1},
            {"ph": "i", "ts": 0, "pid": 1, "tid": 1},
        ]}
        problems = validate_chrome_trace(document)
        assert any("unknown phase 'Z'" in p for p in problems)
        assert any("missing 'name'" in p for p in problems)

    def test_rejects_x_without_dur(self):
        document = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 1}]}
        assert any("dur" in p
                   for p in validate_chrome_trace(document))

    def test_rejects_unbalanced_begin_end(self):
        document = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1}]}
        assert any("unclosed" in p
                   for p in validate_chrome_trace(document))
        document = {"traceEvents": [
            {"name": "a", "ph": "E", "ts": 0, "pid": 1, "tid": 1}]}
        assert any("E without matching B" in p
                   for p in validate_chrome_trace(document))
