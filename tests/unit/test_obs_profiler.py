"""Unit tests: the sampling guest-PC profiler."""

import pytest

from repro.debugger.symbols import SymbolTable
from repro.obs.profiler import NEVER, GuestProfiler


class FakeCpu:
    def __init__(self, pc=0x4000, cpl=0, instret=0):
        self.pc = pc
        self.cpl = cpl
        self.instret = instret


class TestStrideBoundaries:
    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError):
            GuestProfiler(stride=0)

    def test_disabled_threshold_never_fires(self):
        profiler = GuestProfiler(stride=16)
        assert profiler.next_sample == NEVER
        assert not (10**18 >= profiler.next_sample)

    def test_first_boundary_is_strictly_after_start(self):
        profiler = GuestProfiler(stride=100)
        profiler.start(instret=0)
        assert profiler.next_sample == 100
        profiler.start(instret=100)   # exactly on a boundary
        assert profiler.next_sample == 200
        profiler.start(instret=101)
        assert profiler.next_sample == 200

    def test_sample_rearms_past_current_instret(self):
        profiler = GuestProfiler(stride=10)
        profiler.start(0)
        # run loop overshoots the boundary (multi-instruction slice)
        threshold = profiler.sample(FakeCpu(instret=27))
        assert threshold == 30
        assert profiler.total_samples == 1

    def test_stop_disarms(self):
        profiler = GuestProfiler(stride=10)
        profiler.start(0)
        profiler.stop()
        assert profiler.next_sample == NEVER
        assert not profiler.enabled


class TestSampleFolding:
    def test_samples_key_on_pc_ring_reason(self):
        profiler = GuestProfiler(stride=1)
        profiler.start(0)
        profiler.sample(FakeCpu(pc=0x10, cpl=0, instret=1))
        profiler.note_reason("trap")
        profiler.sample(FakeCpu(pc=0x10, cpl=0, instret=2))
        profiler.sample(FakeCpu(pc=0x10, cpl=3, instret=3))
        flat = profiler.flat()
        assert (0x10, 0, "run", 1) in flat
        assert (0x10, 0, "trap", 1) in flat
        assert (0x10, 3, "run", 1) in flat

    def test_reason_resets_to_run_after_sample(self):
        profiler = GuestProfiler(stride=1)
        profiler.start(0)
        profiler.note_reason("irq")
        profiler.sample(FakeCpu(instret=1))
        profiler.sample(FakeCpu(instret=2))
        assert profiler.samples[(0x4000, 0, "irq")] == 1
        assert profiler.samples[(0x4000, 0, "run")] == 1

    def test_flat_sorts_hottest_first_deterministically(self):
        profiler = GuestProfiler(stride=1)
        profiler.start(0)
        for _ in range(3):
            profiler.sample(FakeCpu(pc=0x20, instret=1))
        profiler.sample(FakeCpu(pc=0x10, instret=2))
        profiler.sample(FakeCpu(pc=0x30, instret=3))
        flat = profiler.flat()
        assert flat[0][0] == 0x20 and flat[0][3] == 3
        assert [row[0] for row in flat[1:]] == [0x10, 0x30]  # pc ties

    def test_cumulative_folds_by_symbol(self):
        symbols = SymbolTable()
        symbols.add("start", 0x100)
        symbols.add("loop", 0x200)
        profiler = GuestProfiler(stride=1)
        profiler.start(0)
        profiler.sample(FakeCpu(pc=0x204, instret=1))
        profiler.sample(FakeCpu(pc=0x210, instret=2))
        profiler.sample(FakeCpu(pc=0x100, instret=3))
        assert profiler.cumulative(symbols) == [
            ("loop", 2), ("start", 1)]

    def test_cumulative_without_symbols_uses_hex_buckets(self):
        profiler = GuestProfiler(stride=1)
        profiler.start(0)
        profiler.sample(FakeCpu(pc=0x42, instret=1))
        assert profiler.cumulative() == [("0x00000042", 1)]

    def test_unsymbolized_low_pc_folds_to_hex(self):
        symbols = SymbolTable()
        symbols.add("high", 0x1000)
        profiler = GuestProfiler(stride=1)
        profiler.start(0)
        profiler.sample(FakeCpu(pc=0x10, instret=1))
        assert profiler.cumulative(symbols) == [("0x00000010", 1)]

    def test_collapsed_stacks_lines(self):
        symbols = SymbolTable()
        symbols.add("loop", 0x200)
        profiler = GuestProfiler(stride=1)
        profiler.start(0)
        profiler.note_reason("trap")
        profiler.sample(FakeCpu(pc=0x204, cpl=3, instret=1))
        assert profiler.collapsed_stacks(symbols) == \
            ["ring3;trap;loop+0x4 1"]

    def test_report_and_stats(self):
        profiler = GuestProfiler(stride=8)
        assert profiler.report() == "(no samples)"
        profiler.start(0)
        profiler.sample(FakeCpu(instret=8))
        text = profiler.report()
        assert "1 samples" in text and "stride 8" in text
        assert profiler.stats() == {
            "stride": 8, "enabled": True,
            "total_samples": 1, "unique_sites": 1,
        }

    def test_reset_clears_samples_keeps_arming(self):
        profiler = GuestProfiler(stride=8)
        profiler.start(0)
        profiler.sample(FakeCpu(instret=8))
        profiler.reset()
        assert profiler.total_samples == 0 and not profiler.samples
        assert profiler.enabled
