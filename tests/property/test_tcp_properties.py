"""Property-based tests for TCP (PR 9).

The contracts under test:

* packing is lossless (pack → unpack identity);
* the checksum rejects every single-byte corruption;
* a receiver presented with any in-window reordering and duplication
  of a segment stream reconstructs the byte-identical stream;
* IPv4 reassembly survives fragment reordering and duplication;
* no hostile frame makes the endpoint raise.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.net import EthernetFrame, ETHERTYPE_IPV4, Ipv4Packet, \
    Reassembler, fragment
from repro.net.tcp import (
    ESTABLISHED,
    FLAG_ACK,
    FLAG_SYN,
    TcpConnection,
    TcpEndpoint,
    TcpSegment,
)
from repro.sim.events import EventQueue

CPU_HZ = 1.26e9
IP_A = b"\x0a\x00\x00\x01"
IP_B = b"\x0a\x00\x00\x02"

_ports = st.integers(min_value=1, max_value=0xFFFF)
_seq32 = st.integers(min_value=0, max_value=0xFFFF_FFFF)
_flags = st.integers(min_value=0, max_value=0x1F)
_window = st.integers(min_value=0, max_value=0xFFFF)


class TestSegmentProperties:
    @given(src=_ports, dst=_ports, seq=_seq32, ack=_seq32,
           flags=_flags, window=_window,
           payload=st.binary(min_size=0, max_size=2048))
    @settings(max_examples=150, deadline=None)
    def test_pack_unpack_identity(self, src, dst, seq, ack, flags,
                                  window, payload):
        segment = TcpSegment(src, dst, seq, ack, flags, window, payload)
        parsed = TcpSegment.unpack(segment.pack(IP_A, IP_B), IP_A, IP_B)
        assert parsed == segment

    @given(payload=st.binary(min_size=0, max_size=512),
           offset=st.integers(min_value=0), flip=st.integers(1, 255))
    @settings(max_examples=200, deadline=None)
    def test_any_single_byte_corruption_rejected(self, payload, offset,
                                                 flip):
        """A one's-complement sum cannot miss a single-byte change, so
        every corrupted segment must fail to unpack."""
        raw = bytearray(TcpSegment(100, 200, 1, 2, FLAG_ACK, 512,
                                   payload).pack(IP_A, IP_B))
        raw[offset % len(raw)] ^= flip
        try:
            TcpSegment.unpack(bytes(raw), IP_A, IP_B)
        except ProtocolError:
            return
        raise AssertionError("corrupted segment was accepted")


def _established_receiver():
    """A server-side connection mid-handshake-complete, fed directly."""
    queue = EventQueue()
    outbox = []
    conn = TcpConnection(queue, CPU_HZ, 80, 1234, outbox.append,
                         iss=1000)
    conn.accept_syn(TcpSegment(1234, 80, seq=5000, ack=0,
                               flags=FLAG_SYN, window=65535))
    conn.on_segment(TcpSegment(1234, 80, seq=5001, ack=1001,
                               flags=FLAG_ACK, window=65535))
    assert conn.state == ESTABLISHED
    return conn


def _chunked_segments(payload, chunk):
    segments = []
    seq = 5001
    for start in range(0, len(payload), chunk):
        piece = payload[start:start + chunk]
        segments.append(TcpSegment(1234, 80, seq=seq, ack=1001,
                                   flags=FLAG_ACK, window=65535,
                                   payload=piece))
        seq += len(piece)
    return segments


class TestReceiverProperties:
    @given(data=st.data(),
           payload=st.binary(min_size=1, max_size=8192),
           chunk=st.integers(min_value=256, max_value=1460))
    @settings(max_examples=100, deadline=None)
    def test_reorder_and_duplicate_delivery_byte_identical(
            self, data, payload, chunk):
        """Any permutation of the segment stream, with any subset
        duplicated, reconstructs the exact byte stream."""
        segments = _chunked_segments(payload, chunk)
        order = data.draw(st.permutations(range(len(segments))))
        dupes = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(segments) - 1),
            max_size=4))
        conn = _established_receiver()
        for index in order:
            conn.on_segment(segments[index])
        for index in dupes:
            conn.on_segment(segments[index])
        assert conn.take() == payload

    @given(payload=st.binary(min_size=1, max_size=4096),
           chunk=st.integers(min_value=256, max_value=1460),
           offset=st.integers(min_value=0), flip=st.integers(1, 255))
    @settings(max_examples=100, deadline=None)
    def test_corrupting_one_segment_never_corrupts_the_stream(
            self, payload, chunk, offset, flip):
        """A corrupted copy (rejected at unpack) plus the good copies
        still yields the identical stream."""
        segments = _chunked_segments(payload, chunk)
        victim = segments[offset % len(segments)]
        raw = bytearray(victim.pack(IP_B, IP_A))
        raw[offset % len(raw)] ^= flip
        conn = _established_receiver()
        try:
            mangled = TcpSegment.unpack(bytes(raw), IP_B, IP_A)
        except ProtocolError:
            mangled = None          # checksum did its job
        if mangled is not None:
            raise AssertionError("corrupted segment was accepted")
        for segment in segments:
            conn.on_segment(segment)
        assert conn.take() == payload


class TestReassemblyProperties:
    @given(data=st.data(),
           payload=st.binary(min_size=1, max_size=12_000),
           mtu=st.integers(min_value=96, max_value=1500))
    @settings(max_examples=100, deadline=None)
    def test_fragment_reorder_duplicate_reassembles(self, data, payload,
                                                    mtu):
        packet = Ipv4Packet(IP_A, IP_B, 6, payload, identification=7)
        pieces = fragment(packet, mtu)
        order = data.draw(st.permutations(range(len(pieces))))
        reassembler = Reassembler()
        whole = None
        for index in order:
            result = reassembler.push(pieces[index])
            if result is not None:
                assert whole is None, "reassembled twice"
                whole = result
            # Duplicate some pushes mid-stream; exact copies must be
            # silently ignored while the flow is still open.
            if whole is None and data.draw(st.booleans()):
                assert reassembler.push(pieces[index]) is None
        assert whole is not None
        assert whole.payload == payload


class TestEndpointRobustness:
    @given(junk=st.binary(min_size=0, max_size=256))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_junk_never_raises(self, junk):
        endpoint = TcpEndpoint(EventQueue(), CPU_HZ, IP_A,
                               lambda raw: None, name="fuzz")
        endpoint.receive_frame(junk)     # must not raise

    @given(cut=st.integers(min_value=0), offset=st.integers(min_value=0),
           flip=st.integers(1, 255))
    @settings(max_examples=150, deadline=None)
    def test_truncated_or_flipped_valid_frame_never_raises(self, cut,
                                                           offset, flip):
        outbox = []
        endpoint = TcpEndpoint(EventQueue(), CPU_HZ, IP_A, outbox.append,
                               name="tgt")
        endpoint.listen(80, lambda conn: None)
        segment = TcpSegment(1234, 80, seq=1, ack=0, flags=FLAG_SYN,
                             window=512)
        packet = Ipv4Packet(IP_B, IP_A, 6, segment.pack(IP_B, IP_A),
                            identification=9)
        frame = EthernetFrame(dst=b"\x02\x00" + IP_A,
                              src=b"\x02\x00" + IP_B,
                              ethertype=ETHERTYPE_IPV4,
                              payload=packet.pack()).pack()
        mangled = bytearray(frame[:cut % (len(frame) + 1)])
        if mangled:
            mangled[offset % len(mangled)] ^= flip
        endpoint.receive_frame(bytes(mangled))   # must not raise
