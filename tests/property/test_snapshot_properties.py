"""Property-based tests: snapshot round-trips and disassembler fuzz."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.disasm import disassemble
from repro.core.snapshot import capture, restore
from repro.errors import DisassemblerError
from repro.hw.machine import Machine, MachineConfig


class TestDisassemblerFuzz:
    @given(code=st.binary(min_size=0, max_size=256))
    @settings(max_examples=300, deadline=None)
    def test_non_strict_never_raises(self, code):
        decoded = disassemble(code, strict=False)
        # Whatever decoded must tile a prefix of the buffer.
        total = sum(insn.length for insn in decoded)
        assert total <= len(code)

    @given(code=st.binary(min_size=1, max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_strict_raises_or_tiles_exactly(self, code):
        try:
            decoded = disassemble(code, strict=True)
        except DisassemblerError:
            return
        assert sum(insn.length for insn in decoded) == len(code)


def _small_machine():
    return Machine(MachineConfig(memory_size=1 << 20, disks=[(64, 1)],
                                 with_nic=False))


class TestSnapshotProperties:
    @given(regs=st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF),
                         min_size=8, max_size=8),
           pc=st.integers(min_value=0, max_value=0xFFFFF),
           pokes=st.dictionaries(
               st.integers(min_value=0x4000, max_value=0xFFFF),
               st.integers(min_value=0, max_value=0xFF),
               max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_capture_restore_capture_is_identity(self, regs, pc, pokes):
        machine = _small_machine()
        machine.cpu.regs[:] = regs
        machine.cpu.pc = pc
        for addr, value in pokes.items():
            machine.memory.write_u8(addr, value)
        first = capture(machine)

        # Scramble everything the snapshot covers.
        machine.cpu.regs[:] = [0xAA] * 8
        machine.cpu.pc = 0
        machine.memory.fill(0x4000, 0x1000, 0xEE)
        machine.pic.raise_irq(3)

        restore(machine, first)
        second = capture(machine)
        assert second.regs == first.regs
        assert second.pc == first.pc
        assert second.memory == first.memory
        assert [vars(c) for c in second.pic] == \
            [vars(c) for c in first.pic]

    @given(writes=st.lists(
        st.tuples(st.integers(min_value=0, max_value=60),
                  st.integers(min_value=0, max_value=255)),
        min_size=0, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_disk_overlay_round_trips(self, writes):
        machine = _small_machine()
        disk = machine.disks[0]
        snapshot = capture(machine)
        for lba, fill in writes:
            disk.write_blocks(lba, bytes([fill]) * 512)
        restore(machine, snapshot)
        # Restored contents equal a pristine twin disk, byte for byte.
        twin = _small_machine().disks[0]
        for lba, _ in writes:
            assert disk.read_blocks(lba, 1) == twin.read_blocks(lba, 1)
