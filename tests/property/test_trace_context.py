"""Property tests for the distributed trace-context codec.

The fleet ships trace contexts as strings over the worker pipe
protocol and the RSP mux; everything downstream (span collection,
exemplar resolution, the golden fleet export) assumes the codec is a
bijection over the whole id space and rejects anything else.  Also
pinned here: trace-id minting determinism and the span-allocator
partition invariants the multi-site id scheme rests on.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.distributed.context import (
    ROOT_SPAN_ID,
    SPAN_ID_MAX,
    SUPERVISOR_SITE,
    SpanAllocator,
    TraceContext,
    mint_trace_id,
    trace_root,
    worker_site,
)

nonzero_ids = st.integers(min_value=1, max_value=SPAN_ID_MAX)
parent_ids = st.integers(min_value=0, max_value=SPAN_ID_MAX)


class TestCodecRoundTrip:
    @given(trace=nonzero_ids, span=nonzero_ids, parent=parent_ids)
    def test_encode_decode_identity(self, trace, span, parent):
        ctx = TraceContext(trace, span, parent)
        assert TraceContext.decode(ctx.encode()) == ctx

    @given(trace=nonzero_ids, span=nonzero_ids, parent=parent_ids)
    def test_wire_form_is_fixed_width(self, trace, span, parent):
        wire = TraceContext(trace, span, parent).encode()
        fields = wire.split("-")
        assert len(wire) == 50
        assert len(fields) == 3
        assert all(len(field) == 16 for field in fields)
        assert wire == wire.lower()

    @given(trace=nonzero_ids, span=nonzero_ids, parent=parent_ids)
    def test_distinct_contexts_encode_distinctly(self, trace, span,
                                                 parent):
        ctx = TraceContext(trace, span, parent)
        sibling = TraceContext(trace, span,
                               (parent + 1) % (SPAN_ID_MAX + 1))
        assert ctx.encode() != sibling.encode()


class TestCodecRejection:
    @pytest.mark.parametrize("text", [
        "",
        "not-a-context",
        "0123456789abcdef-0123456789abcdef",            # two fields
        "0123456789abcdef" * 3,                          # no dashes
        "0123456789abcde-0123456789abcdef-0123456789abcdef",   # short
        "0123456789abcdefX-0123456789abcdef-0123456789abcdef",  # long
        "0123456789abcdeg-0123456789abcdef-0123456789abcdef",  # non-hex
        "0000000000000000-0000000000000001-0000000000000000",  # trace 0
        "0000000000000001-0000000000000000-0000000000000000",  # span 0
    ])
    def test_malformed_wire_raises(self, text):
        with pytest.raises(ValueError):
            TraceContext.decode(text)

    @given(junk=st.text(max_size=60))
    def test_arbitrary_text_never_crashes_differently(self, junk):
        try:
            ctx = TraceContext.decode(junk)
        except ValueError:
            return
        # Anything accepted must re-encode to canonical form.
        assert TraceContext.decode(ctx.encode()) == ctx


class TestMinting:
    @given(material=st.text(max_size=100))
    def test_minting_is_deterministic_and_nonzero(self, material):
        first = mint_trace_id(material)
        assert first == mint_trace_id(material)
        assert 1 <= first <= SPAN_ID_MAX

    def test_distinct_materials_mint_distinct_ids(self):
        ids = {mint_trace_id(f"job-{n:04d}") for n in range(1000)}
        assert len(ids) == 1000


class TestSpanAllocatorPartitions:
    @given(workers=st.integers(min_value=1, max_value=8),
           spans=st.integers(min_value=1, max_value=50))
    def test_sites_never_collide(self, workers, spans):
        allocators = [SpanAllocator(SUPERVISOR_SITE)] + [
            SpanAllocator(worker_site(index)) for index in range(workers)]
        minted = [alloc.next_id() for alloc in allocators
                  for _ in range(spans)]
        assert len(minted) == len(set(minted))

    def test_root_span_id_constant_for_every_trace(self):
        ctx = trace_root(mint_trace_id("job-0000"))
        assert ctx.span_id == ROOT_SPAN_ID
        assert ctx.parent_id == 0

    def test_exhaustion_raises(self):
        alloc = SpanAllocator(1)
        alloc._next = (1 << 48) - 2
        alloc.next_id()
        with pytest.raises(OverflowError):
            alloc.next_id()
