"""Property-based tests: assembler <-> disassembler round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import PSEUDO_BYTE, assemble, decode_range, disassemble
from repro.hw import isa

# -- strategies generating random-but-valid instruction text ----------------

_regs = st.integers(min_value=0, max_value=7).map(lambda n: f"R{n}")
_imm32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
_imm8 = st.integers(min_value=0, max_value=0xFF)
_disp = st.integers(min_value=-0x8000, max_value=0x8000)


def _line_for(spec: isa.InsnSpec):
    name = spec.mnemonic
    if spec.fmt == isa.FMT_NONE:
        return st.just(name)
    if spec.fmt == isa.FMT_R:
        return _regs.map(lambda r: f"{name} {r}")
    if spec.fmt == isa.FMT_RR:
        return st.tuples(_regs, _regs).map(
            lambda t: f"{name} {t[0]}, {t[1]}")
    if spec.fmt == isa.FMT_RI:
        return st.tuples(_regs, _imm32).map(
            lambda t: f"{name} {t[0]}, {t[1]:#x}")
    if spec.fmt == isa.FMT_RRI:
        def render(t):
            reg, base, disp = t
            sign = "+" if disp >= 0 else "-"
            mem = f"[{base}{sign}{abs(disp):#x}]"
            if name.startswith("ST"):
                return f"{name} {mem}, {reg}"
            return f"{name} {reg}, {mem}"
        return st.tuples(_regs, _regs, _disp).map(render)
    if spec.fmt == isa.FMT_I32:
        return _imm32.map(lambda v: f"{name} {v:#x}")
    if spec.fmt == isa.FMT_I8:
        return _imm8.map(lambda v: f"{name} {v:#x}")
    if spec.fmt == isa.FMT_REL:
        # Branch to an address within a plausible code window.
        return st.integers(min_value=0, max_value=0x4000).map(
            lambda v: f"{name} {v:#x}")
    if spec.fmt == isa.FMT_CR:
        crs = st.sampled_from(isa.CR_NAMES)
        if name == "MOVCR":
            return st.tuples(crs, _regs).map(
                lambda t: f"{name} {t[0]}, {t[1]}")
        return st.tuples(_regs, crs).map(
            lambda t: f"{name} {t[0]}, {t[1]}")
    if spec.fmt == isa.FMT_SEG:
        segs = st.sampled_from(isa.SEG_NAMES)
        if name == "MOVSEG":
            return st.tuples(segs, _regs).map(
                lambda t: f"{name} {t[0]}, {t[1]}")
        return st.tuples(_regs, segs).map(
            lambda t: f"{name} {t[0]}, {t[1]}")
    raise AssertionError(spec.fmt)


_any_line = st.sampled_from(sorted(isa.SPECS.values(),
                                   key=lambda s: s.opcode)).flatmap(_line_for)
_programs = st.lists(_any_line, min_size=1, max_size=30).map(
    lambda lines: "\n".join(lines) + "\n")


class TestRoundTrip:
    @given(source=_programs)
    @settings(max_examples=200, deadline=None)
    def test_assemble_disassemble_reassemble(self, source):
        """asm(dis(asm(src))) == asm(src), byte for byte."""
        first = assemble(source, origin=0x1000)
        decoded = disassemble(first.image, origin=0x1000)
        reassembled = assemble(
            "\n".join(insn.text for insn in decoded) + "\n", origin=0x1000)
        assert reassembled.image == first.image

    @given(source=_programs)
    @settings(max_examples=100, deadline=None)
    def test_decoded_lengths_tile_the_image(self, source):
        program = assemble(source, origin=0)
        decoded = disassemble(program.image)
        assert sum(insn.length for insn in decoded) == len(program.image)
        cursor = 0
        for insn in decoded:
            assert insn.address == cursor
            cursor += insn.length

    @given(source=_programs)
    @settings(max_examples=100, deadline=None)
    def test_origin_only_shifts_relative_targets(self, source):
        """The image differs between origins only in REL operand bytes
        (branch targets are encoded relative; everything else is
        position-independent)."""
        low = assemble(source, origin=0)
        high = assemble(source, origin=0x100000)
        assert len(low.image) == len(high.image)
        decoded_low = disassemble(low.image, origin=0)
        decoded_high = disassemble(high.image, origin=0x100000)
        for a, b in zip(decoded_low, decoded_high):
            assert a.mnemonic == b.mnemonic
            if isa.SPECS[a.opcode].fmt != isa.FMT_REL:
                assert a.raw == b.raw


class TestDecodeRange:
    """decode_range is total: it tiles ANY byte string, valid or not."""

    @given(data=st.binary(max_size=256))
    @settings(max_examples=300, deadline=None)
    def test_tiles_arbitrary_bytes(self, data):
        cursor = 0
        for insn in decode_range(data):
            assert insn.address == cursor
            assert insn.length >= 1
            assert insn.raw == data[cursor:cursor + insn.length]
            cursor += insn.length
        assert cursor == len(data)

    @given(data=st.binary(max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_pseudo_insns_are_single_bytes(self, data):
        for insn in decode_range(data):
            if insn.mnemonic == PSEUDO_BYTE:
                assert insn.is_pseudo
                assert insn.length == 1

    @given(source=_programs)
    @settings(max_examples=100, deadline=None)
    def test_matches_disassemble_on_valid_code(self, source):
        program = assemble(source, origin=0x1000)
        swept = list(decode_range(program.image, origin=0x1000))
        strict = disassemble(program.image, origin=0x1000)
        assert [(i.address, i.mnemonic, i.raw) for i in swept] == \
            [(i.address, i.mnemonic, i.raw) for i in strict]
