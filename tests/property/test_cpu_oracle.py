"""Property-based: CPU ALU semantics against a Python oracle.

Each ALU instruction is executed on the interpreter with random
operands and compared with an independently written Python model of
32-bit two's-complement arithmetic and flag setting.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.hw import Cpu, IoBus, PhysicalMemory
from repro.hw import firmware
from repro.hw.isa import FLAG_CF, FLAG_OF, FLAG_SF, FLAG_ZF

_u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def run_one(source: str) -> Cpu:
    cpu = Cpu(PhysicalMemory(1 << 20), IoBus())
    firmware.install_flat_firmware(cpu)
    program = assemble(source, origin=0x4000)
    program.load_into(cpu.memory)
    cpu.pc = 0x4000
    while not cpu.halted:
        cpu.step()
    return cpu


def _signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value


class TestAluOracle:
    @given(a=_u32, b=_u32)
    @settings(max_examples=150, deadline=None)
    def test_add(self, a, b):
        cpu = run_one(f"MOVI R0, {a:#x}\nMOVI R1, {b:#x}\nADD R0, R1\nHLT")
        expected = (a + b) & 0xFFFFFFFF
        assert cpu.regs[0] == expected
        assert bool(cpu.flags & FLAG_CF) == (a + b > 0xFFFFFFFF)
        assert bool(cpu.flags & FLAG_ZF) == (expected == 0)
        assert bool(cpu.flags & FLAG_SF) == bool(expected & 0x80000000)
        signed_sum = _signed(a) + _signed(b)
        assert bool(cpu.flags & FLAG_OF) == not_in_range(signed_sum)

    @given(a=_u32, b=_u32)
    @settings(max_examples=150, deadline=None)
    def test_sub_and_cmp_flags(self, a, b):
        cpu = run_one(f"MOVI R0, {a:#x}\nMOVI R1, {b:#x}\nSUB R0, R1\nHLT")
        expected = (a - b) & 0xFFFFFFFF
        assert cpu.regs[0] == expected
        assert bool(cpu.flags & FLAG_CF) == (a < b)
        signed_diff = _signed(a) - _signed(b)
        assert bool(cpu.flags & FLAG_OF) == not_in_range(signed_diff)
        # CMP sets identical flags without writing the register.
        cpu2 = run_one(f"MOVI R0, {a:#x}\nMOVI R1, {b:#x}\nCMP R0, R1\nHLT")
        assert cpu2.regs[0] == a
        assert (cpu2.flags & (FLAG_CF | FLAG_ZF | FLAG_SF | FLAG_OF)) == \
            (cpu.flags & (FLAG_CF | FLAG_ZF | FLAG_SF | FLAG_OF))

    @given(a=_u32, b=_u32)
    @settings(max_examples=100, deadline=None)
    def test_logic_ops(self, a, b):
        for mnemonic, oracle in (("AND", a & b), ("OR", a | b),
                                 ("XOR", a ^ b)):
            cpu = run_one(f"MOVI R0, {a:#x}\nMOVI R1, {b:#x}\n"
                          f"{mnemonic} R0, R1\nHLT")
            assert cpu.regs[0] == oracle
            assert not cpu.flags & FLAG_CF
            assert not cpu.flags & FLAG_OF

    @given(a=_u32, shift=st.integers(min_value=0, max_value=31))
    @settings(max_examples=100, deadline=None)
    def test_shifts(self, a, shift):
        left = run_one(f"MOVI R0, {a:#x}\nSHLI R0, {shift}\nHLT")
        assert left.regs[0] == (a << shift) & 0xFFFFFFFF
        right = run_one(f"MOVI R0, {a:#x}\nSHRI R0, {shift}\nHLT")
        assert right.regs[0] == a >> shift

    @given(a=_u32, b=_u32)
    @settings(max_examples=100, deadline=None)
    def test_mul_low_32(self, a, b):
        cpu = run_one(f"MOVI R0, {a:#x}\nMOVI R1, {b:#x}\nMUL R0, R1\nHLT")
        assert cpu.regs[0] == (a * b) & 0xFFFFFFFF

    @given(a=_u32, b=st.integers(min_value=1, max_value=0xFFFFFFFF))
    @settings(max_examples=100, deadline=None)
    def test_unsigned_div(self, a, b):
        cpu = run_one(f"MOVI R0, {a:#x}\nMOVI R1, {b:#x}\nDIV R0, R1\nHLT")
        assert cpu.regs[0] == a // b

    @given(a=_u32)
    @settings(max_examples=100, deadline=None)
    def test_not_neg(self, a):
        cpu = run_one(f"MOVI R0, {a:#x}\nNOT R0\nHLT")
        assert cpu.regs[0] == a ^ 0xFFFFFFFF
        cpu = run_one(f"MOVI R0, {a:#x}\nNEG R0\nHLT")
        assert cpu.regs[0] == (-a) & 0xFFFFFFFF

    @given(a=_u32, b=_u32)
    @settings(max_examples=100, deadline=None)
    def test_signed_branch_agrees_with_python(self, a, b):
        cpu = run_one(f"""
            MOVI R0, {a:#x}
            MOVI R1, {b:#x}
            CMP  R0, R1
            JL   less
            MOVI R2, 0
            HLT
        less:
            MOVI R2, 1
            HLT
        """)
        assert cpu.regs[2] == (1 if _signed(a) < _signed(b) else 0)

    @given(a=_u32, b=_u32)
    @settings(max_examples=100, deadline=None)
    def test_unsigned_branch_agrees_with_python(self, a, b):
        cpu = run_one(f"""
            MOVI R0, {a:#x}
            MOVI R1, {b:#x}
            CMP  R0, R1
            JC   below
            MOVI R2, 0
            HLT
        below:
            MOVI R2, 1
            HLT
        """)
        assert cpu.regs[2] == (1 if a < b else 0)


def not_in_range(signed_value: int) -> bool:
    """True when a signed result overflows 32 bits."""
    return not (-(1 << 31) <= signed_value <= (1 << 31) - 1)
