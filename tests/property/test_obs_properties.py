"""Property tests: profiler stride arithmetic, histogram bucketing and
trace-ring invariants.

Three contracts the observability layer rests on:

* the profiler samples on *exact* stride boundaries of the retired
  instruction counter, never twice per boundary, for any interleaving
  of slice sizes — that is what makes profiles deterministic;
* every histogram observation lands in exactly one bucket (or the
  overflow), and the bucket chosen is the smallest boundary >= value;
* the trace ring never exceeds its capacity and always keeps the
  newest events, for any event stream.
"""

import bisect

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.bus import CAT_DEVICE, TraceBus
from repro.obs.metrics import Histogram
from repro.obs.profiler import GuestProfiler


class FakeCpu:
    def __init__(self, instret):
        self.pc = 0x4000 + instret
        self.cpl = 0
        self.instret = instret


class TestProfilerStrideProperties:
    @given(stride=st.integers(min_value=1, max_value=10_000),
           instret=st.integers(min_value=0, max_value=10**9))
    def test_next_boundary_is_strictly_ahead_and_aligned(
            self, stride, instret):
        profiler = GuestProfiler(stride=stride)
        boundary = profiler.next_boundary(instret)
        assert boundary > instret
        assert boundary % stride == 0
        assert boundary - instret <= stride

    @given(stride=st.integers(min_value=1, max_value=64),
           slices=st.lists(st.integers(min_value=1, max_value=200),
                           min_size=0, max_size=60))
    def test_one_sample_per_crossed_boundary(self, stride, slices):
        """Simulate the monitor run loop: arbitrary slice sizes, the
        single hoisted compare, sample() on crossings.  The number of
        samples must equal the number of stride boundaries crossed."""
        profiler = GuestProfiler(stride=stride)
        profiler.start(0)
        instret = 0
        next_sample = profiler.next_sample
        for step in slices:
            for _ in range(step):
                instret += 1
                if instret >= next_sample:
                    next_sample = profiler.sample(FakeCpu(instret))
        assert profiler.total_samples == instret // stride

    @given(stride=st.integers(min_value=1, max_value=50),
           start=st.integers(min_value=0, max_value=500))
    def test_restart_from_any_instret_stays_aligned(self, stride,
                                                    start):
        profiler = GuestProfiler(stride=stride)
        profiler.start(start)
        threshold = profiler.sample(FakeCpu(profiler.next_sample))
        assert threshold % stride == 0


class TestHistogramProperties:
    boundaries = st.lists(
        st.integers(min_value=0, max_value=10**6),
        min_size=1, max_size=12, unique=True).map(sorted)

    @given(boundaries=boundaries,
           values=st.lists(st.integers(min_value=-10**6,
                                       max_value=2 * 10**6),
                           max_size=100))
    def test_every_observation_lands_exactly_once(self, boundaries,
                                                  values):
        hist = Histogram("h", buckets=boundaries)
        for value in values:
            hist.observe(value)
        snap = hist.snapshot()
        assert sum(snap["buckets"].values()) + snap["overflow"] \
            == len(values)
        assert snap["count"] == len(values)
        if values:
            assert snap["min"] == min(values)
            assert snap["max"] == max(values)
            assert snap["sum"] == sum(values)

    @given(boundaries=boundaries,
           value=st.integers(min_value=-10**6, max_value=2 * 10**6))
    def test_bucket_is_smallest_boundary_at_or_above(self, boundaries,
                                                     value):
        hist = Histogram("h", buckets=boundaries)
        hist.observe(value)
        snap = hist.snapshot()
        index = bisect.bisect_left(boundaries, value)
        if index == len(boundaries):
            assert snap["overflow"] == 1
        else:
            assert snap["buckets"][str(boundaries[index])] == 1
            assert boundaries[index] >= value


class TestRingProperties:
    @given(capacity=st.integers(min_value=1, max_value=32),
           count=st.integers(min_value=0, max_value=200))
    def test_ring_bounded_and_keeps_newest(self, capacity, count):
        bus = TraceBus(capacity=capacity)
        bus.enabled = True
        for index in range(count):
            bus.instant(CAT_DEVICE, f"e{index}", cycle=index)
        assert len(bus) == min(capacity, count)
        assert bus.total_recorded == count
        assert bus.dropped == max(0, count - capacity)
        events = bus.events()
        assert [e.seq for e in events] == \
            list(range(max(0, count - capacity), count))
