"""Property-based tests for the protocol stack."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.net import (
    EthernetFrame,
    ETHERTYPE_IPV4,
    Ipv4Packet,
    Reassembler,
    UdpDatagram,
    UdpReceiver,
    UdpStack,
    fragment,
    internet_checksum,
    verify_checksum,
)
from repro.net.checksum import ones_complement_sum

_payloads = st.binary(min_size=0, max_size=4096)
_ips = st.binary(min_size=4, max_size=4)
_macs = st.binary(min_size=6, max_size=6)
_ports = st.integers(min_value=0, max_value=0xFFFF)


class TestChecksumProperties:
    @given(data=st.binary(min_size=0, max_size=256))
    def test_inserting_checksum_verifies(self, data):
        """Appending the computed checksum makes verification pass —
        the defining property of the internet checksum."""
        checksum = internet_checksum(data)
        # Works wherever the 16-bit field is placed on a 16-bit boundary.
        padded = data if len(data) % 2 == 0 else data + b"\x00"
        assert verify_checksum(padded + checksum.to_bytes(2, "big"))

    @given(data=st.binary(min_size=2, max_size=256).filter(
        lambda d: len(d) % 2 == 0))
    def test_word_order_independent(self, data):
        words = [data[i:i + 2] for i in range(0, len(data), 2)]
        shuffled = b"".join(reversed(words))
        assert ones_complement_sum(data) == ones_complement_sum(shuffled)

    @given(data=st.binary(min_size=0, max_size=128))
    def test_checksum_bounded(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF


class TestIpv4Properties:
    @given(payload=_payloads, src=_ips, dst=_ips,
           ident=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=150, deadline=None)
    def test_pack_unpack_identity(self, payload, src, dst, ident):
        packet = Ipv4Packet(src, dst, 17, payload, identification=ident)
        parsed = Ipv4Packet.unpack(packet.pack())
        assert parsed.payload == payload
        assert parsed.src == src and parsed.dst == dst
        assert parsed.identification == ident

    @given(payload=st.binary(min_size=1, max_size=20000),
           mtu=st.integers(min_value=68, max_value=1500))
    @settings(max_examples=100, deadline=None)
    def test_fragment_reassemble_round_trip(self, payload, mtu):
        packet = Ipv4Packet(b"\x0a\0\0\x01", b"\x0a\0\0\x02", 17, payload,
                            identification=7)
        pieces = fragment(packet, mtu)
        assert all(20 + len(p.payload) <= mtu for p in pieces)
        reassembler = Reassembler()
        whole = None
        for piece in pieces:
            whole = reassembler.push(Ipv4Packet.unpack(piece.pack()))
        assert whole is not None
        assert whole.payload == payload

    @given(payload=st.binary(min_size=1, max_size=20000),
           mtu=st.integers(min_value=68, max_value=1500),
           order=st.randoms())
    @settings(max_examples=75, deadline=None)
    def test_reassembly_order_independent(self, payload, mtu, order):
        packet = Ipv4Packet(b"\x0a\0\0\x01", b"\x0a\0\0\x02", 17, payload)
        pieces = list(fragment(packet, mtu))
        order.shuffle(pieces)
        reassembler = Reassembler()
        whole = None
        for piece in pieces:
            result = reassembler.push(piece)
            whole = result or whole
        assert whole is not None and whole.payload == payload


class TestUdpProperties:
    @given(payload=_payloads, src_port=_ports, dst_port=_ports,
           src=_ips, dst=_ips)
    @settings(max_examples=150, deadline=None)
    def test_pack_unpack_identity_with_checksum(self, payload, src_port,
                                                dst_port, src, dst):
        datagram = UdpDatagram(src_port, dst_port, payload)
        parsed = UdpDatagram.unpack(datagram.pack(src, dst), src, dst)
        assert parsed == datagram

    @given(payload=st.binary(min_size=1, max_size=512), src=_ips,
           dst=_ips,
           flip=st.integers(min_value=0, max_value=7))
    @settings(max_examples=100, deadline=None)
    def test_single_bit_corruption_detected(self, payload, src, dst,
                                            flip):
        from repro.errors import ProtocolError
        raw = bytearray(UdpDatagram(1, 2, payload).pack(src, dst))
        byte_index = 8 + (flip % len(payload))
        raw[byte_index] ^= 1 << (flip % 8)
        assume(bytes(raw) != UdpDatagram(1, 2, payload).pack(src, dst))
        try:
            UdpDatagram.unpack(bytes(raw), src, dst)
            detected = False
        except ProtocolError:
            detected = True
        assert detected


class TestStackEndToEnd:
    @given(payload=st.binary(min_size=1, max_size=64 * 1024 - 100),
           src_port=_ports, dst_port=_ports)
    @settings(max_examples=40, deadline=None)
    def test_any_payload_survives_the_wire(self, payload, src_port,
                                           dst_port):
        src_mac, dst_mac = b"\x02" + b"\0" * 5, b"\x04" + b"\0" * 5
        src_ip, dst_ip = b"\x0a\0\0\x01", b"\x0a\0\0\x02"
        stack = UdpStack(mac=src_mac, ip=src_ip)
        receiver = UdpReceiver(ip=dst_ip)
        frames = stack.build_udp_frames(payload, src_port, dst_mac,
                                        dst_ip, dst_port)
        assert len(frames) == stack.frames_for_payload(len(payload))
        for frame in frames:
            receiver.receive_frame(frame)
        assert len(receiver.datagrams) == 1
        got = receiver.datagrams[0].datagram
        assert got.payload == payload
        assert got.src_port == src_port and got.dst_port == dst_port


class TestEthernetProperties:
    @given(payload=st.binary(min_size=0, max_size=1500), src=_macs,
           dst=_macs)
    def test_pack_unpack_preserves_payload_prefix(self, payload, src,
                                                  dst):
        frame = EthernetFrame(dst, src, ETHERTYPE_IPV4, payload)
        parsed = EthernetFrame.unpack(frame.pack())
        assert parsed.payload[:len(payload)] == payload
        assert len(parsed.payload) >= 46  # minimum enforced by padding
