"""Property: fault-injection determinism and transport-fault liveness.

Two contracts the chaos campaign rests on:

* a :class:`FaultPlan` is a pure function of (seed, rules, opportunity
  stream): replaying a seed replays the exact fault trace and counters;
* under arbitrary RSP transport faults, an exchange always terminates
  in a well-formed reply or a *typed* error — never a hang, never an
  untyped crash — and once the fault window closes the stub is
  reachable again.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError, RspTransportError
from repro.faults import FaultPlan, FaultRule, RspTransportInjector
from repro.hw import Cpu, IoBus, PhysicalMemory, firmware
from repro.rsp.client import RetryPolicy, RspClient
from repro.rsp.stub import DebugStub
from repro.rsp.target import CpuTargetAdapter

SITES = ["disk0", "disk1", "nic.tx", "uart.h2t"]
KINDS = ["alpha", "beta"]

opportunity_streams = st.lists(
    st.tuples(st.sampled_from(SITES), st.sampled_from(KINDS)),
    min_size=0, max_size=150)


class TestPlanDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           probability=st.floats(min_value=0.01, max_value=1.0,
                                 allow_nan=False),
           at_count=st.integers(min_value=1, max_value=20),
           every=st.integers(min_value=1, max_value=10),
           stream=opportunity_streams)
    @settings(max_examples=150, deadline=None)
    def test_same_seed_same_trace_and_stats(self, seed, probability,
                                            at_count, every, stream):
        def run():
            plan = FaultPlan(seed, rules=[
                FaultRule("disk*", "alpha", probability=probability),
                FaultRule("*", "beta", at_count=at_count),
                FaultRule("nic.tx", "alpha", every=every, max_fires=3),
            ])
            for index, (site, kind) in enumerate(stream):
                rule = plan.decide(site, kind, detail=f"i={index}")
                if rule is not None:
                    plan.rand_range(64)   # injectors draw parameters
            return plan

        first, second = run(), run()
        assert first.trace.format() == second.trace.format()
        assert first.trace.digest() == second.trace.digest()
        assert first.stats() == second.stats()

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           stream=opportunity_streams)
    @settings(max_examples=100, deadline=None)
    def test_different_detail_same_fault_schedule(self, seed, stream):
        """The trace *detail* is annotation only: which opportunities
        fire depends on the seed and stream, never on the detail text."""
        def fires(detail_prefix):
            plan = FaultPlan(seed, rules=[
                FaultRule("*", "alpha", probability=0.3),
                FaultRule("*", "beta", every=4),
            ])
            return [
                plan.decide(site, kind,
                            detail=f"{detail_prefix}{index}") is not None
                for index, (site, kind) in enumerate(stream)]

        assert fires("x=") == fires("some-longer-annotation=")


def make_stub_pipe():
    cpu = Cpu(PhysicalMemory(1 << 20), IoBus())
    firmware.install_flat_firmware(cpu)
    from_stub = bytearray()
    stub = DebugStub(CpuTargetAdapter(cpu), send_bytes=from_stub.extend)

    def send(data):
        if data:
            stub.feed(data)

    def recv():
        out = bytes(from_stub)
        from_stub.clear()
        return out

    return send, recv


class TestTransportFaultLiveness:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           drop=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
           corrupt=st.floats(min_value=0.0, max_value=0.5,
                             allow_nan=False),
           duplicate=st.floats(min_value=0.0, max_value=0.3,
                               allow_nan=False),
           payload=st.sampled_from([b"?", b"g", b"m1000,8", b"qC"]))
    @settings(max_examples=150, deadline=None)
    def test_exchange_terminates_well_formed_or_typed(
            self, seed, drop, corrupt, duplicate, payload):
        rules = []
        if drop:
            rules.append(FaultRule("rsp.*", "drop", probability=drop))
        if corrupt:
            rules.append(FaultRule("rsp.*", "corrupt",
                                   probability=corrupt))
        if duplicate:
            rules.append(FaultRule("rsp.h2t", "duplicate",
                                   probability=duplicate))
            rules.append(FaultRule("rsp.h2t", "reorder",
                                   probability=duplicate))
        plan = FaultPlan(seed, rules=rules)
        send, recv = make_stub_pipe()
        injector = RspTransportInjector(plan, send, recv)
        client = RspClient(injector.send, injector.recv,
                           pump=lambda: None, max_pumps=4,
                           retry_policy=RetryPolicy(max_attempts=4))
        for _ in range(3):
            try:
                reply = client.exchange(payload)
                assert isinstance(reply, bytes)
            except RspTransportError:
                pass            # graceful give-up: the typed outcome
            except ProtocolError:
                pass            # stale/mismatched reply, still typed

        # Fault window closes: the stub must be reachable again.
        plan.disarm()
        injector.flush()
        for _ in range(8):      # drain stale packets deterministically
            client._drain()
        while client._decoder.next_packet() is not None:
            pass
        assert client.exchange(b"?") == b"S05"

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_total_drop_raises_typed_error_not_hang(self, seed):
        plan = FaultPlan(seed, rules=[
            FaultRule("rsp.h2t", "drop", probability=1.0)])
        send, recv = make_stub_pipe()
        injector = RspTransportInjector(plan, send, recv)
        client = RspClient(injector.send, injector.recv,
                           pump=lambda: None, max_pumps=2,
                           retry_policy=RetryPolicy(max_attempts=3))
        try:
            client.exchange(b"?")
            raise AssertionError("exchange cannot succeed: all dropped")
        except RspTransportError as exc:
            assert "3 attempt" in str(exc)
