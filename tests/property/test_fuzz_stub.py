"""Fuzzing: the debug stub and packet decoder must survive arbitrary
bytes — a debugger that can be crashed by line noise is not "stable".
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import Cpu, IoBus, PhysicalMemory
from repro.hw import firmware
from repro.rsp.packets import PacketDecoder, frame
from repro.rsp.stub import DebugStub
from repro.rsp.target import CpuTargetAdapter


def make_stub():
    cpu = Cpu(PhysicalMemory(1 << 20), IoBus())
    firmware.install_flat_firmware(cpu)
    sent = bytearray()
    stub = DebugStub(CpuTargetAdapter(cpu), send_bytes=sent.extend)
    return stub, sent, cpu


class TestStubRobustness:
    @given(noise=st.binary(min_size=0, max_size=512))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_bytes_never_crash_the_stub(self, noise):
        stub, _, _ = make_stub()
        stub.feed(noise)  # must not raise

    @given(noise=st.binary(min_size=0, max_size=256),
           payload=st.binary(min_size=1, max_size=32))
    @settings(max_examples=200, deadline=None)
    def test_valid_packet_after_noise_still_served(self, noise, payload):
        """Noise may swallow at most one packet (NAK'd); the client's
        retransmission always gets through — the RSP recovery story."""
        stub, sent, _ = make_stub()
        stub.feed(noise)
        sent.clear()
        stub.feed(frame(b"g"))
        if b"$" not in bytes(sent):
            # The first copy was absorbed into a noise-opened packet and
            # NAK'd; GDB retransmits on NAK.
            assert b"-" in bytes(sent)
            sent.clear()
            stub.feed(frame(b"g"))
        assert b"$" in bytes(sent)

    @given(body=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        min_size=0, max_size=40))
    @settings(max_examples=300, deadline=None)
    def test_any_printable_command_gets_a_reply(self, body):
        stub, sent, _ = make_stub()
        stub.feed(frame(body.encode("latin-1")))
        data = bytes(sent)
        if body[:1] in ("c", "s", "k", "D"):
            return  # resume/kill commands legitimately defer the reply
        assert data.count(b"$") >= 1  # some reply packet was framed

    @given(addr=st.integers(min_value=0, max_value=0xFFFFFFFF),
           length=st.integers(min_value=0, max_value=0x1000))
    @settings(max_examples=150, deadline=None)
    def test_memory_reads_never_crash_target(self, addr, length):
        stub, sent, _ = make_stub()
        stub.feed(frame(f"m{addr:x},{length:x}".encode()))
        data = bytes(sent)
        assert data.count(b"$") == 1  # exactly one reply (data or Exx)

    @given(junk=st.binary(min_size=1, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_decoder_survives_embedded_control_bytes(self, junk):
        decoder = PacketDecoder()
        decoder.feed(b"$" + junk + b"#zz")   # broken checksum field
        decoder.feed(frame(b"ok?"))
        # The stream resynchronises on the next well-formed packet.
        packets = []
        while True:
            packet = decoder.next_packet()
            if packet is None:
                break
            packets.append(packet)
        assert b"ok?" in packets


class TestStubStateMachine:
    @given(commands=st.lists(
        st.sampled_from([b"?", b"g", b"m1000,10", b"qSupported",
                         b"Z0,4000,1", b"z0,4000,1", b"H g0",
                         b"vCont?", b"T0", b"p3", b"qC"]),
        min_size=1, max_size=25))
    @settings(max_examples=150, deadline=None)
    def test_every_query_sequence_gets_equal_replies(self, commands):
        stub, sent, _ = make_stub()
        for command in commands:
            stub.feed(frame(command))
        replies = bytes(sent).count(b"$")
        assert replies == len(commands)
        assert stub.packets_handled == len(commands)
