"""Property-based tests for RSP framing and hardware invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.pic import PicPair, standard_setup
from repro.rsp.packets import (
    PacketDecoder,
    checksum,
    escape,
    frame,
    unescape_and_expand,
)


class TestRspFraming:
    @given(payload=st.binary(min_size=0, max_size=512))
    @settings(max_examples=200)
    def test_escape_unescape_identity(self, payload):
        assert unescape_and_expand(escape(payload)) == payload

    @given(payload=st.binary(min_size=0, max_size=512))
    @settings(max_examples=200)
    def test_frame_decode_identity(self, payload):
        decoder = PacketDecoder()
        replies = decoder.feed(frame(payload))
        assert replies == b"+"
        assert decoder.next_packet() == payload

    @given(payloads=st.lists(st.binary(min_size=0, max_size=64),
                             min_size=1, max_size=10))
    @settings(max_examples=100)
    def test_stream_of_packets_all_decoded_in_order(self, payloads):
        decoder = PacketDecoder()
        wire = b"".join(frame(p) for p in payloads)
        decoder.feed(wire)
        for expected in payloads:
            assert decoder.next_packet() == expected
        assert decoder.next_packet() is None

    @given(payload=st.binary(min_size=0, max_size=128),
           chunks=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100)
    def test_arbitrary_fragmentation_is_transparent(self, payload,
                                                    chunks):
        """Feeding the wire bytes in any chunking decodes identically."""
        wire = frame(payload)
        decoder = PacketDecoder()
        step = max(1, len(wire) // chunks)
        for start in range(0, len(wire), step):
            decoder.feed(wire[start:start + step])
        assert decoder.next_packet() == payload

    @given(noise=st.binary(min_size=0, max_size=64),
           payload=st.binary(min_size=0, max_size=64))
    @settings(max_examples=100)
    def test_line_noise_before_packet_ignored(self, noise, payload):
        # Noise must not contain packet-control bytes.
        cleaned = bytes(b for b in noise
                        if b not in (0x24, 0x03, 0x2B, 0x2D))
        decoder = PacketDecoder()
        decoder.feed(cleaned + frame(payload))
        assert decoder.next_packet() == payload

    @given(payload=st.binary(min_size=0, max_size=64))
    def test_checksum_is_mod_256(self, payload):
        assert 0 <= checksum(payload) <= 0xFF
        assert checksum(payload) == sum(payload) % 256


class TestPicInvariants:
    @given(operations=st.lists(
        st.one_of(
            st.tuples(st.just("raise"),
                      st.integers(min_value=0, max_value=15)),
            st.tuples(st.just("ack"), st.just(0)),
            st.tuples(st.just("eoi"), st.just(0)),
            st.tuples(st.just("mask"),
                      st.integers(min_value=0, max_value=255)),
        ), min_size=1, max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_acknowledge_always_returns_highest_unmasked(self, operations):
        """Whatever the op sequence, an INTA always hands out the
        highest-priority pending unmasked IRQ, and IRR/ISR stay
        consistent bitmasks."""
        pic = PicPair()
        standard_setup(pic)
        for op, arg in operations:
            if op == "raise":
                pic.raise_irq(arg)
            elif op == "mask":
                pic.master_port().port_write(1, arg, 1)
            elif op == "eoi":
                pic.master_port().port_write(0, 0x20, 1)
                pic.slave_port().port_write(0, 0x20, 1)
            elif op == "ack":
                if pic.has_pending():
                    vector = pic.acknowledge()
                    assert 32 <= vector < 48
            # Invariants after every step:
            assert 0 <= pic.master.irr <= 0xFF
            assert 0 <= pic.master.isr <= 0xFF
            expected = pic.pending_vector()
            if expected is not None:
                line = (expected - 32 if expected < 40
                        else expected - 40 + 8)
                master_line = line if line < 8 else 2
                # The line must be requested and unmasked on the master.
                assert pic.master.irr & (1 << master_line)
                assert not pic.master.imr & (1 << master_line)

    @given(lines=st.lists(
        st.sampled_from([0, 1, 3, 4, 5, 6, 7]),  # IRQ2 is the cascade
        min_size=1, max_size=7, unique=True))
    @settings(max_examples=100)
    def test_drain_order_is_priority_order(self, lines):
        """Raising any set of master IRQs and draining with EOIs always
        yields ascending line numbers (fixed priority)."""
        pic = PicPair()
        standard_setup(pic)
        for line in lines:
            pic.raise_irq(line)
        drained = []
        while pic.has_pending():
            drained.append(pic.acknowledge() - 32)
            pic.master_port().port_write(0, 0x20, 1)
        assert drained == sorted(lines)
