"""Property-based tests: paging, segmentation protection, cycle budget,
and the event queue."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hw.mem import PhysicalMemory
from repro.hw.paging import (
    PAGE_SIZE,
    Mmu,
    PageFault,
    PageTableBuilder,
    span_pages,
)
from repro.hw.seg import SegmentDescriptor
from repro.sim.budget import CycleBudget
from repro.sim.events import EventQueue
from repro.vmm.protect import compress_descriptor, guest_can_reach

import pytest


class TestSpanPages:
    @given(addr=st.integers(min_value=0, max_value=1 << 30),
           length=st.integers(min_value=1, max_value=5 * PAGE_SIZE))
    def test_chunks_tile_exactly(self, addr, length):
        chunks = list(span_pages(addr, length))
        assert chunks[0][0] == addr
        assert sum(size for _, size in chunks) == length
        cursor = addr
        for start, size in chunks:
            assert start == cursor
            # No chunk crosses a page boundary.
            assert (start // PAGE_SIZE) == ((start + size - 1) // PAGE_SIZE)
            cursor += size


class TestPagingProperties:
    @given(mappings=st.dictionaries(
        st.integers(min_value=0, max_value=200),      # virtual page no.
        st.integers(min_value=16, max_value=200),     # physical frame no.
        min_size=1, max_size=24),
        probe_offset=st.integers(min_value=0, max_value=PAGE_SIZE - 1))
    @settings(max_examples=100, deadline=None)
    def test_translation_matches_mapping(self, mappings, probe_offset):
        memory = PhysicalMemory(4 << 20)
        builder = PageTableBuilder(memory, alloc_base=0x1000)
        for vpn, frame in mappings.items():
            builder.map(vpn * PAGE_SIZE, frame * PAGE_SIZE)
        mmu = Mmu(memory)
        mmu.set_cr3(builder.directory)
        for vpn, frame in mappings.items():
            got = mmu.translate(vpn * PAGE_SIZE + probe_offset,
                                write=False, user=False)
            assert got == frame * PAGE_SIZE + probe_offset

    @given(mapped=st.sets(st.integers(min_value=0, max_value=100),
                          min_size=1, max_size=10),
           probe=st.integers(min_value=0, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_unmapped_pages_always_fault(self, mapped, probe):
        assume(probe not in mapped)
        memory = PhysicalMemory(4 << 20)
        builder = PageTableBuilder(memory, alloc_base=0x1000)
        for vpn in mapped:
            builder.map(vpn * PAGE_SIZE, 0x200000)
        mmu = Mmu(memory)
        mmu.set_cr3(builder.directory)
        with pytest.raises(PageFault):
            mmu.translate(probe * PAGE_SIZE, write=False, user=False)


class TestProtectionProperties:
    @given(base=st.integers(min_value=0, max_value=0xF0_0000),
           limit=st.integers(min_value=0, max_value=0x100_0000),
           dpl=st.integers(min_value=0, max_value=3),
           code=st.booleans(),
           probe=st.integers(min_value=0, max_value=0x200_0000))
    @settings(max_examples=300)
    def test_compressed_descriptor_never_reaches_monitor(self, base,
                                                         limit, dpl,
                                                         code, probe):
        """THE protection invariant: no offset through any compressed
        descriptor lands in the monitor region, and the compressed DPL
        is never ring 0."""
        monitor_base = 0xF0_0000
        descriptor = SegmentDescriptor(base, limit, dpl, code=code)
        shadowed = compress_descriptor(descriptor, monitor_base)
        assert shadowed.dpl >= 1
        assert not guest_can_reach(shadowed, probe, monitor_base)

    @given(base=st.integers(min_value=0, max_value=0xE0_0000),
           limit=st.integers(min_value=1, max_value=0x10_0000),
           dpl=st.integers(min_value=0, max_value=3))
    @settings(max_examples=100)
    def test_compression_preserves_guest_reachable_space(self, base,
                                                         limit, dpl):
        """Compression must not steal space the guest legitimately has
        (anything already below the monitor)."""
        monitor_base = 0xF0_0000
        descriptor = SegmentDescriptor(base, limit, dpl)
        shadowed = compress_descriptor(descriptor, monitor_base)
        reachable_before = min(limit, max(monitor_base - base, 0))
        assert shadowed.limit == reachable_before


class TestBudgetProperties:
    @given(charges=st.lists(
        st.tuples(st.sampled_from(["guest", "copy", "world_switch",
                                   "emulation", "interrupt"]),
                  st.integers(min_value=0, max_value=10**9)),
        min_size=0, max_size=50))
    def test_total_is_sum_of_categories(self, charges):
        budget = CycleBudget()
        for category, cycles in charges:
            budget.charge(cycles, category)
        assert budget.total == sum(budget.by_category().values())
        assert budget.total == sum(c for _, c in charges)

    @given(charges=st.lists(st.integers(min_value=0, max_value=10**6),
                            min_size=1, max_size=20),
           window=st.integers(min_value=1, max_value=10**7))
    def test_load_clamped_demand_unclamped(self, charges, window):
        budget = CycleBudget()
        for cycles in charges:
            budget.charge(cycles)
        assert 0 <= budget.load(window) <= 1
        assert budget.demanded_load(window) * window == \
            pytest.approx(budget.total)


class TestEventQueueProperties:
    @given(times=st.lists(st.integers(min_value=0, max_value=10**6),
                          min_size=1, max_size=50))
    def test_events_fire_in_nondecreasing_time_order(self, times):
        queue = EventQueue()
        fired = []
        for time in times:
            queue.schedule_at(time, lambda t=time: fired.append(t))
        queue.run()
        assert fired == sorted(times)
        assert len(fired) == len(times)

    @given(times=st.lists(st.integers(min_value=0, max_value=1000),
                          min_size=1, max_size=30),
           cancel_mask=st.lists(st.booleans(), min_size=1, max_size=30))
    def test_cancelled_events_never_fire(self, times, cancel_mask):
        queue = EventQueue()
        fired = []
        events = [queue.schedule_at(t, lambda t=t: fired.append(t))
                  for t in times]
        expected = []
        for event, time, cancel in zip(events, times,
                                       cancel_mask * len(times)):
            if cancel:
                event.cancel()
            else:
                expected.append(time)
        queue.run()
        assert fired == sorted(expected)
