"""Integration: experiment E4 — the debugging environment stays stable
while the guest OS misbehaves (the paper's first claim).

Contrast class: the conventional embedded stub (bare metal) dies with
the guest; the LVMM stub keeps servicing the host debugger through every
failure mode we inject."""

import pytest

from repro.asm import assemble
from repro.baremetal import BareMetalRunner
from repro.core.session import DebugSession
from repro.guest.asmkernel import KernelConfig, build_kernel
from repro.hw import firmware
from repro.hw.machine import Machine
from repro.hw.uart import HostSerialPort
from repro.rsp.client import RspClient


def crashing_guest(body: str):
    return assemble(f".org {firmware.GUEST_KERNEL_BASE}\n{body}\n")


class TestLvmmSurvivesGuestCrashes:
    def _session_with(self, body: str):
        sess = DebugSession(monitor="lvmm")
        sess.load_and_boot(crashing_guest(body))
        sess.attach()
        return sess

    def _run_to_crash(self, sess, limit=50_000):
        sess.monitor.resume_guest(step=False)
        sess.monitor.run(limit)

    def test_wild_write_into_monitor_region(self):
        sess = self._session_with("""
            MOVI R1, 0xF00000
            MOVI R0, 0xDEAD
        smash:
            ST   [R1+0], R0
            ADDI R1, 4
            JMP  smash
        """)
        self._run_to_crash(sess)
        assert sess.monitor.guest_dead
        # The debugger still works: full register/memory service.
        regs = sess.client.read_registers()
        assert len(regs) == 10
        assert sess.client.read_memory(firmware.GUEST_KERNEL_BASE, 4)

    def test_cli_hang_can_be_interrupted(self):
        sess = self._session_with("""
            CLI
        hang:
            JMP hang
        """)
        sess.client.send_async(b"c")
        for _ in range(5):
            sess._pump()
        sess.client.send_interrupt()
        reply = sess.client.wait_for_stop()
        assert reply == b"S02"
        # We can inspect the wedged guest.
        regs = sess.client.read_registers()
        assert regs[8] != 0

    def test_triple_fault_pattern(self):
        # No IDT at all: the first INT is unservicable.
        sess = self._session_with("""
            INT 0x21
            HLT
        """)
        self._run_to_crash(sess)
        assert sess.monitor.guest_dead
        assert "exception" in sess.monitor.guest_dead_reason
        assert sess.client.read_registers()

    def test_stack_destruction(self):
        sess = self._session_with("""
            MOVI SP, 0          ; demolish the stack, then fault
            PUSH R0
            HLT
        """)
        self._run_to_crash(sess)
        assert sess.monitor.guest_dead
        assert sess.client.read_registers()

    def test_monitor_memory_intact_after_rampage(self):
        sess = self._session_with("""
            MOVI R1, 0xE00000   ; sweep from below the monitor up
            MOVI R0, 0xFFFFFFFF
        sweep:
            ST   [R1+0], R0
            ADDI R1, 4
            JMP  sweep
        """)
        monitor_base = sess.monitor.monitor_base
        shadow_gdt_before = sess.machine.memory.read(
            sess.monitor.shadow_gdt.base, 64)
        # 1 MiB of 4-byte stores at 3 instructions each: ~800k to reach
        # the monitor boundary and fault.
        self._run_to_crash(sess, limit=900_000)
        shadow_gdt_after = sess.machine.memory.read(
            sess.monitor.shadow_gdt.base, 64)
        assert shadow_gdt_before == shadow_gdt_after
        assert sess.monitor.guest_dead
        # Memory *below* the monitor really was trashed (the sweep ran).
        assert sess.machine.memory.read_u32(0xE00000) == 0xFFFFFFFF
        assert monitor_base == 0xF00000


class TestEmbeddedStubDiesWithGuest:
    """The conventional-approach contrast: an in-OS stub stops being
    serviced the moment the guest stops cooperating."""

    def _bare_with_stub(self, body: str):
        machine = Machine()
        runner = BareMetalRunner(machine, with_embedded_stub=True)
        program = crashing_guest(body)
        program.load_into(machine.memory)
        runner.boot_guest(program.origin)
        host = HostSerialPort(machine.serial_link)
        return machine, runner, host

    def test_healthy_guest_services_stub(self):
        machine, runner, host = self._bare_with_stub("""
        loop:
            NOP
            JMP loop
        """)
        client = RspClient(send=host.send, recv=host.recv,
                           pump=runner.embedded_stub.poll, max_pumps=50)
        assert client.query_halt_reason() == 5

    def test_hung_guest_never_services_stub(self):
        machine, runner, host = self._bare_with_stub("""
            CLI
        hang:
            JMP hang
        """)
        # The guest hangs with interrupts off; its idle loop (which
        # would poll the stub) never runs again.
        machine.run(10_000)
        client = RspClient(send=host.send, recv=host.recv,
                           pump=lambda: None, max_pumps=20)
        from repro.errors import ProtocolError
        with pytest.raises(ProtocolError):
            client.query_halt_reason()

    def test_triple_fault_resets_machine_and_stub(self):
        machine, runner, host = self._bare_with_stub("""
            INT 0x21
            HLT
        """)
        runner.run(1000)
        assert runner.guest_dead
        assert runner.embedded_stub is None  # reset took the stub down


class TestStubLatencyWhileGuestCrashed:
    def test_many_exchanges_after_crash(self):
        """Round-trip robustness: 50 debugger exchanges against a dead
        guest all succeed (feeds the E4 bench)."""
        sess = DebugSession(monitor="lvmm")
        sess.load_and_boot(crashing_guest("INT 0x21\nHLT\n"))
        sess.attach()
        sess.monitor.resume_guest(step=False)
        sess.monitor.run(1000)
        assert sess.monitor.guest_dead
        for _ in range(50):
            assert len(sess.client.read_registers()) == 10
