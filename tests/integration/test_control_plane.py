"""Integration: the guest's RX path and ARP control plane.

A host on the wire ARPs for the guest's address while the guest is
busy streaming; the guest's RX driver harvests the request off the
ring and replies — receive and transmit coexisting on one NIC, with
the data plane unperturbed.
"""

import pytest

from repro.guest.os import HiTactix
from repro.hw.machine import Machine, MachineConfig
from repro.net import (
    ArpPacket,
    EthernetFrame,
    ETHERTYPE_ARP,
    make_request,
    parse_ipv4,
    parse_mac,
)
from repro.perf.costmodel import DEFAULT_COST_MODEL
from repro.perf.stacks import InterruptDispatcher, make_stack
from repro.sim.events import cycles_for_seconds

GUEST_MAC = parse_mac("02:00:00:00:00:10")
GUEST_IP = parse_ipv4("10.0.0.10")
HOST_MAC = parse_mac("02:00:00:00:00:99")
HOST_IP = parse_ipv4("10.0.0.99")


def setup(stack_name="lvmm", rate=50e6):
    machine = Machine(MachineConfig())
    machine.program_pic_defaults()
    wire = []
    machine.nic.wire = wire.append
    stack = make_stack(stack_name, machine)
    dispatcher = InterruptDispatcher(machine, stack)
    guest = HiTactix(machine, stack, rate)
    guest.enable_control_plane(GUEST_MAC, GUEST_IP)
    guest.register_handlers(dispatcher)
    guest.start()
    dispatcher.dispatch_pending()
    return machine, guest, dispatcher, wire


def run_for(machine, dispatcher, seconds):
    deadline = machine.queue.now + cycles_for_seconds(
        seconds, DEFAULT_COST_MODEL.cpu_hz)
    queue = machine.queue
    while True:
        next_time = queue.peek_time()
        if next_time is None or next_time > deadline:
            break
        queue.step()
        dispatcher.dispatch_pending()
    if deadline > queue.now:
        queue.now = deadline


def arp_request_frame(target_ip=GUEST_IP):
    request = make_request(HOST_MAC, HOST_IP, target_ip)
    return EthernetFrame(dst=b"\xff" * 6, src=HOST_MAC,
                         ethertype=ETHERTYPE_ARP,
                         payload=request.pack()).pack()


def arp_replies_on(wire):
    replies = []
    for raw in wire:
        frame = EthernetFrame.unpack(raw)
        if frame.ethertype == ETHERTYPE_ARP:
            replies.append((frame, ArpPacket.unpack(frame.payload)))
    return replies


class TestArpResponder:
    def test_guest_answers_for_its_ip(self):
        machine, guest, dispatcher, wire = setup()
        machine.nic.receive_frame(arp_request_frame())
        run_for(machine, dispatcher, 0.05)
        replies = arp_replies_on(wire)
        assert len(replies) == 1
        frame, packet = replies[0]
        assert packet.operation == 2
        assert packet.sender_mac == GUEST_MAC
        assert packet.sender_ip == GUEST_IP
        assert packet.target_mac == HOST_MAC
        assert frame.dst == HOST_MAC
        assert guest.arp_replies == 1

    def test_guest_ignores_other_ips(self):
        machine, guest, dispatcher, wire = setup()
        machine.nic.receive_frame(
            arp_request_frame(parse_ipv4("10.0.0.77")))
        run_for(machine, dispatcher, 0.05)
        assert not arp_replies_on(wire)
        assert guest.arp_replies == 0

    def test_garbage_frames_counted_and_dropped(self):
        machine, guest, dispatcher, wire = setup()
        machine.nic.receive_frame(bytes(64))
        run_for(machine, dispatcher, 0.05)
        assert guest.nic.rx.frames_received == 1
        assert guest.arp_replies == 0

    def test_many_requests_all_answered(self):
        machine, guest, dispatcher, wire = setup()
        for _ in range(8):
            machine.nic.receive_frame(arp_request_frame())
        run_for(machine, dispatcher, 0.1)
        assert guest.arp_replies == 8
        assert len(arp_replies_on(wire)) == 8

    def test_data_plane_keeps_streaming(self):
        """ARP service must not disturb the paced transfer."""
        machine, guest, dispatcher, wire = setup(rate=50e6)
        run_for(machine, dispatcher, 0.2)
        baseline_segments = guest.segments_sent
        for _ in range(4):
            machine.nic.receive_frame(arp_request_frame())
        run_for(machine, dispatcher, 0.2)
        assert guest.arp_replies == 4
        # Roughly another 0.2s worth of segments went out.
        assert guest.segments_sent >= baseline_segments + 1
        assert guest.nic.control_frames_sent == 4

    def test_rx_ring_replenished(self):
        """More requests than ring slots still all get served (the
        driver recycles descriptors)."""
        machine, guest, dispatcher, wire = setup()
        total = guest.nic.rx.ring_len + 10
        for _ in range(total):
            machine.nic.receive_frame(arp_request_frame())
            run_for(machine, dispatcher, 0.002)
        assert guest.arp_replies == total
