"""Integration: the device models carry *real* protocol traffic.

The performance layer uses zero-copy placeholder frames for speed; this
test closes the loop by pushing genuine UDP/IP/Ethernet frames (built
by repro.net from disk-read data) through the NIC's descriptor ring and
validating them — checksums and all — with the host-side receiver.
"""

import pytest

from repro.hw.machine import Machine, MachineConfig
from repro.hw.nic import (
    ICR_TXDW,
    REG_IMS,
    REG_TCTL,
    REG_TDBA,
    REG_TDLEN,
    REG_TDT,
    make_tx_descriptor,
)
from repro.net import UdpReceiver, UdpStack, parse_ipv4, parse_mac

SRC_MAC = parse_mac("02:00:00:00:00:01")
DST_MAC = parse_mac("02:00:00:00:00:02")
SRC_IP = parse_ipv4("10.0.0.1")
DST_IP = parse_ipv4("10.0.0.2")

RING_BASE = 0x1_0000
FRAME_BASE = 0x2_0000


class TestRealTrafficThroughTheNic:
    def _machine_with_receiver(self):
        machine = Machine(MachineConfig())
        receiver = UdpReceiver(ip=DST_IP)
        machine.nic.wire = lambda frame: receiver.receive_frame(frame)
        base = machine.nic_mmio_base
        machine.bus.mmio_write(base + REG_TDBA, RING_BASE, 4)
        machine.bus.mmio_write(base + REG_TDLEN, 256, 4)
        machine.bus.mmio_write(base + REG_IMS, ICR_TXDW, 4)
        machine.bus.mmio_write(base + REG_TCTL, 0x2, 4)
        return machine, receiver

    def _send_payload(self, machine, payload: bytes) -> int:
        """Build real frames and push them through the TX ring."""
        stack = UdpStack(mac=SRC_MAC, ip=SRC_IP)
        frames = stack.build_udp_frames(payload, 9000, DST_MAC, DST_IP,
                                        9001)
        tail = machine.nic.tdt
        cursor = FRAME_BASE
        for frame in frames:
            machine.memory.write(cursor, frame)
            machine.memory.write(RING_BASE + tail * 16,
                                 make_tx_descriptor(cursor, len(frame)))
            cursor += 2048
            tail = (tail + 1) % 256
        machine.bus.mmio_write(machine.nic_mmio_base + REG_TDT, tail, 4)
        machine.queue.run()
        return len(frames)

    def test_disk_data_survives_the_whole_path(self):
        """disk -> (DMA image) -> UDP/IP fragmentation -> NIC ring ->
        wire -> reassembly -> checksum-verified payload."""
        machine, receiver = self._machine_with_receiver()
        payload = machine.disks[0].read_blocks(0, 64)  # 32 KiB
        frames = self._send_payload(machine, payload)
        assert frames > 20  # genuinely fragmented
        assert len(receiver.datagrams) == 1
        assert receiver.datagrams[0].datagram.payload == payload
        assert receiver.errors == 0

    def test_many_datagrams_in_order(self):
        machine, receiver = self._machine_with_receiver()
        payloads = [machine.disks[0].read_blocks(lba, 4)
                    for lba in range(0, 40, 4)]
        for payload in payloads:
            self._send_payload(machine, payload)
        assert len(receiver.datagrams) == len(payloads)
        for received, sent in zip(receiver.datagrams, payloads):
            assert received.datagram.payload == sent

    def test_corrupted_frame_rejected_by_receiver(self):
        machine, receiver = self._machine_with_receiver()
        payload = bytes(1000)
        stack = UdpStack(mac=SRC_MAC, ip=SRC_IP)
        frame = bytearray(stack.build_udp_frames(
            payload, 1, DST_MAC, DST_IP, 2)[0])
        frame[30] ^= 0xFF  # flip a header byte: checksum now wrong
        machine.memory.write(FRAME_BASE, bytes(frame))
        machine.memory.write(RING_BASE,
                             make_tx_descriptor(FRAME_BASE, len(frame)))
        machine.bus.mmio_write(machine.nic_mmio_base + REG_TDT, 1, 4)
        machine.queue.run()
        assert receiver.errors == 1
        assert not receiver.datagrams
