"""Integration: the TCP GDB-server bridge with a real socket client."""

import socket
import threading
import time

import pytest

from repro.core import DebugSession
from repro.debugger.gdbserver import GdbServer
from repro.guest.asmkernel import KernelConfig, build_kernel
from repro.rsp.client import RspClient


@pytest.fixture
def server():
    session = DebugSession(monitor="lvmm")
    kernel = build_kernel(KernelConfig(ticks_to_run=10_000))
    session.load_and_boot(kernel)
    bridge = GdbServer(session, host="127.0.0.1", port=0)
    thread = threading.Thread(
        target=bridge.serve_client,
        kwargs={"max_idle_polls": 2000},
        daemon=True)
    thread.start()
    yield bridge, kernel
    bridge.shutdown_requested = True
    thread.join(timeout=5)
    bridge.close()


def tcp_client(bridge) -> RspClient:
    sock = socket.create_connection(bridge.address, timeout=5)
    sock.setblocking(False)

    def send(data: bytes) -> None:
        if data:
            sock.sendall(data)

    def recv() -> bytes:
        try:
            return sock.recv(4096)
        except BlockingIOError:
            return b""

    return RspClient(send=send, recv=recv,
                     pump=lambda: time.sleep(0.002), max_pumps=2000)


class TestGdbServerBridge:
    def test_attach_over_tcp(self, server):
        bridge, _ = server
        client = tcp_client(bridge)
        assert client.query_halt_reason() == 5
        assert len(client.read_registers()) == 10
        assert bridge.bytes_in > 0 and bridge.bytes_out > 0

    def test_breakpoint_over_tcp(self, server):
        bridge, kernel = server
        client = tcp_client(bridge)
        client.exchange(b"qSupported")
        isr = kernel.symbol("timer_isr")
        client.set_breakpoint(isr)
        reply = client.cont()
        assert reply == b"S05"
        assert client.read_registers()[8] == isr

    def test_memory_and_monitor_commands_over_tcp(self, server):
        bridge, kernel = server
        client = tcp_client(bridge)
        data = client.read_memory(kernel.origin, 8)
        assert data == kernel.image[:8]
        stats = client.monitor_command("stats")
        assert "traps emulated" in stats

    def test_target_xml_over_tcp(self, server):
        bridge, _ = server
        client = tcp_client(bridge)
        reply = client.exchange(
            b"qXfer:features:read:target.xml:0,1024")
        assert reply.startswith(b"l<?xml")


class TestAbruptDisconnect:
    """Regression: a client dying mid-session (RST, not FIN) must end
    that session cleanly and leave the server able to serve the next
    client — never unwind with an exception or wedge the loop."""

    def _bridge(self):
        session = DebugSession(monitor="lvmm")
        kernel = build_kernel(KernelConfig(ticks_to_run=10_000))
        session.load_and_boot(kernel)
        return GdbServer(session, host="127.0.0.1", port=0)

    def _serve_once(self, bridge):
        done = threading.Event()

        def serve():
            bridge.serve_client(max_idle_polls=4000)
            done.set()

        threading.Thread(target=serve, daemon=True).start()
        return done

    def _connect(self, bridge):
        sock = socket.create_connection(bridge.address, timeout=5)
        sock.setblocking(False)

        def send(data: bytes) -> None:
            if data:
                sock.sendall(data)

        def recv() -> bytes:
            try:
                return sock.recv(4096)
            except BlockingIOError:
                return b""

        client = RspClient(send=send, recv=recv,
                           pump=lambda: time.sleep(0.002),
                           max_pumps=2000)
        return client, sock

    @staticmethod
    def _abort(sock):
        """Close with SO_LINGER zero: an RST, the rudest goodbye."""
        import struct
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
        sock.close()

    def test_rst_mid_session_then_second_client_served(self):
        bridge = self._bridge()
        try:
            done = self._serve_once(bridge)
            client, sock = self._connect(bridge)
            assert client.query_halt_reason() == 5
            self._abort(sock)
            assert done.wait(10), \
                "serve_client did not return after an RST"

            # The machine behind the server is intact: a second
            # client attaches and debugs as if nothing happened.
            done = self._serve_once(bridge)
            client2, sock2 = self._connect(bridge)
            assert client2.query_halt_reason() == 5
            assert len(client2.read_registers()) == 10
            sock2.close()
            assert done.wait(10)
        finally:
            bridge.shutdown_requested = True
            bridge.close()

    def test_rst_with_a_half_sent_packet(self):
        """Die in the middle of a packet: the server must not block
        waiting for the rest of it."""
        bridge = self._bridge()
        try:
            done = self._serve_once(bridge)
            client, sock = self._connect(bridge)
            assert client.query_halt_reason() == 5
            sock.sendall(b"$qSupported")   # no '#xx' terminator
            self._abort(sock)
            assert done.wait(10), \
                "serve_client wedged on a torn packet"
        finally:
            bridge.shutdown_requested = True
            bridge.close()
