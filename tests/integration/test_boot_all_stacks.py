"""Integration: the same guest kernel image boots and runs on all three
execution stacks (real hardware / LVMM / full VMM) — the paper's
"can work with any OSs running on PC/AT architectures" property."""

import pytest

from repro.baremetal import BareMetalRunner
from repro.fullvmm import FullVmm
from repro.guest.asmkernel import (
    KernelConfig,
    build_kernel,
    build_user_task,
    read_state,
    read_ticks,
)
from repro.hw.machine import Machine
from repro.vmm import LightweightVmm

TICKS = 6


def run_bare(config, user=None, max_instructions=600_000):
    machine = Machine()
    runner = BareMetalRunner(machine)
    kernel = build_kernel(config)
    kernel.load_into(machine.memory)
    if user is not None:
        user.load_into(machine.memory)
    runner.boot_guest(kernel.origin)
    machine.run(max_instructions,
                until=lambda: read_state(machine.memory) != 0)
    return machine, runner


def run_monitored(monitor_class, config, user=None,
                  max_instructions=800_000):
    machine = Machine()
    monitor = monitor_class(machine)
    kernel = build_kernel(config)
    kernel.load_into(machine.memory)
    if user is not None:
        user.load_into(machine.memory)
    monitor.install()
    monitor.boot_guest(kernel.origin)
    monitor.run(max_instructions,
                until=lambda: read_state(machine.memory) != 0)
    return machine, monitor


class TestSameImageEverywhere:
    def test_bare_metal_counts_ticks(self):
        machine, runner = run_bare(KernelConfig(ticks_to_run=TICKS))
        assert read_ticks(machine.memory) == TICKS
        assert not runner.guest_dead

    def test_lvmm_counts_ticks(self):
        machine, monitor = run_monitored(
            LightweightVmm, KernelConfig(ticks_to_run=TICKS))
        assert read_ticks(machine.memory) == TICKS
        assert not monitor.guest_dead
        assert machine.cpu.cpl >= 1          # never reached ring 0

    def test_fullvmm_counts_ticks(self):
        machine, monitor = run_monitored(
            FullVmm, KernelConfig(ticks_to_run=TICKS))
        assert read_ticks(machine.memory) == TICKS
        assert not monitor.guest_dead

    def test_user_task_output_identical_on_all_stacks(self):
        config = KernelConfig(ticks_to_run=500, with_user_task=True)
        user = build_user_task(4)

        machine_bare, _ = run_bare(config, user)
        machine_lvmm, monitor_lvmm = run_monitored(LightweightVmm,
                                                   config, user)
        machine_full, monitor_full = run_monitored(FullVmm, config, user)

        assert read_state(machine_bare.memory) == 2   # user exited
        assert read_state(machine_lvmm.memory) == 2
        assert read_state(machine_full.memory) == 2
        # Monitor consoles captured the user task's syscalls.
        assert bytes(monitor_lvmm.console).startswith(b"uuuu")
        assert bytes(monitor_full.console).startswith(b"uuuu")

    def test_lvmm_overhead_exceeds_bare(self):
        """The functional layer already shows monitor overhead: the same
        work costs more busy cycles under the LVMM."""
        config = KernelConfig(ticks_to_run=TICKS)
        machine_bare, _ = run_bare(config)
        machine_lvmm, _ = run_monitored(LightweightVmm, config)
        assert machine_lvmm.budget.total > machine_bare.budget.total

    def test_fullvmm_overhead_exceeds_lvmm(self):
        config = KernelConfig(ticks_to_run=TICKS)
        machine_lvmm, _ = run_monitored(LightweightVmm, config)
        machine_full, _ = run_monitored(FullVmm, config)
        assert machine_full.budget.total > machine_lvmm.budget.total


class TestPassthroughCustomisability:
    """E5: a brand-new device works under the LVMM with zero monitor
    changes, because unclaimed ports/MMIO pass straight through."""

    def test_new_port_device_needs_no_monitor_change(self):
        from repro.hw.bus import PortDevice

        class FrobDevice(PortDevice):
            def __init__(self):
                self.value = 0

            def port_read(self, offset, size):
                return self.value

            def port_write(self, offset, value, size):
                self.value = value

        machine = Machine()
        device = FrobDevice()
        machine.bus.register_ports(0x5000, 4, device, "frob")
        monitor = LightweightVmm(machine)
        monitor.install()
        # Grant passthrough the same way the HBA gets it: one bitmap entry.
        machine.cpu.io_allowed_ports.update(range(0x5000, 0x5004))

        from repro.asm import assemble
        from repro.hw import firmware
        program = assemble(f"""
        .org {firmware.GUEST_KERNEL_BASE}
            MOVI R2, 0x5000
            MOVI R0, 0x77
            OUTB R0, R2
            INB  R3, R2
            HLT
        """)
        program.load_into(machine.memory)
        monitor.boot_guest(program.origin)
        monitor.run(20)
        assert device.value == 0x77
        assert machine.cpu.regs[3] == 0x77
        # And the monitor never saw the accesses.
        assert machine.bus.intercepted_accesses == 0

    def test_new_mmio_device_passes_through(self):
        from repro.hw.bus import MmioDevice

        class MmioScratch(MmioDevice):
            def __init__(self):
                self.value = 0

            def mmio_read(self, offset, size):
                return self.value

            def mmio_write(self, offset, value, size):
                self.value = value

        machine = Machine()
        device = MmioScratch()
        machine.bus.register_mmio(0xD000_0000, 0x100, device, "scratch")
        monitor = LightweightVmm(machine)
        monitor.install()

        # MMIO beyond physical RAM cannot be segment-limit checked the
        # usual way; monitors map it for the guest.  For the test we
        # touch it from monitor context (raw), proving the bus routes it
        # and the LVMM policy does not claim it.
        assert not monitor.intercept.intercepts_mmio(0xD000_0000)
        machine.bus.mmio_write(0xD000_0000, 123, 4)
        assert device.value == 123
        assert machine.bus.intercepted_accesses == 0
