"""Integration: checkpoint/restore of a stopped guest (the simulator-
enabled extension — wind the guest back past its own crash)."""

import pytest

from repro.asm import assemble
from repro.core import DebugSession
from repro.core.snapshot import capture, restore
from repro.errors import MonitorError
from repro.guest.asmkernel import (
    DATA_BASE,
    KernelConfig,
    build_kernel,
    read_ticks,
)
from repro.hw import firmware
from repro.hw.machine import Machine


@pytest.fixture
def session():
    sess = DebugSession(monitor="lvmm")
    kernel = build_kernel(KernelConfig(ticks_to_run=50))
    sess.load_and_boot(kernel)
    sess.attach()
    return sess, kernel


class TestCheckpointRestore:
    def test_restore_rewinds_registers_and_memory(self, session):
        sess, kernel = session
        isr = kernel.symbol("timer_isr")
        sess.client.set_breakpoint(isr)
        sess.client.cont()
        ticks_at_checkpoint = read_ticks(sess.machine.memory)
        regs_at_checkpoint = sess.client.read_registers()
        sess.checkpoint("at-isr")

        # Run three more interrupts past the checkpoint.
        for _ in range(3):
            sess.client.cont()
        assert read_ticks(sess.machine.memory) > ticks_at_checkpoint

        sess.restore("at-isr")
        assert read_ticks(sess.machine.memory) == ticks_at_checkpoint
        assert sess.client.read_registers() == regs_at_checkpoint

    def test_rerun_from_checkpoint_is_deterministic(self, session):
        sess, kernel = session
        isr = kernel.symbol("timer_isr")
        sess.client.set_breakpoint(isr)
        sess.client.cont()
        sess.checkpoint()

        sess.client.cont()
        regs_first = sess.client.read_registers()

        sess.restore()
        sess.client.cont()
        regs_second = sess.client.read_registers()
        # PC and general registers replay identically.
        assert regs_second[:9] == regs_first[:9]

    def test_restore_resurrects_crashed_guest(self):
        sess = DebugSession(monitor="lvmm")
        program = assemble(f"""
        .org {firmware.GUEST_KERNEL_BASE}
        start:
            MOVI R3, 0x11
            BKPT              ; checkpoint here
            MOVI R1, 0xF80000 ; then walk into the monitor region
            ST   [R1+0], R0
            HLT
        """)
        sess.load_and_boot(program)
        sess.attach()
        sess.client.cont()           # stops at BKPT
        sess.checkpoint("before-crash")

        sess.monitor.resume_guest(step=False)
        sess.monitor.run(100)
        assert sess.monitor.guest_dead

        sess.restore("before-crash")
        assert not sess.monitor.guest_dead
        regs = sess.client.read_registers()
        assert regs[3] == 0x11       # back before the crash

    def test_monitor_shadow_state_restored(self, session):
        sess, kernel = session
        sess.client.set_breakpoint(kernel.symbol("timer_isr"))
        sess.client.cont()
        vif_at_checkpoint = sess.monitor.shadow.vif
        idtr_at_checkpoint = sess.monitor.shadow.idtr.base
        sess.checkpoint()
        sess.client.cont()
        sess.restore()
        assert sess.monitor.shadow.vif == vif_at_checkpoint
        assert sess.monitor.shadow.idtr.base == idtr_at_checkpoint

    def test_unknown_checkpoint_rejected(self, session):
        sess, _ = session
        with pytest.raises(MonitorError):
            sess.restore("never-saved")

    def test_size_mismatch_rejected(self, session):
        sess, _ = session
        sess.checkpoint("here")
        from repro.hw.machine import MachineConfig
        other = Machine(MachineConfig(memory_size=8 << 20))
        with pytest.raises(MonitorError):
            restore(other, sess.checkpoints.get("here"))

    def test_snapshot_refuses_inflight_dma(self):
        machine = Machine()
        from repro.hw.scsi import (CMD_START, PORT_BASE_SCSI,
                                   REG_COMMAND, REG_MAILBOX,
                                   cdb_read10, encode_request_block)
        block = encode_request_block(0, cdb_read10(0, 8), 0x8000,
                                     8 * 512)
        machine.memory.write(0x700, block)
        machine.bus.port_write(PORT_BASE_SCSI + REG_MAILBOX, 0x700, 4)
        machine.bus.port_write(PORT_BASE_SCSI + REG_COMMAND, CMD_START, 4)
        with pytest.raises(MonitorError):
            capture(machine)

    def test_debugger_cli_commands(self, session):
        sess, kernel = session
        from repro.debugger import Debugger, SymbolTable
        symbols = SymbolTable()
        symbols.add_program(kernel)
        debugger = Debugger(sess, symbols)
        assert "saved" in debugger.execute("checkpoint boot")
        debugger.execute("break timer_isr")
        debugger.execute("continue")
        text = debugger.execute("restore boot")
        assert "restored" in text
        assert read_ticks(sess.machine.memory) == 0

    def test_disk_writes_rewound(self, session):
        sess, _ = session
        disk = sess.machine.disks[0]
        original = disk.read_blocks(5, 1)
        sess.checkpoint("clean")
        disk.write_blocks(5, b"\xAB" * 512)
        assert disk.read_blocks(5, 1) != original
        sess.restore("clean")
        assert disk.read_blocks(5, 1) == original
