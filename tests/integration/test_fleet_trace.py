"""Integration: fleet-wide distributed tracing end to end.

One real 4-worker traced fleet run (spawn context, real pipes) is
recorded once per module and inspected from several angles:

* the export byte-matches ``tests/golden/fleet_trace_seed1234.json``;
* a second identical run is byte-identical (the determinism
  regression the per-trace span-id scheme exists for);
* every submitted job forms one *connected* trace from supervisor
  enqueue through worker slice execution;
* fleet-level p95 slice latency is derivable from the merged
  histograms, and an exemplar resolves to a span in its trace;
* with tracing off (the default), the collector sees nothing and the
  pipe protocol carries no span fields — which is what keeps every
  pre-existing golden artifact byte-identical.
"""

import json
import os

import pytest

from repro.obs.cli import main as trace_main
from repro.obs.distributed.aggregate import histogram_percentile
from repro.obs.distributed.context import TraceContext
from repro.obs.distributed.scenario import record_fleet
from repro.obs.exporters import validate_chrome_trace

GOLDEN = os.path.join(os.path.dirname(__file__), "..", "golden",
                      "fleet_trace_seed1234.json")


def _dump_bytes(document) -> bytes:
    return (json.dumps(document, indent=1, sort_keys=True)
            + "\n").encode()


@pytest.fixture(scope="module")
def fleet_doc():
    return record_fleet()


class TestGoldenFleetTrace:
    def test_schema_valid(self, fleet_doc):
        assert validate_chrome_trace(fleet_doc) == []

    def test_matches_golden_file(self, fleet_doc):
        with open(GOLDEN, "rb") as handle:
            golden = handle.read()
        assert _dump_bytes(fleet_doc) == golden, \
            "fleet trace diverged from the golden file; if the " \
            "change is intentional, regenerate with: PYTHONPATH=src " \
            "python -m repro.obs.cli fleet record -o " \
            "tests/golden/fleet_trace_seed1234.json"

    def test_two_runs_are_byte_identical(self, fleet_doc):
        assert _dump_bytes(record_fleet()) == _dump_bytes(fleet_doc)


class TestConnectedTraces:
    def _jobs(self, fleet_doc):
        """trace hex -> list of events, for the four job traces."""
        traces = {}
        for event in fleet_doc["traceEvents"]:
            if event.get("ph") == "M":
                continue
            trace = event["args"]["trace"]
            traces.setdefault(trace[:16], []).append(event)
        return traces

    def test_every_job_trace_spans_supervisor_and_worker(
            self, fleet_doc):
        traces = self._jobs(fleet_doc)
        assert len(traces) == 4
        for events in traces.values():
            names = {e["name"] for e in events}
            assert {"enqueue", "dispatch", "done",
                    "job-start", "job-run", "slice"} <= names
            pids = {e["pid"] for e in events}
            assert 1 in pids                      # supervisor
            assert any(pid >= 10 for pid in pids)  # a worker

    def test_parent_links_form_one_tree_per_trace(self, fleet_doc):
        for events in self._jobs(fleet_doc).values():
            spans = {}
            for event in events:
                ctx = TraceContext.decode(event["args"]["trace"])
                spans[ctx.span_id] = ctx
            roots = [ctx for ctx in spans.values()
                     if ctx.parent_id == 0]
            assert len(roots) == 1
            for ctx in spans.values():
                if ctx.parent_id:
                    assert ctx.parent_id in spans, \
                        f"span {ctx.span_id:#x} has dangling parent"

    def test_exemplar_resolves_into_its_trace(self, fleet_doc):
        hist = fleet_doc["fleetMetrics"]["fleet.slice.cycles"]
        assert histogram_percentile(hist, 95) is not None
        assert hist["exemplars"]
        encoded = next(iter(hist["exemplars"].values()))
        exemplar = TraceContext.decode(encoded)
        slice_traces = {
            TraceContext.decode(e["args"]["trace"])
            for e in fleet_doc["traceEvents"]
            if e.get("name") == "slice"}
        assert exemplar in slice_traces

    def test_worker_timelines_are_monotonic(self, fleet_doc):
        by_pid = {}
        for event in fleet_doc["traceEvents"]:
            if event.get("ph") == "X" and event["pid"] >= 10:
                by_pid.setdefault(event["pid"], []).append(event)
        assert len(by_pid) == 4
        for events in by_pid.values():
            stamps = [e["ts"] for e in events]
            assert stamps == sorted(stamps)


class TestFleetCli:
    def test_report_and_top_read_the_golden(self, capsys):
        assert trace_main(["fleet", "report", GOLDEN]) == 0
        out = capsys.readouterr().out
        assert "schema: ok" in out
        assert "fleet.slice.cycles" in out
        assert trace_main(["fleet", "top", GOLDEN, "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "slowest slices" in out

    def test_export_fleet_metrics(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert trace_main(["fleet", "export", GOLDEN,
                           "--metrics", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["format"] == "repro-fleet-metrics-v1"
        assert "fleet.slice.cycles" in document["metrics"]


class TestTracingOffIsInert:
    def test_untraced_fleet_collects_nothing(self):
        from repro.fleet.jobs import Job
        from repro.fleet.supervisor import Fleet, FleetConfig

        fleet = Fleet(FleetConfig(workers=1,
                                  heartbeat_interval=0.05)).start()
        try:
            assert fleet.wait_ready(timeout=60.0)
            fleet.submit(Job(kind="noop"))
            assert fleet.run_until_idle(timeout=60.0)
            stats = fleet.obs.collector.stats()
            assert stats["supervisor_events"] == 0
            assert stats["ingested"] == 0
            status = fleet.status()
            assert status["tracing"]["enabled"] is False
            # Aggregation still works without tracing.
            assert fleet.obs.fleet_metrics()
        finally:
            fleet.shutdown()
