"""Integration: the chaos campaign runner and its golden fault trace.

The committed golden trace pins the exact fault schedule the default
seed produces; any change to RNG consumption order, rule evaluation or
trace formatting shows up as a diff here before it silently invalidates
someone's recorded repro seed.
"""

import json
from pathlib import Path

import pytest

from repro.faults.campaign import (
    DEFAULT_SEED,
    SCENARIOS,
    main,
    run_campaign,
    run_scenario,
)

GOLDEN = Path(__file__).resolve().parent.parent / "golden" \
    / "chaos_seed1234.trace"


class TestCampaignInvariants:
    def test_default_campaign_upholds_every_invariant(self):
        campaign = run_campaign(seed=DEFAULT_SEED)
        violations = {result["scenario"]: result["violations"]
                      for result in campaign["results"]
                      if result["violations"]}
        assert campaign["ok"], violations
        assert len(campaign["results"]) == len(SCENARIOS)

    def test_golden_trace_matches(self):
        campaign = run_campaign(seed=DEFAULT_SEED)
        assert campaign["trace"] == GOLDEN.read_text()

    def test_identical_seeds_identical_campaigns(self):
        first = run_campaign(seed=77,
                             scenarios=["disk-errors", "guest-hang"])
        second = run_campaign(seed=77,
                              scenarios=["disk-errors", "guest-hang"])
        assert first["trace"] == second["trace"]
        assert first["trace_digest"] == second["trace_digest"]
        for left, right in zip(first["results"], second["results"]):
            assert left["fault_stats"] == right["fault_stats"]

    def test_different_seeds_differ(self):
        first = run_scenario("nic-loss", 1234)
        second = run_scenario("nic-loss", 4321)
        assert first["trace"] != second["trace"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_campaign(scenarios=["no-such-chaos"])

    def test_scenario_results_carry_fault_stats(self):
        result = run_scenario("triple-fault", DEFAULT_SEED)
        stats = result["fault_stats"]
        assert stats["plan"]["seed"] == DEFAULT_SEED
        assert stats["monitor"]["guest_dead"] is True
        assert stats["monitor"]["degradation_level"] == "frozen-snapshot"
        assert stats["monitor"]["watchdog"]["checks"] >= 1


class TestCampaignCli:
    def test_list_prints_scenarios(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_cli_writes_trace_and_json(self, tmp_path, capsys):
        trace_path = tmp_path / "chaos.trace"
        json_path = tmp_path / "chaos.json"
        code = main(["--seed", str(DEFAULT_SEED),
                     "--scenario", "triple-fault",
                     "--trace", str(trace_path),
                     "--json", str(json_path)])
        assert code == 0
        assert trace_path.read_text().startswith(
            "== scenario=triple-fault")
        document = json.loads(json_path.read_text())
        assert document["experiment"] == "chaos-campaign"
        assert document["ok"] is True
        assert "trace" not in document   # trace file is canonical
        assert "trace digest:" in capsys.readouterr().out

    def test_cli_golden_match_and_mismatch(self, tmp_path, capsys):
        assert main(["--seed", str(DEFAULT_SEED),
                     "--golden", str(GOLDEN)]) == 0
        assert "golden trace matches" in capsys.readouterr().out
        wrong = tmp_path / "wrong.trace"
        wrong.write_text("== scenario=bogus seed=0 ==\n")
        assert main(["--seed", str(DEFAULT_SEED),
                     "--golden", str(wrong)]) == 1
        assert "mismatch" in capsys.readouterr().out
