"""End-to-end record/replay: capture a chaos failure, replay it to the
identical failure, detect deliberate divergence, and minimize."""

import copy
import os

import pytest

from repro.errors import JournalError, MonitorError
from repro.faults.campaign import run_scenario
from repro.replay import (
    FlightRecorder,
    Frame,
    Journal,
    bisect_divergence,
    load_journal,
    loads_journal,
    minimize_journal,
    replay_journal,
)

SEED = 1234
GOLDEN = os.path.join(os.path.dirname(__file__), "..", "golden",
                      "replay_wild-writes_seed1234.journal")


@pytest.fixture(scope="module")
def captured(tmp_path_factory):
    """One strict-guest wild-writes run, recorded to a journal."""
    journal_dir = tmp_path_factory.mktemp("journals")
    result = run_scenario("wild-writes", SEED, strict_guest=True,
                          journal_dir=str(journal_dir))
    return result, journal_dir


def _copy(journal):
    return Journal(header=dict(journal.header),
                   frames=[Frame(f.type, copy.deepcopy(f.data))
                           for f in journal.frames])


class TestFailureCapture:
    def test_forced_failure_emits_journal(self, captured):
        result, _ = captured
        assert not result["ok"]
        assert any("guest died" in v for v in result["violations"])
        assert "journal" in result
        assert os.path.exists(result["journal"])

    def test_journal_is_complete_and_typed(self, captured):
        result, _ = captured
        journal = load_journal(result["journal"])
        assert journal.complete and not journal.truncated
        counts = journal.counts_by_kind()
        assert counts["wild-write"] > 0
        assert counts["run"] > 0
        assert counts["xc-irq"] > 0
        assert counts["checkpoint"] >= 1
        checks = journal.end_frame.data["checks"]
        assert {"check": "guest-dead"} in checks

    def test_recorder_stats_exported(self, captured):
        result, _ = captured
        recorder = result["fault_stats"]["recorder"]
        assert recorder["finished"]
        assert recorder["frames"] > 0
        assert recorder["journal_bytes"] > 0

    def test_passing_run_keeps_no_journal(self, tmp_path):
        result = run_scenario("wild-writes", SEED,
                              journal_dir=str(tmp_path))
        assert result["ok"]
        assert "journal" not in result
        assert list(tmp_path.iterdir()) == []


class TestReplay:
    def test_strict_replay_reproduces_identical_failure(self, captured):
        result, _ = captured
        journal = load_journal(result["journal"])
        replay = replay_journal(journal, strict=True)
        assert replay.ok, replay.divergence
        assert replay.checks == {"guest-dead": True}
        assert replay.reproduced
        # The final machine state digests exactly as recorded.
        assert replay.final_digest == journal.end_frame.data["digest"]
        # Right down to the guest's cause of death.
        recorded = result["violations"][0]
        assert replay.monitor.guest_dead_reason in recorded

    def test_replay_is_deterministic(self, captured):
        result, _ = captured
        journal = load_journal(result["journal"])
        first = replay_journal(journal, strict=True)
        second = replay_journal(journal, strict=True)
        assert first.final_digest == second.final_digest

    def test_replayer_reports_progress_via_monitor_command(
            self, captured):
        result, _ = captured
        journal = load_journal(result["journal"])
        replay = replay_journal(journal, strict=True)
        output = replay.monitor.monitor_command("replay")
        assert "replay: frame" in output
        assert "no divergence" in output

    def test_truncated_journal_still_replays_prefix(self, captured):
        result, _ = captured
        with open(result["journal"], "rb") as handle:
            blob = handle.read()
        cut = loads_journal(blob[:len(blob) - 20])
        assert cut.truncated and not cut.complete
        replay = replay_journal(cut, strict=True)
        assert replay.ok, replay.divergence


class TestDivergenceDetection:
    def _corrupt(self, journal):
        """Nudge one recorded wild-write's address."""
        bad = _copy(journal)
        for frame in bad.frames:
            if frame.kind == "wild-write":
                frame.data["addr"] ^= 0x40
                return bad
        raise AssertionError("no wild-write frame to corrupt")

    def test_strict_replay_names_first_divergent_frame(self, captured):
        result, _ = captured
        journal = load_journal(result["journal"])
        replay = replay_journal(self._corrupt(journal), strict=True)
        assert not replay.ok
        d = replay.divergence
        assert d is not None
        assert d.frame_index > 0
        assert d.expected != d.actual

    def test_bisect_brackets_and_names_divergence(self, captured):
        result, _ = captured
        journal = load_journal(result["journal"])
        report = bisect_divergence(self._corrupt(journal))
        assert report is not None
        assert report.first_bad_frame is not None
        assert report.divergence is not None
        if report.last_good_frame is not None:
            assert report.last_good_frame < report.first_bad_frame
        # The bisection needs logarithmic, not linear, probe replays.
        assert report.probes_run <= 8

    def test_clean_journal_bisects_to_none(self, captured):
        result, _ = captured
        journal = load_journal(result["journal"])
        assert bisect_divergence(journal) is None


class TestMinimization:
    def test_minimized_journal_is_smaller_and_reproduces(self, captured):
        result, _ = captured
        journal = load_journal(result["journal"])
        minimized = minimize_journal(journal)
        assert minimized.reproduced
        assert minimized.reduced
        assert minimized.journal.size_bytes < journal.size_bytes
        # The artifact stands alone: relaxed replay of the minimized
        # journal still kills the guest.
        replay = replay_journal(minimized.journal, strict=False)
        assert replay.checks == {"guest-dead": True}
        assert replay.final_digest \
            == minimized.journal.end_frame.data["digest"]

    def test_minimizer_refuses_passing_journal(self, captured):
        result, _ = captured
        journal = load_journal(result["journal"])
        neutered = _copy(journal)
        neutered.frames[-1].data["checks"] = []
        with pytest.raises(JournalError):
            minimize_journal(neutered)


class TestRecorderPlumbing:
    def _recorded_session(self):
        from repro.asm import assemble
        from repro.core import DebugSession
        from repro.hw import firmware
        sess = DebugSession(monitor="lvmm")
        program = assemble(f".org {firmware.GUEST_KERNEL_BASE}\n"
                           "loop:\n    NOP\n    JMP loop\n")
        recorder = FlightRecorder(sess.machine, sess.monitor,
                                  program=program, scenario="unit",
                                  seed=1)
        sess.load_and_boot(program)
        sess.attach()
        return sess, recorder

    def test_monitor_record_command_reports_counters(self):
        sess, recorder = self._recorded_session()
        sess.run_guest(1_000)
        output = sess.client.monitor_command("record")
        assert "recording: on" in output
        assert "frames:" in output
        forced = sess.client.monitor_command("record checkpoint")
        assert "checkpoint taken" in forced
        assert recorder.counters["checkpoints"] >= 1

    def test_monitor_record_command_off_without_recorder(self):
        from repro.core import DebugSession
        from repro.guest import KernelConfig, build_kernel
        sess = DebugSession(monitor="lvmm")
        sess.load_and_boot(build_kernel(KernelConfig()))
        sess.attach()
        assert "recording: off" in sess.client.monitor_command("record")
        assert "replay: off" in sess.client.monitor_command("replay")

    def test_double_attach_rejected(self):
        sess, _ = self._recorded_session()
        with pytest.raises(MonitorError):
            FlightRecorder(sess.machine, sess.monitor)

    def test_finish_detaches_taps(self):
        sess, recorder = self._recorded_session()
        sess.run_guest(500)
        recorder.finish()
        assert sess.monitor.record_tap is None
        assert sess.machine.serial_link.tap is None
        with pytest.raises(MonitorError):
            recorder.finish()


class TestGoldenJournal:
    def test_recording_matches_golden_journal(self, captured):
        """Recording is bit-stable: the same seed produces the same
        journal, byte for byte.  When behaviour changes intentionally,
        regenerate the golden with::

            repro-replay record --scenario wild-writes --seed 1234 \
                --strict-guest -o tests/golden/replay_wild-writes_seed1234.journal
        """
        result, _ = captured
        with open(result["journal"], "rb") as handle:
            fresh = handle.read()
        with open(GOLDEN, "rb") as handle:
            golden = handle.read()
        assert fresh == golden
