"""End-to-end observability: live tracing over a debug session, the
``monitor trace`` qRcmds, the ``repro-trace`` CLI, the golden trace,
and the recorder-coexistence regression (journals are byte-identical
with and without a tracer attached)."""

import json
import os

import pytest

from repro.asm import assemble
from repro.core.session import DebugSession
from repro.hw import firmware
from repro.obs.bus import TraceBus
from repro.obs.cli import main as trace_main
from repro.obs.cli import record_guest, record_streaming
from repro.obs.exporters import validate_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import GuestProfiler
from repro.obs.tracer import Tracer
from repro.replay import FlightRecorder

SEED = 1234
GOLDEN = os.path.join(os.path.dirname(__file__), "..", "golden",
                      "trace_streaming_seed1234.json")

GUEST_LOOP = """
loop:
    NOP
    ADDI R1, 1
    JMP  loop
"""


def _session(program_body: str = GUEST_LOOP) -> DebugSession:
    sess = DebugSession(monitor="lvmm")
    program = assemble(
        f".org {firmware.GUEST_KERNEL_BASE}\n{program_body}\n")
    sess.load_and_boot(program)
    return sess


class TestLiveTracing:
    def test_tracer_observes_a_debug_session(self):
        sess = _session()
        tracer = Tracer(TraceBus(), MetricsRegistry())
        tracer.attach(monitor=sess.monitor)
        sess.attach()
        sess.run_guest(2_000)
        tracer.detach()
        counts = tracer.bus.counts_by_category()
        assert counts.get("rsp", 0) >= 2      # the attach handshake
        assert counts.get("device", 0) > 0    # uart bytes
        assert counts.get("monitor", 0) >= 2  # run begin/end span
        registry = tracer.registry
        assert registry.counter("trace.monitor.run_slices").value >= 1

    def test_double_attach_rejected_and_detach_idempotent(self):
        sess = _session()
        tracer = Tracer(TraceBus(), MetricsRegistry())
        tracer.attach(monitor=sess.monitor)
        with pytest.raises(RuntimeError):
            tracer.attach(monitor=sess.monitor)
        tracer.detach()
        tracer.detach()
        assert not tracer.bus.enabled

    def test_profiler_samples_during_run(self):
        sess = _session()
        profiler = sess.monitor.attach_profiler(GuestProfiler(stride=64))
        sess.run_guest(1_000)
        sess.monitor.detach_profiler()
        assert profiler.total_samples == 1_000 // 64
        pcs = {pc for pc, _ring, _reason in profiler.samples}
        base = firmware.GUEST_KERNEL_BASE
        assert all(base <= pc < base + 0x40 for pc in pcs)

    def test_detached_session_has_no_observers(self):
        sess = _session()
        tracer = Tracer(TraceBus(), MetricsRegistry())
        tracer.attach(monitor=sess.monitor)
        tracer.detach()
        machine = sess.machine
        for tap in (machine.serial_link.taps, machine.pic.raise_taps,
                    machine.bus.access_taps, sess.monitor.record_taps,
                    sess.monitor.trace.taps):
            assert len(tap) == 0


class TestMonitorTraceCommand:
    def test_trace_start_status_dump_stop(self):
        sess = _session()
        monitor = sess.monitor
        reply = monitor.monitor_command("trace start 128")
        assert "stride 128" in reply
        assert "already running" in monitor.monitor_command(
            "trace start")
        sess.run_guest(1_000)
        status = monitor.monitor_command("trace status")
        assert "structured trace: on" in status
        assert "profiler:" in status
        dump = monitor.monitor_command("trace dump 5")
        assert len(dump.splitlines()) <= 5
        stop = monitor.monitor_command("trace stop")
        assert "structured trace stopped" in stop
        assert monitor.obs_tracer is None and monitor.profiler is None
        assert "not running" in monitor.monitor_command("trace status")

    def test_legacy_trace_tail_still_works(self):
        sess = _session()
        sess.run_guest(500)
        reply = sess.monitor.monitor_command("trace 4")
        assert "structured" not in reply

    def test_qrcmd_roundtrip_over_rsp(self):
        sess = _session()
        sess.attach()
        reply = sess.client.monitor_command("trace start")
        assert "structured trace started" in reply
        reply = sess.client.monitor_command("trace stop")
        assert "structured trace stopped" in reply


class TestRecorderCoexistence:
    """Satellite regression: attaching a tracer must not perturb the
    flight recorder — journals stay byte-identical."""

    def _journal_bytes(self, with_tracer: bool) -> bytes:
        sess = DebugSession(monitor="lvmm")
        program = assemble(
            f".org {firmware.GUEST_KERNEL_BASE}\n{GUEST_LOOP}\n")
        recorder = FlightRecorder(sess.machine, sess.monitor,
                                  program=program,
                                  scenario="obs-coexist", seed=SEED)
        tracer = None
        if with_tracer:
            tracer = Tracer(TraceBus(), MetricsRegistry())
            tracer.attach(monitor=sess.monitor, recorder=recorder)
        sess.load_and_boot(program)
        sess.attach()
        sess.run_guest(3_000)
        journal = recorder.finish()
        if tracer is not None:
            assert tracer.bus.total_recorded > 0
            tracer.detach()
        return journal.to_bytes()

    def test_journal_identical_with_tracing_enabled(self):
        assert self._journal_bytes(False) == self._journal_bytes(True)


class TestCliAndGolden:
    def test_record_report_export_top_roundtrip(self, tmp_path,
                                                capsys):
        trace = tmp_path / "guest.json"
        assert trace_main(["record", "--scenario", "guest",
                           "--stride", "256",
                           "--instructions", "20000",
                           "--out", str(trace)]) == 0
        assert trace_main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "schema: ok" in out

        collapsed = tmp_path / "stacks.txt"
        metrics = tmp_path / "metrics.json"
        assert trace_main(["export", str(trace),
                           "--collapsed", str(collapsed),
                           "--metrics", str(metrics)]) == 0
        assert collapsed.read_text().strip()
        assert json.loads(metrics.read_text())["format"] \
            == "repro-metrics-v1"

        assert trace_main(["top", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "guest PC profile" in out
        # symbolized: at least one known kernel/user label in the table
        assert any(name in out for name in
                   ("user_loop", "syscall_entry", "idle", "start"))

    def test_top_refuses_profileless_trace(self, tmp_path, capsys):
        trace = tmp_path / "stream.json"
        assert trace_main(["record", "--scenario", "streaming",
                           "--sim-seconds", "0.002",
                           "--out", str(trace)]) == 0
        assert trace_main(["top", str(trace)]) == 1

    def test_streaming_document_validates_and_has_all_categories(self):
        document = record_streaming(seed=SEED)
        assert validate_chrome_trace(document) == []
        categories = {event.get("cat") for event
                      in document["traceEvents"]
                      if event["ph"] != "M"}
        assert {"trap", "irq", "device", "rsp", "fault"} <= categories

    def test_guest_document_embeds_profile_and_metrics(self):
        document = record_guest(stride=512, instructions=20_000)
        assert validate_chrome_trace(document) == []
        assert document["guestProfile"]["total_samples"] > 0
        assert any(name.startswith("trace.")
                   for name in document["metrics"])

    def test_golden_trace_matches(self, tmp_path):
        """Two runs, same seed -> byte-identical Perfetto trace."""
        out = tmp_path / "trace.json"
        assert trace_main(["record", "--scenario", "streaming",
                           "--seed", str(SEED),
                           "--out", str(out)]) == 0
        with open(GOLDEN, "rb") as handle:
            golden = handle.read()
        assert out.read_bytes() == golden, \
            "streaming trace diverged from the golden file; if the " \
            "change is intentional regenerate it with: repro-trace " \
            "record --scenario streaming --out " \
            "tests/golden/trace_streaming_seed1234.json"
