"""Integration: the multi-session streaming-server workload."""

import pytest

from repro.workloads.streaming import (
    StreamingResult,
    max_sessions,
    run_streaming,
)

pytestmark = pytest.mark.perf

RATE = 20e6


class TestStreamingServer:
    def test_sessions_each_get_their_rate(self):
        result = run_streaming("lvmm", [RATE] * 4, sim_seconds=2.5)
        assert result.sustainable
        assert result.all_sessions_served()
        for session in result.sessions:
            assert session.achieved_bps == pytest.approx(RATE, rel=0.12)

    def test_unequal_rates_respected(self):
        rates = [10e6, 20e6, 40e6]
        result = run_streaming("lvmm", rates, sim_seconds=3.0)
        for session, target in zip(result.sessions, rates):
            assert session.achieved_bps == pytest.approx(target, rel=0.15)

    def test_oversubscription_saturates(self):
        # 16 x 20 Mbps = 320 Mbps >> the LVMM's 182 Mbps maximum.
        result = run_streaming("lvmm", [RATE] * 16, sim_seconds=1.0)
        assert not result.sustainable or not result.all_sessions_served()

    def test_load_scales_with_session_count(self):
        one = run_streaming("lvmm", [RATE], sim_seconds=2.5)
        four = run_streaming("lvmm", [RATE] * 4, sim_seconds=2.5)
        assert four.demanded_load > 2.5 * one.demanded_load

    def test_admission_counts_mirror_headline_ratios(self):
        lvmm = max_sessions("lvmm", RATE, upper_bound=16)
        fullvmm = max_sessions("fullvmm", RATE, upper_bound=16)
        # 182/20 -> 8-9 sessions; 33.7/20 -> 1 session.
        assert 7 <= lvmm <= 10
        assert fullvmm == 1
        assert lvmm / max(fullvmm, 1) >= 4

    def test_result_accessors(self):
        result = run_streaming("bare", [RATE] * 2, sim_seconds=2.0)
        assert isinstance(result, StreamingResult)
        assert result.total_achieved_bps == pytest.approx(
            sum(s.achieved_bps for s in result.sessions))
        assert 0 < result.load <= 1
