"""Integration: the assembly guest drives real SCSI + NIC hardware
directly under the LVMM (passthrough at machine-code level).

This is the functional-layer proof behind the paper's efficiency claim:
with the guest running deprivileged at ring 1, its port I/O to the HBA
and its MMIO to the NIC reach the devices with **zero** monitor
involvement — only PIC/PIT management traps.
"""

import pytest

from repro.baremetal import BareMetalRunner
from repro.fullvmm import FullVmm
from repro.guest.asmio import (
    NIC_MMIO_HOLE,
    build_io_demo,
    read_flags,
)
from repro.hw.machine import Machine, MachineConfig
from repro.vmm import LightweightVmm


def make_machine():
    machine = Machine(MachineConfig(nic_mmio_base=NIC_MMIO_HOLE))
    frames = []
    machine.nic.wire = frames.append
    return machine, frames


def run_bare(blocks=16, frame_len=1024):
    machine, frames = make_machine()
    program = build_io_demo(blocks, frame_len)
    program.load_into(machine.memory)
    runner = BareMetalRunner(machine)
    runner.boot_guest(program.origin)
    machine.run(400_000, until=lambda: read_flags(machine.memory)[2] == 1)
    return machine, frames, runner


def run_monitored(monitor_class, blocks=16, frame_len=1024):
    machine, frames = make_machine()
    program = build_io_demo(blocks, frame_len)
    program.load_into(machine.memory)
    monitor = monitor_class(machine)
    monitor.install()
    monitor.boot_guest(program.origin)
    monitor.run(600_000, until=lambda: read_flags(machine.memory)[2] == 1)
    return machine, frames, monitor


class TestBareMetal:
    def test_dma_and_transmit_complete(self):
        machine, frames, _ = run_bare()
        assert read_flags(machine.memory) == (1, 1, 1)
        assert len(frames) == 1

    def test_transmitted_bytes_match_disk_contents(self):
        machine, frames, _ = run_bare(blocks=16, frame_len=1024)
        assert frames[0] == machine.disks[0].read_blocks(0, 2)[:1024]


class TestUnderLvmm:
    def test_same_image_same_output(self):
        machine, frames, monitor = run_monitored(LightweightVmm)
        assert read_flags(machine.memory) == (1, 1, 1)
        assert bytes(monitor.console) == b"SN"
        assert frames[0] == machine.disks[0].read_blocks(0, 2)[:1024]

    def test_device_accesses_never_trap(self):
        machine, _, monitor = run_monitored(LightweightVmm)
        # The only trapped OUT instructions are the PIC programming
        # (10 setup writes + 4 ISR EOIs); SCSI/NIC traffic is direct.
        assert "INW" not in monitor.stats.traps_by_mnemonic
        assert "OUTW" not in monitor.stats.traps_by_mnemonic
        assert monitor.intercept.pic_accesses \
            == machine.bus.intercepted_accesses

    def test_dma_lands_while_guest_halted(self):
        """The guest HLTs awaiting the disk; DMA + interrupt wake it —
        the interrupt-driven passthrough path end to end."""
        machine, _, monitor = run_monitored(LightweightVmm)
        assert monitor.stats.traps_by_mnemonic.get("HLT", 0) >= 1
        assert monitor.stats.interrupts_reflected >= 2  # SCSI + NIC

    def test_larger_transfer(self):
        machine, frames, monitor = run_monitored(LightweightVmm,
                                                 blocks=64,
                                                 frame_len=1500)
        assert read_flags(machine.memory) == (1, 1, 1)
        assert frames[0] == machine.disks[0].read_blocks(0, 3)[:1500]


class TestUnderFullVmm:
    def test_functionally_identical_but_more_expensive(self):
        machine_lvmm, frames_lvmm, lvmm = run_monitored(LightweightVmm)
        machine_full, frames_full, full = run_monitored(FullVmm)
        assert read_flags(machine_full.memory) == (1, 1, 1)
        assert frames_full[0] == frames_lvmm[0]
        # Same work, strictly more cycles under full emulation.
        assert machine_full.budget.total > machine_lvmm.budget.total
        # And the full VMM *did* intercept the device traffic.
        assert full.intercept.hosted_accesses > 0
