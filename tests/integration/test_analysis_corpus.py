"""The static analyzer over the real guest corpus.

Shipped kernels must analyze clean (zero error findings); variants with
deliberately seeded bugs must each be flagged by the right check; and
the monitor's load-time gate must warn by default and refuse when
strict.
"""

import pytest

from repro.analysis import SEV_ERROR, analyze_program
from repro.asm.assembler import assemble
from repro.guest import asmkernel, asmthreads
from repro.guest.asmkernel import KernelConfig, build_kernel, build_user_task
from repro.hw import firmware
from repro.hw.machine import Machine
from repro.vmm import (
    GuestImageRejected,
    GuestImageWarning,
    Monitor,
    verify_image,
)

MONITOR_BASE = firmware.monitor_base(16 << 20)


def error_checks(report):
    return {f.check for f in report.findings if f.severity == SEV_ERROR}


# ---------------------------------------------------------------------------
# Shipped images analyze clean
# ---------------------------------------------------------------------------

class TestShippedImagesClean:
    @pytest.mark.parametrize("config", [
        KernelConfig(),
        KernelConfig(with_user_task=True),
        KernelConfig(with_paging=True),
    ], ids=["plain", "user-task", "paging"])
    def test_kernel_has_zero_errors(self, config):
        report = analyze_program(build_kernel(config),
                                 monitor_base=MONITOR_BASE)
        assert report.errors == [], report.format_text()

    def test_user_task_has_zero_errors(self):
        report = analyze_program(build_user_task(),
                                 monitor_base=MONITOR_BASE,
                                 entry_ring=3)
        assert report.errors == [], report.format_text()

    @pytest.mark.parametrize("preemptive", [False, True],
                             ids=["cooperative", "preemptive"])
    def test_threaded_kernel_has_zero_errors(self, preemptive):
        program = assemble(
            asmthreads.threaded_kernel_source(preemptive=preemptive))
        report = analyze_program(program, monitor_base=MONITOR_BASE)
        assert report.errors == [], report.format_text()

    def test_kernel_handlers_discovered(self):
        report = analyze_program(build_kernel(),
                                 monitor_base=MONITOR_BASE)
        # timer, syscall, #GP, #PF, vmcall-noop
        assert report.stats["handler_vectors"] == 5


# ---------------------------------------------------------------------------
# Seeded-bug variants are flagged
# ---------------------------------------------------------------------------

def seeded_kernel(old: str, new: str, config=KernelConfig()):
    source = asmkernel.kernel_source(config)
    assert source.count(old) == 1, f"seed anchor {old!r} not unique"
    return assemble(source.replace(old, new))


class TestSeededBugs:
    def test_store_into_monitor_flagged(self):
        program = seeded_kernel(
            "start:\n",
            "start:\n"
            f"    MOVI R6, {MONITOR_BASE + 0x40:#x}\n"
            "    ST   [R6+0], R0\n")
        report = analyze_program(program, monitor_base=MONITOR_BASE)
        assert "AN001" in error_checks(report), report.format_text()

    def test_handler_missing_iret_flagged(self):
        # The timer ISR returns with RET instead of IRET: interrupt
        # frames leak and the handler never restores FLAGS/CS.
        program = seeded_kernel(
            "    POP  R1\n    POP  R0\n    IRET",
            "    POP  R1\n    POP  R0\n    RET")
        report = analyze_program(program, monitor_base=MONITOR_BASE)
        assert "AN007" in error_checks(report), report.format_text()

    def test_privileged_insn_in_user_task_flagged(self):
        source = asmkernel.user_task_source()
        anchor = "user_start:\n"
        assert anchor in source
        program = assemble(source.replace(anchor, anchor + "    CLI\n"))
        report = analyze_program(program, monitor_base=MONITOR_BASE,
                                 entry_ring=3)
        assert "AN002" in error_checks(report), report.format_text()


# ---------------------------------------------------------------------------
# The monitor's load-time gate
# ---------------------------------------------------------------------------

class TestLoadTimeGate:
    def _flagged_program(self):
        return seeded_kernel(
            "start:\n",
            "start:\n"
            f"    MOVI R6, {MONITOR_BASE + 0x40:#x}\n"
            "    ST   [R6+0], R0\n")

    def test_verify_image_reports(self):
        program = self._flagged_program()
        report = verify_image(program.image, program.origin,
                              monitor_base=MONITOR_BASE)
        assert "AN001" in error_checks(report)

    def test_clean_image_loads_without_warning(self):
        monitor = Monitor(Machine())
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error", GuestImageWarning)
            report = monitor.load_guest(build_kernel())
        assert report.clean
        assert monitor.last_verify_report is report

    def test_default_monitor_warns_and_boots_anyway(self):
        monitor = Monitor(Machine())
        program = self._flagged_program()
        with pytest.warns(GuestImageWarning, match="AN001"):
            report = monitor.load_guest(program)
        assert report.errors
        # The guest is booted regardless: surviving it at runtime is
        # the monitor's job.
        assert monitor.machine.cpu.pc == program.origin

    def test_strict_monitor_refuses(self):
        monitor = Monitor(Machine(), strict=True)
        with pytest.raises(GuestImageRejected) as excinfo:
            monitor.load_guest(self._flagged_program())
        assert "AN001" in str(excinfo.value)
        assert excinfo.value.report.errors

    def test_per_call_strict_override(self):
        monitor = Monitor(Machine())
        with pytest.raises(GuestImageRejected):
            monitor.load_guest(self._flagged_program(), strict=True)

    def test_loaded_guest_still_runs_to_done(self):
        monitor = Monitor(Machine())
        monitor.load_guest(build_kernel())
        monitor.run(400_000, until=lambda: asmkernel.read_state(
            monitor.machine.memory) != 0)
        assert asmkernel.read_state(monitor.machine.memory) == 1
