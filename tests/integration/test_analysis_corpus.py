"""The static analyzer over the real guest corpus.

Shipped kernels must analyze clean (zero error findings); variants with
deliberately seeded bugs must each be flagged by the right check; and
the monitor's load-time gate must warn by default and refuse when
strict.
"""

import pytest

from repro.analysis import SEV_ERROR, analyze_program
from repro.asm.assembler import assemble
from repro.guest import asmkernel, asmthreads
from repro.guest.asmkernel import KernelConfig, build_kernel, build_user_task
from repro.hw import firmware
from repro.hw.machine import Machine
from repro.vmm import (
    GuestImageRejected,
    GuestImageWarning,
    Monitor,
    verify_image,
)

MONITOR_BASE = firmware.monitor_base(16 << 20)


def error_checks(report):
    return {f.check for f in report.findings if f.severity == SEV_ERROR}


# ---------------------------------------------------------------------------
# Shipped images analyze clean
# ---------------------------------------------------------------------------

class TestShippedImagesClean:
    @pytest.mark.parametrize("config", [
        KernelConfig(),
        KernelConfig(with_user_task=True),
        KernelConfig(with_paging=True),
    ], ids=["plain", "user-task", "paging"])
    def test_kernel_has_zero_errors(self, config):
        report = analyze_program(build_kernel(config),
                                 monitor_base=MONITOR_BASE)
        assert report.errors == [], report.format_text()

    def test_user_task_has_zero_errors(self):
        report = analyze_program(build_user_task(),
                                 monitor_base=MONITOR_BASE,
                                 entry_ring=3)
        assert report.errors == [], report.format_text()

    @pytest.mark.parametrize("preemptive", [False, True],
                             ids=["cooperative", "preemptive"])
    def test_threaded_kernel_has_zero_errors(self, preemptive):
        program = assemble(
            asmthreads.threaded_kernel_source(preemptive=preemptive))
        report = analyze_program(program, monitor_base=MONITOR_BASE)
        assert report.errors == [], report.format_text()

    def test_kernel_handlers_discovered(self):
        report = analyze_program(build_kernel(),
                                 monitor_base=MONITOR_BASE)
        # timer, syscall, #GP, #PF, vmcall-noop
        assert report.stats["handler_vectors"] == 5

    def test_tv_audit_validates_shipped_superblocks(self):
        """The embedded translation-validation audit must actually
        compile and certify the kernel's hot-loop candidates — and
        find nothing (AN011 clean on shipped images)."""
        report = analyze_program(build_kernel(),
                                 monitor_base=MONITOR_BASE)
        assert report.stats["tv_blocks_checked"] >= 1
        assert "AN011" not in error_checks(report)

    def test_interprocedural_stats_on_shipped_kernel(self):
        report = analyze_program(build_kernel(),
                                 monitor_base=MONITOR_BASE)
        assert report.stats["functions"] \
            == report.stats["balanced_functions"]


# ---------------------------------------------------------------------------
# Seeded-bug variants are flagged
# ---------------------------------------------------------------------------

def seeded_kernel(old: str, new: str, config=KernelConfig()):
    source = asmkernel.kernel_source(config)
    assert source.count(old) == 1, f"seed anchor {old!r} not unique"
    return assemble(source.replace(old, new))


class TestSeededBugs:
    def test_store_into_monitor_flagged(self):
        program = seeded_kernel(
            "start:\n",
            "start:\n"
            f"    MOVI R6, {MONITOR_BASE + 0x40:#x}\n"
            "    ST   [R6+0], R0\n")
        report = analyze_program(program, monitor_base=MONITOR_BASE)
        assert "AN001" in error_checks(report), report.format_text()

    def test_handler_missing_iret_flagged(self):
        # The timer ISR returns with RET instead of IRET: interrupt
        # frames leak and the handler never restores FLAGS/CS.
        program = seeded_kernel(
            "    POP  R1\n    POP  R0\n    IRET",
            "    POP  R1\n    POP  R0\n    RET")
        report = analyze_program(program, monitor_base=MONITOR_BASE)
        assert "AN007" in error_checks(report), report.format_text()

    def test_privileged_insn_in_user_task_flagged(self):
        source = asmkernel.user_task_source()
        anchor = "user_start:\n"
        assert anchor in source
        program = assemble(source.replace(anchor, anchor + "    CLI\n"))
        report = analyze_program(program, monitor_base=MONITOR_BASE,
                                 entry_ring=3)
        assert "AN002" in error_checks(report), report.format_text()

    def test_cross_function_stack_imbalance_flagged(self):
        # A helper that pushes a word it never pops: its RET returns
        # to the pushed value, not the caller (AN012).
        program = seeded_kernel(
            "start:\n",
            "    JMP  an012_entry\n"
            "an012_helper:\n"
            "    PUSH R1\n"
            "    RET\n"
            "an012_entry:\n"
            "    CALL an012_helper\n"
            "start:\n")
        report = analyze_program(program, monitor_base=MONITOR_BASE)
        assert "AN012" in error_checks(report), report.format_text()

    def test_indirect_call_escape_flagged(self):
        # CALLR through a pointer that resolves outside the image.
        program = seeded_kernel(
            "start:\n",
            "start:\n"
            f"    MOVI R5, {MONITOR_BASE + 0x100:#x}\n"
            "    CALLR R5\n")
        report = analyze_program(program, monitor_base=MONITOR_BASE)
        assert "AN013" in error_checks(report), report.format_text()

    def test_miscompiled_translator_flagged_by_an011(self, monkeypatch):
        """Seed a realistic translator bug (ZF computed into the wrong
        bit) and demand the embedded tv audit catches it: a pristine
        translator never produces an invalid block, so AN011's trigger
        has to be a broken emitter, not a broken kernel."""
        from repro.interp import translate as translate_module
        original = translate_module._sub_lines

        def buggy(dest, a, b):
            return [line.replace("(64 if m == 0 else 0)",
                                 "(32 if m == 0 else 0)")
                    for line in original(dest, a, b)]

        monkeypatch.setattr(translate_module, "_sub_lines", buggy)
        report = analyze_program(build_kernel(),
                                 monitor_base=MONITOR_BASE)
        assert "AN011" in error_checks(report), report.format_text()


# ---------------------------------------------------------------------------
# The monitor's load-time gate
# ---------------------------------------------------------------------------

class TestLoadTimeGate:
    def _flagged_program(self):
        return seeded_kernel(
            "start:\n",
            "start:\n"
            f"    MOVI R6, {MONITOR_BASE + 0x40:#x}\n"
            "    ST   [R6+0], R0\n")

    def test_verify_image_reports(self):
        program = self._flagged_program()
        report = verify_image(program.image, program.origin,
                              monitor_base=MONITOR_BASE)
        assert "AN001" in error_checks(report)

    def test_clean_image_loads_without_warning(self):
        monitor = Monitor(Machine())
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error", GuestImageWarning)
            report = monitor.load_guest(build_kernel())
        assert report.clean
        assert monitor.last_verify_report is report

    def test_default_monitor_warns_and_boots_anyway(self):
        monitor = Monitor(Machine())
        program = self._flagged_program()
        with pytest.warns(GuestImageWarning, match="AN001"):
            report = monitor.load_guest(program)
        assert report.errors
        # The guest is booted regardless: surviving it at runtime is
        # the monitor's job.
        assert monitor.machine.cpu.pc == program.origin

    def test_strict_monitor_refuses(self):
        monitor = Monitor(Machine(), strict=True)
        with pytest.raises(GuestImageRejected) as excinfo:
            monitor.load_guest(self._flagged_program())
        assert "AN001" in str(excinfo.value)
        assert excinfo.value.report.errors

    def test_per_call_strict_override(self):
        monitor = Monitor(Machine())
        with pytest.raises(GuestImageRejected):
            monitor.load_guest(self._flagged_program(), strict=True)

    def test_loaded_guest_still_runs_to_done(self):
        monitor = Monitor(Machine())
        monitor.load_guest(build_kernel())
        monitor.run(400_000, until=lambda: asmkernel.read_state(
            monitor.machine.memory) != 0)
        assert asmkernel.read_state(monitor.machine.memory) == 1
