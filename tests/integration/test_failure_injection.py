"""Integration: failure injection in the streaming workload.

Disk CHECK CONDITIONs mid-stream, NIC ring exhaustion, and the guest
drivers' recovery paths — the behaviour a debugging environment exists
to let you observe.
"""

import pytest

from repro.faults import DiskInjector, FaultPlan, FaultRule
from repro.guest.drivers.nic import GuestNicDriver
from repro.guest.os import HiTactix
from repro.hw.machine import Machine, MachineConfig
from repro.perf.costmodel import DEFAULT_COST_MODEL
from repro.perf.stacks import InterruptDispatcher, make_stack
from repro.sim.events import cycles_for_seconds


def run_workload(machine, stack, guest, dispatcher, sim_seconds):
    guest.register_handlers(dispatcher)
    guest.start()
    dispatcher.dispatch_pending()
    deadline = cycles_for_seconds(sim_seconds, DEFAULT_COST_MODEL.cpu_hz)
    queue = machine.queue
    while True:
        next_time = queue.peek_time()
        if next_time is None or next_time > deadline:
            break
        queue.step()
        dispatcher.dispatch_pending()
    if deadline > queue.now:
        queue.now = deadline


class TestDiskErrorRecovery:
    def _run_with_rules(self, rules, seed=7):
        machine = Machine(MachineConfig())
        machine.program_pic_defaults()
        stack = make_stack("lvmm", machine)
        dispatcher = InterruptDispatcher(machine, stack)
        guest = HiTactix(machine, stack, 100e6)
        plan = FaultPlan(seed, rules=rules)
        DiskInjector(plan, machine.hba)
        run_workload(machine, stack, guest, dispatcher, 0.4)
        return guest, plan, machine

    def test_transient_error_retried_and_stream_continues(self):
        # First read on disk 0 fails with a medium error...
        guest, plan, _ = self._run_with_rules(
            [FaultRule("disk0", "medium-error", at_count=1)])
        assert guest.read_errors == 1
        assert guest.read_retries == 1
        assert guest.segments_sent > 0  # the stream survived
        assert plan.stats()["injected"] == {"disk0.medium-error": 1}

    def test_persistent_error_bounded_retries(self):
        # The first ten requests to disk 0 all fail.
        guest, plan, machine = self._run_with_rules(
            [FaultRule("disk0", "medium-error", every=1, max_fires=10)])
        # Every injected error was observed; retries are bounded per
        # chunk, so at least one chunk was abandoned (error without a
        # retry) instead of retrying forever.
        assert guest.read_errors == 10
        assert guest.read_retries < guest.read_errors
        # And the stream itself survived the bad patch of disk.
        assert guest.segments_sent > 0
        assert machine.hba.faults_injected == 10

    def test_transport_error_also_retried(self):
        # A wildcard site matches each disk's own opportunity counter:
        # the first request on *every* disk fails once.
        guest, plan, _ = self._run_with_rules(
            [FaultRule("disk*", "transport-error", at_count=1)])
        assert guest.read_errors == 3
        assert guest.read_retries == 3
        assert guest.segments_sent > 0
        assert len(plan.trace) == 3

    def test_error_free_run_has_no_retries(self):
        machine = Machine(MachineConfig())
        machine.program_pic_defaults()
        stack = make_stack("lvmm", machine)
        dispatcher = InterruptDispatcher(machine, stack)
        guest = HiTactix(machine, stack, 100e6)
        run_workload(machine, stack, guest, dispatcher, 0.3)
        assert guest.read_errors == 0
        assert guest.read_retries == 0

    def test_legacy_inject_error_shim(self):
        """``Disk.inject_error`` still works without a plan (one-shot)."""
        machine = Machine(MachineConfig())
        machine.program_pic_defaults()
        stack = make_stack("lvmm", machine)
        dispatcher = InterruptDispatcher(machine, stack)
        guest = HiTactix(machine, stack, 100e6)
        machine.disks[0].inject_error = 0x03
        run_workload(machine, stack, guest, dispatcher, 0.4)
        assert guest.read_errors == 1
        assert guest.read_retries == 1
        assert guest.segments_sent > 0
        assert machine.hba.faults_injected == 1
        assert machine.disks[0].inject_error is None  # consumed


class TestNicRingExhaustion:
    def test_tiny_ring_forces_backpressure(self):
        """A 16-slot ring cannot hold a 711-fragment segment: the
        driver reports ring-full and the OS holds the segment."""
        machine = Machine(MachineConfig())
        machine.program_pic_defaults()
        stack = make_stack("bare", machine)
        driver = GuestNicDriver(machine, stack, ring_len=16)
        accepted = driver.send_segment(0x40_0000, 1024 * 1024)
        assert not accepted
        assert driver.ring_full_events == 1
        assert driver.frames_queued == 0  # all-or-nothing per segment

    def test_small_segments_fit_small_ring(self):
        machine = Machine(MachineConfig())
        machine.program_pic_defaults()
        stack = make_stack("bare", machine)
        driver = GuestNicDriver(machine, stack, ring_len=16)
        assert driver.send_segment(0x40_0000, 8 * 1024)  # 6 fragments
        machine.queue.run()
        assert machine.nic.frames_sent == driver.frames_queued

    def test_blocked_segment_sent_after_drain(self):
        """The OS-level retry: a held segment goes out on a later tick
        once completions free the ring."""
        machine = Machine(MachineConfig())
        machine.program_pic_defaults()
        stack = make_stack("bare", machine)
        dispatcher = InterruptDispatcher(machine, stack)
        guest = HiTactix(machine, stack, 50e6, segment_size=64 * 1024)
        guest.nic = GuestNicDriver(machine, stack, ring_len=64)
        run_workload(machine, stack, guest, dispatcher, 0.4)
        # Despite the cramped ring, the stream kept its rate.
        assert guest.segments_sent >= 30
        assert guest.nic.frames_reclaimed > 0
