"""Integration: multi-client TCP streaming under chaos (PR 9).

The acceptance bar from the issue: a 200-subscriber mixed-rate run
with 1% seeded frame loss on *both* directions must deliver every
accepted session's stream intact (sha256 of received bytes equals
sha256 of sent bytes) while actually exercising loss recovery
(``net.tcp.retransmits`` > 0) — and the whole thing must be
deterministic, because the chaos campaign pins it with golden traces.
"""

from pathlib import Path

from repro.faults.campaign import DEFAULT_SEED, run_campaign
from repro.faults.plan import FaultPlan, FaultRule
from repro.obs.bus import CAT_NET, TraceBus
from repro.obs.metrics import MetricsRegistry
from repro.workloads.streaming import (
    S_CHURNED,
    S_COMPLETED,
    S_SHED,
    mixed_rate_specs,
    run_tcp_streaming,
)

TCP_SCENARIOS = ("tcp-retransmit", "tcp-churn", "tcp-slow-consumer")
GOLDEN_TCP = Path(__file__).resolve().parent.parent / "golden" \
    / "chaos_tcp_seed1234.trace"


def _lossy_plan(seed=99, probability=0.01):
    return FaultPlan(seed, rules=[
        FaultRule("nic.tx", "drop", probability=probability),
        FaultRule("nic.rx", "drop", probability=probability),
    ])


class TestAcceptance:
    def test_200_subscribers_intact_under_one_percent_loss(self):
        specs = mixed_rate_specs(200, bytes_total=30_000)
        result = run_tcp_streaming(specs, plan=_lossy_plan(),
                                   sim_seconds=0.5, grace_seconds=2.0)
        assert result.counts() == {S_COMPLETED: 200}
        assert result.intact          # sha256(sent) == sha256(received)
        assert result.server_stats["retransmits"] > 0
        assert result.downlink["frames_dropped"] > 0
        assert result.uplink["frames_dropped"] > 0

    def test_clean_network_needs_no_recovery(self):
        specs = mixed_rate_specs(24, bytes_total=16_000)
        result = run_tcp_streaming(specs, sim_seconds=0.3,
                                   grace_seconds=0.5)
        assert result.counts() == {S_COMPLETED: 24}
        assert result.intact
        assert result.server_stats["retransmits"] == 0


class TestDeterminism:
    def _run(self):
        plan = FaultPlan(1234, rules=[
            FaultRule("nic.tx", "drop", probability=0.02, max_fires=30),
            FaultRule("nic.rx", "reorder", probability=0.02,
                      max_fires=20, params={"delay_cycles": 60_000}),
        ])
        specs = mixed_rate_specs(64, bytes_total=20_000,
                                 slow_every=8, churn_every=16)
        return run_tcp_streaming(specs, plan=plan, sim_seconds=0.4,
                                 grace_seconds=2.0)

    def test_identical_seeds_identical_outcomes(self):
        first, second = self._run(), self._run()
        assert first.server_stats == second.server_stats
        assert first.counts() == second.counts()
        assert first.downlink == second.downlink
        assert first.uplink == second.uplink
        assert [(s.index, s.status, s.bytes_received)
                for s in first.sessions] \
            == [(s.index, s.status, s.bytes_received)
                for s in second.sessions]


class TestDegradationLadder:
    def test_overload_sheds_lowest_rate_first(self):
        # 40 subscribers wanting ~105 Mbps aggregate against a 40 Mbps
        # pipe: the ladder must shed, lowest-rate subscribers first.
        specs = mixed_rate_specs(40, bytes_total=60_000,
                                 base_rate_bps=6e6)
        result = run_tcp_streaming(specs, sim_seconds=0.5,
                                   grace_seconds=1.0,
                                   capacity_bps=40e6)
        shed = [s for s in result.sessions if s.status == S_SHED]
        kept = [s for s in result.sessions if s.status != S_SHED]
        assert shed, "overload never shed anybody"
        assert result.level_transitions, "ladder never changed level"
        if kept:
            assert max(s.spec.rate_bps for s in shed) \
                <= min(s.spec.rate_bps for s in kept)

    def test_churned_subscribers_counted(self):
        specs = mixed_rate_specs(36, bytes_total=20_000, churn_every=6)
        result = run_tcp_streaming(specs, sim_seconds=0.4,
                                   grace_seconds=1.0)
        counts = result.counts()
        assert counts.get(S_CHURNED, 0) > 0
        assert counts.get(S_CHURNED, 0) + counts.get(S_COMPLETED, 0) \
            == len(result.sessions)

    def test_slow_consumers_exercise_flow_control(self):
        specs = mixed_rate_specs(16, bytes_total=24_000, slow_every=2)
        result = run_tcp_streaming(specs, sim_seconds=0.4,
                                   grace_seconds=3.0)
        assert result.counts() == {S_COMPLETED: 16}
        assert result.intact
        stats = result.server_stats
        assert stats["zero_window_stalls"] + stats["window_probes"] > 0


class TestGoldenTcpChaos:
    def test_tcp_chaos_matrix_upholds_invariants(self):
        campaign = run_campaign(seed=DEFAULT_SEED,
                                scenarios=list(TCP_SCENARIOS))
        violations = {result["scenario"]: result["violations"]
                      for result in campaign["results"]
                      if result["violations"]}
        assert campaign["ok"], violations

    def test_tcp_golden_trace_matches(self):
        campaign = run_campaign(seed=DEFAULT_SEED,
                                scenarios=list(TCP_SCENARIOS))
        assert campaign["trace"] == GOLDEN_TCP.read_text()


class TestObservability:
    def test_metrics_published_under_net_prefix(self):
        registry = MetricsRegistry()
        specs = mixed_rate_specs(8, bytes_total=8_000)
        run_tcp_streaming(specs, plan=_lossy_plan(7, 0.02),
                          sim_seconds=0.2, grace_seconds=1.0,
                          registry=registry)
        names = set(registry.names())
        assert "net.tcp.segments_sent" in names
        assert "net.tcp.retransmits" in names
        assert "net.stream.sessions" in names
        assert "net.tcp.cwnd" in names          # histogram
        assert registry.get("net.stream.sessions").value == 8

    def test_trace_bus_carries_connection_lifecycle(self):
        bus = TraceBus()
        bus.enabled = True
        specs = mixed_rate_specs(4, bytes_total=4_000)
        run_tcp_streaming(specs, sim_seconds=0.2, grace_seconds=0.5,
                          bus=bus)
        records = bus.by_category(CAT_NET)
        opens = [r for r in records if r.name == "tcp-open"]
        closes = [r for r in records if r.name == "tcp-conn"]
        # Client and server side of each of the four connections.
        assert len(opens) == 8
        assert len(closes) == 8
        assert all(r.args.get("reason") for r in closes)
