"""Integration: the multithreaded guest kernel and thread-aware
debugging through the monitor's stub."""

import pytest

from repro.baremetal import BareMetalRunner
from repro.core import DebugSession
from repro.guest.asmthreads import (
    STATE_EXITED,
    build_threaded_kernel,
    read_counters,
    read_task_states,
)
from repro.hw.machine import Machine
from repro.vmm import LightweightVmm

THREADS = 3


class TestThreadedKernelRuns:
    def test_bare_metal_round_robin(self):
        machine = Machine()
        kernel = build_threaded_kernel(THREADS, iterations=4)
        kernel.load_into(machine.memory)
        BareMetalRunner(machine).boot_guest(kernel.origin)
        machine.run(100_000)
        assert read_counters(machine.memory, THREADS) == [4, 4, 4]
        assert read_task_states(machine.memory, THREADS) == \
            [STATE_EXITED] * THREADS

    def test_lvmm_identical_schedule(self):
        machine = Machine()
        kernel = build_threaded_kernel(THREADS, iterations=4)
        kernel.load_into(machine.memory)
        monitor = LightweightVmm(machine)
        monitor.install()
        monitor.boot_guest(kernel.origin)
        monitor.run(300_000)
        assert read_counters(machine.memory, THREADS) == [4, 4, 4]
        # Interleaving is observable and strictly round-robin.
        assert bytes(monitor.console) == b"ABC" * 4 + b"."

    def test_iret_emulated_once_per_fabricated_context(self):
        machine = Machine()
        kernel = build_threaded_kernel(THREADS, iterations=3)
        kernel.load_into(machine.memory)
        monitor = LightweightVmm(machine)
        monitor.install()
        monitor.boot_guest(kernel.origin)
        monitor.run(300_000)
        # One trap per guest-fabricated (RPL-0) frame; all later frames
        # carry compressed selectors and IRET natively.
        assert monitor.stats.traps_by_mnemonic["IRET"] == THREADS

    def test_task_table_registered(self):
        machine = Machine()
        kernel = build_threaded_kernel(THREADS, iterations=2)
        kernel.load_into(machine.memory)
        monitor = LightweightVmm(machine)
        monitor.install()
        monitor.boot_guest(kernel.origin)
        monitor.run(300_000)
        from repro.guest.asmthreads import TASK_TABLE
        assert monitor.task_table_addr == TASK_TABLE


@pytest.fixture
def session():
    sess = DebugSession(monitor="lvmm")
    kernel = build_threaded_kernel(THREADS, iterations=50)
    sess.load_and_boot(kernel)
    sess.attach()
    # Run into steady state: every task alive, some switches done.
    sess.client.set_breakpoint(kernel.symbol("task_loop"))
    for _ in range(4):
        sess.client.cont()
    return sess, kernel


class TestThreadAwareStub:
    def test_thread_enumeration(self, session):
        sess, _ = session
        assert sess.client.thread_ids() == [1, 2, 3]
        assert sess.client.current_thread() in (1, 2, 3)

    def test_parked_thread_registers(self, session):
        sess, kernel = session
        current = sess.client.current_thread()
        parked = next(i for i in (1, 2, 3) if i != current)
        sess.client.select_thread(parked)
        regs = sess.client.read_registers()
        sess.client.select_thread(0)
        # R5 carries the task id by construction.
        assert regs[5] == parked - 1
        # The parked PC is inside the task body.
        assert kernel.symbol("task_loop") <= regs[8] \
            <= kernel.symbol("yield_isr")
        # Each task runs on its own stack.
        from repro.guest.asmthreads import (TASK_STACK_BASE,
                                            TASK_STACK_SIZE)
        low = TASK_STACK_BASE + (parked - 1) * TASK_STACK_SIZE
        assert low < regs[7] <= low + TASK_STACK_SIZE

    def test_current_thread_registers_are_live(self, session):
        sess, _ = session
        current = sess.client.current_thread()
        sess.client.select_thread(current)
        via_thread = sess.client.read_registers()
        sess.client.select_thread(0)
        direct = sess.client.read_registers()
        assert via_thread == direct

    def test_extra_info_and_aliveness(self, session):
        sess, _ = session
        current = sess.client.current_thread()
        info = sess.client.thread_extra_info(current)
        assert "running" in info and "(current)" in info
        assert sess.client.thread_alive(current)
        assert not sess.client.thread_alive(42)

    def test_bad_thread_selection_rejected(self, session):
        sess, _ = session
        from repro.errors import ProtocolError
        with pytest.raises(ProtocolError):
            sess.client.select_thread(9)

    def test_debugger_cli_threads(self, session):
        sess, kernel = session
        from repro.debugger import Debugger, SymbolTable
        symbols = SymbolTable()
        symbols.add_program(kernel)
        debugger = Debugger(sess, symbols)
        text = debugger.execute("threads")
        assert text.count("task ") == 3
        assert "*" in text
        assert "<task_loop" in text

    def test_exited_threads_reported(self):
        sess = DebugSession(monitor="lvmm")
        kernel = build_threaded_kernel(THREADS, iterations=2)
        sess.load_and_boot(kernel)
        sess.attach()
        sess.monitor.resume_guest(step=False)
        sess.monitor.run(300_000)
        sess.monitor.stopped = True
        infos = [sess.client.thread_extra_info(i) for i in (1, 2, 3)]
        assert all("exited" in info or "running" in info
                   for info in infos)


class TestPreemptiveScheduling:
    def _run(self, monitored: bool, timer_hz=160000, iterations=6,
             busy_loops=5000):
        from repro.asm import assemble
        from repro.guest.asmthreads import threaded_kernel_source
        kernel = assemble(threaded_kernel_source(
            THREADS, iterations, preemptive=True, timer_hz=timer_hz,
            busy_loops=busy_loops))
        machine = Machine()
        kernel.load_into(machine.memory)
        done = lambda: read_task_states(machine.memory, THREADS) \
            == [STATE_EXITED] * THREADS
        if monitored:
            monitor = LightweightVmm(machine)
            monitor.install()
            monitor.boot_guest(kernel.origin)
            monitor.run(3_000_000, until=done)
            return machine, monitor
        runner = BareMetalRunner(machine)
        runner.boot_guest(kernel.origin)
        machine.run(3_000_000, until=done)
        return machine, runner

    def test_bare_metal_preemption_completes(self):
        machine, _ = self._run(monitored=False)
        assert read_counters(machine.memory, THREADS) == [6] * THREADS
        assert read_task_states(machine.memory, THREADS) == \
            [STATE_EXITED] * THREADS

    def test_lvmm_timer_preempts_tasks(self):
        machine, monitor = self._run(monitored=True)
        assert read_counters(machine.memory, THREADS) == [6] * THREADS
        # Real preemptions: many reflected timer interrupts, and the
        # console shows tasks interleaved rather than run-to-completion.
        assert monitor.stats.interrupts_reflected > THREADS
        console = bytes(monitor.console).rstrip(b".")
        assert b"AB" in console and b"BC" in console

    def test_slow_tick_means_run_to_completion(self):
        """With a quantum far larger than a task's work, each task
        finishes in one go — quantum sizing is observable."""
        machine, monitor = self._run(monitored=True, timer_hz=1000,
                                     iterations=3)
        console = bytes(monitor.console).rstrip(b".")
        assert console == b"AAA" + b"BBB" + b"CCC"

    def test_thread_view_during_preemption(self):
        """The debugger's task list stays coherent while the timer is
        switching tasks under it."""
        from repro.asm import assemble
        from repro.guest.asmthreads import threaded_kernel_source
        sess = DebugSession(monitor="lvmm")
        kernel = assemble(threaded_kernel_source(
            THREADS, 50, preemptive=True, timer_hz=160000,
            busy_loops=5000))
        sess.load_and_boot(kernel)
        sess.attach()
        sess.client.set_breakpoint(kernel.symbol("busy_loop"))
        sess.client.cont()
        ids = sess.client.thread_ids()
        assert ids == [1, 2, 3]
        current = sess.client.current_thread()
        assert current in ids
        for thread_id in ids:
            sess.client.select_thread(thread_id)
            regs = sess.client.read_registers()
            assert regs[5] == thread_id - 1
        sess.client.select_thread(0)
