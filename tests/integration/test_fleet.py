"""Integration: the supervised debugging fleet.

Real worker processes (spawn context), real pipes, real sockets — these
tests exercise the control plane the way ``repro-fleet up`` runs it:
dispatch, retry, dead-letter, crash/hang supervision, the degradation
ladder, the RSP mux and the control protocol.
"""

import json
import socket
import threading
import time

import pytest

from repro.fleet.control import ControlServer, control_request, \
    job_from_spec
from repro.fleet.dashboard import aggregate_worker_metrics, \
    build_dashboard, export_dashboard, format_status
from repro.fleet.jobs import (Job, RetrySchedule, STATUS_DEAD_LETTER,
                              STATUS_DONE, STATUS_PENDING,
                              STATUS_RUNNING, STATUS_SHED)
from repro.fleet.mux import FleetMux
from repro.fleet.supervisor import (FLEET_DEGRADED, FLEET_FULL, Fleet,
                                    FleetConfig, SLOT_IDLE)
from repro.fleet.worker import run_exec_slices
from repro.obs.metrics import global_registry
from repro.rsp.packets import frame

#: Fast heartbeats keep the tests snappy; the hang timeout stays large
#: except where a test is explicitly about hang detection.
FAST = dict(heartbeat_interval=0.05, hang_timeout=30.0)

#: A quick retry schedule for retry-path tests.
QUICK_RETRY = RetrySchedule(max_attempts=2, backoff_base_s=0.05,
                            multiplier=2.0, backoff_max_s=0.2)


@pytest.fixture
def make_fleet():
    fleets = []

    def _make(**overrides):
        settings = dict(FAST)
        settings.update(overrides)
        fleet = Fleet(FleetConfig(**settings)).start()
        fleets.append(fleet)
        assert fleet.wait_ready(timeout=60.0), \
            "fleet never became ready"
        return fleet

    yield _make
    for fleet in fleets:
        fleet.shutdown()


def poll_until(fleet, condition, timeout=30.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        fleet.poll()
        if condition():
            return True
        time.sleep(interval)
    return False


class TestFleetJobs:
    def test_jobs_dispatch_retry_and_dead_letter(self, make_fleet):
        fleet = make_fleet(workers=2)
        ok = fleet.submit(Job(kind="noop", params={}))
        flaky = fleet.submit(Job(
            kind="noop", params={"fail_below_attempt": 2},
            retry=QUICK_RETRY))
        doomed = fleet.submit(Job(
            kind="noop", params={"fail_below_attempt": 99},
            retry=QUICK_RETRY))
        assert fleet.run_until_idle(timeout=60.0)

        assert ok.status == STATUS_DONE
        assert ok.result == {"attempt": 1}
        # The flaky job failed once, backed off, succeeded on retry.
        assert flaky.status == STATUS_DONE
        assert flaky.attempts == 2
        assert flaky.result == {"attempt": 2}
        # The doomed job exhausted its attempts and was kept, not lost.
        assert doomed.status == STATUS_DEAD_LETTER
        assert doomed in fleet.queue.dead_letter
        assert "scripted failure" in doomed.error
        assert fleet.level == FLEET_FULL

    def test_exec_slices_matches_in_process_reference(self, make_fleet):
        """A worker-run campaign produces byte-identical checkpoint
        digests to the same campaign run in-process."""
        fleet = make_fleet(workers=1)
        params = {"slices": 3, "slice_insns": 800, "seed": 7}
        record = fleet.submit(Job(kind="exec-slices", params=params,
                                  timeout_s=120.0))
        assert fleet.run_until_idle(timeout=120.0)
        assert record.status == STATUS_DONE
        reference = run_exec_slices(dict(params))
        assert record.result["digests"] == reference["digests"]
        assert len(record.result["digests"]) == 3
        assert record.result["instret"] == reference["instret"]
        assert not record.result["resumed"]

    def test_status_and_dashboard_reflect_the_fleet(self, make_fleet,
                                                    tmp_path):
        fleet = make_fleet(workers=2)
        fleet.submit(Job(kind="noop", params={}))
        assert fleet.run_until_idle(timeout=60.0)
        # Wait for a heartbeat that post-dates the completed job, so
        # the supervisor's metrics view includes it.
        assert poll_until(
            fleet, lambda: aggregate_worker_metrics(fleet)
            .get("worker.jobs.completed", 0) >= 1)

        status = fleet.status()
        assert status["level"] == FLEET_FULL
        assert len(status["workers"]) == 2
        assert status["jobs"][STATUS_DONE] == 1

        text = format_status(fleet)
        assert text.startswith("ladder: full-service")
        assert "workers: 2/2 healthy" in text

        dashboard = export_dashboard(fleet, tmp_path / "dash.json")
        on_disk = json.loads((tmp_path / "dash.json").read_text())
        assert on_disk["level"] == dashboard["level"] == FLEET_FULL
        # Per-worker metrics aggregate across the heartbeat snapshots.
        assert dashboard["aggregated"].get("worker.jobs.completed",
                                           0) >= 1
        assert "fleet.ladder.level" in dashboard["supervisor_metrics"]


class TestFleetSupervision:
    def test_crashed_worker_is_restarted(self, make_fleet):
        fleet = make_fleet(workers=1, max_restarts=2)
        slot = fleet.slots[0]
        first_pid = slot.pid
        slot.conn.send({"op": "crash"})
        assert poll_until(fleet, lambda: slot.restarts == 1
                          and slot.status == SLOT_IDLE)
        assert slot.pid != first_pid
        # The replacement serves jobs like nothing happened.
        record = fleet.submit(Job(kind="noop", params={}))
        assert fleet.run_until_idle(timeout=60.0)
        assert record.status == STATUS_DONE
        assert fleet.level == FLEET_FULL

    def test_hung_worker_is_detected_and_replaced(self, make_fleet):
        fleet = make_fleet(workers=1, hang_timeout=0.5, max_restarts=2)
        hangs = global_registry().counter("fleet.hangs")
        before = hangs.value
        fleet.slots[0].conn.send({"op": "hang"})
        assert poll_until(fleet, lambda: fleet.slots[0].restarts == 1
                          and fleet.slots[0].status == SLOT_IDLE)
        assert hangs.value == before + 1

    def test_wedged_job_times_out_and_charges_the_job(self, make_fleet):
        fleet = make_fleet(workers=1, max_restarts=2)
        record = fleet.submit(Job(
            kind="noop", params={"sleep_ms": 5_000}, timeout_s=0.3,
            retry=RetrySchedule(max_attempts=1)))
        assert fleet.run_until_idle(timeout=60.0)
        assert record.status == STATUS_DEAD_LETTER
        assert record.error == "job timeout"
        # The worker was killed with the wedged machine and respawned.
        assert poll_until(fleet, lambda: fleet.slots[0].restarts == 1
                          and fleet.slots[0].status == SLOT_IDLE)


class TestFleetDegradation:
    def test_lost_workers_degrade_shed_and_keep_serving(self,
                                                        make_fleet):
        """Half the fleet dies with restarts disabled: the ladder goes
        degraded, low-priority work is shed, high-priority work and
        RSP service continue on the survivors."""
        fleet = make_fleet(workers=4, restart=False)
        mux = FleetMux(fleet, "127.0.0.1", 0)

        # Occupy every worker so the low-priority job stays *pending*
        # (only pending work is sheddable).
        one_shot = RetrySchedule(max_attempts=1)
        for _ in range(4):
            fleet.submit(Job(kind="noop", params={"sleep_ms": 2_000},
                             priority=9, retry=one_shot))
        assert poll_until(
            fleet,
            lambda: fleet.queue.counts()[STATUS_RUNNING] == 4)
        low_early = fleet.submit(Job(kind="noop", params={},
                                     priority=1, retry=one_shot))
        fleet.poll()
        assert low_early.status == STATUS_PENDING

        fleet.kill_worker(2)
        fleet.kill_worker(3)
        assert poll_until(fleet, lambda: fleet.level == FLEET_DEGRADED)

        # Pending low-priority work was shed on the transition...
        assert low_early.status == STATUS_SHED
        # ...and new low-priority work is shed at intake.
        low_late = fleet.submit(Job(kind="noop", params={},
                                    priority=1))
        fleet.poll()
        assert low_late.status == STATUS_SHED
        # High-priority work still runs to completion.
        high = fleet.submit(Job(kind="noop", params={}, priority=9))
        assert fleet.run_until_idle(timeout=60.0)
        assert high.status == STATUS_DONE

        # RSP sessions are still served through the mux.
        with socket.create_connection(mux.address, timeout=5) as sock:
            sock.settimeout(0.01)
            reply = _mux_exchange(fleet, sock, b"?")
            assert reply.endswith(b"$S05#b8")

        # The verdict is visible everywhere an operator looks.
        assert "ladder: degraded" in format_status(fleet)
        assert fleet.status()["level"] == FLEET_DEGRADED
        assert global_registry().gauge("fleet.ladder.level").value == 1
        assert build_dashboard(fleet)["transitions"][-1]["to"] \
            == FLEET_DEGRADED


def _mux_exchange(fleet, sock, payload, timeout=30.0):
    """Send one RSP packet through the mux, polling the fleet until the
    pinned worker's reply comes back."""
    sock.sendall(frame(payload))
    received = bytearray()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        fleet.poll()
        try:
            chunk = sock.recv(4096)
        except (BlockingIOError, socket.timeout):
            chunk = b""
        if chunk:
            received.extend(chunk)
            if b"#" in received[received.find(b"$"):]:
                tail = received[received.find(b"$"):]
                if len(tail) >= tail.find(b"#") + 3:
                    sock.sendall(b"+")
                    return bytes(received)
        time.sleep(0.002)
    raise AssertionError(f"no mux reply to {payload!r}; "
                         f"got {bytes(received)!r}")


class TestFleetMux:
    def test_sessions_survive_reconnects(self, make_fleet):
        fleet = make_fleet(workers=1)
        mux = FleetMux(fleet, "127.0.0.1", 0)
        with socket.create_connection(mux.address, timeout=5) as sock:
            sock.settimeout(0.01)
            assert _mux_exchange(fleet, sock, b"?").endswith(b"$S05#b8")
            # The resident session knows which worker it lives in.
            info = b"qRcmd," + b"fleet".hex().encode()
            reply = _mux_exchange(fleet, sock, info)
            assert b"worker" in bytes.fromhex(
                reply[reply.find(b"$") + 1:reply.find(b"#")]
                .decode("ascii"))
        # Client is gone; the mux notices and frees the worker.
        assert poll_until(fleet, lambda: not mux._sessions)
        # A second client lands on the same worker and is served.
        with socket.create_connection(mux.address, timeout=5) as sock:
            sock.settimeout(0.01)
            assert _mux_exchange(fleet, sock, b"?").endswith(b"$S05#b8")
        assert mux.accepted == 2

    def test_clients_beyond_capacity_are_refused(self, make_fleet):
        fleet = make_fleet(workers=1)
        mux = FleetMux(fleet, "127.0.0.1", 0)
        with socket.create_connection(mux.address, timeout=5) as first:
            first.settimeout(0.01)
            assert _mux_exchange(fleet, first, b"?") \
                .endswith(b"$S05#b8")
            with socket.create_connection(mux.address,
                                          timeout=5) as second:
                second.settimeout(5)
                assert poll_until(fleet, lambda: mux.refused == 1)
                # The refused client sees a closed connection.
                assert second.recv(1) == b""


def _control(fleet, server, payload):
    """One control round trip while this thread keeps polling."""
    box = {}

    def request():
        box["reply"] = control_request(server.address, payload)

    thread = threading.Thread(target=request, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30.0
    while thread.is_alive() and time.monotonic() < deadline:
        fleet.poll()
        server.poll()
        time.sleep(0.002)
    thread.join(timeout=1.0)
    assert "reply" in box, "control request never completed"
    return box["reply"]


class TestControlServer:
    def test_status_submit_drain_kill(self, make_fleet):
        fleet = make_fleet(workers=1, max_restarts=1)
        server = ControlServer(fleet, "127.0.0.1", 0)
        try:
            reply = _control(fleet, server, {"op": "status"})
            assert reply["ok"]
            assert reply["status"]["level"] == FLEET_FULL
            assert reply["dashboard"]["jobs"]["pending"] == 0

            reply = _control(fleet, server, {
                "op": "submit",
                "job": {"kind": "noop", "params": {}, "priority": 8}})
            assert reply["ok"]
            record = fleet.queue.records[reply["id"]]
            assert fleet.run_until_idle(timeout=60.0)
            assert record.status == STATUS_DONE

            reply = _control(fleet, server, {"op": "drain"})
            assert reply["ok"] and fleet.draining

            pid = fleet.slots[0].pid
            reply = _control(fleet, server, {"op": "kill", "worker": 0})
            assert reply["ok"]
            assert poll_until(fleet,
                              lambda: fleet.slots[0].pid != pid
                              and fleet.slots[0].status == SLOT_IDLE)

            reply = _control(fleet, server, {"op": "frobnicate"})
            assert not reply["ok"]
            assert "unknown op" in reply["error"]
        finally:
            server.close()

    def test_job_from_spec_builds_full_jobs(self):
        job = job_from_spec({
            "kind": "chaos", "params": {"scenario": "wild-writes"},
            "priority": 7, "timeout_s": 120,
            "retry": {"max_attempts": 5, "backoff_base_s": 0.5},
            "max_resumes": 1})
        assert job.kind == "chaos"
        assert job.priority == 7
        assert job.timeout_s == 120.0
        assert job.retry.max_attempts == 5
        assert job.retry.backoff_s(2) == 1.0
        assert job.max_resumes == 1
