"""Integration: the paging-enabled guest kernel on every stack.

Exercises the CR3/CR0.PG virtualisation path: the guest builds its own
identity page tables in assembly, loads CR3 and flips CR0.PG — on bare
metal directly, under the monitors via trapped MOVCR — and then runs
its normal interrupt-driven life with the real MMU translating every
access.
"""

import pytest

from repro.baremetal import BareMetalRunner
from repro.fullvmm import FullVmm
from repro.guest.asmkernel import (
    KernelConfig,
    build_kernel,
    build_user_task,
    read_state,
    read_ticks,
)
from repro.hw.machine import Machine
from repro.vmm import LightweightVmm

CONFIG = KernelConfig(ticks_to_run=4, with_paging=True)


def boot(monitor_class, config=CONFIG, user=None, limit=500_000):
    machine = Machine()
    kernel = build_kernel(config)
    kernel.load_into(machine.memory)
    if user is not None:
        user.load_into(machine.memory)
    if monitor_class is None:
        runner = BareMetalRunner(machine)
        runner.boot_guest(kernel.origin)
        machine.run(limit, until=lambda: read_state(machine.memory) != 0)
        return machine, runner
    monitor = monitor_class(machine)
    monitor.install()
    monitor.boot_guest(kernel.origin)
    monitor.run(limit, until=lambda: read_state(machine.memory) != 0)
    return machine, monitor


class TestPagingGuest:
    def test_bare_metal_runs_paged(self):
        machine, runner = boot(None)
        assert read_ticks(machine.memory) == 4
        assert machine.cpu.paging_enabled
        assert not runner.guest_dead

    def test_lvmm_shadows_cr3_and_cr0(self):
        machine, monitor = boot(LightweightVmm)
        assert read_ticks(machine.memory) == 4
        assert machine.cpu.paging_enabled
        assert monitor.shadow.cr3 == 0x60000
        assert monitor.shadow.cr0 & (1 << 31)
        assert monitor.stats.traps_by_mnemonic["MOVCR"] == 2
        assert monitor.stats.traps_by_mnemonic["MOVRC"] == 1

    def test_fullvmm_runs_paged(self):
        machine, monitor = boot(FullVmm)
        assert read_ticks(machine.memory) == 4
        assert machine.cpu.paging_enabled

    def test_translations_really_happen(self):
        machine, _ = boot(None)
        mmu = machine.cpu.mmu
        assert mmu.tlb.hits + mmu.tlb.misses > 0
        assert mmu.cr3 == 0x60000

    def test_user_task_under_paging_and_lvmm(self):
        """All three privilege mechanisms at once: ring compression,
        paging, and a ring-3 task making syscalls."""
        config = KernelConfig(ticks_to_run=500, with_user_task=True,
                              with_paging=True)
        user = build_user_task(3)
        machine, monitor = boot(LightweightVmm, config, user,
                                limit=800_000)
        assert read_state(machine.memory) == 2   # user exited cleanly
        assert bytes(monitor.console).startswith(b"uuu")
        assert machine.cpu.paging_enabled

    def test_debug_session_on_paged_guest(self):
        from repro.core import DebugSession
        sess = DebugSession(monitor="lvmm")
        kernel = build_kernel(CONFIG)
        sess.load_and_boot(kernel)
        sess.attach()
        sess.client.set_breakpoint(kernel.symbol("timer_isr"))
        assert sess.client.cont() == b"S05"
        # Stub memory reads go through the guest's page tables.
        data = sess.client.read_memory(kernel.origin, 8)
        assert data == kernel.image[:8]
