"""Superblock translation must be invisible to every determinism
surface the repo has: replay journals, the golden streaming trace,
profiler sample placement, and the monitor's executed/cycle ledgers.

The ablation handle is ``Cpu.TRANSLATE_DEFAULT`` — every machine built
while it is False runs pure decode-cache interpretation, so each test
here records the same workload under both settings and demands
byte-identical artifacts."""

import os

import pytest

from repro.asm import assemble
from repro.core.session import DebugSession
from repro.faults.campaign import run_scenario
from repro.hw import firmware
from repro.hw.cpu import Cpu
from repro.obs.cli import main as trace_main
from repro.obs.profiler import GuestProfiler

SEED = 1234
GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")
GOLDEN_JOURNAL = os.path.join(GOLDEN_DIR,
                              "replay_wild-writes_seed1234.journal")
GOLDEN_TRACE = os.path.join(GOLDEN_DIR, "trace_streaming_seed1234.json")

GUEST_LOOP = """
loop:
    NOP
    ADDI R1, 1
    ADDI R2, 3
    XORI R3, 0x5A
    JMP  loop
"""


@pytest.fixture
def translation_off(monkeypatch):
    monkeypatch.setattr(Cpu, "TRANSLATE_DEFAULT", False)


def _wild_writes_journal(tmp_path, tag) -> bytes:
    journal_dir = tmp_path / tag
    journal_dir.mkdir()
    result = run_scenario("wild-writes", SEED, strict_guest=True,
                          journal_dir=str(journal_dir))
    assert not result["ok"] and "journal" in result
    with open(result["journal"], "rb") as handle:
        return handle.read()


class TestReplayJournals:
    def test_wild_writes_journal_is_translation_invariant(
            self, tmp_path, monkeypatch):
        with_translation = _wild_writes_journal(tmp_path, "on")
        monkeypatch.setattr(Cpu, "TRANSLATE_DEFAULT", False)
        without = _wild_writes_journal(tmp_path, "off")
        assert with_translation == without

    def test_wild_writes_journal_matches_golden(self, tmp_path):
        """Translation is ON by default: the pre-translation golden
        journal must still be reproduced bit-for-bit."""
        recorded = _wild_writes_journal(tmp_path, "golden-check")
        with open(GOLDEN_JOURNAL, "rb") as handle:
            golden = handle.read()
        assert recorded == golden, \
            "superblock translation perturbed the replay journal"


class TestGoldenTrace:
    def test_streaming_trace_is_translation_invariant(
            self, tmp_path, monkeypatch):
        on = tmp_path / "on.json"
        assert trace_main(["record", "--scenario", "streaming",
                           "--seed", str(SEED), "--out", str(on)]) == 0
        monkeypatch.setattr(Cpu, "TRANSLATE_DEFAULT", False)
        off = tmp_path / "off.json"
        assert trace_main(["record", "--scenario", "streaming",
                           "--seed", str(SEED), "--out", str(off)]) == 0
        assert on.read_bytes() == off.read_bytes()
        with open(GOLDEN_TRACE, "rb") as handle:
            assert on.read_bytes() == handle.read()


def _profiled_run(instructions=5_000, stride=64):
    sess = DebugSession(monitor="lvmm")
    program = assemble(
        f".org {firmware.GUEST_KERNEL_BASE}\n{GUEST_LOOP}\n")
    sess.load_and_boot(program)
    profiler = sess.monitor.attach_profiler(GuestProfiler(stride=stride))
    executed = sess.run_guest(instructions)
    sess.monitor.detach_profiler()
    cpu = sess.machine.cpu
    return {
        "executed": executed,
        "instret": cpu.instret,
        "cycles": cpu.cycle_count,
        "regs": cpu.regs[:],
        "samples": list(profiler.samples),
        "total_samples": profiler.total_samples,
    }


class TestMonitorRun:
    def test_profiler_samples_and_ledgers_are_invariant(
            self, monkeypatch):
        with_translation = _profiled_run()
        monkeypatch.setattr(Cpu, "TRANSLATE_DEFAULT", False)
        without = _profiled_run()
        assert with_translation == without
        assert with_translation["total_samples"] == 5_000 // 64

    def test_translation_actually_engaged(self):
        """Guard against this whole file passing vacuously."""
        sess = DebugSession(monitor="lvmm")
        program = assemble(
            f".org {firmware.GUEST_KERNEL_BASE}\n{GUEST_LOOP}\n")
        sess.load_and_boot(program)
        sess.run_guest(5_000)
        stats = sess.machine.cpu.block_cache_stats()
        assert stats["enabled"]
        assert stats["blocks_compiled"] >= 1
        assert stats["insns_translated"] > 0


class TestVerifyOnCompileDeterminism:
    """The translation validator's verify-on-compile mode must be as
    invisible as translation itself: with ``Cpu.VERIFY_DEFAULT`` forced
    on, both golden artifacts must still come out byte-identical."""

    def test_wild_writes_journal_matches_golden_with_verify_on(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(Cpu, "VERIFY_DEFAULT", True)
        recorded = _wild_writes_journal(tmp_path, "verify-on")
        with open(GOLDEN_JOURNAL, "rb") as handle:
            assert recorded == handle.read(), \
                "verify-on-compile perturbed the replay journal"

    def test_streaming_trace_matches_golden_with_verify_on(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(Cpu, "VERIFY_DEFAULT", True)
        out = tmp_path / "verify.json"
        assert trace_main(["record", "--scenario", "streaming",
                           "--seed", str(SEED), "--out",
                           str(out)]) == 0
        with open(GOLDEN_TRACE, "rb") as handle:
            assert out.read_bytes() == handle.read()

    def test_verification_actually_engaged(self, monkeypatch):
        """Guard against the golden checks passing vacuously."""
        monkeypatch.setattr(Cpu, "VERIFY_DEFAULT", True)
        sess = DebugSession(monitor="lvmm")
        program = assemble(
            f".org {firmware.GUEST_KERNEL_BASE}\n{GUEST_LOOP}\n")
        sess.load_and_boot(program)
        sess.run_guest(5_000)
        stats = sess.machine.cpu._sb_engine.tv_stats()
        assert stats["enabled"]
        assert stats["validated"] >= 1
        assert stats["rejected"] == 0
        assert sess.machine.cpu.block_cache_stats()["entries"] >= 1


class TestMonitorTvCommand:
    def _session(self):
        sess = DebugSession(monitor="lvmm")
        program = assemble(
            f".org {firmware.GUEST_KERNEL_BASE}\n{GUEST_LOOP}\n")
        sess.load_and_boot(program)
        return sess

    def test_status_toggle_and_counts(self):
        sess = self._session()
        monitor = sess.monitor
        assert "translation validation: off" in \
            monitor.monitor_command("tv")
        assert "enabled" in monitor.monitor_command("tv on")
        sess.run_guest(5_000)
        status = monitor.monitor_command("tv")
        assert "translation validation: on" in status
        assert "blocks validated" in status
        assert sess.machine.cpu._sb_engine.tv_validated >= 1
        assert "disabled" in monitor.monitor_command("tv off")
        assert "unknown tv subcommand" in \
            monitor.monitor_command("tv bogus")
        assert "tv" in monitor.monitor_command("help")

    def test_tv_on_matches_tv_off_architecturally(self):
        ledgers = []
        for enable in (False, True):
            sess = self._session()
            if enable:
                sess.monitor.monitor_command("tv on")
            sess.run_guest(20_000)
            cpu = sess.machine.cpu
            ledgers.append((cpu.instret, cpu.cycle_count, cpu.regs[:],
                            cpu.pc, cpu.flags))
        assert ledgers[0] == ledgers[1]

    def test_qrcmd_roundtrip_over_rsp(self):
        sess = self._session()
        sess.attach()
        reply = sess.client.monitor_command("tv")
        assert "translation validation" in reply


class TestMonitorJitCommand:
    def _session(self):
        sess = DebugSession(monitor="lvmm")
        program = assemble(
            f".org {firmware.GUEST_KERNEL_BASE}\n{GUEST_LOOP}\n")
        sess.load_and_boot(program)
        return sess

    def test_status_stats_and_toggle(self):
        sess = self._session()
        monitor = sess.monitor
        sess.run_guest(5_000)
        status = monitor.monitor_command("jit")
        assert "superblock translation: on" in status
        assert "compiled" in status
        stats = monitor.monitor_command("stats")
        assert "block cache:" in stats

        reply = monitor.monitor_command("jit off")
        assert "disabled" in reply
        assert sess.machine.cpu.block_cache_stats()["entries"] == 0
        sess.run_guest(5_000)
        status = monitor.monitor_command("jit")
        assert "superblock translation: off" in status

        assert "enabled" in monitor.monitor_command("jit on")
        sess.run_guest(5_000)
        assert sess.machine.cpu.block_cache_stats()["entries"] >= 1
        assert "flushed" in monitor.monitor_command("jit flush")
        assert sess.machine.cpu.block_cache_stats()["entries"] == 0

    def test_jit_off_matches_jit_on_architecturally(self):
        ledgers = []
        for disable in (False, True):
            sess = self._session()
            if disable:
                sess.monitor.monitor_command("jit off")
            sess.run_guest(20_000)
            cpu = sess.machine.cpu
            ledgers.append((cpu.instret, cpu.cycle_count, cpu.regs[:],
                            cpu.pc, cpu.flags))
        assert ledgers[0] == ledgers[1]

    def test_unknown_subcommand_and_help(self):
        sess = self._session()
        assert "unknown jit subcommand" in \
            sess.monitor.monitor_command("jit bogus")
        assert "jit" in sess.monitor.monitor_command("help")

    def test_qrcmd_roundtrip_over_rsp(self):
        sess = self._session()
        sess.attach()
        reply = sess.client.monitor_command("jit")
        assert "superblock translation" in reply
