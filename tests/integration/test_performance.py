"""Integration: the performance experiments E1-E3 hold their shape.

These are the pass/fail criteria from DESIGN.md: curve ordering at every
rate, monotonicity, the 5.4x LVMM/full-VMM ratio and the 26%
LVMM/real-hardware ratio within +-15%, and DES/analytic agreement.
"""

import pytest

from repro.perf.analytic import predict_demanded_load, predict_max_rate
from repro.perf.load import measure_load
from repro.perf.sweep import (
    headline_ratios,
    max_rate,
    sweep_figure_3_1,
    window_for_rate,
)
from repro.workloads import run_data_transfer

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def figure():
    return sweep_figure_3_1(rates_mbps=(50, 100, 150), sim_seconds=0.25)


@pytest.fixture(scope="module")
def ratios():
    return headline_ratios(sim_seconds=0.25)


class TestFigure31Shape:
    def test_curve_ordering_at_every_rate(self, figure):
        """Real hardware below LVMM below full VMM, everywhere."""
        for index in range(len(figure["bare"].samples)):
            bare = figure["bare"].samples[index].demanded_load
            lvmm = figure["lvmm"].samples[index].demanded_load
            full = figure["fullvmm"].samples[index].demanded_load
            assert bare < lvmm < full

    def test_load_monotonic_in_rate(self, figure):
        for series in figure.values():
            demands = [s.demanded_load for s in series.samples]
            assert demands == sorted(demands)

    def test_achieved_tracks_target_when_sustainable(self, figure):
        for series in figure.values():
            for sample in series.samples:
                if sample.sustainable:
                    assert sample.achieved_rate_bps \
                        >= 0.85 * sample.target_rate_bps

    def test_all_stacks_transfer_same_data(self, figure):
        """At a common sustainable rate all three move the same bytes —
        functional equivalence, different cost."""
        segments = [figure[name].samples[0].segments_sent
                    for name in ("bare", "lvmm")]
        assert segments[0] == segments[1]


class TestHeadlineRatios:
    def test_lvmm_is_5_4x_fullvmm(self, ratios):
        assert ratios.lvmm_vs_fullvmm == pytest.approx(5.4, rel=0.15)

    def test_lvmm_is_26_percent_of_bare(self, ratios):
        assert ratios.lvmm_vs_bare == pytest.approx(0.26, rel=0.15)

    def test_bare_saturates_near_700_mbps(self, ratios):
        assert ratios.bare_max_bps == pytest.approx(700e6, rel=0.15)

    def test_fullvmm_in_vmware_ws4_territory(self, ratios):
        # Low tens of Mbps, as hosted VMMs of the era measured.
        assert 15e6 < ratios.fullvmm_max_bps < 60e6


class TestAnalyticCrossCheck:
    @pytest.mark.parametrize("stack,rate", [
        ("bare", 100e6), ("bare", 300e6),
        ("lvmm", 80e6), ("lvmm", 150e6),
        ("fullvmm", 20e6),
    ])
    def test_des_matches_closed_form(self, stack, rate):
        analytic = predict_demanded_load(stack, rate)
        window = window_for_rate(rate, 0.25, 24)
        measured = measure_load(stack, rate, window).demanded_load
        assert measured == pytest.approx(analytic, rel=0.08)

    def test_max_rates_agree(self):
        for stack, probes in (("bare", (80.0, 160.0)),
                              ("lvmm", (80.0, 160.0)),
                              ("fullvmm", (10.0, 22.0))):
            analytic = predict_max_rate(stack)
            measured = max_rate(stack, sim_seconds=0.25,
                                probe_mbps=probes)
            assert measured == pytest.approx(analytic, rel=0.08)


class TestWorkloadApi:
    def test_run_data_transfer_returns_sample(self):
        sample = run_data_transfer("lvmm", 100e6)
        assert sample.stack == "lvmm"
        assert sample.segments_sent > 0
        assert 0 < sample.demanded_load < 2

    def test_breakdown_explains_the_gap(self):
        """Where the cycles go: passthrough means the LVMM's overhead is
        world switches, the full VMM's is emulation + copies."""
        lvmm = run_data_transfer("lvmm", 100e6)
        full = run_data_transfer("fullvmm", 100e6)
        assert lvmm.breakdown.get("world_switch", 0) > 0
        assert lvmm.breakdown.get("copy", 0) == 0       # zero-copy kept
        assert full.breakdown.get("copy", 0) > 0        # bounce buffers
        assert full.breakdown.get("emulation", 0) \
            > lvmm.breakdown.get("emulation", 0)

    def test_guest_work_identical_across_stacks(self):
        lvmm = run_data_transfer("lvmm", 100e6)
        bare = run_data_transfer("bare", 100e6)
        assert lvmm.breakdown["guest"] == pytest.approx(
            bare.breakdown["guest"], rel=0.01)
