"""Journal-based fleet recovery: kill a worker mid-campaign and prove
the resumed run is byte-for-byte identical to an uninterrupted one.

This is the fleet's determinism contract: the journal spool (fsync'd at
every frame boundary) plus relaxed replay reconstruct the *exact*
machine state the dead worker held, so the continuation produces the
same checkpoint digests an undisturbed run would have produced.
"""

import signal

import pytest

from repro.fleet.jobs import Job, STATUS_DONE
from repro.fleet.supervisor import FLEET_FULL, Fleet, FleetConfig
from repro.fleet.worker import ExecSlices, run_exec_slices
from repro.replay.journal import load_journal

from tests.integration.test_fleet import poll_until

#: The campaign under test: long enough to be killed mid-flight,
#: short enough for CI.  ``think_ms`` paces the victim so the kill
#: lands while slices remain.
PARAMS = {"slices": 12, "slice_insns": 1_500, "seed": 42,
          "think_ms": 50}


def _reference_digests():
    """The uninterrupted run's digests (no think time needed)."""
    return run_exec_slices(dict(PARAMS, think_ms=0))


class TestInProcessResume:
    """The resume protocol itself, without multiprocessing."""

    def test_abandoned_spool_resumes_to_identical_digests(self,
                                                          tmp_path):
        spool = str(tmp_path / "abandoned.journal")
        victim = ExecSlices(dict(PARAMS, think_ms=0), spool=spool)
        for _ in range(5):
            victim.step()
        # Simulate SIGKILL: drop the campaign without finish(); only
        # the fsync'd spool survives.
        victim.recorder.writer.close()
        partial = list(victim.digests)
        del victim

        resumed = ExecSlices(
            dict(PARAMS, think_ms=0),
            resume={"journal": spool, "continuations": [],
                    "spool": str(tmp_path / "cont.journal")})
        assert resumed.done == 5
        assert resumed.digests == partial
        while not resumed.finished:
            resumed.step()
        result = resumed.result()
        assert result["resumed"]
        assert result["digests"] == _reference_digests()["digests"]

    def test_double_kill_chains_continuation_journals(self, tmp_path):
        """Killed, resumed, killed again: the second resume replays the
        original journal *plus* the first continuation."""
        spool = str(tmp_path / "first.journal")
        cont1 = str(tmp_path / "first.cont1")
        cont2 = str(tmp_path / "first.cont2")
        first = ExecSlices(dict(PARAMS, think_ms=0), spool=spool)
        for _ in range(4):
            first.step()
        first.recorder.writer.close()
        del first

        second = ExecSlices(
            dict(PARAMS, think_ms=0),
            resume={"journal": spool, "continuations": [],
                    "spool": cont1})
        for _ in range(4):
            second.step()
        second.recorder.writer.close()
        assert second.done == 8
        del second

        third = ExecSlices(
            dict(PARAMS, think_ms=0),
            resume={"journal": spool, "continuations": [cont1],
                    "spool": cont2})
        assert third.done == 8
        while not third.finished:
            third.step()
        assert third.result()["digests"] \
            == _reference_digests()["digests"]


@pytest.mark.parametrize("kill_signal", [signal.SIGKILL,
                                         signal.SIGTERM])
class TestFleetRecovery:
    def test_killed_worker_resumes_with_identical_digests(
            self, tmp_path, kill_signal):
        """The acceptance test: SIGKILL a worker mid-campaign; the
        supervisor restarts it, replays the spool, and the finished
        job's digests match the straight-through run byte for byte."""
        fleet = Fleet(FleetConfig(
            workers=2, spool_dir=str(tmp_path),
            heartbeat_interval=0.05, hang_timeout=30.0,
            restart=True, max_restarts=3)).start()
        try:
            assert fleet.wait_ready(timeout=60.0)
            record = fleet.submit(Job(kind="exec-slices",
                                      params=dict(PARAMS),
                                      priority=9, timeout_s=300.0))

            # Wait until the campaign is demonstrably mid-flight.
            def mid_flight():
                return record.worker is not None \
                    and fleet.slots[record.worker].progress >= 4
            assert poll_until(fleet, mid_flight, timeout=60.0)
            victim = record.worker
            fleet.kill_worker(victim, sig=kill_signal)

            assert fleet.run_until_idle(timeout=120.0)
            assert record.status == STATUS_DONE
            assert record.resumes == 1
            assert record.result["resumed"]
            # Byte-for-byte: the interrupted-and-resumed campaign is
            # indistinguishable from an uninterrupted one.
            reference = _reference_digests()
            assert record.result["digests"] == reference["digests"]
            assert len(record.result["digests"]) == PARAMS["slices"]
            assert record.result["instret"] == reference["instret"]
            # The worker death cost a resume, not a retry attempt.
            assert record.attempts == 1
            assert fleet.slots[victim].restarts == 1
            assert fleet.level == FLEET_FULL

            # The paper trail: original spool + one continuation, both
            # loadable; the continuation carries the remaining slices.
            assert record.spool is not None
            assert len(record.continuations) == 1
            original = load_journal(record.spool, strict=False)
            continuation = load_journal(record.continuations[0],
                                        strict=False)
            runs = original.counts_by_kind().get("run", 0) \
                + continuation.counts_by_kind().get("run", 0)
            assert runs == PARAMS["slices"]
            assert any("died" in note for note in record.history)
        finally:
            fleet.shutdown()
