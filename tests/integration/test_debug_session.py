"""Integration: end-to-end remote debugging through the full stack —
host RSP client -> serial link -> UART -> monitor stub -> guest state."""

import pytest

from repro.core.session import DebugSession
from repro.guest.asmkernel import (
    DATA_BASE,
    KernelConfig,
    build_kernel,
    build_user_task,
    read_state,
    read_ticks,
)


@pytest.fixture
def session():
    sess = DebugSession(monitor="lvmm")
    kernel = build_kernel(KernelConfig(ticks_to_run=8))
    sess.load_and_boot(kernel)
    sess.attach()
    return sess, kernel


class TestAttachAndInspect:
    def test_attach_reports_sigtrap(self):
        sess = DebugSession(monitor="lvmm")
        kernel = build_kernel(KernelConfig())
        sess.load_and_boot(kernel)
        assert sess.attach() == 5

    def test_registers_reflect_boot_state(self, session):
        sess, kernel = session
        regs = sess.client.read_registers()
        assert regs[8] == kernel.origin  # PC at entry

    def test_memory_read_shows_kernel_image(self, session):
        sess, kernel = session
        data = sess.client.read_memory(kernel.origin, 16)
        assert data == kernel.image[:16]

    def test_memory_write_patches_guest(self, session):
        sess, _ = session
        sess.client.write_memory(0x9000, b"\xaa\xbb\xcc\xdd")
        assert sess.machine.memory.read(0x9000, 4) == b"\xaa\xbb\xcc\xdd"

    def test_register_write_changes_guest(self, session):
        sess, _ = session
        sess.client.write_register(3, 0x1234_5678)
        assert sess.machine.cpu.regs[3] == 0x1234_5678


class TestBreakpointsAndStepping:
    def test_breakpoint_in_interrupt_handler(self, session):
        """The paper's headline use case: break inside the OS's timer
        ISR while the machine keeps doing I/O."""
        sess, kernel = session
        isr = kernel.symbol("timer_isr")
        sess.client.set_breakpoint(isr)
        reply = sess.client.cont()
        assert reply == b"S05"
        assert sess.client.read_registers()[8] == isr

    def test_breakpoint_hit_repeatedly(self, session):
        sess, kernel = session
        isr = kernel.symbol("timer_isr")
        sess.client.set_breakpoint(isr)
        sess.client.cont()
        ticks_first = int.from_bytes(
            sess.client.read_memory(DATA_BASE, 4), "little")
        sess.client.cont()
        ticks_second = int.from_bytes(
            sess.client.read_memory(DATA_BASE, 4), "little")
        assert ticks_second == ticks_first + 1

    def test_single_step_advances_one_instruction(self, session):
        sess, kernel = session
        pc_before = sess.client.read_registers()[8]
        sess.client.step()
        pc_after = sess.client.read_registers()[8]
        assert pc_before < pc_after <= pc_before + 6

    def test_watchpoint_on_tick_counter(self, session):
        sess, kernel = session
        sess.client.set_watchpoint(DATA_BASE, 4, on_write=True)
        reply = sess.client.cont()
        assert reply == b"S05"
        # Stopped by the ISR's first write... which happens after the
        # boot code zeroes the counter; either way it is a write there.
        sess.client.clear_watchpoint(DATA_BASE, 4, on_write=True)

    def test_interrupt_running_guest(self, session):
        sess, kernel = session
        sess.client.send_async(b"c")
        # Let the guest run a bit, then break in.
        sess._pump()
        sess._pump()
        sess.client.send_interrupt()
        reply = sess.client.wait_for_stop()
        assert reply == b"S02"  # SIGINT
        assert sess.monitor.stopped

    def test_detach_lets_guest_finish(self, session):
        sess, kernel = session
        sess.client.detach()
        sess.run_guest(800_000,
                       until=lambda: read_state(sess.machine.memory) != 0)
        assert read_ticks(sess.machine.memory) == 8
        assert sess.console_output == b"D"


class TestDebuggingUserTask:
    def test_break_in_ring3_code(self):
        sess = DebugSession(monitor="lvmm")
        kernel = build_kernel(KernelConfig(ticks_to_run=500,
                                           with_user_task=True))
        user = build_user_task(4)
        sess.load_and_boot(kernel, user)
        sess.attach()
        sess.client.set_breakpoint(user.symbol("user_loop"))
        reply = sess.client.cont()
        assert reply == b"S05"
        assert sess.machine.cpu.cpl == 3  # stopped in ring-3 code
        regs = sess.client.read_registers()
        assert regs[8] == user.symbol("user_loop")
        # Stub reads ring-3 memory fine.
        assert sess.client.read_memory(user.origin, 4) == user.image[:4]


class TestDebugSessionOnFullVmm:
    def test_fullvmm_sessions_also_debug(self):
        sess = DebugSession(monitor="fullvmm")
        kernel = build_kernel(KernelConfig(ticks_to_run=4))
        sess.load_and_boot(kernel)
        sess.attach()
        isr = kernel.symbol("timer_isr")
        sess.client.set_breakpoint(isr)
        assert sess.client.cont() == b"S05"
        assert sess.client.read_registers()[8] == isr
