"""Calibrate cost-model constants to the paper's Fig. 3.1 anchors:
bare-metal max ~700 Mbps, LVMM = 26% of bare, LVMM = 5.4x full VMM.
Secant iterations on one knob per anchor; run offline, constants are
rounded into repro/perf/costmodel.py."""
from repro.perf.costmodel import CostModel
from repro.perf.sweep import max_rate


def secant(f, x1, x2, iters=5):
    f1, f2 = f(x1), f(x2)
    for _ in range(iters):
        if f2 == f1:
            break
        x3 = x2 - f2 * (x2 - x1) / (f2 - f1)
        x1, f1 = x2, f2
        x2, f2 = x3, f(x3)
    return x2


cost = CostModel()

# 1) bare -> 700 Mbps via guest_byte_cycles
def err_bare(gb):
    return max_rate("bare", cost.with_overrides(guest_byte_cycles=gb)) - 700e6

gb = secant(err_bare, 10.0, 13.0)
cost = cost.with_overrides(guest_byte_cycles=round(gb, 2))
bare = max_rate("bare", cost)
print(f"guest_byte={cost.guest_byte_cycles} bare={bare/1e6:.1f}")

# 2) lvmm -> 0.26 * bare via world_switch
target_lvmm = 0.26 * bare
def err_lvmm(ws):
    return max_rate("lvmm", cost.with_overrides(world_switch_cycles=int(ws))) - target_lvmm

ws = int(secant(err_lvmm, 8000, 16000))
cost = cost.with_overrides(world_switch_cycles=ws)
lvmm = max_rate("lvmm", cost)
print(f"ws={ws} lvmm={lvmm/1e6:.1f} ({lvmm/bare*100:.1f}%)")

# 3) fullvmm -> lvmm / 5.4 via host_switch
target_full = lvmm / 5.4
def err_full(hs):
    c = cost.with_overrides(host_switch_cycles=int(max(hs, ws)))
    return max_rate("fullvmm", c, probe_mbps=(10.0, 22.0)) - target_full

hs = int(secant(err_full, 40000, 90000))
cost = cost.with_overrides(host_switch_cycles=hs)
full = max_rate("fullvmm", cost, probe_mbps=(10.0, 22.0))
print(f"hs={hs} full={full/1e6:.2f} ratio={lvmm/full:.2f}")
print("\nfinal:", dict(guest_byte_cycles=cost.guest_byte_cycles,
                       world_switch_cycles=cost.world_switch_cycles,
                       host_switch_cycles=cost.host_switch_cycles))
