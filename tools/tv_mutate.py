#!/usr/bin/env python3
"""Run the translation-validator mutation-kill harness.

Thin wrapper so CI and developers can invoke the harness without
remembering the module path:

    PYTHONPATH=src python tools/tv_mutate.py

Exits 0 only when the pristine fixture validates AND all seeded
miscompile mutations are killed (see repro.analysis.tv.mutate).
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.analysis.tv.mutate import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
