from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of 'OS Debugging Method Using a Lightweight "
                 "Virtual Machine Monitor' (Takeuchi, DATE 2005)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro-debugger=repro.debugger.cli:main",
            "repro-sweep=repro.perf.sweep:main",
            "repro-asm=repro.asm.cli:main",
            "repro-gdbserver=repro.debugger.gdbserver:main",
            "repro-chaos=repro.faults.campaign:main",
            "repro-tv=repro.analysis.tv.cli:main",
        ]
    },
)
