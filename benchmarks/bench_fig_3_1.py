"""E1 — Figure 3.1: measured CPU load vs transfer rate, three stacks.

Regenerates the paper's only figure.  The printed table is the
deliverable; the benchmark times one representative load measurement
per stack, and the assertions pin the curve *shape* the paper shows:
real hardware lowest, LVMM in the middle, the full VMM saturating
almost immediately.
"""

import pytest

from repro.perf.load import measure_load
from repro.perf.sweep import render_figure


class TestFigure31:
    @pytest.mark.parametrize("stack", ["bare", "lvmm", "fullvmm"])
    def test_measure_one_point(self, benchmark, stack):
        """Time one CPU-load measurement (100 Mbps, 0.2 s window)."""
        sample = benchmark.pedantic(
            measure_load, args=(stack, 100e6, 0.2), rounds=1, iterations=1)
        assert sample.demanded_load > 0

    def test_render_full_figure(self, benchmark, figure_3_1, capsys):
        text = benchmark.pedantic(render_figure, args=(figure_3_1,),
                                  rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_curve_ordering_everywhere(self, figure_3_1, benchmark):
        def check():
            for index in range(len(figure_3_1["bare"].samples)):
                bare = figure_3_1["bare"].samples[index].demanded_load
                lvmm = figure_3_1["lvmm"].samples[index].demanded_load
                full = figure_3_1["fullvmm"].samples[index].demanded_load
                assert bare < lvmm < full
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_real_hardware_stays_sustainable_past_600(self, figure_3_1,
                                                      benchmark):
        def check():
            for sample in figure_3_1["bare"].samples:
                if sample.target_mbps <= 600:
                    assert sample.sustainable
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_fullvmm_saturates_by_50(self, figure_3_1, benchmark):
        def check():
            first = figure_3_1["fullvmm"].samples[0]
            assert first.target_mbps == 50
            assert not first.sustainable
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_lvmm_knee_between_150_and_250(self, figure_3_1, benchmark):
        """The LVMM curve crosses 100% just after its ~182 Mbps max."""
        def knee():
            sustainable = [s.target_mbps
                           for s in figure_3_1["lvmm"].samples
                           if s.sustainable]
            return max(sustainable)

        value = benchmark.pedantic(knee, rounds=1, iterations=1)
        assert 100 <= value <= 250
