"""E1 — Figure 3.1: measured CPU load vs transfer rate, three stacks.

Regenerates the paper's only figure.  The printed table is the
deliverable; the benchmark times one representative load measurement
per stack, and the assertions pin the curve *shape* the paper shows:
real hardware lowest, LVMM in the middle, the full VMM saturating
almost immediately.

The TCP companion (PR 9) reruns the comparison on the multi-client
TCP streaming workload: one deterministic simulation per aggregate
rate, priced per stack by :mod:`repro.perf.netmodel`, emitted as
``BENCH_net.json``.
"""

import json
from pathlib import Path

import pytest

from repro.perf.load import measure_load
from repro.perf.netmodel import net_document, render_net_figure, sweep_net
from repro.perf.sweep import render_figure

NET_ARTIFACT = Path("BENCH_net.json")
NET_RATES = (25, 50, 100, 200, 300, 400)
NET_SUBSCRIBERS = 32
NET_SIM_SECONDS = 0.05


@pytest.fixture(scope="module")
def net_curves():
    curves = sweep_net(rates_mbps=NET_RATES,
                       subscribers=NET_SUBSCRIBERS,
                       sim_seconds=NET_SIM_SECONDS)
    NET_ARTIFACT.write_text(json.dumps(net_document(
        curves, NET_SUBSCRIBERS, NET_SIM_SECONDS), indent=2) + "\n")
    return curves


class TestFigure31:
    @pytest.mark.parametrize("stack", ["bare", "lvmm", "fullvmm"])
    def test_measure_one_point(self, benchmark, stack):
        """Time one CPU-load measurement (100 Mbps, 0.2 s window)."""
        sample = benchmark.pedantic(
            measure_load, args=(stack, 100e6, 0.2), rounds=1, iterations=1)
        assert sample.demanded_load > 0

    def test_render_full_figure(self, benchmark, figure_3_1, capsys):
        text = benchmark.pedantic(render_figure, args=(figure_3_1,),
                                  rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_curve_ordering_everywhere(self, figure_3_1, benchmark):
        def check():
            for index in range(len(figure_3_1["bare"].samples)):
                bare = figure_3_1["bare"].samples[index].demanded_load
                lvmm = figure_3_1["lvmm"].samples[index].demanded_load
                full = figure_3_1["fullvmm"].samples[index].demanded_load
                assert bare < lvmm < full
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_real_hardware_stays_sustainable_past_600(self, figure_3_1,
                                                      benchmark):
        def check():
            for sample in figure_3_1["bare"].samples:
                if sample.target_mbps <= 600:
                    assert sample.sustainable
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_fullvmm_saturates_by_50(self, figure_3_1, benchmark):
        def check():
            first = figure_3_1["fullvmm"].samples[0]
            assert first.target_mbps == 50
            assert not first.sustainable
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_lvmm_knee_between_150_and_250(self, figure_3_1, benchmark):
        """The LVMM curve crosses 100% just after its ~182 Mbps max."""
        def knee():
            sustainable = [s.target_mbps
                           for s in figure_3_1["lvmm"].samples
                           if s.sustainable]
            return max(sustainable)

        value = benchmark.pedantic(knee, rounds=1, iterations=1)
        assert 100 <= value <= 250


class TestNetFigure:
    """The TCP edition of Fig. 3.1 (PR 9)."""

    def test_render_net_figure(self, net_curves, benchmark, capsys):
        text = benchmark.pedantic(render_net_figure, args=(net_curves,),
                                  rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_passthrough_curve_monotone(self, net_curves, benchmark):
        """More aggregate rate never costs less CPU on passthrough."""
        def check():
            loads = [s.load for s in net_curves["bare"]]
            assert all(a < b for a, b in zip(loads, loads[1:])), loads
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_net_curve_ordering_everywhere(self, net_curves, benchmark):
        def check():
            for index in range(len(NET_RATES)):
                bare = net_curves["bare"][index].load
                lvmm = net_curves["lvmm"][index].load
                full = net_curves["fullvmm"][index].load
                assert bare < lvmm < full
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_fullvmm_never_sustains_tcp_streaming(self, net_curves,
                                                  benchmark):
        def check():
            assert not any(s.sustainable
                           for s in net_curves["fullvmm"])
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_net_artifact_round_trips(self, net_curves, benchmark):
        def check():
            document = json.loads(NET_ARTIFACT.read_text())
            assert document["experiment"] == "net-tcp-load"
            assert document["rates_mbps"] == list(NET_RATES)
            bare = document["curves"]["bare"]
            assert [point["target_mbps"] for point in bare] \
                == list(NET_RATES)
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)
