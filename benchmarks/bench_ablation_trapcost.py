"""A1 — world-switch cost ablation.

The LVMM's whole performance story rides on the cost of one trap.  This
ablation sweeps ``world_switch_cycles`` and reports the LVMM's maximum
sustainable rate: at near-zero trap cost the LVMM approaches bare
metal (the residual gap is PIC/PIT emulation and reflection work); at
the calibrated ~9.4 us it sits at the paper's 26%; far beyond that it
sinks toward full-VMM territory even with passthrough I/O.
"""

import pytest

from repro.perf.costmodel import DEFAULT_COST_MODEL
from repro.perf.sweep import max_rate

SWEEP = (1000, 4000, 11860, 24000, 48000)


@pytest.fixture(scope="module")
def sweep_results():
    out = {}
    for cycles in SWEEP:
        cost = DEFAULT_COST_MODEL.with_overrides(
            world_switch_cycles=cycles,
            host_switch_cycles=max(cycles,
                                   DEFAULT_COST_MODEL.host_switch_cycles))
        out[cycles] = max_rate("lvmm", cost, sim_seconds=0.2)
    return out


class TestTrapCostAblation:
    def test_sweep_table(self, sweep_results, benchmark, capsys):
        def render():
            lines = ["A1: LVMM max rate vs world-switch cost",
                     f"{'trap cycles':>12} {'trap us':>8} "
                     f"{'max rate Mbps':>14}"]
            for cycles, rate in sweep_results.items():
                lines.append(f"{cycles:>12} {cycles / 1260:>8.1f} "
                             f"{rate / 1e6:>14.1f}")
            return "\n".join(lines)

        text = benchmark.pedantic(render, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_monotonically_decreasing(self, sweep_results, benchmark):
        def check():
            rates = [sweep_results[c] for c in SWEEP]
            assert rates == sorted(rates, reverse=True)
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_cheap_traps_approach_bare_metal(self, sweep_results,
                                             benchmark):
        bare = benchmark.pedantic(max_rate, args=("bare",),
                                  kwargs={"sim_seconds": 0.2},
                                  rounds=1, iterations=1)
        assert sweep_results[1000] > 0.55 * bare

    def test_calibrated_point_matches_paper(self, sweep_results,
                                            benchmark):
        value = benchmark.pedantic(lambda: sweep_results[11860],
                                   rounds=1, iterations=1)
        assert value == pytest.approx(182e6, rel=0.1)

    def test_expensive_traps_sink_toward_fullvmm(self, sweep_results,
                                                 benchmark):
        full = benchmark.pedantic(
            max_rate, args=("fullvmm",),
            kwargs={"sim_seconds": 0.2, "probe_mbps": (10.0, 22.0)},
            rounds=1, iterations=1)
        # Even 4x the calibrated trap cost keeps passthrough I/O ahead
        # of full emulation — the architectural gap never fully closes.
        assert sweep_results[48000] > full
        assert sweep_results[48000] < sweep_results[11860]
