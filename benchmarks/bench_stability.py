"""E4 — debugger service latency while the guest misbehaves.

The paper's stability claim, quantified: the time for one full debugger
round trip (read all registers over RSP) must be the same order whether
the guest is healthy, crashed into the monitor's protection boundary,
or wedged with interrupts off.  The conventional embedded-stub design
has *infinite* latency in the crashed cases (it never answers); here we
measure the LVMM's.
"""

import pytest

from repro.asm import assemble
from repro.core import DebugSession
from repro.hw import firmware


def _session(body: str) -> DebugSession:
    session = DebugSession(monitor="lvmm")
    program = assemble(f".org {firmware.GUEST_KERNEL_BASE}\n{body}\n")
    session.load_and_boot(program)
    session.attach()
    return session


def _crash(session: DebugSession, limit=30_000) -> None:
    session.monitor.resume_guest(step=False)
    session.monitor.run(limit)


class TestStubLatency:
    def test_roundtrip_healthy_guest(self, benchmark):
        session = _session("spin: NOP\nJMP spin\n")
        regs = benchmark(session.client.read_registers)
        assert len(regs) == 10

    def test_roundtrip_after_wild_write_crash(self, benchmark):
        session = _session("""
            MOVI R1, 0xF00000
            MOVI R0, 0xDEAD
            ST   [R1+0], R0
            HLT
        """)
        _crash(session)
        assert session.monitor.guest_dead
        regs = benchmark(session.client.read_registers)
        assert len(regs) == 10

    def test_roundtrip_after_triple_fault(self, benchmark):
        session = _session("INT 0x21\nHLT\n")
        _crash(session)
        assert session.monitor.guest_dead
        regs = benchmark(session.client.read_registers)
        assert len(regs) == 10

    def test_memory_read_throughput_on_dead_guest(self, benchmark):
        session = _session("INT 0x21\nHLT\n")
        _crash(session)
        data = benchmark(session.client.read_memory,
                         firmware.GUEST_KERNEL_BASE, 256)
        assert len(data) == 256

    def test_latency_parity_healthy_vs_crashed(self, benchmark):
        """Explicit parity check: packet counts are identical, so the
        service path does not degrade when the guest dies."""
        def check():
            healthy = _session("spin: NOP\nJMP spin\n")
            crashed = _session("INT 0x21\nHLT\n")
            _crash(crashed)
            for session in (healthy, crashed):
                before = session.monitor.stub.packets_handled
                for _ in range(10):
                    session.client.read_registers()
                assert session.monitor.stub.packets_handled == before + 10
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)
