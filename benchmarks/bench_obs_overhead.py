"""Observability overhead: tracing on vs. off vs. never attached.

The tracing layer's contract is *zero cost when disabled*: every hook
is a guarded ``if taps:`` truthiness check, and the guest profiler
costs exactly one integer compare per interpreted instruction (hoisted
into the monitor run loop).  This benchmark runs the same guest loop
under the LightweightVmm three ways —

* **never**    — no tracer was ever created (the seed behaviour);
* **detached** — a tracer attached and then detached before the run
  (hooks exist, all empty);
* **tracing**  — tracer + guest profiler live during the run.

and asserts the PR's budgets: ``detached/never <= 1.02`` and
``tracing/never <= 1.10``.  Each mode is repeated and the fastest run
is kept (interpreter wall-clock is noisy; the *minimum* is the honest
estimate of the code path's cost).

A second, *fleet* tier measures distributed-tracing overhead: the
same exec-slices job batch through a real multi-process fleet with
``FleetConfig.trace`` off and on (span recording, pipe shipping,
supervisor-side collection), gated at ``traced/untraced <= 1.10``.
Spawn cost is amortized — each fleet is started once and timed over
repeated batches.  Writes ``BENCH_obs.json``.

Run under pytest or standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--smoke]
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.asm import assemble
from repro.core.session import DebugSession
from repro.hw import firmware
from repro.obs.bus import TraceBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import GuestProfiler
from repro.obs.tracer import Tracer

ARTIFACT = Path("BENCH_obs.json")

DISABLED_BUDGET = 1.02
TRACING_BUDGET = 1.10
FLEET_TRACING_BUDGET = 1.10

INSTRUCTIONS = 150_000
SMOKE_INSTRUCTIONS = 25_000
REPEATS = 5
SMOKE_REPEATS = 3

FLEET_WORKERS = 4
FLEET_JOBS = 8
FLEET_SLICES = 8
FLEET_SLICE_INSNS = 5_000
FLEET_REPEATS = 3
SMOKE_FLEET_JOBS = 4
SMOKE_FLEET_SLICES = 4
SMOKE_FLEET_SLICE_INSNS = 1_500
SMOKE_FLEET_REPEATS = 2

GUEST_LOOP = """
    MOVI R0, 0
loop:
    ADDI R1, 3
    XORI R2, 0x55
    ADDI R0, 1
    JMP  loop
"""


def _session() -> DebugSession:
    sess = DebugSession(monitor="lvmm")
    program = assemble(
        f".org {firmware.GUEST_KERNEL_BASE}\n{GUEST_LOOP}\n")
    sess.load_and_boot(program)
    return sess


def _run_mode(mode: str, instructions: int) -> float:
    sess = _session()
    monitor = sess.monitor
    if mode == "detached":
        tracer = Tracer(TraceBus(), MetricsRegistry())
        tracer.attach(monitor=monitor)
        tracer.detach()
    elif mode == "tracing":
        tracer = Tracer(TraceBus(), MetricsRegistry())
        tracer.attach(monitor=monitor)
        monitor.attach_profiler(GuestProfiler(stride=4096))
    monitor.stopped = False
    start = time.perf_counter()
    executed = monitor.run(instructions)
    elapsed = time.perf_counter() - start
    assert executed == instructions, \
        f"{mode}: ran {executed}/{instructions} instructions"
    return elapsed


def measure(instructions: int = INSTRUCTIONS,
            repeats: int = REPEATS) -> dict:
    """Best-of-N wall-clock per mode, interleaved to spread OS noise."""
    best = {"never": float("inf"), "detached": float("inf"),
            "tracing": float("inf")}
    for _ in range(repeats):
        for mode in best:
            elapsed = _run_mode(mode, instructions)
            if elapsed < best[mode]:
                best[mode] = elapsed
    results = {
        mode: {
            "seconds": round(elapsed, 6),
            "insns_per_sec": round(instructions / elapsed, 1),
        }
        for mode, elapsed in best.items()
    }
    results["ratios"] = {
        "detached_vs_never": round(
            best["detached"] / best["never"], 4),
        "tracing_vs_never": round(
            best["tracing"] / best["never"], 4),
        "disabled_budget": DISABLED_BUDGET,
        "tracing_budget": TRACING_BUDGET,
    }
    return results


def _fleet_batch_seconds(fleet, jobs: int, slices: int,
                         slice_insns: int) -> float:
    from repro.fleet.jobs import Job

    start = time.perf_counter()
    for index in range(jobs):
        fleet.submit(Job(kind="exec-slices",
                         params={"slices": slices,
                                 "slice_insns": slice_insns,
                                 "seed": index}))
    assert fleet.run_until_idle(timeout=300.0), \
        "fleet batch did not finish"
    return time.perf_counter() - start


def measure_fleet(jobs: int = FLEET_JOBS, slices: int = FLEET_SLICES,
                  slice_insns: int = FLEET_SLICE_INSNS,
                  repeats: int = FLEET_REPEATS) -> dict:
    """Best-of-N batch wall-clock, untraced vs. traced fleet."""
    from repro.fleet.supervisor import Fleet, FleetConfig, SLOT_IDLE

    best = {}
    for mode, traced in (("untraced", False), ("traced", True)):
        fleet = Fleet(FleetConfig(workers=FLEET_WORKERS,
                                  trace=traced)).start()
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                fleet.poll()
                if all(slot.status == SLOT_IDLE
                       for slot in fleet.slots):
                    break
                time.sleep(0.005)
            else:
                raise RuntimeError("fleet workers did not come up")
            best[mode] = min(
                _fleet_batch_seconds(fleet, jobs, slices, slice_insns)
                for _ in range(repeats))
        finally:
            fleet.shutdown()
    total_insns = jobs * slices * slice_insns
    results = {
        mode: {
            "seconds": round(elapsed, 6),
            "insns_per_sec": round(total_insns / elapsed, 1),
        }
        for mode, elapsed in best.items()
    }
    results["ratios"] = {
        "traced_vs_untraced": round(
            best["traced"] / best["untraced"], 4),
        "fleet_tracing_budget": FLEET_TRACING_BUDGET,
    }
    return results


def run_benchmark(smoke: bool = False, artifact: bool = True) -> dict:
    instructions = SMOKE_INSTRUCTIONS if smoke else INSTRUCTIONS
    repeats = SMOKE_REPEATS if smoke else REPEATS
    results = measure(instructions, repeats)
    fleet_results = measure_fleet(
        jobs=SMOKE_FLEET_JOBS if smoke else FLEET_JOBS,
        slices=SMOKE_FLEET_SLICES if smoke else FLEET_SLICES,
        slice_insns=(SMOKE_FLEET_SLICE_INSNS if smoke
                     else FLEET_SLICE_INSNS),
        repeats=SMOKE_FLEET_REPEATS if smoke else FLEET_REPEATS)
    document = {
        "experiment": "obs-overhead",
        "instructions": instructions,
        "repeats": repeats,
        "smoke": smoke,
        "results": results,
        "fleet": {
            "workers": FLEET_WORKERS,
            "results": fleet_results,
        },
    }
    if artifact:
        ARTIFACT.write_text(json.dumps(document, indent=2) + "\n")
    return document


# -- pytest entry points -----------------------------------------------------

def _smoke_requested() -> bool:
    return os.environ.get("OBS_BENCH_SMOKE", "") not in ("", "0")


class TestObsOverhead:
    def test_overhead_budgets(self, capsys):
        document = run_benchmark(smoke=_smoke_requested())
        ratios = document["results"]["ratios"]
        with capsys.disabled():
            print("\nObservability overhead "
                  f"({document['instructions']} guest instructions, "
                  f"best of {document['repeats']})")
            for mode in ("never", "detached", "tracing"):
                row = document["results"][mode]
                print(f"  {mode:9s} {row['insns_per_sec']:>12,.0f} "
                      f"insns/s")
            print(f"  detached/never {ratios['detached_vs_never']:.4f} "
                  f"(budget {DISABLED_BUDGET})")
            print(f"  tracing/never  {ratios['tracing_vs_never']:.4f} "
                  f"(budget {TRACING_BUDGET})")
            fleet = document["fleet"]["results"]
            for mode in ("untraced", "traced"):
                row = fleet[mode]
                print(f"  fleet-{mode:9s} "
                      f"{row['insns_per_sec']:>12,.0f} insns/s")
            print(f"  traced/untraced "
                  f"{fleet['ratios']['traced_vs_untraced']:.4f} "
                  f"(budget {FLEET_TRACING_BUDGET})")
        assert ratios["detached_vs_never"] <= DISABLED_BUDGET, \
            "disabled observability must be free"
        assert ratios["tracing_vs_never"] <= TRACING_BUDGET, \
            "live tracing blew the overhead budget"
        fleet_ratios = document["fleet"]["results"]["ratios"]
        assert fleet_ratios["traced_vs_untraced"] \
            <= FLEET_TRACING_BUDGET, \
            "fleet tracing blew the overhead budget"


def main() -> int:
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short run for CI")
    parser.add_argument("--no-artifact", action="store_true")
    args = parser.parse_args()
    document = run_benchmark(smoke=args.smoke,
                             artifact=not args.no_artifact)
    print(json.dumps(document, indent=2))
    ratios = document["results"]["ratios"]
    fleet_ratios = document["fleet"]["results"]["ratios"]
    ok = (ratios["detached_vs_never"] <= DISABLED_BUDGET
          and ratios["tracing_vs_never"] <= TRACING_BUDGET
          and fleet_ratios["traced_vs_untraced"]
          <= FLEET_TRACING_BUDGET)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
