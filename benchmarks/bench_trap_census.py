"""E9 — trap census: what actually traps under the lightweight VMM.

The classic VMM-paper table: for each guest, how many privileged
operations the monitor emulated, broken down by instruction, plus
interrupts fielded/reflected.  The numbers substantiate the design
argument quantitatively — traps cluster at boot (table loads, PIC
programming) and on the interrupt-management path, never on the data
path.
"""

import pytest

from repro.obs.metrics import collect_interp
from repro.guest.asmio import NIC_MMIO_HOLE, build_io_demo, read_flags
from repro.guest.asmkernel import KernelConfig, build_kernel, read_state
from repro.guest.asmthreads import build_threaded_kernel
from repro.hw.machine import Machine, MachineConfig
from repro.vmm import LightweightVmm


def run_guest(name):
    if name == "mini-kernel":
        machine = Machine()
        program = build_kernel(KernelConfig(ticks_to_run=5))
        until = lambda: read_state(machine.memory) != 0
    elif name == "paging-kernel":
        machine = Machine()
        program = build_kernel(KernelConfig(ticks_to_run=5,
                                            with_paging=True))
        until = lambda: read_state(machine.memory) != 0
    elif name == "threaded-kernel":
        machine = Machine()
        program = build_threaded_kernel(threads=3, iterations=5)
        until = None
    elif name == "preemptive-kernel":
        from repro.asm import assemble
        from repro.guest.asmthreads import threaded_kernel_source
        machine = Machine()
        program = assemble(threaded_kernel_source(
            3, 5, preemptive=True, timer_hz=160000, busy_loops=5000))
        from repro.guest.asmthreads import (STATE_EXITED,
                                            read_task_states)
        until = lambda: read_task_states(machine.memory, 3) \
            == [STATE_EXITED] * 3
    elif name == "io-demo":
        machine = Machine(MachineConfig(nic_mmio_base=NIC_MMIO_HOLE))
        program = build_io_demo()
        until = lambda: read_flags(machine.memory)[2] == 1
    else:
        raise ValueError(name)
    program.load_into(machine.memory)
    monitor = LightweightVmm(machine)
    monitor.install()
    monitor.boot_guest(program.origin)
    monitor.run(600_000, until=until)
    return machine, monitor


GUESTS = ("mini-kernel", "paging-kernel", "threaded-kernel",
          "preemptive-kernel", "io-demo")


@pytest.fixture(scope="module")
def census():
    return {name: run_guest(name) for name in GUESTS}


class TestTrapCensus:
    def test_census_table(self, census, benchmark, capsys):
        def render():
            lines = ["E9: LVMM trap census per guest boot+run"]
            for name, (machine, monitor) in census.items():
                stats = monitor.stats
                traps = ", ".join(
                    f"{mnemonic}={count}" for mnemonic, count in
                    sorted(stats.traps_by_mnemonic.items()))
                lines.append(
                    f"{name:16s} traps={stats.traps_emulated:<5d} "
                    f"irq={stats.interrupts_fielded}/"
                    f"{stats.interrupts_reflected:<4d} "
                    f"insns={machine.cpu.instret}")
                lines.append(f"{'':16s} {traps}")
            return "\n".join(lines)

        text = benchmark.pedantic(render, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_every_guest_completed(self, census, benchmark):
        def check():
            for name, (machine, monitor) in census.items():
                assert not monitor.guest_dead, name
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_boot_traps_are_a_fixed_handful(self, census, benchmark):
        """Table loads happen exactly once per guest, regardless of
        what the guest then does."""
        def check():
            for name, (_, monitor) in census.items():
                by = monitor.stats.traps_by_mnemonic
                assert by.get("LGDT", 0) == 1, name
                assert by.get("LIDT", 0) == 1, name
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_data_path_never_traps(self, census, benchmark):
        """The io-demo moves kilobytes through SCSI+NIC: zero IN/OUT
        traps beyond the PIC programming OUTBs."""
        def check():
            _, monitor = census["io-demo"]
            by = monitor.stats.traps_by_mnemonic
            assert "INW" not in by and "OUTW" not in by
            assert "INB" not in by
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_interp_fast_path_table(self, census, benchmark, capsys):
        """Decode-cache and TLB effectiveness per guest: real kernels
        (not just synthetic loops) should run almost entirely out of
        the decoded-instruction cache."""
        def render():
            lines = ["Interpreter fast path per guest"]
            for name, (machine, _) in census.items():
                stats = collect_interp(machine.cpu)
                decode = stats["decode_cache"]
                tlb = stats["tlb"]
                lines.append(
                    f"{name:16s} decode hit-rate={decode['hit_rate']:.4f} "
                    f"(inval={decode['invalidations']}) "
                    f"tlb hit-rate={tlb['hit_rate']:.4f}")
            return "\n".join(lines)

        text = benchmark.pedantic(render, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)
        # Short straight-line guests (io-demo: 145 insns, data flags in
        # the code page) legitimately miss; only loopy guests must hit.
        for name, (machine, _) in census.items():
            decode = machine.cpu.decode_cache_stats()
            if machine.cpu.instret >= 1_000:
                assert decode["hit_rate"] > 0.5, (name, decode)

    def test_trap_rate_is_boot_dominated(self, census, benchmark):
        """Per retired instruction, traps are rare for every guest —
        the lightweight in 'lightweight VMM'."""
        def rates():
            out = {}
            for name, (machine, monitor) in census.items():
                busy = [t for m, t in
                        monitor.stats.traps_by_mnemonic.items()
                        if m != "HLT"]
                out[name] = sum(busy) / max(machine.cpu.instret, 1)
            return out

        values = benchmark.pedantic(rates, rounds=1, iterations=1)
        for name, rate in values.items():
            assert rate < 0.15, (name, rate)
