"""E5 — customisability: new devices cost the monitor nothing.

Quantifies the paper's second claim two ways:

1. the monitor's interception footprint is a fixed, tiny set of ports
   (PIC + PIT + UART) no matter how many devices the machine carries;
2. a guest access to a passthrough device under the LVMM costs the same
   cycles as on bare metal, while the full VMM pays the hosted round
   trip — measured in *modelled* cycles and in wall-clock time of the
   access path.
"""

import pytest

from repro.hw.bus import PortDevice
from repro.hw.machine import Machine, MachineConfig
from repro.perf.costmodel import DEFAULT_COST_MODEL
from repro.perf.stacks import make_stack
from repro.vmm.intercept import LVMM_INTERCEPTED_PORTS

NEW_DEVICE_BASE = 0x6000


class _Scratch(PortDevice):
    def __init__(self):
        self.value = 0

    def port_read(self, offset, size):
        return self.value

    def port_write(self, offset, value, size):
        self.value = value


def _machine_with_new_device(stack_name):
    machine = Machine(MachineConfig())
    machine.bus.register_ports(NEW_DEVICE_BASE, 8, _Scratch(), "newdev")
    machine.program_pic_defaults()
    stack = make_stack(stack_name, machine)
    return machine, stack


class TestInterceptionFootprint:
    def test_footprint_is_constant(self, benchmark):
        """Adding a device does not grow the monitor's claim set."""
        def footprint():
            machine, _ = _machine_with_new_device("lvmm")
            claimed = [port for port in range(0x10000)
                       if machine.bus.intercept.intercepts_port(port)]
            return claimed

        claimed = benchmark.pedantic(footprint, rounds=1, iterations=1)
        assert set(claimed) == LVMM_INTERCEPTED_PORTS
        assert len(claimed) <= 16
        assert NEW_DEVICE_BASE not in claimed

    def test_fullvmm_claims_everything(self, benchmark):
        machine, _ = _machine_with_new_device("fullvmm")
        claims = benchmark.pedantic(
            machine.bus.intercept.intercepts_port,
            args=(NEW_DEVICE_BASE,), rounds=1, iterations=1)
        assert claims


class TestPassthroughAccessCost:
    def _access_cycles(self, stack_name):
        machine, _ = _machine_with_new_device(stack_name)
        before = machine.budget.total
        machine.bus.port_write(NEW_DEVICE_BASE, 0x42, 4)
        return machine.budget.total - before

    def test_lvmm_same_as_bare(self, benchmark):
        cycles = benchmark.pedantic(self._access_cycles, args=("lvmm",),
                                    rounds=1, iterations=1)
        assert cycles == self._access_cycles("bare")
        assert cycles == DEFAULT_COST_MODEL.device_access_cycles

    def test_fullvmm_pays_hosted_round_trip(self, benchmark):
        cycles = benchmark.pedantic(self._access_cycles,
                                    args=("fullvmm",),
                                    rounds=1, iterations=1)
        assert cycles >= DEFAULT_COST_MODEL.host_switch_cycles

    def test_wallclock_access_lvmm(self, benchmark):
        """Wall-clock time of the passthrough access path."""
        machine, _ = _machine_with_new_device("lvmm")
        benchmark(machine.bus.port_write, NEW_DEVICE_BASE, 1, 4)

    def test_wallclock_access_fullvmm(self, benchmark):
        machine, _ = _machine_with_new_device("fullvmm")
        benchmark(machine.bus.port_write, NEW_DEVICE_BASE, 1, 4)
