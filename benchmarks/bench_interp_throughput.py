"""Interpreter throughput across the three execution tiers.

Two guest workloads — the tight ALU+branch loop from PR 1 and a
streaming loop (loads + stores walking a buffer, the shape of a memcpy
or checksum kernel) — are each run on a bare CPU at every tier:

* ``interp``      — full fetch/decode every step (both caches off),
* ``decode``      — the decoded-instruction cache (PR 1 fast path),
* ``superblock``  — hot traces compiled to Python callables (PR 6).

The instructions/second table is the deliverable, with two enforced
budgets: the decode cache must stay >= 2x over the raw interpreter on
the tight loop (the PR 1 bar), and superblock translation must be
>= 2x over the decode cache on the streaming workload (the PR 6 bar).
The run emits ``BENCH_interp.json`` so future PRs have a perf
trajectory to compare against.
"""

import json
import time
from pathlib import Path

import pytest

from repro.asm import assemble
from repro.hw import Cpu, IoBus, PhysicalMemory
from repro.hw import firmware
from repro.obs.metrics import collect_interp

ARTIFACT = Path("BENCH_interp.json")

LOOP_ITERATIONS = 60_000
TIGHT_LOOP = f"""
    MOVI R0, {LOOP_ITERATIONS}
loop:
    ADDI R1, 3
    XORI R2, 0x55
    SUBI R0, 1
    JNZ  loop
    HLT
"""
TIGHT_INSNS = LOOP_ITERATIONS * 4 + 2

# Streaming workload: read-modify-write marching through a 16 KiB
# buffer at 0x8000 (wrapped with ANDI), accumulating a checksum — the
# ISSUE 6 acceptance workload.  9 instructions per iteration, 4 of
# them memory operations.
STREAM_ITERATIONS = 40_000
STREAMING_LOOP = f"""
    MOVI R0, {STREAM_ITERATIONS}
    MOVI R2, 0x8000
loop:
    LD   R1, [R2+0]
    ADDI R1, 0x9E3779B9
    ST   [R2+0], R1
    ADD  R3, R1
    ADDI R2, 4
    ANDI R2, 0xBFFC
    ORI  R2, 0x8000
    SUBI R0, 1
    JNZ  loop
    HLT
"""
STREAM_INSNS = STREAM_ITERATIONS * 9 + 3

TIERS = ("interp", "decode", "superblock")
WORKLOADS = {
    "tight": (TIGHT_LOOP, TIGHT_INSNS),
    "streaming": (STREAMING_LOOP, STREAM_INSNS),
}

# Verify-on-compile overhead (PR 7): the translation validator proves
# each superblock before it is installed — a one-time per-block cost,
# so it is measured on a longer streaming run where compilation
# amortises the way it does in a real guest, with min-of-N timing to
# shed scheduler noise.  Budget: within 1.10x of the PR 6 baseline
# (same run, validation off).
VERIFY_ITERATIONS = 80_000
VERIFY_LOOP = STREAMING_LOOP.replace(str(STREAM_ITERATIONS),
                                     str(VERIFY_ITERATIONS), 1)
VERIFY_INSNS = VERIFY_ITERATIONS * 9 + 3
VERIFY_ROUNDS = 3
VERIFY_BUDGET = 1.10


def run_workload(source, budget, tier, verify=None):
    memory = PhysicalMemory(1 << 20)
    cpu = Cpu(memory, IoBus(),
              decode_cache=tier != "interp",
              translate=tier == "superblock",
              verify_translations=verify)
    firmware.install_flat_firmware(cpu)
    program = assemble(source, origin=0x4000)
    program.load_into(memory)
    cpu.pc = 0x4000
    start = time.perf_counter()
    executed = cpu.run(budget + 16)
    elapsed = time.perf_counter() - start
    assert cpu.halted, "benchmark guest must run to completion"
    assert executed == budget, (tier, executed, budget)
    return cpu, executed, elapsed


@pytest.fixture(scope="module")
def throughput():
    results = {}
    for name, (source, budget) in WORKLOADS.items():
        rows = {}
        for tier in TIERS:
            cpu, executed, elapsed = run_workload(source, budget, tier)
            rows[tier] = {
                "instructions": executed,
                "seconds": round(elapsed, 6),
                "insns_per_sec": round(executed / elapsed, 1),
                "interp": collect_interp(cpu),
            }
        rows["speedups"] = {
            "decode_over_interp": round(
                rows["decode"]["insns_per_sec"]
                / rows["interp"]["insns_per_sec"], 3),
            "superblock_over_decode": round(
                rows["superblock"]["insns_per_sec"]
                / rows["decode"]["insns_per_sec"], 3),
            "superblock_over_interp": round(
                rows["superblock"]["insns_per_sec"]
                / rows["interp"]["insns_per_sec"], 3),
        }
        results[name] = rows
    ARTIFACT.write_text(json.dumps(
        {"experiment": "interp-throughput", "results": results}, indent=2))
    return results


@pytest.fixture(scope="module")
def verify_overhead(throughput):
    """Verify-on-compile vs the PR 6 baseline on the long streaming
    run.  min-of-N on both sides; the one-off symbolic proof per block
    must disappear into the run."""
    timings = {False: [], True: []}
    validated = rejected = 0
    for _ in range(VERIFY_ROUNDS):
        for verify in (False, True):
            cpu, _, elapsed = run_workload(
                VERIFY_LOOP, VERIFY_INSNS, "superblock", verify=verify)
            timings[verify].append(elapsed)
            if verify:
                stats = cpu._sb_engine.tv_stats()
                assert stats["enabled"]
                validated += stats["validated"]
                rejected += stats["rejected"]
    baseline = min(timings[False])
    verified = min(timings[True])
    section = {
        "workload": "streaming",
        "iterations": VERIFY_ITERATIONS,
        "rounds": VERIFY_ROUNDS,
        "baseline_seconds": round(baseline, 6),
        "verified_seconds": round(verified, 6),
        "overhead_ratio": round(verified / baseline, 3),
        "budget_ratio": VERIFY_BUDGET,
        "blocks_validated": validated,
        "blocks_rejected": rejected,
    }
    document = json.loads(ARTIFACT.read_text())
    document["verify_overhead"] = section
    ARTIFACT.write_text(json.dumps(document, indent=2))
    return section


class TestInterpThroughput:
    def test_throughput_table(self, throughput, benchmark, capsys):
        def render():
            lines = ["Interpreter throughput by tier"]
            for name in WORKLOADS:
                rows = throughput[name]
                lines.append(f"[{name}]")
                for tier in TIERS:
                    row = rows[tier]
                    lines.append(
                        f"  {tier:10s} {row['insns_per_sec']:>12,.0f} "
                        f"insns/s ({row['instructions']} insns)")
                speedups = rows["speedups"]
                lines.append(
                    f"  decode/interp {speedups['decode_over_interp']:.2f}x"
                    f"  superblock/decode "
                    f"{speedups['superblock_over_decode']:.2f}x"
                    f"  superblock/interp "
                    f"{speedups['superblock_over_interp']:.2f}x")
            return "\n".join(lines)

        text = benchmark.pedantic(render, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_cache_doubles_throughput(self, throughput, benchmark):
        """The PR 1 bar: >= 2x instructions/sec with the decode cache."""
        def check():
            speedup = throughput["tight"]["speedups"]["decode_over_interp"]
            assert speedup >= 2.0, speedup
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_superblocks_double_streaming_throughput(self, throughput,
                                                     benchmark):
        """The PR 6 bar: >= 2x over the decode-cache fast path on the
        streaming (load/store-heavy) workload."""
        def check():
            speedup = throughput["streaming"]["speedups"][
                "superblock_over_decode"]
            assert speedup >= 2.0, speedup
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_superblocks_beat_decode_cache_everywhere(self, throughput,
                                                      benchmark):
        """CI smoke: translation must win on every workload, not just
        the headline one."""
        def check():
            for name in WORKLOADS:
                speedup = throughput[name]["speedups"][
                    "superblock_over_decode"]
                assert speedup > 1.0, (name, speedup)
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_hot_loop_hit_rate_near_unity(self, throughput, benchmark):
        def check():
            decode = throughput["tight"]["decode"]["interp"]["decode_cache"]
            assert decode["hit_rate"] > 0.999
            assert decode["entries"] <= 8
            blocks = throughput["tight"]["superblock"]["interp"][
                "block_cache"]
            assert blocks["hit_rate"] > 0.99
            assert blocks["guard_failures"] == 0
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_artifact_round_trips(self, throughput, benchmark):
        def check():
            document = json.loads(ARTIFACT.read_text())
            assert document["experiment"] == "interp-throughput"
            assert document["results"]["streaming"]["speedups"] \
                == throughput["streaming"]["speedups"]
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)


class TestVerifyOverhead:
    """The PR 7 bar: verify-on-compile must stay within 1.10x of the
    PR 6 superblock startup on the streaming workload."""

    def test_verify_overhead_within_budget(self, verify_overhead,
                                           benchmark):
        def check():
            ratio = verify_overhead["overhead_ratio"]
            assert ratio <= VERIFY_BUDGET, verify_overhead
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_validation_actually_engaged(self, verify_overhead,
                                         benchmark):
        """Guard against the budget passing vacuously: every verified
        round must have proved at least one block, and none may have
        been rejected (a rejection means interpreter fallback, which
        would make the timing meaningless)."""
        def check():
            assert verify_overhead["blocks_validated"] >= VERIFY_ROUNDS
            assert verify_overhead["blocks_rejected"] == 0
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_verify_section_in_artifact(self, verify_overhead,
                                        benchmark):
        def check():
            document = json.loads(ARTIFACT.read_text())
            assert document["verify_overhead"] == verify_overhead
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)
