"""Interpreter throughput: decoded-instruction cache on vs. off.

A tight guest loop (ALU + conditional branch, the shape of every hot
kernel path) is run twice on a bare CPU — once with the decode cache
enabled, once with the ablation flag clearing it — and the
instructions/second ratio is the deliverable.  The run also emits a
``BENCH_interp.json`` artifact so future PRs have a perf trajectory to
compare against.
"""

import json
import time
from pathlib import Path

import pytest

from repro.asm import assemble
from repro.hw import Cpu, IoBus, PhysicalMemory
from repro.hw import firmware
from repro.perf.export import interp_stats

ARTIFACT = Path("BENCH_interp.json")

LOOP_ITERATIONS = 60_000
TIGHT_LOOP = f"""
    MOVI R0, {LOOP_ITERATIONS}
loop:
    ADDI R1, 3
    XORI R2, 0x55
    SUBI R0, 1
    JNZ  loop
    HLT
"""


def run_tight_loop(decode_cache):
    memory = PhysicalMemory(1 << 20)
    cpu = Cpu(memory, IoBus(), decode_cache=decode_cache)
    firmware.install_flat_firmware(cpu)
    program = assemble(TIGHT_LOOP, origin=0x4000)
    program.load_into(memory)
    cpu.pc = 0x4000
    start = time.perf_counter()
    executed = cpu.run(LOOP_ITERATIONS * 4 + 16)
    elapsed = time.perf_counter() - start
    assert cpu.halted, "benchmark guest must run to completion"
    return cpu, executed, elapsed


@pytest.fixture(scope="module")
def throughput():
    results = {}
    for enabled in (True, False):
        cpu, executed, elapsed = run_tight_loop(enabled)
        results["cache_on" if enabled else "cache_off"] = {
            "instructions": executed,
            "seconds": round(elapsed, 6),
            "insns_per_sec": round(executed / elapsed, 1),
            "interp": interp_stats(cpu),
        }
    results["speedup"] = round(
        results["cache_on"]["insns_per_sec"]
        / results["cache_off"]["insns_per_sec"], 3)
    ARTIFACT.write_text(json.dumps(
        {"experiment": "interp-throughput", "results": results}, indent=2))
    return results


class TestInterpThroughput:
    def test_throughput_table(self, throughput, benchmark, capsys):
        def render():
            lines = ["Interpreter throughput (tight ALU+branch loop)"]
            for key in ("cache_on", "cache_off"):
                row = throughput[key]
                decode = row["interp"]["decode_cache"]
                lines.append(
                    f"{key:10s} {row['insns_per_sec']:>12,.0f} insns/s "
                    f"({row['instructions']} insns, "
                    f"hit-rate {decode['hit_rate']:.4f})")
            lines.append(f"speedup    {throughput['speedup']:.2f}x")
            return "\n".join(lines)

        text = benchmark.pedantic(render, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_cache_doubles_throughput(self, throughput, benchmark):
        """The acceptance bar: >= 2x instructions/sec with the cache."""
        def check():
            assert throughput["speedup"] >= 2.0, throughput["speedup"]
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_hot_loop_hit_rate_near_unity(self, throughput, benchmark):
        def check():
            decode = throughput["cache_on"]["interp"]["decode_cache"]
            assert decode["hit_rate"] > 0.999
            assert decode["entries"] <= 8
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_artifact_round_trips(self, throughput, benchmark):
        def check():
            document = json.loads(ARTIFACT.read_text())
            assert document["experiment"] == "interp-throughput"
            assert document["results"]["speedup"] == throughput["speedup"]
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)
