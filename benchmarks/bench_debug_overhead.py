"""E7 — monitoring cost: debugging while the I/O runs.

The paper's abstract asks for "efficient debugging mechanisms
monitoring the OS status tracing even while the OS is executing
high-throughput I/O operations".  This bench quantifies it: the
streaming workload runs at 150 Mbps under the LVMM while a host
debugger polls guest state N times per second through the monitor's
stub.  The claim holds if realistic polling (tens of Hz, a human
watching variables) costs almost nothing, and even aggressive tracing
(1 kHz) stays in single-digit percent.
"""

import pytest

from repro.perf.load import measure_load

RATE = 150e6
POLL_RATES = (0.0, 10.0, 100.0, 1000.0)


@pytest.fixture(scope="module")
def sweep_results():
    return {hz: measure_load("lvmm", RATE, 0.4, debug_poll_hz=hz)
            for hz in POLL_RATES}


class TestDebugTrafficOverhead:
    def test_sweep_table(self, sweep_results, benchmark, capsys):
        def render():
            baseline = sweep_results[0.0].demanded_load
            lines = [f"E7: LVMM at {RATE / 1e6:.0f} Mbps with an "
                     "attached, polling debugger",
                     f"{'polls/sec':>10} {'load %':>8} {'overhead pp':>12}"]
            for hz, sample in sweep_results.items():
                delta = (sample.demanded_load - baseline) * 100
                lines.append(f"{hz:>10.0f} "
                             f"{sample.demanded_load * 100:>8.2f} "
                             f"{delta:>12.3f}")
            return "\n".join(lines)

        text = benchmark.pedantic(render, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_human_rate_polling_is_free(self, sweep_results, benchmark):
        """10 Hz (a person watching variables): < 0.1 percentage point."""
        def overhead():
            return (sweep_results[10.0].demanded_load
                    - sweep_results[0.0].demanded_load)

        value = benchmark.pedantic(overhead, rounds=1, iterations=1)
        assert value < 0.001

    def test_aggressive_tracing_stays_cheap(self, sweep_results,
                                            benchmark):
        """1 kHz status tracing: under 2.5 percentage points of CPU."""
        def overhead():
            return (sweep_results[1000.0].demanded_load
                    - sweep_results[0.0].demanded_load)

        value = benchmark.pedantic(overhead, rounds=1, iterations=1)
        assert value < 0.025

    def test_overhead_scales_linearly(self, sweep_results, benchmark):
        def ratios():
            base = sweep_results[0.0].demanded_load
            d100 = sweep_results[100.0].demanded_load - base
            d1000 = sweep_results[1000.0].demanded_load - base
            return d100, d1000

        d100, d1000 = benchmark.pedantic(ratios, rounds=1, iterations=1)
        assert d1000 == pytest.approx(10 * d100, rel=0.25)

    def test_workload_unaffected(self, sweep_results, benchmark):
        """Polling must not perturb the transfer itself."""
        def check():
            base = sweep_results[0.0]
            traced = sweep_results[1000.0]
            assert traced.segments_sent == base.segments_sent
            assert traced.achieved_rate_bps == pytest.approx(
                base.achieved_rate_bps, rel=0.01)
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)
