"""Flight-recorder overhead.

Two measurements, because the recorder has two cost classes:

* **hot path** — the per-event taps (counters plus one sha256 update
  per target-to-host byte).  Measured over a long run with periodic
  checkpoints disabled; the acceptance bar is < 1.5x, which is what
  justifies recording by default in the chaos campaign.
* **digests** — whole-machine sha256 state digests at checkpoint
  cadence and at finish.  Each one hashes all of guest memory (~tens of
  ms), so short scenarios see a large *relative* end-to-end cost that
  amortizes on real runs.  Reported, with a loose regression guard.

Emits ``BENCH_replay.json``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.asm import assemble
from repro.core import DebugSession
from repro.faults.campaign import run_scenario
from repro.hw import firmware
from repro.replay import (FlightRecorder, load_journal, minimize_journal,
                          replay_journal, state_digest)

ARTIFACT = Path("BENCH_replay.json")

SEED = 1234
SLICES = 60
SLICE_INSNS = 2_000


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _run_slices(record):
    sess = DebugSession(monitor="lvmm")
    program = assemble(f".org {firmware.GUEST_KERNEL_BASE}\n"
                       "loop:\n    ADDI R1, 3\n    XORI R2, 0x55\n"
                       "    JMP loop\n")
    recorder = None
    if record:
        # checkpoint_every=0: hot path only, no periodic digests.
        recorder = FlightRecorder(sess.machine, sess.monitor,
                                  program=program, scenario="bench",
                                  seed=SEED, checkpoint_every=0)
    sess.load_and_boot(program)
    sess.attach()

    def run():
        for _ in range(SLICES):
            sess.run_guest(SLICE_INSNS)
        return sess

    _, elapsed = _timed(run)
    return recorder, elapsed


@pytest.fixture(scope="module")
def overhead(tmp_path_factory):
    _, bare_s = _run_slices(record=False)
    recorder, hot_s = _run_slices(record=True)

    journal_dir = tmp_path_factory.mktemp("bench_journals")
    _, scen_bare_s = _timed(lambda: run_scenario("wild-writes", SEED,
                                                 record=False))
    recorded, scen_rec_s = _timed(lambda: run_scenario(
        "wild-writes", SEED, strict_guest=True,
        journal_dir=str(journal_dir)))
    journal = load_journal(recorded["journal"])
    replay, rep_s = _timed(lambda: replay_journal(journal, strict=True))
    minimized, min_s = _timed(lambda: minimize_journal(journal))

    sess = DebugSession(monitor="lvmm")
    _, digest_s = _timed(lambda: state_digest(sess.machine,
                                              sess.monitor))

    results = {
        "hot_path": {
            "slices": SLICES,
            "slice_insns": SLICE_INSNS,
            "unrecorded_seconds": round(bare_s, 4),
            "recorded_seconds": round(hot_s, 4),
            "overhead": round(hot_s / bare_s, 3),
            "recorder": recorder.stats(),
        },
        "scenario": {
            "name": "wild-writes",
            "seed": SEED,
            "unrecorded_seconds": round(scen_bare_s, 4),
            "recorded_seconds": round(scen_rec_s, 4),
            "overhead": round(scen_rec_s / scen_bare_s, 3),
            "state_digest_seconds": round(digest_s, 4),
            "recorder": recorded["fault_stats"]["recorder"],
        },
        "replay_seconds": round(rep_s, 4),
        "replay_ok": replay.ok,
        "replay": replay.stats(),
        "minimize_seconds": round(min_s, 4),
        "minimize": minimized.stats(),
    }
    ARTIFACT.write_text(json.dumps(
        {"experiment": "replay-overhead", "results": results}, indent=2))
    return results


class TestReplayOverhead:
    def test_overhead_table(self, overhead, benchmark, capsys):
        def render():
            hot, scen = overhead["hot_path"], overhead["scenario"]
            lines = ["Flight-recorder overhead"]
            lines.append(
                f"hot path   {hot['unrecorded_seconds']:>8.3f}s -> "
                f"{hot['recorded_seconds']:>7.3f}s "
                f"({hot['overhead']:.2f}x, "
                f"{hot['recorder']['frames']} frames)")
            lines.append(
                f"scenario   {scen['unrecorded_seconds']:>8.3f}s -> "
                f"{scen['recorded_seconds']:>7.3f}s "
                f"({scen['overhead']:.2f}x incl. "
                f"{scen['recorder']['checkpoints'] + 1} digests @ "
                f"{scen['state_digest_seconds'] * 1000:.0f}ms)")
            lines.append(
                f"replay     {overhead['replay_seconds']:>8.3f}s "
                f"(ok={overhead['replay_ok']})")
            lines.append(
                f"minimize   {overhead['minimize_seconds']:>8.3f}s "
                f"({overhead['minimize']['original_core_frames']} -> "
                f"{overhead['minimize']['minimized_core_frames']}"
                f" core frames)")
            return "\n".join(lines)

        text = benchmark.pedantic(render, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_hot_path_cheap_enough_for_default_on(self, overhead,
                                                  benchmark):
        def check():
            assert overhead["hot_path"]["overhead"] < 1.5, \
                overhead["hot_path"]["overhead"]
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_scenario_overhead_regression_guard(self, overhead,
                                                benchmark):
        def check():
            # Loose: digest costs dominate a 25 ms scenario.  Catches
            # an accidentally quadratic recorder, not digest cost.
            assert overhead["scenario"]["overhead"] < 10.0, \
                overhead["scenario"]["overhead"]
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_replay_verified_and_minimizer_shrank(self, overhead,
                                                  benchmark):
        def check():
            assert overhead["replay_ok"]
            assert overhead["replay"]["checks"] == {"guest-dead": True}
            assert overhead["minimize"]["reduced"]
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_artifact_round_trips(self, overhead, benchmark):
        def check():
            document = json.loads(ARTIFACT.read_text())
            assert document["experiment"] == "replay-overhead"
            assert document["results"]["replay_ok"] \
                == overhead["replay_ok"]
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)
