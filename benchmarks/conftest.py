"""Shared fixtures for the benchmark harness.

Heavy sweeps run once per session and are shared between the benchmark
that times them and the assertions that check the paper's shape.
"""

import pytest

from repro.perf.sweep import headline_ratios, sweep_figure_3_1
from repro.testing.timeout import pytest_runtest_call  # noqa: F401

#: A reduced x-axis that keeps the full-figure benchmark under a minute
#: while covering the paper's 0-700 Mbps range.
FIGURE_RATES = (50, 100, 150, 200, 300, 400, 500, 600, 700)


@pytest.fixture(scope="session")
def figure_3_1():
    return sweep_figure_3_1(rates_mbps=FIGURE_RATES, sim_seconds=0.25)


@pytest.fixture(scope="session")
def ratios():
    return headline_ratios(sim_seconds=0.25)
