"""A4 — NIC interrupt-coalescing ablation.

Per-frame completion interrupts are the LVMM's single biggest cost
(every one takes a world switch plus PIC emulation plus reflection).
Coalescing N completions per interrupt divides that cost by ~N — a
mitigation the paper-era monitor could have adopted, which this bench
quantifies as the 'future work' exploration DESIGN.md calls out.
"""

import pytest

from repro.perf.costmodel import DEFAULT_COST_MODEL
from repro.workloads import run_data_transfer

COALESCE = (1, 2, 4, 8, 16)
RATE = 150e6


@pytest.fixture(scope="module")
def sweep_results():
    out = {}
    for factor in COALESCE:
        cost = DEFAULT_COST_MODEL.with_overrides(nic_coalesce=factor)
        out[factor] = run_data_transfer("lvmm", RATE, cost=cost)
    return out


class TestCoalescingAblation:
    def test_sweep_table(self, sweep_results, benchmark, capsys):
        def render():
            lines = [f"A4: LVMM at {RATE / 1e6:.0f} Mbps vs NIC "
                     "interrupt coalescing",
                     f"{'frames/irq':>11} {'load %':>8} {'interrupts':>11}"]
            for factor, sample in sweep_results.items():
                lines.append(f"{factor:>11} "
                             f"{sample.demanded_load * 100:>8.1f} "
                             f"{sample.interrupts:>11}")
            return "\n".join(lines)

        text = benchmark.pedantic(render, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_coalescing_cuts_load(self, sweep_results, benchmark):
        def check():
            loads = [sweep_results[f].demanded_load for f in COALESCE]
            assert loads == sorted(loads, reverse=True)
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_interrupt_counts_scale_inversely(self, sweep_results,
                                              benchmark):
        def check():
            per_frame = sweep_results[1].interrupts
            coalesced = sweep_results[8].interrupts
            assert coalesced < per_frame / 4
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_coalescing_rescues_the_lvmm(self, sweep_results, benchmark):
        """At 150 Mbps the per-frame LVMM is near its knee; coalescing
        by 8 pulls it far below saturation."""
        sample = benchmark.pedantic(lambda: sweep_results[8],
                                    rounds=1, iterations=1)
        assert sample.demanded_load \
            < 0.7 * sweep_results[1].demanded_load
