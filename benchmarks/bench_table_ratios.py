"""E2/E3 — the paper's headline numbers.

Section 3/4 of the paper states two ratios: the LVMM transfers data
"about 5.4 times as fast as" VMware Workstation 4, and at "about one
fourth (26%)" of real hardware.  This bench derives all three maximum
sustainable rates from the rate sweep and prints the paper-vs-measured
table recorded in EXPERIMENTS.md.
"""

import pytest

from repro.perf.analytic import predict_max_rate
from repro.perf.sweep import max_rate

PAPER_RATIO_VS_FULLVMM = 5.4
PAPER_FRACTION_OF_BARE = 0.26
TOLERANCE = 0.15


class TestHeadlineRatios:
    def test_table(self, ratios, benchmark, capsys):
        def render():
            rows = [
                ("max rate, real hardware",
                 "~700 Mbps (x-axis edge)",
                 f"{ratios.bare_max_bps / 1e6:.0f} Mbps"),
                ("max rate, lightweight VMM",
                 "~182 Mbps (26% of real)",
                 f"{ratios.lvmm_max_bps / 1e6:.0f} Mbps"),
                ("max rate, VMware WS4 model",
                 "~34 Mbps (182 / 5.4)",
                 f"{ratios.fullvmm_max_bps / 1e6:.1f} Mbps"),
                ("LVMM vs full VMM", "5.4x",
                 f"{ratios.lvmm_vs_fullvmm:.2f}x"),
                ("LVMM vs real hardware", "26%",
                 f"{ratios.lvmm_vs_bare * 100:.1f}%"),
            ]
            width = max(len(r[0]) for r in rows)
            lines = [f"{'metric':<{width}}  {'paper':<24} measured"]
            lines += [f"{name:<{width}}  {paper:<24} {measured}"
                      for name, paper, measured in rows]
            return "\n".join(lines)

        text = benchmark.pedantic(render, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_e2_ratio_5_4(self, ratios, benchmark):
        value = benchmark.pedantic(lambda: ratios.lvmm_vs_fullvmm,
                                   rounds=1, iterations=1)
        assert value == pytest.approx(PAPER_RATIO_VS_FULLVMM,
                                      rel=TOLERANCE)

    def test_e3_fraction_26_percent(self, ratios, benchmark):
        value = benchmark.pedantic(lambda: ratios.lvmm_vs_bare,
                                   rounds=1, iterations=1)
        assert value == pytest.approx(PAPER_FRACTION_OF_BARE,
                                      rel=TOLERANCE)

    def test_max_rate_measurement_cost(self, benchmark):
        """Time one max-rate fit (two windowed DES runs)."""
        value = benchmark.pedantic(
            max_rate, args=("lvmm",), kwargs={"sim_seconds": 0.2},
            rounds=1, iterations=1)
        assert value == pytest.approx(182e6, rel=TOLERANCE)

    def test_analytic_agrees(self, ratios, benchmark):
        """The closed-form model reproduces the same three maxima."""
        def check():
            for stack, measured in (("bare", ratios.bare_max_bps),
                                    ("lvmm", ratios.lvmm_max_bps),
                                    ("fullvmm", ratios.fullvmm_max_bps)):
                assert predict_max_rate(stack) == pytest.approx(
                    measured, rel=0.08)
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)
