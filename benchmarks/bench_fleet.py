"""Fleet scaling: aggregate debugging throughput vs worker count.

Two series, because a fleet hosts two kinds of load:

* **sessions** — the fleet's design load: interactive debugging
  campaigns that alternate short simulated bursts with client think
  time (``think_ms``).  Think time releases the GIL and overlaps
  across worker processes, so aggregate machines x slices/sec scales
  with worker count even on a small host — this is the series the
  acceptance gate reads (>= 3x aggregate at 4 workers vs 1).
* **batch** — pure CPU-bound simulation with zero think time.  On an
  N-core host this tops out near N x; reported for transparency, not
  gated, because CI hosts pin it to their core count.

``REPRO_FLEET_BENCH_SIZES`` overrides the swept worker counts (e.g.
``1,2`` for a CI smoke).  Emits ``BENCH_fleet.json``.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.fleet.jobs import Job
from repro.fleet.supervisor import Fleet, FleetConfig

ARTIFACT = Path("BENCH_fleet.json")

SIZES = tuple(int(part) for part in os.environ.get(
    "REPRO_FLEET_BENCH_SIZES", "1,2,4,8").split(","))

#: Per-campaign workload.  ``sessions`` paces each slice with think
#: time; ``batch`` runs flat out.
SESSIONS = {"slices": 6, "slice_insns": 300, "think_ms": 250,
            "record": False}
BATCH = {"slices": 6, "slice_insns": 2_000, "think_ms": 0,
         "record": False}


def _run_campaigns(workers, params):
    """One fleet of ``workers``, one campaign per worker; returns the
    wall-clock of the campaign phase (spawn time excluded)."""
    fleet = Fleet(FleetConfig(workers=workers,
                              heartbeat_interval=0.2,
                              hang_timeout=60.0)).start()
    try:
        assert fleet.wait_ready(timeout=120.0), "fleet not ready"
        start = time.perf_counter()
        records = [
            fleet.submit(Job(kind="exec-slices", params=dict(params),
                             priority=9, timeout_s=300.0))
            for _ in range(workers)]
        # A coarse supervisor poll keeps the (single-core) host's CPU
        # for the workers instead of burning it on idle bookkeeping.
        assert fleet.run_until_idle(timeout=300.0,
                                    poll_interval=0.02), \
            "campaigns hung"
        elapsed = time.perf_counter() - start
        assert all(record.status == "done" for record in records), \
            [record.error for record in records]
        return elapsed
    finally:
        fleet.shutdown()


def _sweep(params):
    series = []
    for workers in SIZES:
        elapsed = _run_campaigns(workers, params)
        slices_total = workers * params["slices"]
        series.append({
            "workers": workers,
            "wall_seconds": round(elapsed, 4),
            "campaigns": workers,
            "slices_total": slices_total,
            "machine_slices_per_sec": round(slices_total / elapsed, 2),
            "machine_insns_per_sec": round(
                slices_total * params["slice_insns"] / elapsed, 1),
        })
    base = series[0]["machine_slices_per_sec"]
    for point in series:
        point["speedup_vs_1"] = round(
            point["machine_slices_per_sec"] / base, 3)
    return series


@pytest.fixture(scope="module")
def scaling():
    results = {
        "host_cpus": os.cpu_count(),
        "sizes": list(SIZES),
        "sessions": {"params": SESSIONS, "series": _sweep(SESSIONS)},
        "batch": {"params": BATCH, "series": _sweep(BATCH)},
    }
    ARTIFACT.write_text(json.dumps(
        {"experiment": "fleet-scaling", "results": results}, indent=2))
    return results


def _point(results, series, workers):
    for point in results[series]["series"]:
        if point["workers"] == workers:
            return point
    return None


class TestFleetScaling:
    def test_scaling_table(self, scaling, benchmark, capsys):
        def render():
            lines = [f"Fleet scaling ({scaling['host_cpus']} host "
                     f"cpu(s))"]
            for name in ("sessions", "batch"):
                for point in scaling[name]["series"]:
                    lines.append(
                        f"{name:<9} {point['workers']}w  "
                        f"{point['wall_seconds']:>7.3f}s  "
                        f"{point['machine_insns_per_sec']:>12,.0f} "
                        f"machine-insns/s  "
                        f"({point['speedup_vs_1']:.2f}x)")
            return "\n".join(lines)

        text = benchmark.pedantic(render, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_sessions_scale_with_workers(self, scaling, benchmark):
        """The acceptance gate: interactive-session throughput at 4
        workers is >= 3x a single worker's."""
        def check():
            point = _point(scaling, "sessions", 4)
            if point is None:
                pytest.skip("4-worker size not in this sweep")
            assert point["speedup_vs_1"] >= 3.0, point
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_two_workers_beat_one(self, scaling, benchmark):
        def check():
            point = _point(scaling, "sessions", 2)
            if point is None:
                pytest.skip("2-worker size not in this sweep")
            assert point["speedup_vs_1"] >= 1.5, point
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_artifact_round_trips(self, scaling, benchmark):
        def check():
            document = json.loads(ARTIFACT.read_text())
            assert document["experiment"] == "fleet-scaling"
            assert document["results"]["sizes"] == list(SIZES)
            assert len(document["results"]["sessions"]["series"]) \
                == len(SIZES)
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)
