"""A2 — UDP segment-size ablation.

The paper fixes 1024 KB segments.  Sweeping the segment size at a fixed
transfer rate shows the per-segment costs (application bookkeeping, the
doorbell trap, pacing) amortising away as segments grow: CPU cost per
achieved megabit falls monotonically from 128 KB to 2 MB.  The effect
is modest (~1% end to end) because per-frame and per-byte work
dominates — which is itself a finding: the paper's 1024 KB choice sits
comfortably on the flat part of the curve.
"""

import pytest

from repro.workloads import DataTransferConfig, run_data_transfer

SIZES = (128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024, 2 * 1024 * 1024)
RATE = 100e6


def _normalised_cost(sample) -> float:
    """Demanded load per achieved Mbps — the amortisation metric."""
    return sample.demanded_load / (sample.achieved_rate_bps / 1e6)


@pytest.fixture(scope="module")
def sweep_results():
    out = {}
    for size in SIZES:
        # Scale the window so every size ships >= 30 segments (end
        # effects otherwise dominate the big-segment points).
        window = max(0.25, 30 * size * 8 / RATE)
        config = DataTransferConfig(segment_size=size, sim_seconds=window)
        out[size] = run_data_transfer("lvmm", RATE, config)
    return out


class TestSegmentSizeAblation:
    def test_sweep_table(self, sweep_results, benchmark, capsys):
        def render():
            lines = [f"A2: LVMM at {RATE / 1e6:.0f} Mbps vs segment size",
                     f"{'segment KB':>11} {'load %':>8} {'segments':>9} "
                     f"{'load/Mbps x1e3':>15}"]
            for size, sample in sweep_results.items():
                lines.append(f"{size // 1024:>11} "
                             f"{sample.demanded_load * 100:>8.1f} "
                             f"{sample.segments_sent:>9} "
                             f"{_normalised_cost(sample) * 1000:>15.3f}")
            return "\n".join(lines)

        text = benchmark.pedantic(render, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_cost_per_mbps_falls_with_segment_size(self, sweep_results,
                                                   benchmark):
        def check():
            costs = [_normalised_cost(sweep_results[size])
                     for size in SIZES]
            assert costs == sorted(costs, reverse=True)
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_paper_size_is_sustainable(self, sweep_results, benchmark):
        sample = benchmark.pedantic(
            lambda: sweep_results[1024 * 1024], rounds=1, iterations=1)
        assert sample.sustainable

    def test_all_sizes_achieve_target(self, sweep_results, benchmark):
        def check():
            for sample in sweep_results.values():
                if sample.sustainable:
                    assert sample.achieved_rate_bps >= 0.8 * RATE
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_paper_size_on_the_flat_part(self, sweep_results, benchmark):
        """1024 KB is within 1% of the asymptotic (2 MB) efficiency."""
        def check():
            paper = _normalised_cost(sweep_results[1024 * 1024])
            best = _normalised_cost(sweep_results[2 * 1024 * 1024])
            assert paper <= best * 1.01
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)
