"""A3 — disk-count ablation.

The paper uses three Ultra160 disks.  One such drive sustains ~40 MB/s
(~320 Mbps); the sweep runs the workload on real hardware at 500 Mbps,
where a single disk visibly starves the sender and three disks (the
paper's choice) feed it with headroom.  A second check shows the disk
path costs the CPU almost nothing under the LVMM — DMA does the moving,
which is why SCSI passthrough is about correctness, not load.
"""

import pytest

from repro.workloads import DataTransferConfig, run_data_transfer
from repro.workloads.micro import disk_only

DISK_COUNTS = (1, 2, 3, 4, 6)
RATE = 500e6
SINGLE_DISK_LIMIT = 320e6  # 40 MB/s media rate


@pytest.fixture(scope="module")
def sweep_results():
    out = {}
    for disks in DISK_COUNTS:
        config = DataTransferConfig(disks=disks, sim_seconds=0.3)
        out[disks] = run_data_transfer("bare", RATE, config)
    return out


class TestDiskCountAblation:
    def test_sweep_table(self, sweep_results, benchmark, capsys):
        def render():
            lines = [f"A3: real hardware at {RATE / 1e6:.0f} Mbps vs "
                     "number of disks",
                     f"{'disks':>6} {'load %':>8} {'achieved Mbps':>14}"]
            for disks, sample in sweep_results.items():
                lines.append(f"{disks:>6} "
                             f"{sample.demanded_load * 100:>8.1f} "
                             f"{sample.achieved_mbps:>14.1f}")
            return "\n".join(lines)

        text = benchmark.pedantic(render, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(text)

    def test_single_disk_starves_the_sender(self, sweep_results,
                                            benchmark):
        sample = benchmark.pedantic(lambda: sweep_results[1],
                                    rounds=1, iterations=1)
        assert sample.achieved_rate_bps < 0.8 * RATE
        assert sample.achieved_rate_bps \
            < SINGLE_DISK_LIMIT * 1.15  # bounded by the media rate

    def test_three_disks_feed_500_mbps(self, sweep_results, benchmark):
        sample = benchmark.pedantic(lambda: sweep_results[3],
                                    rounds=1, iterations=1)
        assert sample.achieved_rate_bps >= 0.85 * RATE

    def test_throughput_non_decreasing_in_disks(self, sweep_results,
                                                benchmark):
        def check():
            achieved = [sweep_results[n].achieved_rate_bps
                        for n in DISK_COUNTS]
            for earlier, later in zip(achieved, achieved[1:]):
                assert later >= earlier * 0.98
            return True

        assert benchmark.pedantic(check, rounds=1, iterations=1)

    def test_disk_path_is_cheap_for_cpu(self, benchmark):
        """Disk-only streaming at full tilt barely loads the CPU under
        the LVMM (DMA + passthrough)."""
        result = benchmark.pedantic(disk_only, args=("lvmm", 0.2),
                                    rounds=1, iterations=1)
        assert result.demanded_load < 0.05
        assert result.bytes_moved > 10 * 1024 * 1024
