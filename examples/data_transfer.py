#!/usr/bin/env python3
"""The paper's evaluation workload (Section 3), end to end.

Reads 2 MB blocks from three Ultra160-class SCSI disks at a constant
rate, splits them into 1024 KB segments and transmits them over gigabit
Ethernet as UDP — on all three execution stacks — then reports the
CPU-load curve of Fig. 3.1 and the paper's two headline ratios.

Run with no arguments for a quick three-point comparison, or
``--full`` for the whole 50-700 Mbps sweep.
"""

import argparse

from repro.perf.sweep import (
    headline_ratios,
    render_figure,
    sweep_figure_3_1,
)
from repro.workloads import compare_stacks


def quick_comparison() -> None:
    rate = 100e6
    print(f"-- one vertical slice of Fig. 3.1 at {rate / 1e6:.0f} Mbps --")
    samples = compare_stacks(rate)
    for name, sample in samples.items():
        status = "ok" if sample.sustainable else "SATURATED"
        print(f"{name:8s}  CPU load {sample.load * 100:5.1f}%  "
              f"achieved {sample.achieved_mbps:6.1f} Mbps  "
              f"segments {sample.segments_sent:4d}  [{status}]")
        busiest = sorted(sample.breakdown.items(), key=lambda kv: -kv[1])
        top = ", ".join(f"{k}={v / 1e6:.0f}M" for k, v in busiest[:3])
        print(f"          cycle breakdown: {top}")


def full_figure() -> None:
    print("-- Fig. 3.1: CPU load vs transfer rate --")
    series = sweep_figure_3_1()
    print(render_figure(series))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="sweep the whole 50-700 Mbps x-axis")
    args = parser.parse_args()

    if args.full:
        full_figure()
    else:
        quick_comparison()

    print("\n-- headline ratios (paper Section 3) --")
    ratios = headline_ratios()
    print(f"max sustainable transfer rates:")
    print(f"  real hardware : {ratios.bare_max_bps / 1e6:6.1f} Mbps")
    print(f"  lightweight VMM: {ratios.lvmm_max_bps / 1e6:6.1f} Mbps")
    print(f"  full VMM model : {ratios.fullvmm_max_bps / 1e6:6.1f} Mbps")
    print(f"LVMM vs full VMM : {ratios.lvmm_vs_fullvmm:.2f}x  "
          f"(paper: 5.4x)")
    print(f"LVMM vs real HW  : {ratios.lvmm_vs_bare * 100:.0f}%   "
          f"(paper: 26%)")


if __name__ == "__main__":
    main()
