#!/usr/bin/env python3
"""TCP streaming under chaos — loss recovery as a service guarantee.

The UDP streaming example (streaming_server.py) asks "how many
streams fit?"; this one asks the harder operator question: **does
every admitted client get every byte, even on a lossy network?**

A deterministic TCP stack (three-way handshake, RTO with exponential
backoff, fast retransmit, AIMD congestion control, receive-window
flow control — `repro.net.tcp`) serves a mixed-rate subscriber
population over the seeded chaos wire.  Frames are dropped in both
directions, yet every completed session's received sha256 must equal
the sent sha256 — retransmission, not luck.
"""

from repro.faults.plan import FaultPlan, FaultRule
from repro.perf.netmodel import render_net_figure, sweep_net
from repro.workloads.streaming import mixed_rate_specs, run_tcp_streaming


def lossy_delivery() -> None:
    print("-- 64 mixed-rate subscribers, 1% frame loss each way --")
    plan = FaultPlan(1234, rules=[
        FaultRule("nic.tx", "drop", probability=0.01),
        FaultRule("nic.rx", "drop", probability=0.01),
    ])
    result = run_tcp_streaming(mixed_rate_specs(64, bytes_total=24_000),
                               plan=plan, sim_seconds=0.5,
                               grace_seconds=2.0)
    stats = result.server_stats
    print(f"sessions: {result.counts()}   "
          f"streams intact: {result.intact}")
    print(f"frames dropped on the wire: "
          f"{result.downlink['frames_dropped']} down / "
          f"{result.uplink['frames_dropped']} up")
    print(f"recovered by: {stats['retransmits']} retransmits "
          f"({stats['fast_retransmits']} fast, "
          f"{stats['rto_expirations']} RTO timeouts), "
          f"{stats['dupacks']} dup-ACKs observed")


def slow_consumers() -> None:
    print("\n-- every 4th subscriber drains at a quarter rate --")
    result = run_tcp_streaming(
        mixed_rate_specs(16, bytes_total=24_000, slow_every=4),
        sim_seconds=0.4, grace_seconds=3.0)
    stats = result.server_stats
    print(f"sessions: {result.counts()}   intact: {result.intact}")
    print(f"flow control engaged: {stats['zero_window_stalls']} "
          f"zero-window stalls, {stats['window_probes']} probes")


def degradation_ladder() -> None:
    print("\n-- 40 subscribers vs a 40 Mbps pipe: shed, don't starve --")
    result = run_tcp_streaming(
        mixed_rate_specs(40, bytes_total=60_000, base_rate_bps=6e6),
        sim_seconds=0.5, grace_seconds=1.0, capacity_bps=40e6)
    print(f"sessions: {result.counts()}   "
          f"final ladder level: {result.level}")
    for when_s, level in result.level_transitions[:4]:
        print(f"  t={when_s * 1e3:7.2f} ms: -> {level}")


def cost_curves() -> None:
    print("\n-- Fig. 3.1, TCP edition: CPU load vs aggregate rate --")
    curves = sweep_net(rates_mbps=(25, 50, 100, 200), subscribers=16,
                       sim_seconds=0.02)
    print(render_net_figure(curves))


def main() -> None:
    lossy_delivery()
    slow_consumers()
    degradation_ladder()
    cost_curves()


if __name__ == "__main__":
    main()
