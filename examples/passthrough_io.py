#!/usr/bin/env python3
"""Passthrough I/O at machine-code level (efficiency claim, close up).

The guest in this demo is ~150 instructions of assembly that set up the
machine, DMA 8 KB off a SCSI disk, and transmit the first KB over the
gigabit NIC — the inner loop of the paper's streaming workload.  It
runs twice:

* on **bare metal**, where its device programming obviously reaches the
  hardware directly;
* under the **lightweight VMM**, deprivileged to ring 1 — where it
  still reaches the SCSI HBA and the NIC directly (I/O permission
  bitmap + uninterposed MMIO).  The trap log shows exactly what the
  monitor *did* see: GDT/IDT loads, PIC programming, STI/HLT — and not
  one byte of the data path.
"""

from repro.baremetal import BareMetalRunner
from repro.guest.asmio import NIC_MMIO_HOLE, build_io_demo, read_flags
from repro.hw.machine import Machine, MachineConfig
from repro.vmm import LightweightVmm


def build_machine():
    machine = Machine(MachineConfig(nic_mmio_base=NIC_MMIO_HOLE))
    frames = []
    machine.nic.wire = frames.append
    return machine, frames


def main() -> None:
    program = build_io_demo(read_blocks=16, frame_len=1024)
    print(f"guest image: {len(program.image)} bytes at "
          f"{program.origin:#x}, symbols: "
          f"{', '.join(sorted(program.symbols)[:6])}, ...")

    print("\n== run 1: bare metal ==")
    machine, frames = build_machine()
    program.load_into(machine.memory)
    BareMetalRunner(machine).boot_guest(program.origin)
    machine.run(400_000, until=lambda: read_flags(machine.memory)[2] == 1)
    expected = machine.disks[0].read_blocks(0, 2)[:1024]
    print(f"flags (scsi, nic, done): {read_flags(machine.memory)}")
    print(f"frame on the wire matches disk bytes: "
          f"{frames[0] == expected}")

    print("\n== run 2: same image under the lightweight VMM ==")
    machine, frames = build_machine()
    program.load_into(machine.memory)
    monitor = LightweightVmm(machine)
    monitor.install()
    monitor.boot_guest(program.origin)
    monitor.run(600_000, until=lambda: read_flags(machine.memory)[2] == 1)
    expected = machine.disks[0].read_blocks(0, 2)[:1024]
    print(f"flags (scsi, nic, done): {read_flags(machine.memory)}")
    print(f"frame on the wire matches disk bytes: "
          f"{frames[0] == expected}")
    print(f"guest console: {bytes(monitor.console)!r}")
    print(f"what trapped: {monitor.stats.traps_by_mnemonic}")
    print(f"interrupts reflected into the guest: "
          f"{monitor.stats.interrupts_reflected}")
    print(f"SCSI/NIC data-path accesses intercepted: "
          f"{machine.bus.intercepted_accesses - monitor.intercept.pic_accesses}")
    print("\nthe data path never touched the monitor — that is the "
          "paper's efficiency argument in one run.")


if __name__ == "__main__":
    main()
