#!/usr/bin/env python3
"""Chaos demo: seeded fault injection with replayable schedules.

Three acts:

1. **A fault plan in isolation** — declarative rules over a seeded RNG,
   producing a byte-identical fault trace for the same seed.
2. **Disk errors mid-stream** — the streaming workload keeps its rate
   while the plan injects medium errors, and the driver's bounded
   retries show up in the recovery counters.
3. **The watchdog** — a guest spins with interrupts off; the monitor's
   watchdog detects the hang, forces the stub in, and degrades to
   stub-only: queries still answer, resumes bounce straight back.

The full campaign (all eight scenarios + invariant checks) is
``repro-chaos``; this example walks the pieces it is made of.
"""

from repro.asm import assemble
from repro.core import DebugSession
from repro.faults import DiskInjector, FaultPlan, FaultRule
from repro.guest.os import HiTactix
from repro.hw import firmware
from repro.hw.machine import Machine, MachineConfig
from repro.perf.costmodel import DEFAULT_COST_MODEL
from repro.obs.metrics import collect_fault
from repro.perf.stacks import InterruptDispatcher, make_stack
from repro.sim.events import cycles_for_seconds
from repro.vmm.watchdog import DEGRADE_FULL, MonitorWatchdog


def act_one_determinism() -> None:
    print("=" * 64)
    print("1) a fault plan is a pure function of its seed")

    def run(seed):
        plan = FaultPlan(seed, rules=[
            FaultRule("disk*", "medium-error", probability=0.2),
            FaultRule("nic.tx", "drop", every=5),
        ])
        for index in range(40):
            plan.decide("disk0" if index % 2 else "nic.tx",
                        "medium-error" if index % 2 else "drop",
                        detail=f"op{index}")
        return plan

    first, second = run(1234), run(1234)
    print(f"   seed 1234, twice: digests "
          f"{first.trace.digest()[:16]}... == "
          f"{second.trace.digest()[:16]}... -> "
          f"{first.trace.format() == second.trace.format()}")
    other = run(4321)
    print(f"   seed 4321 differs: {other.trace.digest()[:16]}...")
    print("   trace excerpt:")
    for line in first.trace.format().splitlines()[:3]:
        print(f"     {line}")


def act_two_disk_errors() -> None:
    print("=" * 64)
    print("2) disk errors mid-stream: the workload degrades gracefully")
    machine = Machine(MachineConfig())
    machine.program_pic_defaults()
    stack = make_stack("lvmm", machine)
    dispatcher = InterruptDispatcher(machine, stack)
    guest = HiTactix(machine, stack, 100e6)
    plan = FaultPlan(1234, rules=[
        FaultRule("disk*", "medium-error", probability=0.1,
                  max_fires=8)])
    DiskInjector(plan, machine.hba)

    guest.register_handlers(dispatcher)
    guest.start()
    dispatcher.dispatch_pending()
    deadline = cycles_for_seconds(0.3, DEFAULT_COST_MODEL.cpu_hz)
    while True:
        next_time = machine.queue.peek_time()
        if next_time is None or next_time > deadline:
            break
        machine.queue.step()
        dispatcher.dispatch_pending()

    stats = collect_fault(plan, devices={"hba": machine.hba})
    print(f"   faults injected: {stats['plan']['injected']}")
    print(f"   driver: {guest.read_errors} errors seen, "
          f"{guest.read_retries} retries, "
          f"{guest.segments_sent} segments still sent")


def act_three_watchdog() -> None:
    print("=" * 64)
    print("3) the watchdog catches a CLI hang and degrades to stub-only")
    sess = DebugSession(monitor="lvmm")
    program = assemble(f"""
.org {firmware.GUEST_KERNEL_BASE}
    CLI                     ; interrupts off...
hang:
    JMP  hang               ; ...and spin forever
""")
    sess.load_and_boot(program)
    sess.attach()
    watchdog = MonitorWatchdog(sess.monitor, spin_checks=3)

    sess.client.send_async(b"c")
    for _ in range(10):
        sess._pump()
        if watchdog.check() != DEGRADE_FULL:
            break
    print(f"   verdict: {watchdog.transitions[0][3]}")
    print(f"   degradation level: {watchdog.level}")
    stop = sess.client.wait_for_stop(max_pumps=100)
    print(f"   forced stop reply: {stop.decode()}")
    regs = sess.client.read_registers()
    print(f"   stub still serves: PC={regs[8]:#x}")
    bounce = sess.client.cont()
    print(f"   'continue' refused, bounced as: {bounce.decode()} "
          f"(resumes refused: {sess.monitor.stats.resumes_refused})")
    print(f"   monitor watchdog report:")
    for line in sess.client.monitor_command("watchdog").splitlines():
        print(f"     {line}")


if __name__ == "__main__":
    act_one_determinism()
    act_two_disk_errors()
    act_three_watchdog()
    print("=" * 64)
    print("done; run the full campaign with: repro-chaos --seed 1234")
