#!/usr/bin/env python3
"""Streaming-server scenario — the workload HiTactix was built for.

The paper's introduction motivates the debugging environment with
appliance servers streaming media at fixed per-client rates (HiTactix
powers the streaming server of Le Moal et al., ACM Multimedia 2002).
This example serves a set of concurrent fixed-rate sessions from the
three-disk array over gigabit Ethernet, on all three execution stacks,
and answers the operator's question: **how many streams fit?**

The admission counts are the service-level translation of Fig. 3.1's
curves: a debugging monitor that costs 4x in throughput costs 4x in
paying clients.
"""

from repro.workloads.streaming import max_sessions, run_streaming

SESSION_RATE = 20e6   # one 20 Mbps media stream per client


def serve_four_clients() -> None:
    print("-- serving 4 x 20 Mbps sessions on each stack --")
    for stack in ("bare", "lvmm", "fullvmm"):
        result = run_streaming(stack, [SESSION_RATE] * 4,
                               sim_seconds=2.5)
        rates = ", ".join(f"{s.achieved_bps / 1e6:.1f}"
                          for s in result.sessions)
        status = "all served" if result.all_sessions_served() \
            else "DEGRADED"
        print(f"{stack:8s}  CPU load {result.load * 100:5.1f}%  "
              f"per-session Mbps: [{rates}]  [{status}]")


def admission_control() -> None:
    print("\n-- admission control: max 20 Mbps sessions per stack --")
    counts = {}
    for stack in ("bare", "lvmm", "fullvmm"):
        counts[stack] = max_sessions(stack, SESSION_RATE, upper_bound=48)
        print(f"{stack:8s}  {counts[stack]:3d} sessions "
              f"({counts[stack] * SESSION_RATE / 1e6:.0f} Mbps aggregate)")
    print(f"\nLVMM serves {counts['lvmm'] / max(counts['fullvmm'], 1):.0f}x "
          f"the clients of the full VMM — the paper's 5.4x headline, "
          f"seen from the service side.")


def main() -> None:
    serve_four_clients()
    admission_control()


if __name__ == "__main__":
    main()
