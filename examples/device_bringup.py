#!/usr/bin/env python3
"""Customisability demo (the paper's second claim, experiment E5).

Bringing up a driver for a brand-new I/O device is the everyday job
this debugging environment was built for.  A full VMM needs a device
*emulator* written for every device its guests touch; the lightweight
VMM needs nothing — unclaimed devices pass straight through.

The script attaches a fictional "vector DMA engine" to the machine,
boots a guest whose driver programs it (with a bug), and debugs the
driver through the LVMM.  Count of monitor changes required: zero.
"""

from repro.asm import assemble
from repro.core import DebugSession
from repro.debugger import Debugger, SymbolTable
from repro.hw import firmware
from repro.hw.bus import PortDevice

VDMA_BASE = 0x5100


class VectorDmaEngine(PortDevice):
    """The new device: sums a memory region via DMA.

    Registers: +0 source address, +4 element count, +8 doorbell,
    +12 result (read-only).
    """

    def __init__(self, memory):
        self._memory = memory
        self.src = 0
        self.count = 0
        self.result = 0
        self.doorbell_rings = 0

    def port_read(self, offset, size):
        return {0: self.src, 4: self.count, 12: self.result}.get(offset, 0)

    def port_write(self, offset, value, size):
        if offset == 0:
            self.src = value
        elif offset == 4:
            self.count = value
        elif offset == 8:
            self.doorbell_rings += 1
            total = 0
            for index in range(self.count):
                total += self._memory.read_u32(self.src + index * 4)
            self.result = total & 0xFFFFFFFF


DRIVER = f"""
.org {firmware.GUEST_KERNEL_BASE}
.equ VDMA, {VDMA_BASE}
start:
    ; build a little table: 1..5 at 0x9000
    MOVI R1, 0x9000
    MOVI R0, 1
    ST   [R1+0], R0
    MOVI R0, 2
    ST   [R1+4], R0
    MOVI R0, 3
    ST   [R1+8], R0
    MOVI R0, 4
    ST   [R1+12], R0
    MOVI R0, 5
    ST   [R1+16], R0

program_device:
    MOVI R2, VDMA
    MOVI R0, 0x9000
    OUTW R0, R2             ; source address
    MOVI R2, VDMA+4
    MOVI R0, 4              ; BUG: should be 5 elements
    OUTW R0, R2
    MOVI R2, VDMA+8
    MOVI R0, 1
    OUTW R0, R2             ; ring the doorbell
    MOVI R2, VDMA+12
    INW  R3, R2             ; read back the sum
check:
    CMPI R3, 15             ; expect 1+2+3+4+5
    JNZ  bug_found
    HLT
bug_found:
    BKPT                    ; trap to the debugger right at the anomaly
    HLT
"""


def main() -> None:
    session = DebugSession(monitor="lvmm")

    # Attach the brand-new device.  Note what we did NOT do: no monitor
    # code, no device emulator — one bus registration + one I/O-bitmap
    # grant, exactly like the SCSI controller gets.
    device = VectorDmaEngine(session.machine.memory)
    session.machine.bus.register_ports(VDMA_BASE, 16, device, "vdma")
    session.machine.cpu.io_allowed_ports.update(
        range(VDMA_BASE, VDMA_BASE + 16))

    program = assemble(DRIVER)
    session.load_and_boot(program)
    session.attach()

    symbols = SymbolTable()
    symbols.add_program(program)
    debugger = Debugger(session, symbols)

    print("running the new driver under the LVMM...")
    print(debugger.execute("continue"))

    print("\nthe driver hit its sanity check; inspect the device state:")
    print(debugger.execute("regs"))
    print(f"device saw: src={device.src:#x} count={device.count} "
          f"result={device.result} (doorbell x{device.doorbell_rings})")
    print("=> count register got 4, not 5: off-by-one in the driver.")

    print("\nfix it live from the debugger and re-run:")
    # Locate the buggy 'MOVI R0, 0x4' by disassembling the driver's
    # device-programming block, then patch its immediate to 5.
    from repro.asm import disassemble
    base = program.symbols["program_device"]
    block = session.client.read_memory(base, 0x20)
    patch_addr = next(insn.address for insn in disassemble(block, base, strict=False)
                      if insn.text == "MOVI R0, 0x4")
    print(debugger.execute(f"write {patch_addr + 2:#x} 05000000"))
    print(debugger.execute(f"set pc {base:#x}"))
    # Re-run: the guest will HLT on success (no breakpoint hit).
    session.monitor.resume_guest(step=False)
    session.monitor.run(10_000)
    print(f"after the live patch: result={device.result} "
          f"(expected 15); guest halted cleanly: "
          f"{session.machine.cpu.halted and not session.monitor.guest_dead}")
    assert device.result == 15
    print(f"\nmonitor interception counters (should all be debug-only): "
          f"vdma accesses intercepted = 0, device doorbells = "
          f"{device.doorbell_rings}")


if __name__ == "__main__":
    main()
