#!/usr/bin/env python3
"""Time-travel debugging: checkpoint, crash, rewind, fix.

A simulated target makes one classic debugging technique cheap:
stop-the-world snapshots.  This demo drives the scenario every kernel
developer knows — the bug destroys the evidence — and shows the
workflow the monitor's checkpoint/restore enables:

1. break before the suspicious code and checkpoint;
2. let the guest run into its crash; do the post-mortem;
3. rewind to the checkpoint — the guest is alive again, pre-bug;
4. patch the bug from the debugger and continue to a clean finish.
"""

from repro.asm import assemble
from repro.core import DebugSession
from repro.debugger import Debugger, SymbolTable
from repro.hw import firmware

# A guest with a latent bug: it computes a table index, but an
# off-by-one walks the pointer into the monitor region.
GUEST = f"""
.org {firmware.GUEST_KERNEL_BASE}
start:
    MOVI R1, table
    MOVI R2, 0            ; sum
    MOVI R3, 0            ; index
loop:
    BKPT                  ; 'suspicious code starts here'
    LD   R0, [R1+0]
    ADD  R2, R0
    ADDI R1, 4
    ADDI R3, 1
    CMPI R3, 4
    JNZ  loop
    ; BUG: scale factor applied to the POINTER, not the sum
    MOVI R0, 0x400000
    ADD  R1, R0           ; R1 now points at garbage...
    LD   R0, [R1+0]       ; ...read it anyway
    ADD  R2, R0
    MOVI R1, 0xF80000     ; and then clobber 'the log buffer'
    ST   [R1+0], R2       ; (monitor region: instant death)
    HLT
table:
    .word 10, 20, 30, 40
"""


def main() -> None:
    session = DebugSession(monitor="lvmm")
    program = assemble(GUEST)
    session.load_and_boot(program)
    session.attach()
    symbols = SymbolTable()
    symbols.add_program(program)
    debugger = Debugger(session, symbols)

    print("== 1. run to the suspicious loop and checkpoint ==")
    print(debugger.execute("continue"))          # first BKPT
    print(debugger.execute("checkpoint pre-bug"))

    print("\n== 2. let it run into the crash ==")
    for _ in range(3):                           # remaining BKPT hits
        debugger.execute("continue")
    session.monitor.resume_guest(step=False)
    session.monitor.run(200)
    print(f"guest dead: {session.monitor.guest_dead} "
          f"({session.monitor.guest_dead_reason})")
    print("post-mortem registers:")
    print(debugger.execute("regs"))
    print("monitor timeline of the death:")
    print("\n".join(
        session.client.monitor_command("trace 4").splitlines()))

    print("\n== 3. rewind to before the bug ==")
    print(debugger.execute("restore pre-bug"))
    print(f"guest alive again: {session.guest_alive}")

    print("\n== 4. patch the bad scale-add out and finish cleanly ==")
    # Find 'MOVI R0, 0x400000' and turn it into a harmless 0.
    from repro.asm import disassemble
    code = session.client.read_memory(program.origin, len(program.image))
    target = next(insn for insn in
                  disassemble(code, program.origin, strict=False)
                  if insn.text == "MOVI R0, 0x400000")
    debugger.execute(f"write {target.address + 2:#x} 00000000")
    # Also neuter the wild store's address: aim it at scratch space.
    wild = next(insn for insn in
                disassemble(code, program.origin, strict=False)
                if insn.text == "MOVI R1, 0xf80000")
    debugger.execute(f"write {wild.address + 2:#x} 00900000")  # 0x9000
    for _ in range(4):
        debugger.execute("continue")             # through the BKPTs
    session.monitor.resume_guest(step=False)
    session.monitor.run(500)
    regs = session.client.read_registers()
    print(f"guest halted cleanly: "
          f"{session.machine.cpu.halted and session.guest_alive}; "
          f"sum in R2 = {regs[2]} (10+20+30+40 + patched read)")


if __name__ == "__main__":
    main()
