#!/usr/bin/env python3
"""Debugging an RTOS's tasks — the thing the paper's users do all day.

An original real-time OS is a task system, and its bugs live in the
interplay of tasks: who held what, who never ran, where was everyone
when it went wrong.  This demo boots a multithreaded guest kernel (a
cooperative scheduler written in assembly) under the lightweight VMM
and drives the thread-aware debugger:

* list every task, its state, and where it is parked;
* read a *parked* task's registers straight out of its switch frame;
* break in one task, then ask what all the others were doing;
* watch the round-robin interleaving on the monitor console.
"""

from repro.core import DebugSession
from repro.debugger import Debugger, SymbolTable
from repro.guest.asmthreads import build_threaded_kernel, read_counters

THREADS = 3


def main() -> None:
    session = DebugSession(monitor="lvmm")
    kernel = build_threaded_kernel(threads=THREADS, iterations=30)
    session.load_and_boot(kernel)
    session.attach()
    symbols = SymbolTable()
    symbols.add_program(kernel)
    debugger = Debugger(session, symbols)

    print("== break in the task body and let a few switches happen ==")
    print(debugger.execute("break task_loop"))
    for _ in range(5):
        debugger.execute("continue")

    print("\n== the whole task system at a glance ==")
    print(debugger.execute("threads"))

    print("\n== inspect a task that is NOT running ==")
    current = session.client.current_thread()
    parked = next(i for i in range(1, THREADS + 1) if i != current)
    print(debugger.execute(f"thread {parked}"))
    print(debugger.execute("regs"))
    print("(R5 is the task id, R4 its remaining iterations, R7 its own "
          "stack — read from the parked switch frame, not live state)")
    print(debugger.execute("thread 0"))

    print("\n== run to completion and show the interleaving ==")
    debugger.execute("delete task_loop")
    session.monitor.resume_guest(step=False)
    session.monitor.run(600_000)
    counters = read_counters(session.machine.memory, THREADS)
    console = session.console_output.decode("latin-1")
    print(f"per-task iteration counters: {counters}")
    print(f"console interleaving: {console[:36]}...")
    print(f"strict round-robin: "
          f"{console.startswith('ABC' * (len(console.rstrip('.')) // 3))}")
    print("\nmonitor's view of the scheduler (last few events):")
    print(session.client.monitor_command("trace 5"))


if __name__ == "__main__":
    main()
