#!/usr/bin/env python3
"""Stability demo (the paper's first claim, experiment E4).

A guest OS with a wild-pointer bug sprays writes toward the monitor's
memory.  Two runs:

1. **Conventional approach** — the debug stub is embedded in the guest
   OS (serviced from its idle loop).  When the guest wedges, the
   debugger goes silent: there is nothing left to answer it.
2. **Lightweight VMM** — the stub lives in the monitor under the guest.
   The same rampage is contained by the three-level protection; the
   host debugger keeps full register/memory access to the corpse.
"""

from repro.asm import assemble
from repro.baremetal import BareMetalRunner
from repro.core import DebugSession
from repro.errors import ProtocolError
from repro.hw import firmware
from repro.hw.machine import Machine
from repro.hw.uart import HostSerialPort
from repro.rsp.client import RspClient

BUGGY_GUEST = f"""
.org {firmware.GUEST_KERNEL_BASE}
start:
    MOVI R1, 0xF00000       ; "oops": pointer into the monitor region
    MOVI R0, 0xDEADBEEF
rampage:
    ST   [R1+0], R0
    ADDI R1, 4
    JMP  rampage
"""


def conventional() -> None:
    print("=" * 64)
    print("1) conventional: stub embedded in the guest OS (bare metal)")
    machine = Machine()
    runner = BareMetalRunner(machine, with_embedded_stub=True)
    program = assemble(BUGGY_GUEST)
    program.load_into(machine.memory)
    runner.boot_guest(program.origin)

    # The rampage scribbles over everything below it... including where
    # the stub's state would live; worse, the guest never polls again.
    machine.run(20_000)
    print(f"   guest ran away; memory at 0xF00000 = "
          f"{machine.memory.read_u32(0xF00000):#010x} (trashed)")

    host = HostSerialPort(machine.serial_link)
    client = RspClient(send=host.send, recv=host.recv,
                       pump=lambda: None, max_pumps=25)
    try:
        client.query_halt_reason()
        print("   unexpected: the embedded stub answered")
    except ProtocolError:
        print("   debugger: NO RESPONSE — the stub died with the guest")


def with_lvmm() -> None:
    print("=" * 64)
    print("2) lightweight VMM: stub in the monitor, guest deprivileged")
    session = DebugSession(monitor="lvmm")
    program = assemble(BUGGY_GUEST)
    session.load_and_boot(program)
    session.attach()
    session.monitor.resume_guest(step=False)
    session.monitor.run(20_000)

    monitor = session.monitor
    print(f"   guest dead: {monitor.guest_dead} "
          f"({monitor.guest_dead_reason})")
    print(f"   monitor memory at {monitor.monitor_base:#x} intact: "
          f"{session.machine.memory.read_u32(monitor.monitor_base):#010x}")

    regs = session.client.read_registers()
    print(f"   debugger still works: PC={regs[8]:#010x} "
          f"R1={regs[1]:#010x} (the wild pointer, caught at the "
          f"protection boundary)")
    image = session.client.read_memory(program.origin, 8)
    print(f"   post-mortem memory read: {image.hex()}")


def main() -> None:
    conventional()
    with_lvmm()
    print("=" * 64)
    print("same bug, same machine: only the LVMM keeps the debugger alive.")


if __name__ == "__main__":
    main()
