#!/usr/bin/env python3
"""Quickstart: debug an OS kernel through the lightweight VMM.

Boots the HiTactix-like mini-kernel (an unmodified "ring-0" image)
under the lightweight virtual machine monitor, attaches the host-side
remote debugger over the simulated serial link, and walks the classic
loop: breakpoint -> continue -> inspect -> single-step -> resume.
"""

from repro.core import DebugSession
from repro.debugger import Debugger, SymbolTable
from repro.guest import KernelConfig, build_kernel, read_state, read_ticks


def main() -> None:
    # -- target machine: CPU + PIC + PIT + UART + SCSI + NIC, with the
    #    lightweight VMM installed underneath the guest.
    session = DebugSession(monitor="lvmm")
    kernel = build_kernel(KernelConfig(ticks_to_run=10))
    session.load_and_boot(kernel)

    # -- host side: RSP client + symbolic debugger.
    signal = session.attach()
    print(f"attached; target stopped with signal {signal} (SIGTRAP)")

    symbols = SymbolTable()
    symbols.add_program(kernel)
    debugger = Debugger(session, symbols)

    print("\n-- break inside the timer interrupt handler --")
    print(debugger.execute("break timer_isr"))
    print(debugger.execute("continue"))

    print("\n-- the guest is frozen mid-ISR; inspect it --")
    print(debugger.execute("regs"))
    print(debugger.execute("disas timer_isr 5"))

    print("\n-- watch the tick counter change across two hits --")
    print(debugger.execute("x 0x5000 4"))
    print(debugger.execute("continue"))
    print(debugger.execute("x 0x5000 4"))

    print("\n-- single-step three instructions --")
    print(debugger.execute("delete timer_isr"))
    for _ in range(3):
        print(debugger.execute("step"))

    print("\n-- detach and let the guest run to completion --")
    session.client.detach()
    session.run_guest(800_000,
                      until=lambda: read_state(session.machine.memory) != 0)
    print(f"guest finished after {read_ticks(session.machine.memory)} "
          f"ticks; console output: {session.console_output!r}")
    stats = session.monitor.stats
    print(f"monitor stats: {stats.traps_emulated} privileged ops "
          f"emulated, {stats.interrupts_reflected} interrupts reflected")


if __name__ == "__main__":
    main()
