"""Multi-session streaming server — HiTactix's production scenario.

The paper's intro motivates the whole system with streaming appliance
servers (HiTactix powers the cost-effective streaming server of Le Moal
et al., ACM MM'02).  A server does not push one flow: it serves many
clients at fixed per-session rates (think N concurrent video streams).

:class:`StreamingServer` extends the single-flow HiTactix model with
per-session token buckets over the shared disk pipeline and NIC, so the
evaluation question becomes the operator's question: *how many streams
of rate r fit on each execution stack before CPU saturates?* — the
admission-control view of Fig. 3.1.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.guest.os import HiTactix
from repro.hw.machine import Machine, MachineConfig
from repro.hw.nic import LINE_RATE_BPS, WIRE_OVERHEAD_BYTES
from repro.net.tcp import TcpConnection, TcpEndpoint
from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.perf.stacks import InterruptDispatcher, make_stack
from repro.sim.events import EventQueue, cycles_for_seconds


@dataclass
class StreamSession:
    """One client stream."""

    session_id: int
    rate_bps: float
    tokens: float = 0.0
    bytes_sent: int = 0
    segments_sent: int = 0

    @property
    def achieved_bps(self) -> float:
        return self._achieved

    _achieved: float = 0.0


class StreamingServer(HiTactix):
    """HiTactix serving several fixed-rate sessions concurrently."""

    def __init__(self, machine, stack, sessions: Sequence[float],
                 cost: Optional[CostModel] = None, **kwargs) -> None:
        total = sum(sessions)
        super().__init__(machine, stack, total, cost, **kwargs)
        self.sessions = [StreamSession(index, rate)
                         for index, rate in enumerate(sessions)]
        # Seed each bucket with one segment so streams start immediately
        # (a real server begins sending as soon as a client connects).
        for session in self.sessions:
            session.tokens = float(self.segment_size)
        self._next_session = 0

    def on_tick(self) -> None:
        self.ticks += 1
        self.stack.guest_cycles(self.cost.guest_tick_cycles)
        for session in self.sessions:
            session.tokens += session.rate_bps / 8.0 / self.cost.timer_hz
            session.tokens = min(session.tokens, 2.0 * self.segment_size)
        self._pump_sessions()
        self.machine.bus.port_write(0x20, 0x20, 1)  # timer EOI

    def _pump_sender(self) -> None:
        # Called from the SCSI ISR when data lands: serve ready sessions.
        self._pump_sessions()

    def _pump_sessions(self) -> None:
        """Round-robin across sessions with a full token bucket."""
        stalled = 0
        count = len(self.sessions)
        while stalled < count:
            session = self.sessions[self._next_session]
            self._next_session = (self._next_session + 1) % count
            if session.tokens < self.segment_size:
                stalled += 1
                continue
            segment = self._blocked_segment or self._next_segment()
            self._blocked_segment = None
            if segment is None:
                return  # shared disk pipeline is empty
            addr, length = segment
            self.stack.guest_cycles(self.cost.guest_segment_cycles)
            if not self.nic.send_segment(addr, length):
                self._blocked_segment = segment
                return
            session.tokens -= length
            session.bytes_sent += length
            session.segments_sent += 1
            self.segments_sent += 1
            self.bytes_sent += length
            stalled = 0


@dataclass
class StreamingResult:
    stack: str
    demanded_load: float
    sessions: List[StreamSession] = field(default_factory=list)

    @property
    def load(self) -> float:
        return min(1.0, self.demanded_load)

    @property
    def sustainable(self) -> bool:
        return self.demanded_load <= 1.0

    @property
    def total_achieved_bps(self) -> float:
        return sum(s.achieved_bps for s in self.sessions)

    def all_sessions_served(self, tolerance: float = 0.85) -> bool:
        return all(s.achieved_bps >= tolerance * s.rate_bps
                   for s in self.sessions)


def run_streaming(stack_name: str, session_rates_bps: Sequence[float],
                  sim_seconds: float = 0.5,
                  cost: Optional[CostModel] = None) -> StreamingResult:
    """Serve the given sessions for a simulated window on one stack."""
    cost = cost or DEFAULT_COST_MODEL
    machine = Machine(MachineConfig(cpu_hz=cost.cpu_hz))
    machine.program_pic_defaults()
    wire_bytes = [0]
    machine.nic.wire = lambda frame: wire_bytes.__setitem__(
        0, wire_bytes[0] + len(frame))
    stack = make_stack(stack_name, machine, cost)
    dispatcher = InterruptDispatcher(machine, stack)
    server = StreamingServer(machine, stack, session_rates_bps, cost)
    server.register_handlers(dispatcher)
    server.start()
    dispatcher.dispatch_pending()

    deadline = cycles_for_seconds(sim_seconds, cost.cpu_hz)
    queue = machine.queue
    while True:
        next_time = queue.peek_time()
        if next_time is None or next_time > deadline:
            break
        queue.step()
        dispatcher.dispatch_pending()
    if deadline > queue.now:
        queue.now = deadline

    for session in server.sessions:
        session._achieved = session.bytes_sent * 8 / sim_seconds
    return StreamingResult(
        stack=stack_name,
        demanded_load=machine.budget.demanded_load(deadline),
        sessions=list(server.sessions))


def max_sessions(stack_name: str, per_session_bps: float,
                 upper_bound: int = 64,
                 cost: Optional[CostModel] = None) -> int:
    """Admission control: how many sessions of this rate fit.

    Doubles then binary-searches on "demanded load <= 1 and every
    session achieved its rate".
    """
    segment_bits = 8 * 1024 * 1024

    def fits(count: int) -> bool:
        if count == 0:
            return True
        # Window long enough for every session to ship >= 6 segments,
        # so per-session pacing quantisation stays under ~15%.
        window = max(0.5, 6 * segment_bits / per_session_bps)
        result = run_streaming(stack_name,
                               [per_session_bps] * count, window, cost)
        return result.sustainable and result.all_sessions_served()

    low, high = 0, 1
    while high <= upper_bound and fits(high):
        low, high = high, high * 2
    while low + 1 < high:
        middle = (low + high) // 2
        if fits(middle):
            low = middle
        else:
            high = middle
    return low


# ----------------------------------------------------------------------
# TCP multi-client streaming under chaos
# ----------------------------------------------------------------------
#
# Everything above serves fixed-rate UDP flows on a lossless wire — the
# paper's Fig. 3.1 setup.  The section below is the production version:
# a TCP streaming server feeding hundreds of subscribers with mixed
# rates over a :class:`ChaosWire` that a seeded
# :class:`~repro.faults.plan.FaultPlan` can drop, corrupt, duplicate,
# delay and reorder frames on (sites ``nic.tx`` for the server's
# downlink, ``nic.rx`` for the subscribers' ACK uplink).  Slow
# consumers drain below their stream rate, so their advertised window
# shrinks to zero and the sender stalls on flow control; churned
# subscribers abort mid-stream; and when the admitted aggregate rate
# exceeds the server's capacity, a degradation ladder (full-service →
# degraded → overload) sheds the lowest-rate subscribers first — the
# same shape as the fleet supervisor's ladder from PR 8.
#
# Determinism: one EventQueue drives every timer, the wire and the
# ticks; the only randomness is the fault plan's seeded RNG.  Two runs
# with the same specs and seed produce identical transfers, counters
# and fault traces.

#: Degradation ladder levels, in order.
LEVEL_FULL = "full-service"
LEVEL_DEGRADED = "degraded"
LEVEL_OVERLOAD = "overload"

#: Demand/capacity ratio above which the ladder jumps straight to
#: overload (before shedding brings demand back under capacity).
OVERLOAD_RATIO = 1.5
#: Demand/capacity ratio below which a degraded server self-heals.
HEAL_RATIO = 0.7


class ChaosWire:
    """One direction of a shared link: pacing, latency and faults.

    Frames are serialised at ``line_rate_bps`` (shared medium — a busy
    wire delays the next frame), then delivered after ``latency_cycles``
    via the per-send ``deliver`` callable.  A fault plan may be
    attached; every frame is one ``decide`` opportunity at ``site`` for
    the kinds drop / corrupt / duplicate / delay / reorder (the
    ``nic.rx`` vocabulary — a reordered frame is held and delivered
    after the next one, with a failsafe flush so a quiet wire cannot
    strand it).
    """

    KINDS = ("drop", "corrupt", "duplicate", "delay", "reorder")
    REORDER_FLUSH_CYCLES = 400_000

    def __init__(self, queue: EventQueue, cpu_hz: float, site: str,
                 plan=None, latency_cycles: int = 2_000,
                 line_rate_bps: float = LINE_RATE_BPS) -> None:
        self.queue = queue
        self.cpu_hz = cpu_hz
        self.site = site
        self.plan = plan
        self.latency_cycles = latency_cycles
        self.line_rate_bps = line_rate_bps
        self._busy_until = 0
        self._held: List[Tuple[bytes, Callable[[bytes], None]]] = []
        self.frames_carried = 0
        self.frames_dropped = 0
        self.frames_corrupted = 0
        self.frames_duplicated = 0
        self.frames_delayed = 0
        self.frames_reordered = 0

    def _fault(self, frame: bytes):
        if self.plan is None:
            return None, 0
        for kind in self.KINDS:
            rule = self.plan.decide(self.site, kind,
                                    detail=f"len={len(frame)}")
            if rule is None:
                continue
            delay = rule.params.get("delay_cycles", 50_000)
            return kind, delay
        return None, 0

    def send(self, frame: bytes,
             deliver: Callable[[bytes], None]) -> None:
        kind, fault_delay = self._fault(frame)
        if kind == "drop":
            self.frames_dropped += 1
            return
        if kind == "corrupt":
            self.frames_corrupted += 1
            offset = self.plan.rand_range(max(len(frame), 1))
            mangled = bytearray(frame)
            mangled[offset % max(len(frame), 1)] ^= 0xFF
            frame = bytes(mangled)
        wire_bits = (len(frame) + WIRE_OVERHEAD_BYTES) * 8
        wire_cycles = max(1, int(wire_bits / self.line_rate_bps
                                 * self.cpu_hz))
        start = max(self.queue.now, self._busy_until)
        self._busy_until = start + wire_cycles
        arrival = start + wire_cycles + self.latency_cycles
        if kind == "delay":
            self.frames_delayed += 1
            arrival += fault_delay
        if kind == "reorder":
            self.frames_reordered += 1
            self._held.append((frame, deliver))
            self.queue.schedule_in(
                max(1, arrival - self.queue.now)
                + self.REORDER_FLUSH_CYCLES,
                self._flush_held, name="wire-reorder-flush")
            return
        self.frames_carried += 1
        self.queue.schedule_at(arrival,
                               lambda f=frame, d=deliver: d(f),
                               name="wire-deliver")
        if kind == "duplicate":
            self.frames_duplicated += 1
            self.queue.schedule_at(arrival + wire_cycles,
                                   lambda f=frame, d=deliver: d(f),
                                   name="wire-deliver-dup")
        if self._held:
            held, self._held = self._held, []
            for held_frame, held_deliver in held:
                self.frames_carried += 1
                self.queue.schedule_at(
                    arrival + wire_cycles,
                    lambda f=held_frame, d=held_deliver: d(f),
                    name="wire-deliver-held")

    def _flush_held(self) -> None:
        if not self._held:
            return
        held, self._held = self._held, []
        for frame, deliver in held:
            self.frames_carried += 1
            self.queue.schedule_in(self.latency_cycles,
                                   lambda f=frame, d=deliver: d(f),
                                   name="wire-flush")

    def stats(self) -> Dict[str, int]:
        return {
            "frames_carried": self.frames_carried,
            "frames_dropped": self.frames_dropped,
            "frames_corrupted": self.frames_corrupted,
            "frames_duplicated": self.frames_duplicated,
            "frames_delayed": self.frames_delayed,
            "frames_reordered": self.frames_reordered,
        }


@dataclass
class SubscriberSpec:
    """One simulated subscriber of the TCP streaming server.

    ``rate_bps`` is the stream's nominal rate (the server paces each
    session with its own token bucket).  ``drain_bps`` models a slow
    consumer: when set below the stream rate, the client app drains its
    receive buffer at that rate and TCP flow control must absorb the
    difference.  ``disconnect_at_s`` churns the subscriber: it aborts
    (RST) mid-stream at that simulated time.
    """

    rate_bps: float
    bytes_total: int
    connect_at_s: float = 0.0
    drain_bps: Optional[float] = None
    disconnect_at_s: Optional[float] = None
    #: Client receive buffer; small buffers + slow drains force the
    #: advertised window to zero and stall the sender on flow control.
    rcv_buf: int = 65535


#: Session terminal states.
S_COMPLETED = "completed"
S_SHED = "shed"
S_CHURNED = "churned"
S_ACTIVE = "active"
S_FAILED = "failed"


@dataclass
class TcpSession:
    """Server-side bookkeeping for one subscriber."""

    index: int
    spec: SubscriberSpec
    conn: Optional[TcpConnection] = None
    client_conn: Optional[TcpConnection] = None
    tokens: float = 0.0
    offset: int = 0                 # bytes queued to TCP so far
    status: str = S_ACTIVE
    sent_sha: "hashlib._Hash" = field(
        default_factory=hashlib.sha256)
    received_sha: "hashlib._Hash" = field(
        default_factory=hashlib.sha256)
    bytes_received: int = 0
    pattern: bytes = b""

    @property
    def remaining(self) -> int:
        return self.spec.bytes_total - self.offset

    def block(self, offset: int, length: int) -> bytes:
        """Deterministic stream content for [offset, offset+length)."""
        period = len(self.pattern)
        start = offset % period
        reps = (start + length + period - 1) // period
        return (self.pattern * (reps + 1))[start:start + length]


def _session_pattern(index: int) -> bytes:
    """A 997-byte (prime, so segment boundaries drift) per-session
    pattern; deterministic in the subscriber index alone."""
    return bytes(((index * 37 + j * 101) ^ (j >> 3)) & 0xFF
                 for j in range(997))


@dataclass
class TcpStreamResult:
    """Outcome of one :func:`run_tcp_streaming` window."""

    sessions: List[TcpSession]
    level: str
    sessions_shed: int
    level_transitions: List[Tuple[float, str]]
    server_stats: Dict[str, int]
    downlink: Dict[str, int]
    uplink: Dict[str, int]
    sim_seconds: float

    @property
    def completed(self) -> List[TcpSession]:
        return [s for s in self.sessions if s.status == S_COMPLETED]

    @property
    def intact(self) -> bool:
        """Every completed session's stream arrived byte-identical."""
        return all(
            s.sent_sha.hexdigest() == s.received_sha.hexdigest()
            and s.bytes_received == s.spec.bytes_total
            for s in self.completed)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for session in self.sessions:
            out[session.status] = out.get(session.status, 0) + 1
        return out

    @property
    def aggregate_rate_bps(self) -> float:
        delivered = sum(s.bytes_received for s in self.sessions)
        return delivered * 8 / self.sim_seconds if self.sim_seconds else 0.0


class TcpStreamingServer:
    """The multi-subscriber TCP streaming harness.

    One simulated host network: a server endpoint, one endpoint per
    subscriber, a shared downlink wire (server → subscribers, fault
    site ``nic.tx``) and a shared uplink wire (subscribers → server,
    fault site ``nic.rx``).  The server admits every connection, paces
    each stream with a token bucket at its nominal rate, and runs the
    degradation ladder once per tick.
    """

    SERVER_IP = b"\x0a\x00\x00\x01"
    PORT = 8554        # an RTSP-flavoured number for a streaming server

    def __init__(self, specs: Sequence[SubscriberSpec],
                 plan=None, cost: Optional[CostModel] = None,
                 capacity_bps: Optional[float] = None,
                 latency_cycles: int = 2_000,
                 line_rate_bps: float = LINE_RATE_BPS,
                 bus=None, registry=None) -> None:
        self.cost = cost or DEFAULT_COST_MODEL
        self.queue = EventQueue()
        self.plan = plan
        self.bus = bus
        self.registry = registry
        cpu_hz = self.cost.cpu_hz
        self.capacity_bps = capacity_bps if capacity_bps is not None \
            else line_rate_bps / 2
        self.downlink = ChaosWire(self.queue, cpu_hz, "nic.tx", plan,
                                  latency_cycles, line_rate_bps)
        self.uplink = ChaosWire(self.queue, cpu_hz, "nic.rx", plan,
                                latency_cycles, line_rate_bps)
        cwnd_histogram = None
        if registry is not None:
            cwnd_histogram = registry.histogram(
                "net.tcp.cwnd", help="congestion window (bytes)",
                buckets=(1460, 2920, 5840, 11680, 23360, 46720, 65535))
        self.server = TcpEndpoint(
            self.queue, cpu_hz, self.SERVER_IP,
            self._send_downlink, name="server", bus=bus,
            cwnd_histogram=cwnd_histogram)
        self.server.listen(self.PORT, self._on_accept)
        self.sessions = [TcpSession(i, spec,
                                    pattern=_session_pattern(i))
                         for i, spec in enumerate(specs)]
        self._by_port = {10_000 + i: s for i, s in
                        enumerate(self.sessions)}
        self.clients: List[TcpEndpoint] = []
        self.level = LEVEL_FULL
        self.level_transitions: List[Tuple[float, str]] = []
        self.sessions_shed = 0
        self.ticks = 0
        self._tick_cycles = max(1, int(cpu_hz / self.cost.timer_hz))
        for index, session in enumerate(self.sessions):
            self._schedule_connect(index, session)
        self.queue.schedule_in(self._tick_cycles, self._tick,
                               name="server-tick")

    # -- wiring --------------------------------------------------------------

    def _send_downlink(self, raw: bytes) -> None:
        # Demux by destination IP: one shared wire, per-frame delivery.
        dst = raw[:6]
        client = self._client_by_mac.get(dst)
        if client is None:
            return
        self.downlink.send(raw, client.receive_frame)

    def _send_uplink(self, raw: bytes) -> None:
        self.uplink.send(raw, self.server.receive_frame)

    def _schedule_connect(self, index: int, session: TcpSession) -> None:
        delay = cycles_for_seconds(session.spec.connect_at_s,
                                   self.cost.cpu_hz)
        self.queue.schedule_at(
            max(delay, 0),
            lambda i=index, s=session: self._connect_client(i, s),
            name="client-connect")

    def _client_ip(self, index: int) -> bytes:
        return bytes([10, 1, (index >> 8) & 0xFF, index & 0xFF])

    @property
    def _client_by_mac(self) -> Dict[bytes, TcpEndpoint]:
        cache = getattr(self, "_mac_cache", None)
        if cache is None or len(cache) != len(self.clients):
            cache = {client.mac: client for client in self.clients}
            self._mac_cache = cache
        return cache

    def _connect_client(self, index: int, session: TcpSession) -> None:
        client = TcpEndpoint(self.queue, self.cost.cpu_hz,
                             self._client_ip(index), self._send_uplink,
                             name=f"sub{index}", bus=self.bus)
        self.clients.append(client)
        self._mac_cache = None
        conn = client.connect(self.SERVER_IP, self.PORT,
                              local_port=10_000 + index,
                              rcv_buf=session.spec.rcv_buf)
        session.client_conn = conn
        conn.on_readable = (None if session.spec.drain_bps is not None
                            else (lambda c, s=session:
                                  self._client_drain(s, c.take())))
        conn.on_closed = lambda c, reason, s=session: \
            self._client_closed(s, reason)
        if session.spec.disconnect_at_s is not None:
            self.queue.schedule_at(
                cycles_for_seconds(session.spec.disconnect_at_s,
                                   self.cost.cpu_hz),
                lambda s=session: self._churn(s), name="client-churn")

    # -- client-side behaviour ------------------------------------------------

    def _client_drain(self, session: TcpSession, data: bytes) -> None:
        if not data:
            return
        session.received_sha.update(data)
        session.bytes_received += len(data)
        if session.bytes_received >= session.spec.bytes_total \
                and session.status == S_ACTIVE \
                and session.client_conn is not None \
                and session.client_conn.state in ("ESTABLISHED",
                                                  "CLOSE_WAIT"):
            session.client_conn.close()

    def _churn(self, session: TcpSession) -> None:
        if session.status != S_ACTIVE:
            return
        if session.client_conn is not None \
                and session.client_conn.state != "CLOSED":
            session.status = S_CHURNED
            session.client_conn.abort()

    def _client_closed(self, session: TcpSession, reason: str) -> None:
        if session.client_conn is not None:
            # Drain whatever arrived before the close.
            self._client_drain(session, session.client_conn.take())
        if session.status != S_ACTIVE:
            return
        if reason == "reset-by-peer":
            session.status = S_SHED
        elif session.bytes_received >= session.spec.bytes_total:
            session.status = S_COMPLETED
        else:
            session.status = S_FAILED

    # -- server-side behaviour ------------------------------------------------

    def _on_accept(self, conn: TcpConnection) -> None:
        session = self._by_port.get(conn.remote_port)
        if session is None:
            conn.abort()
            return
        session.conn = conn
        session.tokens = float(conn.mss)

    # -- pacing + ladder ------------------------------------------------------

    def _active_sessions(self) -> List[TcpSession]:
        return [s for s in self.sessions
                if s.status == S_ACTIVE and s.conn is not None
                and s.remaining > 0 and s.conn.state != "CLOSED"]

    def _tick(self) -> None:
        self.ticks += 1
        self._enforce_capacity()
        per_tick = 1.0 / self.cost.timer_hz
        for session in self._active_sessions():
            conn = session.conn
            session.tokens = min(
                session.tokens + session.spec.rate_bps / 8.0 * per_tick,
                4.0 * conn.mss)
            if conn.state not in ("ESTABLISHED", "CLOSE_WAIT"):
                continue    # still in handshake (or tearing down)
            # App-level backpressure: keep at most ~4 segments buffered
            # inside TCP beyond what is already in flight, and only
            # carve whole segments (or the stream tail).
            while session.remaining > 0 \
                    and session.tokens >= min(conn.mss,
                                              session.remaining) \
                    and conn.sndbuf_bytes < 4 * conn.mss:
                size = min(conn.mss, session.remaining)
                chunk = session.block(session.offset, size)
                conn.send(chunk)
                session.sent_sha.update(chunk)
                session.offset += size
                session.tokens -= size
                if session.remaining == 0:
                    conn.close()
        # Slow consumers drain at their own rate.
        for session in self.sessions:
            drain = session.spec.drain_bps
            if drain is None or session.client_conn is None:
                continue
            budget = int(drain / 8.0 * per_tick)
            if budget > 0:
                self._client_drain(session,
                                   session.client_conn.take(budget))
        self.queue.schedule_in(self._tick_cycles, self._tick,
                               name="server-tick")

    def _enforce_capacity(self) -> None:
        active = self._active_sessions()
        demand = sum(s.spec.rate_bps for s in active)
        if demand > self.capacity_bps:
            overload = demand > OVERLOAD_RATIO * self.capacity_bps
            self._set_level(LEVEL_OVERLOAD if overload
                            else LEVEL_DEGRADED)
            # Shed lowest-rate subscribers first (each carries the
            # least service for the connection overhead it costs).
            for victim in sorted(active,
                                 key=lambda s: (s.spec.rate_bps,
                                                s.index)):
                if demand <= self.capacity_bps:
                    break
                victim.status = S_SHED
                self.sessions_shed += 1
                demand -= victim.spec.rate_bps
                if victim.conn is not None:
                    victim.conn.abort()
            if self.level == LEVEL_OVERLOAD:
                self._set_level(LEVEL_DEGRADED)
        elif self.level != LEVEL_FULL \
                and demand <= HEAL_RATIO * self.capacity_bps:
            self._set_level(LEVEL_FULL)

    def _set_level(self, level: str) -> None:
        if level == self.level:
            return
        self.level = level
        now_s = self.queue.now / self.cost.cpu_hz
        self.level_transitions.append((now_s, level))
        if self.bus is not None:
            self.bus.instant("net", "stream-ladder", self.queue.now,
                             args={"level": level})

    # -- driving --------------------------------------------------------------

    def run(self, sim_seconds: float,
            grace_seconds: float = 0.5) -> TcpStreamResult:
        """Run the window, then a bounded grace drain for stragglers."""
        cpu_hz = self.cost.cpu_hz
        deadline = cycles_for_seconds(sim_seconds, cpu_hz)
        self.queue.run_until(deadline)
        grace_deadline = deadline + cycles_for_seconds(grace_seconds,
                                                       cpu_hz)
        step = cycles_for_seconds(0.01, cpu_hz)
        while self.queue.now < grace_deadline:
            if not any(s.status == S_ACTIVE for s in self.sessions):
                break
            self.queue.run_until(min(self.queue.now + step,
                                     grace_deadline))
        # Final client-side drain for anything still buffered.
        for session in self.sessions:
            if session.client_conn is not None:
                self._client_drain(session, session.client_conn.take())
            if session.status == S_ACTIVE \
                    and session.bytes_received >= session.spec.bytes_total:
                session.status = S_COMPLETED
        result = TcpStreamResult(
            sessions=self.sessions,
            level=self.level,
            sessions_shed=self.sessions_shed,
            level_transitions=list(self.level_transitions),
            server_stats=self.server.stats(),
            downlink=self.downlink.stats(),
            uplink=self.uplink.stats(),
            sim_seconds=self.queue.now / cpu_hz)
        if self.registry is not None:
            from repro.obs.metrics import collect_net
            collect_net(endpoint=self.server, result=result,
                        registry=self.registry)
        return result


def run_tcp_streaming(specs: Sequence[SubscriberSpec], plan=None,
                      sim_seconds: float = 0.5,
                      grace_seconds: float = 0.5,
                      cost: Optional[CostModel] = None,
                      capacity_bps: Optional[float] = None,
                      bus=None, registry=None) -> TcpStreamResult:
    """Serve ``specs`` over chaos-wired TCP for one simulated window."""
    server = TcpStreamingServer(specs, plan=plan, cost=cost,
                                capacity_bps=capacity_bps, bus=bus,
                                registry=registry)
    return server.run(sim_seconds, grace_seconds)


def mixed_rate_specs(count: int, bytes_total: int = 30_000,
                     base_rate_bps: float = 1_000_000.0,
                     connect_spread_s: float = 0.05,
                     slow_every: int = 0,
                     churn_every: int = 0,
                     churn_at_s: float = 0.1) -> List[SubscriberSpec]:
    """A deterministic mixed-rate subscriber population.

    Rates cycle through 0.5x / 1x / 2x / 4x of the base rate; connect
    times stagger across ``connect_spread_s``.  Every ``slow_every``-th
    subscriber drains at a quarter of its stream rate; every
    ``churn_every``-th disconnects at ``churn_at_s``.
    """
    multipliers = (0.5, 1.0, 2.0, 4.0)
    specs = []
    for index in range(count):
        rate = base_rate_bps * multipliers[index % len(multipliers)]
        drain = None
        rcv_buf = 65535
        if slow_every and index % slow_every == slow_every - 1:
            drain = rate / 4.0
            rcv_buf = 4096      # small buffer: the window will close
        disconnect = None
        if churn_every and index % churn_every == 0:
            disconnect = churn_at_s
        specs.append(SubscriberSpec(
            rate_bps=rate, bytes_total=bytes_total,
            connect_at_s=(index * connect_spread_s / max(count, 1)),
            drain_bps=drain, disconnect_at_s=disconnect,
            rcv_buf=rcv_buf))
    return specs
