"""Multi-session streaming server — HiTactix's production scenario.

The paper's intro motivates the whole system with streaming appliance
servers (HiTactix powers the cost-effective streaming server of Le Moal
et al., ACM MM'02).  A server does not push one flow: it serves many
clients at fixed per-session rates (think N concurrent video streams).

:class:`StreamingServer` extends the single-flow HiTactix model with
per-session token buckets over the shared disk pipeline and NIC, so the
evaluation question becomes the operator's question: *how many streams
of rate r fit on each execution stack before CPU saturates?* — the
admission-control view of Fig. 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.guest.os import HiTactix
from repro.hw.machine import Machine, MachineConfig
from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.perf.stacks import InterruptDispatcher, make_stack
from repro.sim.events import cycles_for_seconds


@dataclass
class StreamSession:
    """One client stream."""

    session_id: int
    rate_bps: float
    tokens: float = 0.0
    bytes_sent: int = 0
    segments_sent: int = 0

    @property
    def achieved_bps(self) -> float:
        return self._achieved

    _achieved: float = 0.0


class StreamingServer(HiTactix):
    """HiTactix serving several fixed-rate sessions concurrently."""

    def __init__(self, machine, stack, sessions: Sequence[float],
                 cost: Optional[CostModel] = None, **kwargs) -> None:
        total = sum(sessions)
        super().__init__(machine, stack, total, cost, **kwargs)
        self.sessions = [StreamSession(index, rate)
                         for index, rate in enumerate(sessions)]
        # Seed each bucket with one segment so streams start immediately
        # (a real server begins sending as soon as a client connects).
        for session in self.sessions:
            session.tokens = float(self.segment_size)
        self._next_session = 0

    def on_tick(self) -> None:
        self.ticks += 1
        self.stack.guest_cycles(self.cost.guest_tick_cycles)
        for session in self.sessions:
            session.tokens += session.rate_bps / 8.0 / self.cost.timer_hz
            session.tokens = min(session.tokens, 2.0 * self.segment_size)
        self._pump_sessions()
        self.machine.bus.port_write(0x20, 0x20, 1)  # timer EOI

    def _pump_sender(self) -> None:
        # Called from the SCSI ISR when data lands: serve ready sessions.
        self._pump_sessions()

    def _pump_sessions(self) -> None:
        """Round-robin across sessions with a full token bucket."""
        stalled = 0
        count = len(self.sessions)
        while stalled < count:
            session = self.sessions[self._next_session]
            self._next_session = (self._next_session + 1) % count
            if session.tokens < self.segment_size:
                stalled += 1
                continue
            segment = self._blocked_segment or self._next_segment()
            self._blocked_segment = None
            if segment is None:
                return  # shared disk pipeline is empty
            addr, length = segment
            self.stack.guest_cycles(self.cost.guest_segment_cycles)
            if not self.nic.send_segment(addr, length):
                self._blocked_segment = segment
                return
            session.tokens -= length
            session.bytes_sent += length
            session.segments_sent += 1
            self.segments_sent += 1
            self.bytes_sent += length
            stalled = 0


@dataclass
class StreamingResult:
    stack: str
    demanded_load: float
    sessions: List[StreamSession] = field(default_factory=list)

    @property
    def load(self) -> float:
        return min(1.0, self.demanded_load)

    @property
    def sustainable(self) -> bool:
        return self.demanded_load <= 1.0

    @property
    def total_achieved_bps(self) -> float:
        return sum(s.achieved_bps for s in self.sessions)

    def all_sessions_served(self, tolerance: float = 0.85) -> bool:
        return all(s.achieved_bps >= tolerance * s.rate_bps
                   for s in self.sessions)


def run_streaming(stack_name: str, session_rates_bps: Sequence[float],
                  sim_seconds: float = 0.5,
                  cost: Optional[CostModel] = None) -> StreamingResult:
    """Serve the given sessions for a simulated window on one stack."""
    cost = cost or DEFAULT_COST_MODEL
    machine = Machine(MachineConfig(cpu_hz=cost.cpu_hz))
    machine.program_pic_defaults()
    wire_bytes = [0]
    machine.nic.wire = lambda frame: wire_bytes.__setitem__(
        0, wire_bytes[0] + len(frame))
    stack = make_stack(stack_name, machine, cost)
    dispatcher = InterruptDispatcher(machine, stack)
    server = StreamingServer(machine, stack, session_rates_bps, cost)
    server.register_handlers(dispatcher)
    server.start()
    dispatcher.dispatch_pending()

    deadline = cycles_for_seconds(sim_seconds, cost.cpu_hz)
    queue = machine.queue
    while True:
        next_time = queue.peek_time()
        if next_time is None or next_time > deadline:
            break
        queue.step()
        dispatcher.dispatch_pending()
    if deadline > queue.now:
        queue.now = deadline

    for session in server.sessions:
        session._achieved = session.bytes_sent * 8 / sim_seconds
    return StreamingResult(
        stack=stack_name,
        demanded_load=machine.budget.demanded_load(deadline),
        sessions=list(server.sessions))


def max_sessions(stack_name: str, per_session_bps: float,
                 upper_bound: int = 64,
                 cost: Optional[CostModel] = None) -> int:
    """Admission control: how many sessions of this rate fit.

    Doubles then binary-searches on "demanded load <= 1 and every
    session achieved its rate".
    """
    segment_bits = 8 * 1024 * 1024

    def fits(count: int) -> bool:
        if count == 0:
            return True
        # Window long enough for every session to ship >= 6 segments,
        # so per-session pacing quantisation stays under ~15%.
        window = max(0.5, 6 * segment_bits / per_session_bps)
        result = run_streaming(stack_name,
                               [per_session_bps] * count, window, cost)
        return result.sustainable and result.all_sessions_served()

    low, high = 0, 1
    while high <= upper_bound and fits(high):
        low, high = high, high * 2
    while low + 1 < high:
        middle = (low + high) // 2
        if fits(middle):
            low = middle
        else:
            high = middle
    return low
