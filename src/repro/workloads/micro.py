"""Microworkloads isolating one device path at a time.

The ablation benches use these to show *where* each stack's overhead
lives: the disk-only workload exercises the SCSI passthrough claim in
isolation; the net-only workload isolates the NIC path (and removes
disk-side interrupts from the picture).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.guest.os import HiTactix
from repro.hw.machine import Machine, MachineConfig
from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.perf.stacks import InterruptDispatcher, make_stack
from repro.sim.events import cycles_for_seconds


@dataclass
class MicroResult:
    stack: str
    demanded_load: float
    bytes_moved: int
    interrupts: int

    @property
    def load(self) -> float:
        return min(1.0, self.demanded_load)


def _run(machine: Machine, stack, dispatcher, cost: CostModel,
         sim_seconds: float) -> int:
    deadline = cycles_for_seconds(sim_seconds, cost.cpu_hz)
    queue = machine.queue
    while True:
        next_time = queue.peek_time()
        if next_time is None or next_time > deadline:
            break
        queue.step()
        dispatcher.dispatch_pending()
    if deadline > queue.now:
        queue.now = deadline
    return deadline


def disk_only(stack_name: str, sim_seconds: float = 0.3,
              cost: Optional[CostModel] = None) -> MicroResult:
    """Stream reads from all disks as fast as they go; no network."""
    cost = cost or DEFAULT_COST_MODEL
    machine = Machine(MachineConfig(cpu_hz=cost.cpu_hz, with_nic=False))
    machine.program_pic_defaults()
    stack = make_stack(stack_name, machine, cost)
    dispatcher = InterruptDispatcher(machine, stack)

    from repro.guest.drivers.scsi import GuestScsiDriver
    driver = GuestScsiDriver(machine, stack)
    chunk_blocks = 2 * 1024 * 1024 // 512
    state = {"bytes": 0, "lba": [0] * len(machine.disks)}

    def issue(target: int) -> None:
        disk = machine.disks[target]
        if state["lba"][target] + chunk_blocks > disk.blocks:
            state["lba"][target] = 0
        lba = state["lba"][target]
        state["lba"][target] += chunk_blocks

        def complete(status: int, target=target) -> None:
            if status == 0:
                state["bytes"] += chunk_blocks * 512
            issue(target)

        driver.read(target, lba, chunk_blocks, 0x40_0000 + target * 0x20_0000,
                    complete)

    dispatcher.register(11, driver.handle_interrupt)
    for target in range(len(machine.disks)):
        issue(target)
    deadline = _run(machine, stack, dispatcher, cost, sim_seconds)
    return MicroResult(stack_name,
                       machine.budget.demanded_load(deadline),
                       state["bytes"], dispatcher.dispatched)


def net_only(stack_name: str, rate_bps: float,
             sim_seconds: float = 0.3,
             cost: Optional[CostModel] = None) -> MicroResult:
    """Paced UDP transmit from a prefilled buffer; no disk reads."""
    cost = cost or DEFAULT_COST_MODEL
    machine = Machine(MachineConfig(cpu_hz=cost.cpu_hz, disks=[]))
    machine.program_pic_defaults()
    stack = make_stack(stack_name, machine, cost)
    dispatcher = InterruptDispatcher(machine, stack)
    guest = HiTactix(machine, stack, rate_bps, cost)
    guest.register_handlers(dispatcher)
    # No disks: hand the sender an inexhaustible pre-read buffer.
    from repro.guest.os import SEGMENT_SIZE, STREAM_BUFFER_BASE

    class _Infinite(list):
        def pop(self, index=0):
            return (STREAM_BUFFER_BASE, SEGMENT_SIZE)

        def __bool__(self):
            return True

        def __len__(self):
            return 1

    if not guest.streams:
        from repro.guest.os import _DiskStream
        guest.streams = [_DiskStream(target=0, buffer=STREAM_BUFFER_BASE)]
    guest.streams = guest.streams[:1]
    guest.streams[0].ready = _Infinite()
    # Mark the stream permanently busy so the sender never tries to
    # refill it from a (non-existent) disk.
    guest.streams[0].busy = True
    deadline = _run(machine, stack, dispatcher, cost, sim_seconds)
    return MicroResult(stack_name,
                       machine.budget.demanded_load(deadline),
                       guest.bytes_sent, dispatcher.dispatched)


def compare(workload: str, sim_seconds: float = 0.3,
            rate_bps: float = 100e6,
            cost: Optional[CostModel] = None) -> Dict[str, MicroResult]:
    """Run one microworkload on all three stacks."""
    out = {}
    for stack in ("bare", "lvmm", "fullvmm"):
        if workload == "disk":
            out[stack] = disk_only(stack, sim_seconds, cost)
        elif workload == "net":
            out[stack] = net_only(stack, rate_bps, sim_seconds, cost)
        else:
            raise ValueError(f"unknown microworkload {workload!r}")
    return out
