"""Workloads: the paper's data-transfer application and microworkloads."""

from repro.workloads.datatransfer import (
    DataTransferConfig,
    compare_stacks,
    run_data_transfer,
)
from repro.workloads.micro import MicroResult, compare, disk_only, net_only

__all__ = [
    "DataTransferConfig",
    "run_data_transfer",
    "compare_stacks",
    "MicroResult",
    "disk_only",
    "net_only",
    "compare",
]
