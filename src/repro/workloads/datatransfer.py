"""The paper's evaluation workload, packaged as an experiment API.

Section 3 of the paper: "a data-transfer application that reads 2 MB
data from three Ultra160 SCSI disks at constant rates, splits them into
1024 KB segments, and sends all segments via gigabit Ethernet using the
UDP protocol" — run on real hardware, the LVMM, and VMware WS4, while
measuring CPU load against transfer rate.

:func:`run_data_transfer` is the library entry point the examples and
benchmarks use; :class:`DataTransferConfig` exposes every parameter the
ablations sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.hw.machine import MachineConfig
from repro.perf.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.perf.load import LoadSample, measure_load
from repro.perf.sweep import window_for_rate


@dataclass
class DataTransferConfig:
    """Knobs of the paper's workload (paper defaults)."""

    #: UDP segment size — the paper's 1024 KB.
    segment_size: int = 1024 * 1024
    #: Disk read granularity — the paper's 2 MB.
    read_chunk: int = 2 * 1024 * 1024
    #: Number of SCSI disks — the paper's three.
    disks: int = 3
    #: Sustained media rate per disk (Ultra160-era 10k RPM drive).
    disk_rate_bytes_per_sec: float = 40e6
    #: Simulated measurement window (stretched at low rates so at least
    #: a dozen segments are sent).
    sim_seconds: float = 0.3

    def machine_config(self, cpu_hz: float) -> MachineConfig:
        # Stream buffers live at 0x40_0000, one read_chunk per disk; the
        # zero-copy send path reads frame headers just past each buffer,
        # so leave slack (and room for the monitor region on top).
        buffers_end = 0x40_0000 + self.disks * self.read_chunk
        memory_size = max(16 << 20, buffers_end + (2 << 20))
        return MachineConfig(
            memory_size=memory_size,
            cpu_hz=cpu_hz,
            disks=[(262144, seed + 1) for seed in range(self.disks)],
            disk_rate_bytes_per_sec=self.disk_rate_bytes_per_sec,
        )

    def guest_kwargs(self) -> dict:
        return {
            "segment_size": self.segment_size,
            "read_chunk": self.read_chunk,
        }


def run_data_transfer(stack: str, rate_bps: float,
                      config: Optional[DataTransferConfig] = None,
                      cost: Optional[CostModel] = None) -> LoadSample:
    """Run the paper's workload once and return the load sample."""
    config = config or DataTransferConfig()
    cost = cost or DEFAULT_COST_MODEL
    window = window_for_rate(rate_bps, config.sim_seconds)
    return measure_load(
        stack, rate_bps, window, cost,
        machine_config=config.machine_config(cost.cpu_hz),
        guest_kwargs=config.guest_kwargs())


def compare_stacks(rate_bps: float,
                   stacks: Sequence[str] = ("bare", "lvmm", "fullvmm"),
                   config: Optional[DataTransferConfig] = None,
                   cost: Optional[CostModel] = None
                   ) -> Dict[str, LoadSample]:
    """One rate, every stack — the vertical slice of Fig. 3.1."""
    return {stack: run_data_transfer(stack, rate_bps, config, cost)
            for stack in stacks}
