"""Reproduction of Takeuchi, "OS Debugging Method Using a Lightweight
Virtual Machine Monitor" (DATE 2005).

The public API lives in :mod:`repro.core`; the subpackages are the
substrates (hardware models, assembler, protocol stack, monitors, guest
OS, performance harness) described in DESIGN.md.
"""

__version__ = "1.0.0"
