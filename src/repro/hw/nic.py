"""Descriptor-ring gigabit Ethernet NIC (e1000-style, reduced).

The second passthrough device.  The guest driver builds Ethernet frames
in guest memory, points TX descriptors at them and bumps the tail
register; the NIC DMA-reads the frames, paces them at line rate onto the
"wire" (a Python callback standing in for the lab network), and raises a
— optionally coalesced — completion interrupt.

MMIO register map (32-bit registers, byte offsets):

    0x000  CTRL     bit0: reset
    0x008  STATUS   bit0: link up (always set)
    0x0C0  ICR      interrupt cause read; reading clears and deasserts
    0x0D0  IMS      interrupt mask (bit0: TX done, bit1: RX)
    0x100  TCTL     bit1: transmit enable
    0x380  TDBA     TX descriptor ring base (guest-physical)
    0x384  TDLEN    ring length in descriptors
    0x388  TDH      head (device-owned)
    0x38C  TDT      tail (driver-owned; writing kicks transmission)
    0x3A0  COALESCE interrupt per N completed frames (0/1 = every frame)
    0x400  RDBA     RX ring base
    0x404  RDLEN    RX ring length in descriptors
    0x408  RDH      RX head (device-owned)
    0x40C  RDT      RX tail (driver-owned)

TX/RX descriptor (16 bytes)::

    +0   buffer address (u32, guest-physical)
    +4   length         (u32)
    +8   flags          (u32; bit0 EOP — always set by our drivers)
    +12  status         (u32; bit0 DD "descriptor done", device-written)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import DeviceError
from repro.hw.bus import MmioDevice
from repro.sim.events import EventQueue

MMIO_BASE_NIC = 0xFEB0_0000
MMIO_SPAN = 0x1000
IRQ_NIC = 10

LINE_RATE_BPS = 1_000_000_000  # gigabit
DESCRIPTOR_SIZE = 16

REG_CTRL = 0x000
REG_STATUS = 0x008
REG_ICR = 0x0C0
REG_IMS = 0x0D0
REG_TCTL = 0x100
REG_TDBA = 0x380
REG_TDLEN = 0x384
REG_TDH = 0x388
REG_TDT = 0x38C
REG_COALESCE = 0x3A0
REG_RDBA = 0x400
REG_RDLEN = 0x404
REG_RDH = 0x408
REG_RDT = 0x40C

ICR_TXDW = 1 << 0   # transmit descriptor written back
ICR_RXDW = 1 << 1   # receive descriptor written back

DESC_FLAG_EOP = 1 << 0
DESC_STATUS_DD = 1 << 0

#: Ethernet framing overhead per frame on the wire: preamble (8) +
#: FCS (4) + inter-frame gap (12).
WIRE_OVERHEAD_BYTES = 24


@dataclass
class NicFault:
    """What a fault hook asks the NIC to do to one frame.

    On the TX path, ``kind``: ``"drop"`` (lost on the wire),
    ``"corrupt"`` (one byte flipped at ``corrupt_offset``),
    ``"duplicate"`` (sent twice), ``"delay"`` (extra ``delay_cycles``
    of wire time) or ``"stall"`` (descriptor write-back — and therefore
    ring reclaim — postponed by ``delay_cycles``).

    On the RX path (``rx_fault_hook``), ``kind``: ``"drop"``,
    ``"corrupt"``, ``"duplicate"``, ``"delay"`` (ring write-back
    postponed by ``delay_cycles``) or ``"reorder"`` (the frame is held
    and delivered *after* the next arrival; a failsafe flush after
    ``delay_cycles`` — or a line-rate default — bounds the hold when
    the wire goes quiet).  Policy lives in :mod:`repro.faults`.
    """

    kind: str
    delay_cycles: int = 0
    corrupt_offset: int = 0


#: Failsafe hold for an RX-reordered frame with no delay given: the
#: frame flushes after this many cycles even if no successor arrives.
RX_REORDER_FLUSH_CYCLES = 200_000


class Nic(MmioDevice):
    """The NIC model."""

    def __init__(self, queue: EventQueue, memory, cpu_hz: float,
                 raise_irq: Callable[[], None],
                 lower_irq: Callable[[], None],
                 wire: Optional[Callable[[bytes], None]] = None) -> None:
        self._queue = queue
        self._memory = memory
        self._cpu_hz = cpu_hz
        self._raise_irq = raise_irq
        self._lower_irq = lower_irq
        self.wire = wire or (lambda frame: None)

        self.tdba = 0
        self.tdlen = 0
        self.tdh = 0
        self.tdt = 0
        self.rdba = 0
        self.rdlen = 0
        self.rdh = 0
        self.rdt = 0
        self.tctl = 0
        self.icr = 0
        self.ims = 0
        self.coalesce = 1
        self._tx_busy_until = 0  # wire-time pacing
        self._uncoalesced = 0
        self.frames_sent = 0
        self.bytes_sent = 0
        self.frames_received = 0
        self.frames_dropped = 0
        self.interrupts_raised = 0
        #: Fault hook consulted once per TX frame; returns a
        #: :class:`NicFault` to disturb it (see repro.faults.NicInjector).
        self.fault_hook: Optional[Callable[[bytes],
                                           Optional[NicFault]]] = None
        self.faults_injected = 0
        #: Fault hook consulted once per inbound frame, before the RX
        #: ring sees it (site ``nic.rx`` in repro.faults.NicInjector).
        self.rx_fault_hook: Optional[Callable[[bytes],
                                              Optional[NicFault]]] = None
        self.rx_faults_injected = 0
        self._rx_held: List[bytes] = []

    # -- MMIO interface ------------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == REG_STATUS:
            return 1  # link up
        if offset == REG_ICR:
            value = self.icr
            self.icr = 0
            self._lower_irq()
            return value
        mapping = {
            REG_CTRL: 0, REG_IMS: self.ims, REG_TCTL: self.tctl,
            REG_TDBA: self.tdba, REG_TDLEN: self.tdlen, REG_TDH: self.tdh,
            REG_TDT: self.tdt, REG_COALESCE: self.coalesce,
            REG_RDBA: self.rdba, REG_RDLEN: self.rdlen, REG_RDH: self.rdh,
            REG_RDT: self.rdt,
        }
        return mapping.get(offset, 0)

    def mmio_write(self, offset: int, value: int, size: int) -> None:
        value &= 0xFFFFFFFF
        if offset == REG_CTRL:
            if value & 1:
                self._reset()
            return
        if offset == REG_IMS:
            self.ims = value
            return
        if offset == REG_TCTL:
            self.tctl = value
            return
        if offset == REG_TDBA:
            self.tdba = value
            return
        if offset == REG_TDLEN:
            self.tdlen = value
            return
        if offset == REG_TDT:
            if value >= max(self.tdlen, 1):
                raise DeviceError(f"TDT {value} beyond ring of {self.tdlen}")
            self.tdt = value
            self._transmit_pending()
            return
        if offset == REG_COALESCE:
            self.coalesce = max(1, value)
            return
        if offset == REG_RDBA:
            self.rdba = value
            return
        if offset == REG_RDLEN:
            self.rdlen = value
            return
        if offset == REG_RDT:
            self.rdt = value
            return
        if offset in (REG_TDH, REG_RDH):
            raise DeviceError("head registers are device-owned")
        # Unknown registers are write-ignored, like real hardware scratch.

    def _reset(self) -> None:
        self.tdh = self.tdt = 0
        self.rdh = self.rdt = 0
        self.icr = 0
        self._uncoalesced = 0
        self._tx_busy_until = 0
        self._lower_irq()

    # -- transmit path ------------------------------------------------------

    def _descriptor(self, base: int, index: int):
        raw = self._memory.read(base + index * DESCRIPTOR_SIZE,
                                DESCRIPTOR_SIZE)
        return struct.unpack("<IIII", raw)

    def _write_status(self, base: int, index: int, status: int) -> None:
        self._memory.write_u32(base + index * DESCRIPTOR_SIZE + 12, status)

    def _transmit_pending(self) -> None:
        if not self.tctl & 0x2:
            return
        while self.tdh != self.tdt:
            index = self.tdh
            addr, length, flags, _status = self._descriptor(self.tdba, index)
            frame = self._memory.read(addr, length)
            self._send_frame(frame, index)
            self.tdh = (self.tdh + 1) % max(self.tdlen, 1)

    def _send_frame(self, frame: bytes, index: int) -> None:
        fault = self.fault_hook(frame) if self.fault_hook else None
        if fault is not None:
            self.faults_injected += 1
        wire_bytes = len(frame) + WIRE_OVERHEAD_BYTES
        wire_cycles = int(wire_bytes * 8 / LINE_RATE_BPS * self._cpu_hz)
        if fault is not None and fault.kind == "delay":
            wire_cycles += fault.delay_cycles
        start = max(self._queue.now, self._tx_busy_until)
        finish = start + wire_cycles
        self._tx_busy_until = finish

        def writeback() -> None:
            self._write_status(self.tdba, index, DESC_STATUS_DD)
            self._uncoalesced += 1
            if self._uncoalesced >= self.coalesce:
                self._uncoalesced = 0
                self._assert(ICR_TXDW)

        def complete() -> None:
            if fault is not None and fault.kind == "drop":
                self.frames_dropped += 1
            elif fault is not None and fault.kind == "corrupt":
                mangled = bytearray(frame)
                mangled[fault.corrupt_offset % max(len(frame), 1)] ^= 0xFF
                self.frames_sent += 1
                self.bytes_sent += len(frame)
                self.wire(bytes(mangled))
            elif fault is not None and fault.kind == "duplicate":
                self.frames_sent += 2
                self.bytes_sent += 2 * len(frame)
                self.wire(frame)
                self.wire(frame)
            else:
                self.frames_sent += 1
                self.bytes_sent += len(frame)
                self.wire(frame)
            if fault is not None and fault.kind == "stall" \
                    and fault.delay_cycles > 0:
                # Ring stall: the frame is on the wire but the DD bit —
                # and with it the driver's reclaim — arrives late.
                self._queue.schedule_in(fault.delay_cycles, writeback,
                                        name="nic-stall")
            else:
                writeback()

        self._queue.schedule_at(finish, complete, name="nic-tx")

    def _assert(self, cause: int) -> None:
        self.icr |= cause
        if self.icr & self.ims:
            self.interrupts_raised += 1
            self._raise_irq()

    # -- snapshot support ----------------------------------------------------

    def state(self) -> dict:
        """Register/queue state.  Wire pacing is stored as a remaining
        busy window relative to the queue clock; in-flight completion
        events are *not* captured (``snapshot._quiesce_check`` refuses
        while a transmission is pending).
        """
        return {
            "tdba": self.tdba, "tdlen": self.tdlen,
            "tdh": self.tdh, "tdt": self.tdt,
            "rdba": self.rdba, "rdlen": self.rdlen,
            "rdh": self.rdh, "rdt": self.rdt,
            "tctl": self.tctl, "icr": self.icr, "ims": self.ims,
            "coalesce": self.coalesce,
            "tx_busy_in": max(0, self._tx_busy_until - self._queue.now),
            "uncoalesced": self._uncoalesced,
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "frames_received": self.frames_received,
            "frames_dropped": self.frames_dropped,
            "interrupts_raised": self.interrupts_raised,
        }

    def load_state(self, state: dict) -> None:
        self.tdba = state["tdba"]
        self.tdlen = state["tdlen"]
        self.tdh = state["tdh"]
        self.tdt = state["tdt"]
        self.rdba = state["rdba"]
        self.rdlen = state["rdlen"]
        self.rdh = state["rdh"]
        self.rdt = state["rdt"]
        self.tctl = state["tctl"]
        self.icr = state["icr"]
        self.ims = state["ims"]
        self.coalesce = state["coalesce"]
        self._tx_busy_until = self._queue.now + state["tx_busy_in"]
        self._uncoalesced = state["uncoalesced"]
        self.frames_sent = state["frames_sent"]
        self.bytes_sent = state["bytes_sent"]
        self.frames_received = state["frames_received"]
        self.frames_dropped = state["frames_dropped"]
        self.interrupts_raised = state["interrupts_raised"]

    # -- receive path ------------------------------------------------------------

    def receive_frame(self, frame: bytes) -> bool:
        """Deliver a frame from the wire into the RX ring.

        Consults ``rx_fault_hook`` first (drop / corrupt / duplicate /
        delay / reorder — see :class:`NicFault`), then writes the frame
        into the ring.  Returns False (and counts a drop) when the
        frame was lost — to a fault, a full ring, or missing RX setup;
        delayed and reordered frames return True optimistically (their
        ring write-back happens later).
        """
        fault = self.rx_fault_hook(frame) if self.rx_fault_hook else None
        if fault is not None:
            self.rx_faults_injected += 1
            if fault.kind == "drop":
                self.frames_dropped += 1
                return False
            if fault.kind == "corrupt":
                mangled = bytearray(frame)
                mangled[fault.corrupt_offset % max(len(frame), 1)] ^= 0xFF
                frame = bytes(mangled)
            elif fault.kind == "duplicate":
                first = self._ring_receive(frame)
                second = self._ring_receive(frame)
                self._flush_rx_held()
                return first and second
            elif fault.kind == "delay":
                self._queue.schedule_in(
                    max(0, fault.delay_cycles),
                    lambda f=frame: self._ring_receive(f),
                    name="nic-rx-delay")
                return True
            elif fault.kind == "reorder":
                self._rx_held.append(frame)
                flush_in = fault.delay_cycles or RX_REORDER_FLUSH_CYCLES
                self._queue.schedule_in(flush_in, self._flush_rx_held,
                                        name="nic-rx-reorder")
                return True
        result = self._ring_receive(frame)
        self._flush_rx_held()
        return result

    def _flush_rx_held(self) -> None:
        while self._rx_held:
            self._ring_receive(self._rx_held.pop(0))

    def _ring_receive(self, frame: bytes) -> bool:
        if self.rdlen == 0:
            self.frames_dropped += 1
            return False
        next_head = (self.rdh + 1) % self.rdlen
        if self.rdh == self.rdt:
            # Ring empty of free descriptors (driver owns none).
            self.frames_dropped += 1
            return False
        addr, length, _flags, _status = self._descriptor(self.rdba, self.rdh)
        if len(frame) > length:
            self.frames_dropped += 1
            return False
        self._memory.write(addr, frame)
        self._memory.write_u32(self.rdba + self.rdh * DESCRIPTOR_SIZE + 4,
                               len(frame))
        self._write_status(self.rdba, self.rdh, DESC_STATUS_DD)
        self.rdh = next_head
        self.frames_received += 1
        self._assert(ICR_RXDW)
        return True


def make_tx_descriptor(addr: int, length: int) -> bytes:
    """Encode one TX descriptor for the driver."""
    return struct.pack("<IIII", addr, length, DESC_FLAG_EOP, 0)


def make_rx_descriptor(addr: int, length: int) -> bytes:
    """Encode one free RX descriptor."""
    return struct.pack("<IIII", addr, length, 0, 0)
