"""Mailbox-style SCSI host bus adapter with DMA.

This stands in for the paper's Ultra160 controller.  It is one of the
devices the lightweight VMM deliberately does **not** emulate: the guest
driver programs it directly, and it DMAs straight into guest physical
memory — that directness is where the paper's I/O-efficiency claim comes
from.

Programming model (32-bit port registers at the HBA's port base):

    +0x00  COMMAND   write 1: start the request whose block is in MAILBOX
                     write 2: controller reset
    +0x04  MAILBOX   guest-physical address of a request block
    +0x08  STATUS    bit0: request(s) in flight
    +0x0C  INTSTAT   read: number of unacknowledged completions
                     write: acknowledge (clears, deasserts IRQ)

Request block layout in guest memory (32 bytes)::

    +0   target id        (u32)
    +4   CDB              (16 bytes, SCSI-2 encoding)
    +20  data buffer      (u32, guest-physical)
    +24  data length      (u32, bytes)
    +28  completion code  (u32, written by the HBA; 0 = GOOD)

Supported CDBs: TEST UNIT READY (0x00), REQUEST SENSE (0x03), INQUIRY
(0x12), READ CAPACITY(10) (0x25), READ(10) (0x28), WRITE(10) (0x2A).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import DeviceError
from repro.hw.bus import PortDevice
from repro.hw.disk import BLOCK_SIZE, Disk
from repro.sim.events import EventQueue

PORT_BASE_SCSI = 0x1C00
PORT_SPAN = 0x10
IRQ_SCSI = 11

REG_COMMAND = 0x00
REG_MAILBOX = 0x04
REG_STATUS = 0x08
REG_INTSTAT = 0x0C

CMD_START = 1
CMD_RESET = 2

REQUEST_BLOCK_SIZE = 32

# Completion codes (returned in the request block).
COMP_GOOD = 0
COMP_CHECK_CONDITION = 2
COMP_BAD_TARGET = 0x101
COMP_BAD_OPCODE = 0x102
COMP_BAD_LBA = 0x103
COMP_TRANSPORT = 0x104   # bus/transport failure: no status from the target

# CDB opcodes.
OP_TEST_UNIT_READY = 0x00
OP_REQUEST_SENSE = 0x03
OP_INQUIRY = 0x12
OP_READ_CAPACITY = 0x25
OP_READ_10 = 0x28
OP_WRITE_10 = 0x2A


@dataclass
class _Request:
    target: int
    cdb: bytes
    buffer: int
    length: int
    block_addr: int


@dataclass
class ScsiFault:
    """What a fault hook asks the HBA to do to one request.

    ``kind`` is ``"medium"`` (CHECK CONDITION with ``sense``) or
    ``"transport"`` (bus failure, :data:`COMP_TRANSPORT`, no sense
    data).  This is the hook-point half of the fault-injection API; the
    policy half (when to fire, with what parameters) lives in
    :mod:`repro.faults`.
    """

    kind: str
    sense: int = 0x03  # MEDIUM ERROR


def encode_request_block(target: int, cdb: bytes, buffer: int,
                         length: int) -> bytes:
    """Build the 32-byte request block the driver writes to memory."""
    if len(cdb) > 16:
        raise DeviceError(f"CDB too long: {len(cdb)}")
    return struct.pack("<I16sIII", target, cdb.ljust(16, b"\0"),
                       buffer, length, 0)


def cdb_read10(lba: int, count: int) -> bytes:
    return struct.pack(">BBIBHB", OP_READ_10, 0, lba, 0, count, 0)


def cdb_write10(lba: int, count: int) -> bytes:
    return struct.pack(">BBIBHB", OP_WRITE_10, 0, lba, 0, count, 0)


def cdb_inquiry(alloc: int = 36) -> bytes:
    return bytes([OP_INQUIRY, 0, 0, 0, alloc & 0xFF, 0])


def cdb_read_capacity() -> bytes:
    return bytes([OP_READ_CAPACITY]) + bytes(9)


def cdb_test_unit_ready() -> bytes:
    return bytes(6)


class ScsiHba(PortDevice):
    """The adapter: up to 8 targets, one outstanding request per target."""

    def __init__(self, queue: EventQueue, memory, cpu_hz: float,
                 raise_irq: Callable[[], None],
                 lower_irq: Callable[[], None]) -> None:
        self._queue = queue
        self._memory = memory
        self._cpu_hz = cpu_hz
        self._raise_irq = raise_irq
        self._lower_irq = lower_irq
        self._targets: Dict[int, Disk] = {}
        self._mailbox = 0
        self._in_flight = 0
        self._completions: List[int] = []  # request-block addresses
        self._sense: Dict[int, int] = {}
        self.requests_started = 0
        self.bytes_dma = 0
        #: Fault hook consulted once per dispatched request; returns a
        #: :class:`ScsiFault` to fail it (see repro.faults.DiskInjector).
        self.fault_hook: Optional[
            Callable[[_Request, Disk], Optional[ScsiFault]]] = None
        #: DMA hook: may rewrite (corrupt) outbound DMA payloads.
        self.dma_fault_hook: Optional[
            Callable[[_Request, bytes], bytes]] = None
        self.faults_injected = 0

    def attach(self, target: int, disk: Disk) -> None:
        if not 0 <= target < 8:
            raise DeviceError(f"target id {target} out of range")
        if target in self._targets:
            raise DeviceError(f"target {target} already attached")
        self._targets[target] = disk

    # -- port interface ------------------------------------------------------

    def port_write(self, offset: int, value: int, size: int) -> None:
        if offset == REG_COMMAND:
            if value == CMD_START:
                self._start()
            elif value == CMD_RESET:
                self._reset()
            else:
                raise DeviceError(f"unknown HBA command {value:#x}")
            return
        if offset == REG_MAILBOX:
            self._mailbox = value & 0xFFFFFFFF
            return
        if offset == REG_INTSTAT:
            self._completions.clear()
            self._lower_irq()
            return
        raise DeviceError(f"write to read-only HBA register {offset:#x}")

    def port_read(self, offset: int, size: int) -> int:
        if offset == REG_COMMAND:
            return 0
        if offset == REG_MAILBOX:
            return self._mailbox
        if offset == REG_STATUS:
            return 1 if self._in_flight else 0
        if offset == REG_INTSTAT:
            return len(self._completions)
        return 0

    def pop_completion(self) -> Optional[int]:
        """Driver-side helper: pop one completed request-block address."""
        if not self._completions:
            return None
        addr = self._completions.pop(0)
        if not self._completions:
            self._lower_irq()
        return addr

    # -- request processing ------------------------------------------------------

    def _reset(self) -> None:
        self._in_flight = 0
        self._completions.clear()
        self._sense.clear()
        self._lower_irq()

    def _start(self) -> None:
        raw = self._memory.read(self._mailbox, REQUEST_BLOCK_SIZE)
        target, cdb, buffer, length, _ = struct.unpack("<I16sIII", raw)
        request = _Request(target, cdb, buffer, length, self._mailbox)
        self.requests_started += 1
        self._in_flight += 1
        disk = self._targets.get(target)
        if disk is None:
            self._finish(request, COMP_BAD_TARGET, delay_cycles=100)
            return
        self._dispatch(request, disk)

    def _dispatch(self, request: _Request, disk: Disk) -> None:
        opcode = request.cdb[0]
        fault = self.fault_hook(request, disk) if self.fault_hook else None
        if fault is None and disk.inject_error is not None:
            # Back-compat shim: the legacy one-shot attribute is just a
            # pre-planned medium error on the same fault path.
            fault = ScsiFault(kind="medium", sense=disk.inject_error)
            disk.inject_error = None
        if fault is not None:
            self.faults_injected += 1
            if fault.kind == "transport":
                self._finish(request, COMP_TRANSPORT, delay_cycles=500)
            else:
                self._sense[request.target] = fault.sense
                self._finish(request, COMP_CHECK_CONDITION,
                             delay_cycles=1000)
            return
        if opcode == OP_TEST_UNIT_READY:
            self._finish(request, COMP_GOOD, delay_cycles=200)
            return
        if opcode == OP_REQUEST_SENSE:
            sense = self._sense.pop(request.target, 0)
            payload = bytes([0x70, 0, sense & 0xFF]) + bytes(15)
            self._dma_out(request, payload)
            self._finish(request, COMP_GOOD, delay_cycles=200)
            return
        if opcode == OP_INQUIRY:
            payload = (bytes([0x00, 0x00, 0x02, 0x02, 31]) + bytes(3)
                       + b"REPRO   " + b"ULTRA160 DISK   " + b"1.0 ")
            self._dma_out(request, payload)
            self._finish(request, COMP_GOOD, delay_cycles=200)
            return
        if opcode == OP_READ_CAPACITY:
            payload = struct.pack(">II", disk.blocks - 1, BLOCK_SIZE)
            self._dma_out(request, payload)
            self._finish(request, COMP_GOOD, delay_cycles=200)
            return
        if opcode in (OP_READ_10, OP_WRITE_10):
            _, _, lba, _, count, _ = struct.unpack(">BBIBHB",
                                                   request.cdb[:10])
            if lba + count > disk.blocks:
                self._finish(request, COMP_BAD_LBA, delay_cycles=200)
                return
            delay = int(disk.service_seconds(lba, count) * self._cpu_hz)
            if opcode == OP_READ_10:
                def complete_read() -> None:
                    data = disk.read_blocks(lba, count)
                    self._dma_out(request, data[:request.length])
                    self._complete(request, COMP_GOOD)
                self._queue.schedule_in(delay, complete_read, name="scsi-read")
            else:
                def complete_write() -> None:
                    data = self._memory.read(
                        request.buffer,
                        min(request.length, count * BLOCK_SIZE))
                    padded = data.ljust(count * BLOCK_SIZE, b"\0")
                    disk.write_blocks(lba, padded)
                    self.bytes_dma += len(data)
                    self._complete(request, COMP_GOOD)
                self._queue.schedule_in(delay, complete_write,
                                        name="scsi-write")
            return
        self._finish(request, COMP_BAD_OPCODE, delay_cycles=100)

    def _dma_out(self, request: _Request, payload: bytes) -> None:
        clipped = payload[:request.length]
        if self.dma_fault_hook is not None:
            clipped = self.dma_fault_hook(request, clipped)
        self._memory.write(request.buffer, clipped)
        self.bytes_dma += len(clipped)

    def _finish(self, request: _Request, code: int,
                delay_cycles: int) -> None:
        self._queue.schedule_in(
            delay_cycles, lambda: self._complete(request, code),
            name="scsi-complete")

    def _complete(self, request: _Request, code: int) -> None:
        self._memory.write_u32(request.block_addr + 28, code)
        self._in_flight -= 1
        self._completions.append(request.block_addr)
        self._raise_irq()
