"""The I/O bus: port-I/O and MMIO routing with intercept hooks.

The bus is where the three execution stacks differ:

* **bare metal** — guest accesses go straight to the device models;
* **lightweight VMM** — accesses to the *debug-critical* devices (PIC,
  PIT, debug UART) are intercepted and emulated; everything else —
  notably the SCSI HBA and the NIC — passes straight through;
* **full VMM** — *every* access is intercepted and serviced by a device
  emulation model behind a world switch.

Monitors install an :class:`IoIntercept`; the bus consults it before
dispatching.  This mirrors how a real VMM uses the I/O permission bitmap
and page protections to choose what traps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import BusError
from repro.obs.taps import TapPoint


class PortDevice:
    """Interface for devices on the port-I/O space."""

    def port_read(self, port: int, size: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def port_write(self, port: int, value: int, size: int) -> None:  # pragma: no cover
        raise NotImplementedError


class MmioDevice:
    """Interface for devices on the memory-mapped I/O space."""

    def mmio_read(self, offset: int, size: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def mmio_write(self, offset: int, value: int, size: int) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass
class _PortRange:
    start: int
    end: int  # exclusive
    device: PortDevice
    name: str


@dataclass
class _MmioRange:
    start: int
    end: int  # exclusive
    device: MmioDevice
    name: str


class IoIntercept:
    """Monitor hook consulted before every guest I/O access.

    Return True from ``intercepts_*`` to claim the access; the bus then
    calls the corresponding ``emulate_*`` instead of the real device.
    """

    def intercepts_port(self, port: int) -> bool:
        return False

    def intercepts_mmio(self, addr: int) -> bool:
        return False

    def emulate_port_read(self, port: int, size: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def emulate_port_write(self, port: int, value: int, size: int) -> None:  # pragma: no cover
        raise NotImplementedError

    def emulate_mmio_read(self, addr: int, size: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def emulate_mmio_write(self, addr: int, value: int, size: int) -> None:  # pragma: no cover
        raise NotImplementedError


class IoBus:
    """Routes port-I/O and MMIO to registered devices."""

    def __init__(self) -> None:
        self._ports: List[_PortRange] = []
        self._mmio: List[_MmioRange] = []
        self.intercept: Optional[IoIntercept] = None
        #: Counters used by tests and benchmarks: (reads, writes).
        self.port_accesses = 0
        self.mmio_accesses = 0
        self.intercepted_accesses = 0
        #: Optional cost hook called once per guest access with
        #: ``intercepted`` — the perf layer charges hardware access
        #: latency for passthrough accesses here (intercepted accesses
        #: are monitor memory operations and charge via the intercept).
        self.access_charger: Optional[Callable[[bool], None]] = None
        #: Multicast observation point notified as ``taps(kind, addr,
        #: size, intercepted)`` for every *guest-visible* access
        #: (``kind`` is "port-read", "port-write", "mmio-read" or
        #: "mmio-write"; raw monitor-internal accesses are not
        #: observed).  The tracer subscribes here; observers must only
        #: observe.
        self.access_taps = TapPoint()

    # -- registration ---------------------------------------------------------

    def register_ports(self, start: int, count: int, device: PortDevice,
                       name: str = "") -> None:
        end = start + count
        for existing in self._ports:
            if start < existing.end and existing.start < end:
                raise BusError(
                    f"port range [{start:#x},{end:#x}) for {name!r} overlaps "
                    f"{existing.name!r}")
        self._ports.append(_PortRange(start, end, device, name or repr(device)))

    def register_mmio(self, start: int, length: int, device: MmioDevice,
                      name: str = "") -> None:
        end = start + length
        for existing in self._mmio:
            if start < existing.end and existing.start < end:
                raise BusError(
                    f"MMIO range [{start:#x},{end:#x}) for {name!r} overlaps "
                    f"{existing.name!r}")
        self._mmio.append(_MmioRange(start, end, device, name or repr(device)))

    def devices(self) -> List[str]:
        """Names of everything on the bus (ports first, then MMIO)."""
        return [r.name for r in self._ports] + [r.name for r in self._mmio]

    # -- lookup -----------------------------------------------------------------

    def _find_port(self, port: int) -> _PortRange:
        for entry in self._ports:
            if entry.start <= port < entry.end:
                return entry
        raise BusError(f"no device at port {port:#x}")

    def _find_mmio(self, addr: int) -> _MmioRange:
        for entry in self._mmio:
            if entry.start <= addr < entry.end:
                return entry
        raise BusError(f"no device at MMIO address {addr:#x}")

    def mmio_range_for(self, addr: int) -> Optional[Tuple[int, int, str]]:
        """(start, end, name) of the MMIO range covering ``addr``, if any."""
        for entry in self._mmio:
            if entry.start <= addr < entry.end:
                return entry.start, entry.end, entry.name
        return None

    def is_mmio(self, addr: int) -> bool:
        return self.mmio_range_for(addr) is not None

    # -- guest-visible access (subject to interception) --------------------------

    def port_read(self, port: int, size: int = 1) -> int:
        self.port_accesses += 1
        intercepted = (self.intercept is not None
                       and self.intercept.intercepts_port(port))
        if self.access_charger is not None:
            self.access_charger(intercepted)
        if self.access_taps:
            self.access_taps("port-read", port, size, intercepted)
        if intercepted:
            self.intercepted_accesses += 1
            return self.intercept.emulate_port_read(port, size)
        return self.raw_port_read(port, size)

    def port_write(self, port: int, value: int, size: int = 1) -> None:
        self.port_accesses += 1
        intercepted = (self.intercept is not None
                       and self.intercept.intercepts_port(port))
        if self.access_charger is not None:
            self.access_charger(intercepted)
        if self.access_taps:
            self.access_taps("port-write", port, size, intercepted)
        if intercepted:
            self.intercepted_accesses += 1
            self.intercept.emulate_port_write(port, value, size)
            return
        self.raw_port_write(port, value, size)

    def mmio_read(self, addr: int, size: int = 4) -> int:
        self.mmio_accesses += 1
        intercepted = (self.intercept is not None
                       and self.intercept.intercepts_mmio(addr))
        if self.access_charger is not None:
            self.access_charger(intercepted)
        if self.access_taps:
            self.access_taps("mmio-read", addr, size, intercepted)
        if intercepted:
            self.intercepted_accesses += 1
            return self.intercept.emulate_mmio_read(addr, size)
        return self.raw_mmio_read(addr, size)

    def mmio_write(self, addr: int, value: int, size: int = 4) -> None:
        self.mmio_accesses += 1
        intercepted = (self.intercept is not None
                       and self.intercept.intercepts_mmio(addr))
        if self.access_charger is not None:
            self.access_charger(intercepted)
        if self.access_taps:
            self.access_taps("mmio-write", addr, size, intercepted)
        if intercepted:
            self.intercepted_accesses += 1
            self.intercept.emulate_mmio_write(addr, value, size)
            return
        self.raw_mmio_write(addr, value, size)

    # -- raw access (monitor-internal; never intercepted) ------------------------

    def raw_port_read(self, port: int, size: int = 1) -> int:
        entry = self._find_port(port)
        return entry.device.port_read(port - entry.start, size)

    def raw_port_write(self, port: int, value: int, size: int = 1) -> None:
        entry = self._find_port(port)
        entry.device.port_write(port - entry.start, value, size)

    def raw_mmio_read(self, addr: int, size: int = 4) -> int:
        entry = self._find_mmio(addr)
        return entry.device.mmio_read(addr - entry.start, size)

    def raw_mmio_write(self, addr: int, value: int, size: int = 4) -> None:
        entry = self._find_mmio(addr)
        entry.device.mmio_write(addr - entry.start, value, size)
