"""16550-style UART — the debug communication device.

The host-side remote debugger talks GDB remote-serial-protocol bytes to
the target through this device (Fig. 2.1's "communication device").  The
model covers what stub and drivers need:

* THR/RBR data registers with 16-byte RX and TX FIFOs,
* IER/IIR interrupt generation (RX data available, THR empty),
* LSR status bits (data ready, THR empty, overrun),
* LCR/MCR accepted and stored (baud divisor latch included),
* a :class:`SerialLink` transport so two endpoints (target UART, host
  debugger) exchange bytes in process.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.hw.bus import PortDevice
from repro.obs.taps import TapPoint, tap_property

PORT_BASE_COM1 = 0x3F8
IRQ_COM1 = 4
FIFO_DEPTH = 16

# Register offsets.
REG_DATA = 0      # RBR (read) / THR (write); DLL when DLAB set
REG_IER = 1       # interrupt enable; DLM when DLAB set
REG_IIR_FCR = 2   # IIR (read) / FCR (write)
REG_LCR = 3
REG_MCR = 4
REG_LSR = 5
REG_MSR = 6
REG_SCRATCH = 7

# LSR bits.
LSR_DATA_READY = 1 << 0
LSR_OVERRUN = 1 << 1
LSR_THR_EMPTY = 1 << 5
LSR_IDLE = 1 << 6

# IER bits.
IER_RX = 1 << 0
IER_TX = 1 << 1

# IIR values (priority-encoded).
IIR_NONE = 0x01
IIR_RX = 0x04
IIR_TX = 0x02

LCR_DLAB = 1 << 7


class SerialLink:
    """A bidirectional in-process byte pipe between target and host.

    ``a_to_b``/``b_to_a`` are unbounded; pacing is the responsibility of
    the performance layer, which charges cycles per byte instead.
    """

    def __init__(self) -> None:
        self.a_to_b: Deque[int] = deque()
        self.b_to_a: Deque[int] = deque()
        self._listeners = []
        #: Fault hook applied to every byte entering the link.  Called
        #: with (direction, byte) where direction is "t2h" (target to
        #: host) or "h2t"; returns the byte to deliver (possibly
        #: modified) or None to drop it.  See repro.faults.UartInjector.
        self.fault_hook: Optional[Callable[[str, int],
                                           Optional[int]]] = None
        #: Multicast observation point notified as ``taps(direction,
        #: byte)`` for every byte actually entering the link (after the
        #: fault hook, so faulted traffic is seen as delivered).  The
        #: flight recorder journals "h2t" bytes as replayable input and
        #: folds "t2h" bytes into a rolling digest via the legacy
        #: :attr:`tap` primary slot; the tracer subscribes alongside.
        #: Observers must only observe.
        self.taps = TapPoint()
        self.bytes_dropped = 0
        self.bytes_corrupted = 0

    tap = tap_property("taps")

    def filter_byte(self, direction: str, byte: int) -> Optional[int]:
        """Run one byte through the fault hook, keeping line counters."""
        if self.fault_hook is None:
            return byte
        out = self.fault_hook(direction, byte)
        if out is None:
            self.bytes_dropped += 1
        elif out != byte:
            self.bytes_corrupted += 1
        return out

    def notify(self, callback: Callable[[], None]) -> None:
        """Register a callback fired whenever bytes move."""
        self._listeners.append(callback)

    def _kick(self) -> None:
        for listener in self._listeners:
            listener()

    # -- snapshot support ----------------------------------------------------

    def state(self) -> dict:
        """Queue contents (counters are telemetry, not machine state)."""
        return {"a_to_b": list(self.a_to_b), "b_to_a": list(self.b_to_a)}

    def load_state(self, state: dict) -> None:
        self.a_to_b.clear()
        self.a_to_b.extend(state["a_to_b"])
        self.b_to_a.clear()
        self.b_to_a.extend(state["b_to_a"])


class Uart16550(PortDevice):
    """Target-side UART endpoint (side "A" of the link)."""

    def __init__(self, link: SerialLink,
                 raise_irq: Optional[Callable[[], None]] = None,
                 lower_irq: Optional[Callable[[], None]] = None,
                 flow_control: bool = True) -> None:
        self._link = link
        self._raise_irq = raise_irq or (lambda: None)
        self._lower_irq = lower_irq or (lambda: None)
        #: RTS/CTS modelling: with flow control the link holds bytes
        #: back while the FIFO is full; without it they are dropped and
        #: the overrun bit is set (for failure-injection tests).
        self.flow_control = flow_control
        self.ier = 0
        self.lcr = 0
        self.mcr = 0
        self.scratch = 0
        self.divisor = 1
        self.overrun = False
        self._rx: Deque[int] = deque()
        self.tx_count = 0
        self.rx_count = 0
        link.notify(self._pump)

    # -- link side ------------------------------------------------------------

    def _pump(self) -> None:
        """Move link bytes into the RX FIFO.

        When the FIFO is full: with flow control the rest waits on the
        link (RTS deasserted); without it the bytes are lost and the
        overrun bit latches.
        """
        moved = False
        while self._link.b_to_a:
            if len(self._rx) >= FIFO_DEPTH:
                if self.flow_control:
                    break
                self.overrun = True
                self._link.b_to_a.popleft()
                continue
            self._rx.append(self._link.b_to_a.popleft())
            self.rx_count += 1
            moved = True
        if moved:
            self._update_irq()

    def _update_irq(self) -> None:
        if (self.ier & IER_RX) and self._rx:
            self._raise_irq()
        elif self.ier & IER_TX:
            # THR is always empty in this model (infinite host drain).
            self._raise_irq()
        else:
            self._lower_irq()

    # -- port interface ------------------------------------------------------

    def port_read(self, offset: int, size: int) -> int:
        if offset == REG_DATA:
            if self.lcr & LCR_DLAB:
                return self.divisor & 0xFF
            if not self._rx:
                return 0
            value = self._rx.popleft()
            self._pump()  # room freed: RTS reasserted, pull more in
            self._update_irq()
            return value
        if offset == REG_IER:
            if self.lcr & LCR_DLAB:
                return (self.divisor >> 8) & 0xFF
            return self.ier
        if offset == REG_IIR_FCR:
            if (self.ier & IER_RX) and self._rx:
                return IIR_RX
            if self.ier & IER_TX:
                return IIR_TX
            return IIR_NONE
        if offset == REG_LCR:
            return self.lcr
        if offset == REG_MCR:
            return self.mcr
        if offset == REG_LSR:
            status = LSR_THR_EMPTY | LSR_IDLE
            if self._rx:
                status |= LSR_DATA_READY
            if self.overrun:
                status |= LSR_OVERRUN
                self.overrun = False
            return status
        if offset == REG_MSR:
            return 0
        if offset == REG_SCRATCH:
            return self.scratch
        return 0

    def port_write(self, offset: int, value: int, size: int) -> None:
        value &= 0xFF
        if offset == REG_DATA:
            if self.lcr & LCR_DLAB:
                self.divisor = (self.divisor & 0xFF00) | value
                return
            sent = self._link.filter_byte("t2h", value)
            if sent is not None:
                self._link.a_to_b.append(sent)
                if self._link.taps:
                    self._link.taps("t2h", sent)
            self.tx_count += 1
            self._link._kick()
            self._update_irq()
            return
        if offset == REG_IER:
            if self.lcr & LCR_DLAB:
                self.divisor = (self.divisor & 0x00FF) | (value << 8)
                return
            self.ier = value & 0x0F
            self._update_irq()
            return
        if offset == REG_IIR_FCR:
            if value & 0x02:  # FCR: clear RX FIFO
                self._rx.clear()
                self._update_irq()
            return
        if offset == REG_LCR:
            self.lcr = value
            return
        if offset == REG_MCR:
            self.mcr = value
            return
        if offset == REG_SCRATCH:
            self.scratch = value

    # -- snapshot support ----------------------------------------------------

    def state(self) -> dict:
        return {
            "ier": self.ier, "lcr": self.lcr, "mcr": self.mcr,
            "scratch": self.scratch, "divisor": self.divisor,
            "overrun": self.overrun, "rx": list(self._rx),
            "tx_count": self.tx_count, "rx_count": self.rx_count,
        }

    def load_state(self, state: dict) -> None:
        self.ier = state["ier"]
        self.lcr = state["lcr"]
        self.mcr = state["mcr"]
        self.scratch = state["scratch"]
        self.divisor = state["divisor"]
        self.overrun = state["overrun"]
        self._rx.clear()
        self._rx.extend(state["rx"])
        self.tx_count = state["tx_count"]
        self.rx_count = state["rx_count"]
        self._update_irq()


class HostSerialPort:
    """Host-debugger endpoint (side "B" of the link): a file-like pipe."""

    def __init__(self, link: SerialLink) -> None:
        self._link = link

    def send(self, data: bytes) -> None:
        for byte in data:
            delivered = self._link.filter_byte("h2t", byte)
            if delivered is not None:
                self._link.b_to_a.append(delivered)
                if self._link.taps:
                    self._link.taps("h2t", delivered)
        self._link._kick()

    def recv(self, max_bytes: int = 4096) -> bytes:
        out = bytearray()
        while self._link.a_to_b and len(out) < max_bytes:
            out.append(self._link.a_to_b.popleft())
        return bytes(out)

    def recv_available(self) -> int:
        return len(self._link.a_to_b)
