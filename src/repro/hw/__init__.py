"""Simulated PC/AT-class target hardware."""

from repro.hw.bus import IoBus, IoIntercept, MmioDevice, PortDevice
from repro.hw.cpu import Cpu, CpuFault, IdtGate
from repro.hw.mem import PhysicalMemory
from repro.hw.paging import Mmu, PageFault, PageTableBuilder
from repro.hw.seg import GdtView, SegmentDescriptor, selector

__all__ = [
    "IoBus",
    "IoIntercept",
    "MmioDevice",
    "PortDevice",
    "Cpu",
    "CpuFault",
    "IdtGate",
    "PhysicalMemory",
    "Mmu",
    "PageFault",
    "PageTableBuilder",
    "GdtView",
    "SegmentDescriptor",
    "selector",
]
