"""Disk model: an Ultra160-era SCSI drive with deterministic contents.

Block contents are synthesised from the LBA (plus a per-disk seed) so a
multi-gigabyte disk costs no host memory; writes are stored in a sparse
overlay.  Timing follows a simple seek + sustained-transfer model that is
representative of the 10k-RPM drives behind the paper's streaming
workload (~40 MB/s sustained media rate, ~5 ms average seek).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Optional

from repro.errors import DeviceError

BLOCK_SIZE = 512


def _pattern_block(seed: int, lba: int) -> bytes:
    """Deterministic 512-byte content for (seed, lba)."""
    digest = hashlib.sha256(struct.pack("<QQ", seed, lba)).digest()
    return (digest * ((BLOCK_SIZE // len(digest)) + 1))[:BLOCK_SIZE]


class Disk:
    """One drive: contents + a service-time model."""

    def __init__(self, blocks: int, seed: int = 0,
                 sustained_bytes_per_sec: float = 40e6,
                 seek_seconds: float = 0.005) -> None:
        if blocks <= 0:
            raise DeviceError(f"disk needs a positive block count: {blocks}")
        self.blocks = blocks
        self.seed = seed
        self.sustained_bytes_per_sec = sustained_bytes_per_sec
        self.seek_seconds = seek_seconds
        self._overlay: Dict[int, bytes] = {}
        self._head_lba = 0
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: Back-compat shim: when set, the next request completes with
        #: this sense key.  The HBA consumes it through the same fault
        #: path as the scheduled injectors; new code should use
        #: :class:`repro.faults.DiskInjector` instead.
        self.inject_error: Optional[int] = None

    @property
    def capacity_bytes(self) -> int:
        return self.blocks * BLOCK_SIZE

    def _check_range(self, lba: int, count: int) -> None:
        if lba < 0 or count < 0 or lba + count > self.blocks:
            raise DeviceError(
                f"LBA range [{lba}, {lba + count}) beyond {self.blocks} blocks")

    # -- contents ------------------------------------------------------------

    def read_blocks(self, lba: int, count: int) -> bytes:
        self._check_range(lba, count)
        self.reads += 1
        self.bytes_read += count * BLOCK_SIZE
        out = bytearray()
        for block in range(lba, lba + count):
            data = self._overlay.get(block)
            out += data if data is not None else _pattern_block(self.seed,
                                                                block)
        return bytes(out)

    def write_blocks(self, lba: int, data: bytes) -> None:
        if len(data) % BLOCK_SIZE:
            raise DeviceError(
                f"write length {len(data)} is not a multiple of {BLOCK_SIZE}")
        count = len(data) // BLOCK_SIZE
        self._check_range(lba, count)
        self.writes += 1
        self.bytes_written += len(data)
        for index in range(count):
            self._overlay[lba + index] = bytes(
                data[index * BLOCK_SIZE:(index + 1) * BLOCK_SIZE])

    # -- timing ------------------------------------------------------------

    def service_seconds(self, lba: int, count: int) -> float:
        """Seconds to service a request, updating the head position."""
        self._check_range(lba, count)
        sequential = lba == self._head_lba
        self._head_lba = lba + count
        transfer = count * BLOCK_SIZE / self.sustained_bytes_per_sec
        return transfer if sequential else self.seek_seconds + transfer
