"""8259A programmable interrupt controller (master/slave pair).

The PIC is the most important device in this reproduction: it is exactly
the resource the paper's lightweight VMM *must* emulate, because the
remote-debugging stub depends on interrupts (serial, timer) continuing to
work while the guest OS misbehaves.  The model implements the programming
interface the LVMM and the guest both use:

* the ICW1..ICW4 initialisation sequence on ports 0x20/0x21 (master) and
  0xA0/0xA1 (slave), with the vector base taken from ICW2;
* OCW1 (interrupt mask register) reads/writes on the data port;
* OCW2 EOI handling (non-specific and specific);
* OCW3 IRR/ISR read-back selection;
* fixed-priority resolution (IRQ0 highest), slave cascaded on IRQ2;
* level/edge behaviour reduced to edge-triggered latching into the IRR,
  which is how the PC/AT wires the devices we model.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.hw.bus import PortDevice
from repro.obs.taps import TapPoint, tap_property

MASTER_CMD, MASTER_DATA = 0x20, 0x21
SLAVE_CMD, SLAVE_DATA = 0xA0, 0xA1
CASCADE_IRQ = 2

_OCW2_EOI = 0x20
_OCW2_SPECIFIC = 0x40
_OCW3_MARKER = 0x08
_ICW1_MARKER = 0x10
_ICW1_NEED_ICW4 = 0x01


class _Pic8259:
    """One 8259A chip."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.irr = 0          # interrupt request register (latched requests)
        self.isr = 0          # in-service register
        self.imr = 0xFF       # interrupt mask register (all masked at reset)
        self.vector_base = 0
        self._init_state = 0  # how many ICWs still expected
        self._need_icw4 = False
        self._read_isr = False

    # -- device side ------------------------------------------------------

    def raise_irq(self, line: int) -> None:
        self.irr |= 1 << line

    def lower_irq(self, line: int) -> None:
        self.irr &= ~(1 << line)

    # -- priority logic ------------------------------------------------------

    def highest_pending(self) -> Optional[int]:
        """Highest-priority unmasked request not blocked by in-service."""
        pending = self.irr & ~self.imr
        if not pending:
            return None
        for line in range(8):  # IRQ0 has highest priority
            bit = 1 << line
            if self.isr & bit:
                # A higher- or equal-priority interrupt is in service.
                return None
            if pending & bit:
                return line
        return None

    def acknowledge(self, line: int) -> None:
        self.irr &= ~(1 << line)
        self.isr |= 1 << line

    def eoi(self, command: int) -> None:
        if command & _OCW2_SPECIFIC:
            line = command & 0x07
            self.isr &= ~(1 << line)
            return
        # Non-specific: clear the highest-priority in-service bit.
        for bit_index in range(8):
            bit = 1 << bit_index
            if self.isr & bit:
                self.isr &= ~bit
                return

    # -- register interface ------------------------------------------------------

    def write_command(self, value: int) -> None:
        if value & _ICW1_MARKER:  # ICW1: begin initialisation
            self._init_state = 1
            self._need_icw4 = bool(value & _ICW1_NEED_ICW4)
            self.imr = 0
            self.isr = 0
            self.irr = 0
            self._read_isr = False
            return
        if value & _OCW3_MARKER:  # OCW3
            select = value & 0x03
            if select == 0x03:
                self._read_isr = True
            elif select == 0x02:
                self._read_isr = False
            return
        if value & _OCW2_EOI:  # OCW2
            self.eoi(value)

    def write_data(self, value: int) -> None:
        if self._init_state == 1:  # ICW2: vector base
            self.vector_base = value & 0xF8
            self._init_state = 2
            return
        if self._init_state == 2:  # ICW3: cascade wiring (recorded, unused)
            self._init_state = 3 if self._need_icw4 else 0
            return
        if self._init_state == 3:  # ICW4: mode bits (recorded, unused)
            self._init_state = 0
            return
        self.imr = value & 0xFF  # OCW1

    def read_command(self) -> int:
        return self.isr if self._read_isr else self.irr

    def read_data(self) -> int:
        return self.imr


class PicPair(PortDevice):
    """The PC/AT master+slave 8259A pair, presented as one bus device.

    Registered twice on the bus (ports 0x20-0x21 and 0xA0-0xA1); IRQ
    lines 0-7 go to the master, 8-15 to the slave via the cascade.
    """

    def __init__(self) -> None:
        self.master = _Pic8259("master")
        self.slave = _Pic8259("slave")
        #: Total interrupts delivered through :meth:`acknowledge` (stats).
        self.delivered = 0
        #: Multicast observation point notified as ``taps(irq)`` on
        #: every device-side :meth:`raise_irq`.  The flight recorder
        #: journals IRQ assertion instants as cross-check evidence via
        #: the legacy :attr:`raise_tap` primary slot; the tracer
        #: subscribes alongside.  Observers must only observe.
        self.raise_taps = TapPoint()

    raise_tap = tap_property("raise_taps")

    # -- IRQ line interface (device side) -----------------------------------

    def raise_irq(self, irq: int) -> None:
        if self.raise_taps:
            self.raise_taps(irq)
        if irq < 8:
            self.master.raise_irq(irq)
        else:
            self.slave.raise_irq(irq - 8)
            self.master.raise_irq(CASCADE_IRQ)

    def lower_irq(self, irq: int) -> None:
        if irq < 8:
            self.master.lower_irq(irq)
        else:
            self.slave.lower_irq(irq - 8)
            if not self.slave.irr:
                self.master.lower_irq(CASCADE_IRQ)

    # -- CPU interface -----------------------------------------------------------

    def has_pending(self) -> bool:
        return self.pending_vector() is not None

    def pending_vector(self) -> Optional[int]:
        line = self.master.highest_pending()
        if line is None:
            return None
        if line == CASCADE_IRQ:
            slave_line = self.slave.highest_pending()
            if slave_line is None:
                return None
            return self.slave.vector_base + slave_line
        return self.master.vector_base + line

    def acknowledge(self) -> int:
        """INTA cycle: commit the pending interrupt and return its vector."""
        line = self.master.highest_pending()
        if line is None:
            raise RuntimeError("spurious acknowledge: no pending interrupt")
        if line == CASCADE_IRQ:
            slave_line = self.slave.highest_pending()
            if slave_line is None:
                raise RuntimeError("cascade raised with idle slave")
            self.master.acknowledge(CASCADE_IRQ)
            self.slave.acknowledge(slave_line)
            self.delivered += 1
            return self.slave.vector_base + slave_line
        self.master.acknowledge(line)
        self.delivered += 1
        return self.master.vector_base + line

    # -- port interface ------------------------------------------------------------
    # The bus registers this device at base 0x20 (master, offsets 0-1) and
    # base 0xA0 (slave); we disambiguate with two thin adapters below.

    def port_read(self, offset: int, size: int) -> int:  # pragma: no cover
        raise NotImplementedError("register via master_port()/slave_port()")

    def port_write(self, offset: int, value: int, size: int) -> None:  # pragma: no cover
        raise NotImplementedError("register via master_port()/slave_port()")

    def master_port(self) -> PortDevice:
        return _PicPort(self.master)

    def slave_port(self) -> PortDevice:
        return _PicPort(self.slave)

    # -- snapshots for the monitor's shadow state ---------------------------------

    def state(self) -> dict:
        return {
            "master": {"irr": self.master.irr, "isr": self.master.isr,
                       "imr": self.master.imr,
                       "base": self.master.vector_base},
            "slave": {"irr": self.slave.irr, "isr": self.slave.isr,
                      "imr": self.slave.imr,
                      "base": self.slave.vector_base},
        }


class _PicPort(PortDevice):
    """Adapter exposing one 8259 at bus offsets 0 (command) / 1 (data)."""

    def __init__(self, chip: _Pic8259) -> None:
        self._chip = chip

    def port_read(self, offset: int, size: int) -> int:
        if offset == 0:
            return self._chip.read_command()
        return self._chip.read_data()

    def port_write(self, offset: int, value: int, size: int) -> None:
        if offset == 0:
            self._chip.write_command(value & 0xFF)
        else:
            self._chip.write_data(value & 0xFF)


def standard_setup(pic: PicPair, master_base: int = 32,
                   slave_base: int = 40) -> None:
    """Program the pair the way PC/AT firmware does (vectors 32..47)."""
    master = pic.master_port()
    slave = pic.slave_port()
    for port, base in ((master, master_base), (slave, slave_base)):
        port.port_write(0, 0x11, 1)        # ICW1: edge, cascade, need ICW4
        port.port_write(1, base, 1)        # ICW2: vector base
        port.port_write(1, 0x04, 1)        # ICW3
        port.port_write(1, 0x01, 1)        # ICW4: 8086 mode
        port.port_write(1, 0x00, 1)        # OCW1: unmask everything
