"""Physical memory for the simulated target machine."""

from __future__ import annotations

import struct

from repro.errors import MemoryError_


class PhysicalMemory:
    """A flat byte-addressable RAM with bounds checking.

    All CPU, DMA and monitor accesses ultimately land here.  Accessors are
    little-endian, matching the PC/AT heritage of the modelled platform.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise MemoryError_(f"memory size must be positive, got {size}")
        self.size = size
        self._data = bytearray(size)

    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size:
            raise MemoryError_(
                f"physical access [{addr:#x}, {addr + length:#x}) outside "
                f"installed RAM of {self.size:#x} bytes")

    # -- bulk accessors ------------------------------------------------------

    def read(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        return bytes(self._data[addr:addr + length])

    def write(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self._data[addr:addr + len(data)] = data

    def fill(self, addr: int, length: int, value: int = 0) -> None:
        self._check(addr, length)
        self._data[addr:addr + length] = bytes([value & 0xFF]) * length

    # -- scalar accessors ------------------------------------------------------

    def read_u8(self, addr: int) -> int:
        self._check(addr, 1)
        return self._data[addr]

    def write_u8(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self._data[addr] = value & 0xFF

    def read_u16(self, addr: int) -> int:
        self._check(addr, 2)
        return struct.unpack_from("<H", self._data, addr)[0]

    def write_u16(self, addr: int, value: int) -> None:
        self._check(addr, 2)
        struct.pack_into("<H", self._data, addr, value & 0xFFFF)

    def read_u32(self, addr: int) -> int:
        self._check(addr, 4)
        return struct.unpack_from("<I", self._data, addr)[0]

    def write_u32(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        struct.pack_into("<I", self._data, addr, value & 0xFFFFFFFF)
