"""Physical memory for the simulated target machine."""

from __future__ import annotations

import struct

from repro.errors import MemoryError_

#: Page granularity of the write-generation bookkeeping (matches the MMU).
GEN_PAGE_SHIFT = 12


class PhysicalMemory:
    """A flat byte-addressable RAM with bounds checking.

    All CPU, DMA and monitor accesses ultimately land here.  Accessors are
    little-endian, matching the PC/AT heritage of the modelled platform.

    Every write bumps a per-page generation counter (:attr:`page_gens`).
    Translation-cache-style consumers — the CPU's decoded-instruction
    cache — snapshot the generation of the pages an entry depends on and
    treat a mismatch as "this code may have been overwritten", which
    makes self-modifying code and DMA into code pages correct without
    interposing on the read path at all.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise MemoryError_(f"memory size must be positive, got {size}")
        self.size = size
        self._data = bytearray(size)
        #: Write-generation counter per physical page, bumped on any
        #: store that touches the page (CPU, DMA or monitor alike).
        self.page_gens = [0] * ((size + (1 << GEN_PAGE_SHIFT) - 1)
                                >> GEN_PAGE_SHIFT)

    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or length < 0 or addr + length > self.size:
            raise MemoryError_(
                f"physical access [{addr:#x}, {addr + length:#x}) outside "
                f"installed RAM of {self.size:#x} bytes")

    def _bump(self, addr: int, length: int) -> None:
        gens = self.page_gens
        first = addr >> GEN_PAGE_SHIFT
        last = (addr + length - 1) >> GEN_PAGE_SHIFT if length > 1 else first
        gens[first] += 1
        if last != first:
            for page in range(first + 1, last + 1):
                gens[page] += 1

    def page_generation(self, page: int) -> int:
        """Current write generation of physical page ``page``."""
        return self.page_gens[page]

    # -- bulk accessors ------------------------------------------------------

    def read(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        return bytes(self._data[addr:addr + length])

    def write(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self._data[addr:addr + len(data)] = data
        if data:
            self._bump(addr, len(data))

    def fill(self, addr: int, length: int, value: int = 0) -> None:
        self._check(addr, length)
        self._data[addr:addr + length] = bytes([value & 0xFF]) * length
        if length:
            self._bump(addr, length)

    # -- scalar accessors ------------------------------------------------------

    def read_u8(self, addr: int) -> int:
        self._check(addr, 1)
        return self._data[addr]

    def write_u8(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self._data[addr] = value & 0xFF
        self.page_gens[addr >> GEN_PAGE_SHIFT] += 1

    def read_u16(self, addr: int) -> int:
        self._check(addr, 2)
        return struct.unpack_from("<H", self._data, addr)[0]

    def write_u16(self, addr: int, value: int) -> None:
        self._check(addr, 2)
        struct.pack_into("<H", self._data, addr, value & 0xFFFF)
        self._bump(addr, 2)

    def read_u32(self, addr: int) -> int:
        self._check(addr, 4)
        return struct.unpack_from("<I", self._data, addr)[0]

    def write_u32(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        struct.pack_into("<I", self._data, addr, value & 0xFFFFFFFF)
        self._bump(addr, 4)
