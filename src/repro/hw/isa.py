"""HX32 instruction-set definition.

HX32 is the reproduction's stand-in for IA-32: a small 32-bit register
machine that keeps exactly the architectural features the paper's
lightweight VMM relies on —

* four privilege rings with privileged instructions that fault with #GP
  when executed from an outer ring (the trap-and-emulate hook),
* segmentation with base/limit/DPL descriptors (the "lightweight memory
  protection" that gives the third protection level),
* two-level paging with supervisor/user pages (the two x86-native levels),
* an IDT with ring transitions and a software-interrupt instruction.

Encodings are deliberately simple (one opcode byte plus fixed operand
bytes per format) so that the assembler, disassembler and interpreter
stay independently testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

# ---------------------------------------------------------------------------
# Operand formats
# ---------------------------------------------------------------------------

FMT_NONE = "none"   # [op]
FMT_R = "r"         # [op][reg]
FMT_RR = "rr"       # [op][(ra<<4)|rb]
FMT_RI = "ri"       # [op][ra][imm32]
FMT_RRI = "rri"     # [op][(ra<<4)|rb][imm32]      e.g. LD ra, [rb+imm]
FMT_I32 = "i32"     # [op][imm32]
FMT_I8 = "i8"       # [op][imm8]
FMT_REL = "rel"     # [op][rel32]  (signed, relative to next instruction)
FMT_CR = "cr"       # [op][(crn<<4)|reg]
FMT_SEG = "seg"     # [op][(segn<<4)|reg]

_FORMAT_LENGTHS = {
    FMT_NONE: 1,
    FMT_R: 2,
    FMT_RR: 2,
    FMT_RI: 6,
    FMT_RRI: 6,
    FMT_I32: 5,
    FMT_I8: 2,
    FMT_REL: 5,
    FMT_CR: 2,
    FMT_SEG: 2,
}

# -- operand pre-decoding ---------------------------------------------------
#
# One decoder per format, taking the operand bytes (everything after the
# opcode byte) and returning a plain tuple/int the interpreter's handlers
# consume.  Decoding once and caching the result is what lets the CPU's
# decoded-instruction cache skip all byte slicing on the hot path.


def _dec_none(body: bytes):
    return None


def _dec_r(body: bytes) -> int:
    return body[0] & 0x7


def _dec_rr(body: bytes):
    return (body[0] >> 4) & 0x7, body[0] & 0x7


def _dec_ri(body: bytes):
    return body[0] & 0x7, int.from_bytes(body[1:5], "little")


def _dec_rri(body: bytes):
    return ((body[0] >> 4) & 0x7, body[0] & 0x7,
            int.from_bytes(body[1:5], "little"))


def _dec_i32(body: bytes) -> int:
    return int.from_bytes(body[0:4], "little")


def _dec_i8(body: bytes) -> int:
    return body[0]


def _dec_rel(body: bytes) -> int:
    return signed32(int.from_bytes(body[0:4], "little"))


#: Operand decoder per format; ``None`` formats carry no operands.
OPERAND_DECODERS: Dict[str, Optional[Callable]] = {
    FMT_NONE: None,
    FMT_R: _dec_r,
    FMT_RR: _dec_rr,
    FMT_RI: _dec_ri,
    FMT_RRI: _dec_rri,
    FMT_I32: _dec_i32,
    FMT_I8: _dec_i8,
    FMT_REL: _dec_rel,
    # CR/SEG share the RR packing; range checks stay in the handlers so
    # malformed encodings behave exactly as the pre-table interpreter did.
    FMT_CR: _dec_rr,
    FMT_SEG: _dec_rr,
}


def decode_operands(fmt: str, body: bytes):
    """Decode the operand bytes of one instruction (``None`` if none)."""
    decoder = OPERAND_DECODERS[fmt]
    return decoder(body) if decoder is not None else None


#: Privilege requirement levels for instructions.
PRIV_NONE = "none"      # always allowed
PRIV_IOPL = "iopl"      # allowed when CPL <= IOPL (CLI/STI/HLT/IN/OUT)
PRIV_RING0 = "ring0"    # allowed only at CPL == 0 (control registers, LGDT...)


@dataclass(frozen=True)
class InsnSpec:
    """Static description of one instruction."""

    opcode: int
    mnemonic: str
    fmt: str
    privilege: str = PRIV_NONE
    cycles: int = 1

    @property
    def length(self) -> int:
        return _FORMAT_LENGTHS[self.fmt]


def _spec(opcode: int, mnemonic: str, fmt: str, privilege: str = PRIV_NONE,
          cycles: int = 1) -> InsnSpec:
    return InsnSpec(opcode, mnemonic, fmt, privilege, cycles)


#: The full instruction table, keyed by opcode byte.
SPECS: Dict[int, InsnSpec] = {}

#: Same table keyed by mnemonic (assembler lookup).
BY_MNEMONIC: Dict[str, InsnSpec] = {}


def _register(spec: InsnSpec) -> None:
    if spec.opcode in SPECS:
        raise ValueError(f"duplicate opcode 0x{spec.opcode:02x}")
    if spec.mnemonic in BY_MNEMONIC:
        raise ValueError(f"duplicate mnemonic {spec.mnemonic}")
    SPECS[spec.opcode] = spec
    BY_MNEMONIC[spec.mnemonic] = spec


for _s in [
    # -- control ------------------------------------------------------------
    _spec(0x00, "NOP", FMT_NONE),
    _spec(0x01, "HLT", FMT_NONE, PRIV_IOPL, cycles=4),
    _spec(0x02, "CLI", FMT_NONE, PRIV_IOPL, cycles=2),
    _spec(0x03, "STI", FMT_NONE, PRIV_IOPL, cycles=2),
    _spec(0x04, "IRET", FMT_NONE, cycles=8),
    _spec(0x05, "RET", FMT_NONE, cycles=3),
    _spec(0x06, "BKPT", FMT_NONE, cycles=1),
    _spec(0x07, "VMCALL", FMT_NONE, cycles=2),
    # -- data movement ------------------------------------------------------
    _spec(0x10, "MOVI", FMT_RI),
    _spec(0x11, "MOV", FMT_RR),
    _spec(0x12, "LD", FMT_RRI, cycles=2),
    _spec(0x13, "ST", FMT_RRI, cycles=2),
    _spec(0x14, "LD8", FMT_RRI, cycles=2),
    _spec(0x15, "ST8", FMT_RRI, cycles=2),
    _spec(0x16, "LD16", FMT_RRI, cycles=2),
    _spec(0x17, "ST16", FMT_RRI, cycles=2),
    _spec(0x18, "LEA", FMT_RRI),
    _spec(0x19, "PUSH", FMT_R, cycles=2),
    _spec(0x1A, "PUSHI", FMT_I32, cycles=2),
    _spec(0x1B, "POP", FMT_R, cycles=2),
    # PUSHF/POPF are deliberately NOT privileged: like IA-32, POPF from
    # an outer ring silently preserves IF/IOPL instead of faulting —
    # the classic virtualisation hole monitors must design around.
    _spec(0x1C, "PUSHF", FMT_NONE, cycles=2),
    _spec(0x1D, "POPF", FMT_NONE, cycles=2),
    _spec(0x1E, "XCHG", FMT_RR, cycles=2),
    # -- ALU ------------------------------------------------------------------
    _spec(0x20, "ADD", FMT_RR),
    _spec(0x21, "ADDI", FMT_RI),
    _spec(0x22, "SUB", FMT_RR),
    _spec(0x23, "SUBI", FMT_RI),
    _spec(0x24, "AND", FMT_RR),
    _spec(0x25, "ANDI", FMT_RI),
    _spec(0x26, "OR", FMT_RR),
    _spec(0x27, "ORI", FMT_RI),
    _spec(0x28, "XOR", FMT_RR),
    _spec(0x29, "XORI", FMT_RI),
    _spec(0x2A, "SHL", FMT_RR),
    _spec(0x2B, "SHLI", FMT_RI),
    _spec(0x2C, "SHR", FMT_RR),
    _spec(0x2D, "SHRI", FMT_RI),
    _spec(0x2E, "MUL", FMT_RR, cycles=3),
    _spec(0x2F, "MULI", FMT_RI, cycles=3),
    _spec(0x30, "DIV", FMT_RR, cycles=12),
    _spec(0x31, "DIVI", FMT_RI, cycles=12),
    _spec(0x32, "NOT", FMT_R),
    _spec(0x33, "NEG", FMT_R),
    _spec(0x34, "CMP", FMT_RR),
    _spec(0x35, "CMPI", FMT_RI),
    _spec(0x36, "TEST", FMT_RR),
    # -- control flow ---------------------------------------------------------
    _spec(0x40, "JMP", FMT_REL),
    _spec(0x41, "JZ", FMT_REL),
    _spec(0x42, "JNZ", FMT_REL),
    _spec(0x43, "JC", FMT_REL),
    _spec(0x44, "JNC", FMT_REL),
    _spec(0x45, "JG", FMT_REL),
    _spec(0x46, "JGE", FMT_REL),
    _spec(0x47, "JL", FMT_REL),
    _spec(0x48, "JLE", FMT_REL),
    _spec(0x49, "JS", FMT_REL),
    _spec(0x4A, "JNS", FMT_REL),
    _spec(0x4B, "CALL", FMT_REL, cycles=3),
    _spec(0x4C, "JMPR", FMT_R, cycles=2),
    _spec(0x4D, "CALLR", FMT_R, cycles=3),
    # -- traps and I/O ----------------------------------------------------------
    _spec(0x50, "INT", FMT_I8, cycles=10),
    _spec(0x51, "INB", FMT_RR, PRIV_IOPL, cycles=6),
    _spec(0x52, "OUTB", FMT_RR, PRIV_IOPL, cycles=6),
    _spec(0x53, "INW", FMT_RR, PRIV_IOPL, cycles=6),
    _spec(0x54, "OUTW", FMT_RR, PRIV_IOPL, cycles=6),
    # -- system state ------------------------------------------------------------
    _spec(0x60, "MOVCR", FMT_CR, PRIV_RING0, cycles=4),   # CRn <- reg
    _spec(0x61, "MOVRC", FMT_CR, PRIV_RING0, cycles=4),   # reg <- CRn
    _spec(0x62, "LGDT", FMT_R, PRIV_RING0, cycles=6),
    _spec(0x63, "LIDT", FMT_R, PRIV_RING0, cycles=6),
    _spec(0x64, "LTSS", FMT_R, PRIV_RING0, cycles=6),
    _spec(0x65, "MOVSEG", FMT_SEG, cycles=4),             # SEGn <- reg (selector)
    _spec(0x66, "MOVSGR", FMT_SEG, cycles=2),             # reg <- SEGn selector
]:
    _register(_s)


# ---------------------------------------------------------------------------
# Register / segment / control-register name maps
# ---------------------------------------------------------------------------

NUM_GPRS = 8
REG_NAMES = tuple(f"R{i}" for i in range(NUM_GPRS))
#: Conventional roles: R6 is the frame pointer, R7 the stack pointer.
REG_FP = 6
REG_SP = 7

REG_ALIASES = {"FP": REG_FP, "SP": REG_SP}

SEG_CS, SEG_DS, SEG_SS = 0, 1, 2
SEG_NAMES = ("CS", "DS", "SS")

CR_NAMES = ("CR0", "CR1", "CR2", "CR3")
CR0, CR1, CR2, CR3 = 0, 1, 2, 3

#: CR0 feature bits.
CR0_PG = 1 << 31  # paging enabled

# FLAGS register bits (IA-32-like positions).
FLAG_CF = 1 << 0
FLAG_ZF = 1 << 6
FLAG_SF = 1 << 7
FLAG_TF = 1 << 8    # single-step trap
FLAG_IF = 1 << 9    # interrupt enable
FLAG_OF = 1 << 11
IOPL_SHIFT = 12
IOPL_MASK = 0b11 << IOPL_SHIFT

# Exception vectors (IA-32 numbering where it exists).
VEC_DE = 0    # divide error
VEC_DB = 1    # debug (single-step)
VEC_BP = 3    # breakpoint (BKPT)
VEC_UD = 6    # invalid opcode
VEC_DF = 8    # double fault
VEC_SS = 12   # stack-segment fault
VEC_GP = 13   # general protection
VEC_PF = 14   # page fault
VEC_VMCALL = 15  # VMCALL lands here when no monitor intercepts it

#: Vectors that push an error code on delivery.
ERROR_CODE_VECTORS = frozenset({VEC_DF, VEC_SS, VEC_GP, VEC_PF})

#: Vectors that are *faults* (re-execute the instruction after IRET) as
#: opposed to traps (resume after it).
FAULT_VECTORS = frozenset({VEC_DE, VEC_UD, VEC_DF, VEC_SS, VEC_GP, VEC_PF})

#: First vector used for external (device) interrupts; the PIC is
#: conventionally programmed with this base.
IRQ_BASE_VECTOR = 32


def reg_number(name: str) -> Optional[int]:
    """Parse a register name (``R0``..``R7``, ``SP``, ``FP``); None if invalid."""
    upper = name.upper()
    if upper in REG_ALIASES:
        return REG_ALIASES[upper]
    if upper.startswith("R") and upper[1:].isdigit():
        number = int(upper[1:])
        if 0 <= number < NUM_GPRS:
            return number
    return None


def mask32(value: int) -> int:
    """Truncate to an unsigned 32-bit value."""
    return value & 0xFFFFFFFF


def signed32(value: int) -> int:
    """Interpret a 32-bit pattern as signed."""
    value = mask32(value)
    return value - 0x100000000 if value & 0x80000000 else value
