"""Segmentation: descriptors, the GDT, and segment-limit checking.

Segmentation is the architectural lever the paper's "lightweight memory
protection mechanism" pulls.  x86 paging distinguishes only supervisor
from user; by running the guest kernel in ring 1 with **truncated segment
limits**, the monitor makes its own memory unreachable from the guest
kernel even though both are "supervisor" to the paging unit.  That is the
third protection level.

Descriptors here are a simplified flat model: base + limit + DPL +
type (code/data) + writable flag, serialised to 12 bytes in the GDT:

    offset 0: base   (u32)
    offset 4: limit  (u32, byte-granular; highest *valid* offset + 1)
    offset 8: flags  (u32: bit0 present, bit1 code, bit2 writable,
                      bits 4-5 DPL)

A selector is ``(index << 2) | RPL`` with a 2-bit requested privilege
level, mirroring x86's ``(index << 3) | TI | RPL`` without the LDT bit.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import MemoryError_

DESCRIPTOR_SIZE = 12

_F_PRESENT = 1 << 0
_F_CODE = 1 << 1
_F_WRITABLE = 1 << 2
_DPL_SHIFT = 4
_DPL_MASK = 0b11 << _DPL_SHIFT


@dataclass(frozen=True)
class SegmentDescriptor:
    """An in-memory segment descriptor, decoded."""

    base: int
    limit: int          # first *invalid* offset; limit==0 means empty segment
    dpl: int
    code: bool = False
    writable: bool = True
    present: bool = True

    def pack(self) -> bytes:
        flags = 0
        if self.present:
            flags |= _F_PRESENT
        if self.code:
            flags |= _F_CODE
        if self.writable:
            flags |= _F_WRITABLE
        flags |= (self.dpl & 0b11) << _DPL_SHIFT
        return struct.pack("<III", self.base & 0xFFFFFFFF,
                           self.limit & 0xFFFFFFFF, flags)

    @classmethod
    def unpack(cls, raw: bytes) -> "SegmentDescriptor":
        if len(raw) != DESCRIPTOR_SIZE:
            raise MemoryError_(
                f"descriptor must be {DESCRIPTOR_SIZE} bytes, got {len(raw)}")
        base, limit, flags = struct.unpack("<III", raw)
        return cls(
            base=base,
            limit=limit,
            dpl=(flags & _DPL_MASK) >> _DPL_SHIFT,
            code=bool(flags & _F_CODE),
            writable=bool(flags & _F_WRITABLE),
            present=bool(flags & _F_PRESENT),
        )

    def contains(self, offset: int, length: int = 1) -> bool:
        """True when [offset, offset+length) lies inside the limit."""
        return 0 <= offset and offset + length <= self.limit

    def truncated(self, new_limit: int) -> "SegmentDescriptor":
        """A copy with the limit clamped to ``new_limit`` (monitor trick)."""
        return SegmentDescriptor(
            base=self.base,
            limit=min(self.limit, new_limit),
            dpl=self.dpl,
            code=self.code,
            writable=self.writable,
            present=self.present,
        )


def selector(index: int, rpl: int = 0) -> int:
    """Build a selector from a GDT index and requested privilege level."""
    return ((index & 0x3FFF) << 2) | (rpl & 0b11)


def selector_index(sel: int) -> int:
    return (sel >> 2) & 0x3FFF


def selector_rpl(sel: int) -> int:
    return sel & 0b11


class GdtView:
    """Reads descriptors out of guest physical memory given GDTR contents.

    The CPU re-reads descriptors on every segment-register load, exactly
    like the hidden-cache reload on x86 — which is what lets a monitor
    rewrite the GDT under the guest (limit truncation) and have the new
    limits take effect on the next reload.
    """

    def __init__(self, memory, base: int = 0, limit: int = 0) -> None:
        self._memory = memory
        self.base = base
        self.limit = limit  # number of valid descriptor *bytes*

    def load(self, base: int, limit: int) -> None:
        self.base = base
        self.limit = limit

    def descriptor_count(self) -> int:
        return self.limit // DESCRIPTOR_SIZE

    def read(self, index: int) -> SegmentDescriptor:
        offset = index * DESCRIPTOR_SIZE
        if offset + DESCRIPTOR_SIZE > self.limit:
            raise IndexError(f"GDT index {index} beyond limit {self.limit}")
        raw = self._memory.read(self.base + offset, DESCRIPTOR_SIZE)
        return SegmentDescriptor.unpack(raw)

    def write(self, index: int, descriptor: SegmentDescriptor) -> None:
        offset = index * DESCRIPTOR_SIZE
        if offset + DESCRIPTOR_SIZE > self.limit:
            raise IndexError(f"GDT index {index} beyond limit {self.limit}")
        self._memory.write(self.base + offset, descriptor.pack())
