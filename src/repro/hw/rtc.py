"""MC146818-style real-time clock (the PC/AT CMOS RTC).

Port interface: 0x70 selects a register, 0x71 reads/writes it.  The
model keeps simulated wall time (derived from the event queue's cycle
clock against a settable epoch), BCD or binary per status-B, a periodic
interrupt with the standard rate-select encoding, and an alarm.  IRQ 8
on the slave PIC, acknowledged by reading status C — the detail every
RTC driver author forgets once.

Under the lightweight VMM the RTC is guest-owned (like the SCSI HBA):
the monitor keeps its own time from the PIT and does not claim these
ports.
"""

from __future__ import annotations

import datetime
from typing import Callable, Optional

from repro.errors import DeviceError
from repro.hw.bus import PortDevice
from repro.obs.taps import TapPoint, tap_property
from repro.sim.events import Event, EventQueue

PORT_INDEX = 0x70
PORT_DATA = 0x71
PORT_BASE_RTC = PORT_INDEX
IRQ_RTC = 8

REG_SECONDS = 0x00
REG_SECONDS_ALARM = 0x01
REG_MINUTES = 0x02
REG_MINUTES_ALARM = 0x03
REG_HOURS = 0x04
REG_HOURS_ALARM = 0x05
REG_WEEKDAY = 0x06
REG_DAY = 0x07
REG_MONTH = 0x08
REG_YEAR = 0x09
REG_STATUS_A = 0x0A
REG_STATUS_B = 0x0B
REG_STATUS_C = 0x0C

STATUS_B_24H = 1 << 1
STATUS_B_BINARY = 1 << 2
STATUS_B_PERIODIC_IRQ = 1 << 6
STATUS_B_ALARM_IRQ = 1 << 5

STATUS_C_PERIODIC = 1 << 6
STATUS_C_ALARM = 1 << 5
STATUS_C_IRQF = 1 << 7

#: Alarm registers matching any value (MC146818 "don't care").
ALARM_ANY = 0xC0

#: Periodic rates: rate-select value -> frequency (32.768 kHz chain).
def _rate_hz(rate_select: int) -> float:
    if rate_select == 0:
        return 0.0
    if rate_select in (1, 2):
        rate_select += 7
    # Datasheet: frequency = 32768 >> (rate_select - 1).
    return 32768.0 / (1 << (rate_select - 1))


def _to_bcd(value: int) -> int:
    return ((value // 10) << 4) | (value % 10)


def _from_bcd(value: int) -> int:
    return (value >> 4) * 10 + (value & 0x0F)


class Rtc(PortDevice):
    """The clock, tied to the machine's cycle clock."""

    def __init__(self, queue: EventQueue, cpu_hz: float,
                 raise_irq: Callable[[], None],
                 epoch: Optional[datetime.datetime] = None) -> None:
        self._queue = queue
        self._cpu_hz = cpu_hz
        self._raise_irq = raise_irq
        # The sort of date a 2005 testbed would show.
        self.epoch = epoch or datetime.datetime(2005, 3, 7, 9, 30, 0)
        self._index = 0
        self.status_b = STATUS_B_24H  # BCD, 24h, interrupts off
        self._status_c = 0
        self._alarm = [ALARM_ANY, ALARM_ANY, ALARM_ANY]  # sec, min, hour
        self._periodic_event: Optional[Event] = None
        self._rate_select = 6  # 1024 Hz, the power-on default
        self.periodic_fired = 0
        self.alarms_fired = 0
        self._alarm_event: Optional[Event] = None
        #: Multicast observation point notified as ``taps(register,
        #: value)`` on every data-port read.  RTC reads are a
        #: nondeterminism boundary in general (wall time); here they
        #: derive from the cycle clock, so the flight recorder journals
        #: them as cross-check evidence (via the legacy
        #: :attr:`read_tap` primary slot) rather than replayable input;
        #: the tracer subscribes alongside.  Observers must only observe.
        self.read_taps = TapPoint()

    read_tap = tap_property("read_taps")

    # -- time ------------------------------------------------------------

    def now(self) -> datetime.datetime:
        elapsed = self._queue.now / self._cpu_hz
        return self.epoch + datetime.timedelta(seconds=int(elapsed))

    def _encode(self, value: int) -> int:
        if self.status_b & STATUS_B_BINARY:
            return value & 0xFF
        return _to_bcd(value)

    def _decode(self, value: int) -> int:
        if self.status_b & STATUS_B_BINARY:
            return value & 0xFF
        return _from_bcd(value)

    # -- port interface ------------------------------------------------------

    def port_write(self, offset: int, value: int, size: int) -> None:
        if offset == 0:  # index register
            self._index = value & 0x7F
            return
        register = self._index
        if register == REG_STATUS_B:
            self.status_b = value & 0xFF
            self._reprogram_periodic()
            self._arm_alarm()
            return
        if register == REG_STATUS_A:
            self._rate_select = value & 0x0F
            self._reprogram_periodic()
            return
        if register == REG_SECONDS_ALARM:
            self._alarm[0] = value & 0xFF
        elif register == REG_MINUTES_ALARM:
            self._alarm[1] = value & 0xFF
        elif register == REG_HOURS_ALARM:
            self._alarm[2] = value & 0xFF
        elif register in (REG_SECONDS, REG_MINUTES, REG_HOURS,
                          REG_DAY, REG_MONTH, REG_YEAR, REG_WEEKDAY):
            raise DeviceError(
                "setting the clock is not modelled; set .epoch instead")
        if register in (REG_SECONDS_ALARM, REG_MINUTES_ALARM,
                        REG_HOURS_ALARM):
            self._arm_alarm()

    def port_read(self, offset: int, size: int) -> int:
        if offset == 0:
            return self._index
        register = self._index
        value = self._read_register(register)
        if self.read_taps:
            self.read_taps(register, value)
        return value

    def _read_register(self, register: int) -> int:
        current = self.now()
        if register == REG_SECONDS:
            return self._encode(current.second)
        if register == REG_MINUTES:
            return self._encode(current.minute)
        if register == REG_HOURS:
            return self._encode(current.hour)
        if register == REG_WEEKDAY:
            return self._encode(current.isoweekday() % 7 + 1)
        if register == REG_DAY:
            return self._encode(current.day)
        if register == REG_MONTH:
            return self._encode(current.month)
        if register == REG_YEAR:
            return self._encode(current.year % 100)
        if register == REG_STATUS_A:
            return self._rate_select
        if register == REG_STATUS_B:
            return self.status_b
        if register == REG_STATUS_C:
            # Reading C returns and clears the pending causes.
            value = self._status_c
            self._status_c = 0
            return value
        if register in (REG_SECONDS_ALARM, REG_MINUTES_ALARM,
                        REG_HOURS_ALARM):
            return self._alarm[
                (register - REG_SECONDS_ALARM) // 2]
        return 0

    # -- periodic interrupt ------------------------------------------------------

    def _reprogram_periodic(self) -> None:
        if self._periodic_event is not None:
            self._periodic_event.cancel()
            self._periodic_event = None
        if not self.status_b & STATUS_B_PERIODIC_IRQ:
            return
        hz = _rate_hz(self._rate_select)
        if hz <= 0:
            return
        period = max(1, int(self._cpu_hz / hz))
        self._periodic_event = self._queue.schedule_in(
            period, self._periodic_tick, name="rtc-periodic")

    def _periodic_tick(self) -> None:
        self.periodic_fired += 1
        self._status_c |= STATUS_C_PERIODIC | STATUS_C_IRQF
        self._raise_irq()
        hz = _rate_hz(self._rate_select)
        period = max(1, int(self._cpu_hz / hz))
        self._periodic_event = self._queue.schedule_in(
            period, self._periodic_tick, name="rtc-periodic")

    # -- alarm ------------------------------------------------------------

    def _alarm_matches(self, moment: datetime.datetime) -> bool:
        fields = (moment.second, moment.minute, moment.hour)
        for target, actual in zip(self._alarm, fields):
            if target & ALARM_ANY == ALARM_ANY:
                continue
            if self._decode(target) != actual:
                return False
        return True

    def _arm_alarm(self) -> None:
        if self._alarm_event is not None:
            self._alarm_event.cancel()
            self._alarm_event = None
        if not self.status_b & STATUS_B_ALARM_IRQ:
            return
        # Scan forward second by second for the next match (bounded to
        # one day, the MC146818's alarm horizon).
        current = self.now()
        for offset in range(1, 24 * 3600 + 1):
            candidate = current + datetime.timedelta(seconds=offset)
            if self._alarm_matches(candidate):
                delay = int(offset * self._cpu_hz) \
                    - (self._queue.now % int(self._cpu_hz))
                self._alarm_event = self._queue.schedule_in(
                    max(1, delay), self._alarm_fire, name="rtc-alarm")
                return

    def _alarm_fire(self) -> None:
        self.alarms_fired += 1
        self._status_c |= STATUS_C_ALARM | STATUS_C_IRQF
        self._raise_irq()
        self._arm_alarm()  # MC146818 alarms repeat daily/period-ly

    # -- snapshot support ----------------------------------------------------

    @staticmethod
    def _remaining(event: Optional[Event], now: int) -> Optional[int]:
        if event is None or event.cancelled or event.fired:
            return None
        return max(0, event.time - now)

    def state(self) -> dict:
        """Register state plus remaining delays of the armed timers.

        Delays are stored relative to the queue clock because restore
        never rewinds simulated time; :meth:`load_state` re-arms the
        events that distance into the new future.
        """
        now = self._queue.now
        return {
            "index": self._index,
            "status_b": self.status_b,
            "status_c": self._status_c,
            "alarm": list(self._alarm),
            "rate_select": self._rate_select,
            "periodic_fired": self.periodic_fired,
            "alarms_fired": self.alarms_fired,
            "periodic_in": self._remaining(self._periodic_event, now),
            "alarm_in": self._remaining(self._alarm_event, now),
        }

    def load_state(self, state: dict) -> None:
        self._index = state["index"]
        self.status_b = state["status_b"]
        self._status_c = state["status_c"]
        self._alarm = list(state["alarm"])
        self._rate_select = state["rate_select"]
        self.periodic_fired = state["periodic_fired"]
        self.alarms_fired = state["alarms_fired"]
        if self._periodic_event is not None:
            self._periodic_event.cancel()
            self._periodic_event = None
        if state["periodic_in"] is not None:
            self._periodic_event = self._queue.schedule_in(
                state["periodic_in"], self._periodic_tick,
                name="rtc-periodic")
        if self._alarm_event is not None:
            self._alarm_event.cancel()
            self._alarm_event = None
        if state["alarm_in"] is not None:
            self._alarm_event = self._queue.schedule_in(
                state["alarm_in"], self._alarm_fire, name="rtc-alarm")
