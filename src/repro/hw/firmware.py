"""Boot-firmware helpers: canonical GDT / IDT / TSS layouts.

Everything that brings up an HX32 machine — the bare-metal runner, the
monitors, the guest kernel builder and dozens of tests — needs the same
boilerplate: a GDT with flat code/data descriptors for rings 0, 1 and 3,
an IDT full of gates, and a TSS holding the inner-ring stack pointers.
This module is that firmware.

Canonical physical memory map used throughout the reproduction::

    0x0000_1000  GDT
    0x0000_2000  IDT (256 gates)
    0x0000_3000  TSS (ring-stack table)
    0x0000_8000  ring-0 stack top (grows down)
    0x0000_C000  ring-1 stack top
    0x0000_F000  ring-3 stack top
    0x0020_0000  guest kernel image
    0x0030_0000  guest application image
    0x0040_0000  I/O buffers
    top - 1 MiB  monitor region (shadow GDT/IDT, stub state)

The monitor lives in the **last** megabyte of RAM so that truncating the
guest's segment limits to ``monitor_base`` hides it — the classic
segment-truncation protection trick the paper's "lightweight memory
protection mechanism" corresponds to.  Everything the guest may touch
sits below it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hw.cpu import IDT_ENTRY_SIZE, GATE_TYPE_INTERRUPT, IdtGate
from repro.hw.seg import DESCRIPTOR_SIZE, SegmentDescriptor, selector

GDT_BASE = 0x1000
IDT_BASE = 0x2000
TSS_BASE = 0x3000
RING0_STACK_TOP = 0x8000
RING1_STACK_TOP = 0xC000
RING3_STACK_TOP = 0xF000
GUEST_KERNEL_BASE = 0x20_0000
GUEST_APP_BASE = 0x30_0000
BUFFER_BASE = 0x40_0000
MONITOR_SIZE = 0x10_0000


def monitor_base(memory_size: int) -> int:
    """Physical base of the monitor's private region (the top 1 MiB)."""
    return memory_size - MONITOR_SIZE

IDT_ENTRIES = 256

# GDT indices of the flat descriptors.
IDX_NULL = 0
IDX_CODE0 = 1
IDX_DATA0 = 2
IDX_CODE1 = 3
IDX_DATA1 = 4
IDX_CODE3 = 5
IDX_DATA3 = 6
GDT_DESCRIPTORS = 7


@dataclass(frozen=True)
class Selectors:
    """The canonical selector set for a flat three-ring layout."""

    code0: int
    data0: int
    code1: int
    data1: int
    code3: int
    data3: int

    def code_for_ring(self, ring: int) -> int:
        return {0: self.code0, 1: self.code1, 3: self.code3}[ring]

    def data_for_ring(self, ring: int) -> int:
        return {0: self.data0, 1: self.data1, 3: self.data3}[ring]


def build_gdt(memory, limit: int, gdt_base: int = GDT_BASE) -> Selectors:
    """Write the flat descriptor set and return its selectors.

    ``limit`` is the highest linear address + 1 the segments may reach;
    firmware uses installed-RAM size, the monitor later truncates the
    guest's copies to protect itself.
    """
    def write(index: int, descriptor: SegmentDescriptor) -> None:
        memory.write(gdt_base + index * DESCRIPTOR_SIZE, descriptor.pack())

    write(IDX_NULL, SegmentDescriptor(0, 0, 0, present=False))
    write(IDX_CODE0, SegmentDescriptor(0, limit, 0, code=True))
    write(IDX_DATA0, SegmentDescriptor(0, limit, 0))
    write(IDX_CODE1, SegmentDescriptor(0, limit, 1, code=True))
    write(IDX_DATA1, SegmentDescriptor(0, limit, 1))
    write(IDX_CODE3, SegmentDescriptor(0, limit, 3, code=True))
    write(IDX_DATA3, SegmentDescriptor(0, limit, 3))
    return Selectors(
        code0=selector(IDX_CODE0, 0), data0=selector(IDX_DATA0, 0),
        code1=selector(IDX_CODE1, 1), data1=selector(IDX_DATA1, 1),
        code3=selector(IDX_CODE3, 3), data3=selector(IDX_DATA3, 3))


def write_idt_gate(memory, vector: int, offset: int, code_selector: int,
                   dpl: int = 0, gate_type: int = GATE_TYPE_INTERRUPT,
                   idt_base: int = IDT_BASE) -> None:
    """Install one IDT gate."""
    gate = IdtGate(offset=offset, selector=code_selector, present=True,
                   dpl=dpl, gate_type=gate_type)
    memory.write(idt_base + vector * IDT_ENTRY_SIZE, gate.pack())


def clear_idt(memory, idt_base: int = IDT_BASE) -> None:
    """Fill the IDT with not-present gates."""
    memory.fill(idt_base, IDT_ENTRIES * IDT_ENTRY_SIZE, 0)


def write_tss(memory, ring_stacks: Dict[int, tuple],
              tss_base: int = TSS_BASE) -> None:
    """Write the ring-stack table: ``{ring: (sp, ss_selector)}``."""
    for ring, (sp, ss) in ring_stacks.items():
        memory.write_u32(tss_base + ring * 8, sp)
        memory.write_u32(tss_base + ring * 8 + 4, ss)


def install_flat_firmware(cpu, memory_limit: int = None) -> Selectors:
    """Full firmware bring-up directly on a CPU (host-side shortcut).

    Builds GDT/TSS/empty IDT in memory, points GDTR/IDTR/TR at them, and
    loads flat ring-0 segments.  Equivalent to what the boot assembly
    does, exposed for tests and monitors that construct machines in
    Python.
    """
    memory = cpu.memory
    limit = memory_limit if memory_limit is not None else memory.size
    selectors = build_gdt(memory, limit)
    clear_idt(memory)
    write_tss(memory, {
        0: (RING0_STACK_TOP, selectors.data0),
        1: (RING1_STACK_TOP, selectors.data1),
    })
    cpu.gdt.load(GDT_BASE, GDT_DESCRIPTORS * DESCRIPTOR_SIZE)
    cpu.idtr_base = IDT_BASE
    cpu.idtr_limit = IDT_ENTRIES * IDT_ENTRY_SIZE
    cpu.tss_base = TSS_BASE

    from repro.hw.seg import SegmentDescriptor as _SD
    code = _SD(0, limit, 0, code=True)
    data = _SD(0, limit, 0)
    cpu.force_segment(0, selectors.code0, code)
    cpu.force_segment(1, selectors.data0, data)
    cpu.force_segment(2, selectors.data0, data)
    cpu.sp = RING0_STACK_TOP
    return selectors
