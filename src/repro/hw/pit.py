"""8254 programmable interval timer.

Channel 0 drives IRQ0 — the OS scheduler tick, and one of the two
hardware resources (with the interrupt controller) that the paper's
lightweight VMM emulates so the debug stub keeps a time base of its own.

The model implements the command/data protocol on ports 0x40-0x43:
lo/hi byte count loading, mode 0 (one-shot), mode 2 (rate generator) and
mode 3 (square wave, delivered as periodic interrupts like mode 2), and
latched count read-back.  Expiry is driven by the discrete-event queue in
units of CPU cycles: the PC/AT PIT input clock is 1.193182 MHz, so one
PIT tick is ``cpu_hz / 1_193_182`` cycles.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import DeviceError
from repro.hw.bus import PortDevice
from repro.sim.events import Event, EventQueue

PIT_HZ = 1_193_182.0
PORT_BASE = 0x40  # channels 0-2 at 0x40-0x42, command at 0x43

MODE_ONESHOT = 0
MODE_RATE = 2
MODE_SQUARE = 3


class _Channel:
    def __init__(self, index: int) -> None:
        self.index = index
        self.mode = MODE_RATE
        self.reload = 0
        self.latched: Optional[int] = None
        self._load_state = 0       # 0 = expect low byte, 1 = expect high
        self._partial = 0
        self.running = False


class Pit8254(PortDevice):
    """The PIT, wired to the event queue and an IRQ-raising callback."""

    def __init__(self, queue: EventQueue, cpu_hz: float,
                 raise_irq: Callable[[], None]) -> None:
        self._queue = queue
        self._cycles_per_tick = cpu_hz / PIT_HZ
        self._raise_irq = raise_irq
        self._channels = [_Channel(i) for i in range(3)]
        self._pending: Optional[Event] = None
        #: Number of channel-0 expirations (stats / tests).
        self.fired = 0

    # -- port interface ------------------------------------------------------

    def port_write(self, offset: int, value: int, size: int) -> None:
        value &= 0xFF
        if offset == 3:  # command register
            self._command(value)
            return
        if offset > 2:
            raise DeviceError(f"PIT has no register at offset {offset}")
        channel = self._channels[offset]
        if channel._load_state == 0:
            channel._partial = value
            channel._load_state = 1
            return
        channel.reload = channel._partial | (value << 8)
        channel._load_state = 0
        channel.running = True
        if offset == 0:
            self._arm_channel0()

    def port_read(self, offset: int, size: int) -> int:
        if offset > 2:
            return 0
        channel = self._channels[offset]
        count = channel.latched if channel.latched is not None \
            else self._current_count(channel)
        if channel._load_state == 0:
            channel._load_state = 1
            channel._partial = count  # reuse as the latched value holder
            return count & 0xFF
        channel._load_state = 0
        value = (channel._partial >> 8) & 0xFF
        channel.latched = None
        return value

    def _command(self, value: int) -> None:
        channel_index = (value >> 6) & 0x03
        if channel_index == 3:
            return  # read-back command: unsupported, ignored
        channel = self._channels[channel_index]
        access = (value >> 4) & 0x03
        if access == 0:  # counter latch
            channel.latched = self._current_count(channel)
            return
        if access != 3:
            raise DeviceError("only lo/hi access mode is modelled")
        channel.mode = (value >> 1) & 0x07
        channel._load_state = 0
        channel.running = False
        if channel_index == 0 and self._pending is not None:
            self._pending.cancel()
            self._pending = None

    # -- timing ------------------------------------------------------------

    def _effective_reload(self, channel: _Channel) -> int:
        return channel.reload if channel.reload else 0x10000

    def _period_cycles(self, channel: _Channel) -> int:
        return max(1, int(self._effective_reload(channel)
                          * self._cycles_per_tick))

    def _current_count(self, channel: _Channel) -> int:
        # Approximation: report the reload value; fine-grained countdown
        # is not observable by the software we run.
        return self._effective_reload(channel) & 0xFFFF

    def _arm_channel0(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
        channel = self._channels[0]
        self._pending = self._queue.schedule_in(
            self._period_cycles(channel), self._expire, name="pit0")

    def _expire(self) -> None:
        channel = self._channels[0]
        self.fired += 1
        self._raise_irq()
        if channel.mode in (MODE_RATE, MODE_SQUARE) and channel.running:
            self._pending = self._queue.schedule_in(
                self._period_cycles(channel), self._expire, name="pit0")
        else:
            self._pending = None

    # -- snapshot support ----------------------------------------------------

    def state(self) -> dict:
        """Channel state plus the remaining delay of the armed expiry.

        The delay is relative to the queue clock (restore never rewinds
        simulated time); :meth:`load_state` re-arms that far into the
        new future.
        """
        pending_in = None
        if self._pending is not None and not self._pending.cancelled \
                and not self._pending.fired:
            pending_in = max(0, self._pending.time - self._queue.now)
        return {
            "channels": [
                {"mode": ch.mode, "reload": ch.reload,
                 "latched": ch.latched, "load_state": ch._load_state,
                 "partial": ch._partial, "running": ch.running}
                for ch in self._channels],
            "fired": self.fired,
            "pending_in": pending_in,
        }

    def load_state(self, state: dict) -> None:
        for channel, data in zip(self._channels, state["channels"]):
            channel.mode = data["mode"]
            channel.reload = data["reload"]
            channel.latched = data["latched"]
            channel._load_state = data["load_state"]
            channel._partial = data["partial"]
            channel.running = data["running"]
        self.fired = state["fired"]
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        if state["pending_in"] is not None:
            self._pending = self._queue.schedule_in(
                state["pending_in"], self._expire, name="pit0")

    # -- helpers used by firmware/monitor code ---------------------------------

    def program_periodic(self, hz: float) -> None:
        """Program channel 0 for a periodic interrupt at ``hz``."""
        if hz <= 0:
            raise DeviceError(f"PIT frequency must be positive, got {hz}")
        divisor = int(round(PIT_HZ / hz))
        if not 1 <= divisor <= 0x10000:
            raise DeviceError(f"PIT divisor {divisor} out of range")
        self.port_write(3, 0x34, 1)            # channel 0, lo/hi, mode 2
        self.port_write(0, divisor & 0xFF, 1)
        self.port_write(0, (divisor >> 8) & 0xFF, 1)
