"""Two-level paging: page directory / page table walks and a TLB.

This mirrors 32-bit x86 non-PAE paging: a 10/10/12 split, 4-byte entries,
present / writable / user bits, accessed / dirty bookkeeping.  Page faults
carry the IA-32 error-code bit layout so the guest OS and the monitors
can share fault-decoding logic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

PAGE_SIZE = 4096
PAGE_SHIFT = 12
ENTRIES_PER_TABLE = 1024

# Page-table entry bits (IA-32 layout).
PTE_P = 1 << 0   # present
PTE_W = 1 << 1   # writable
PTE_U = 1 << 2   # user accessible
PTE_A = 1 << 5   # accessed
PTE_D = 1 << 6   # dirty
PTE_FRAME_MASK = 0xFFFFF000

# Page-fault error code bits (IA-32 layout).
PF_PRESENT = 1 << 0   # fault caused by a protection violation (not non-present)
PF_WRITE = 1 << 1     # faulting access was a write
PF_USER = 1 << 2      # faulting access came from user mode (CPL == 3)


@dataclass(frozen=True)
class PageFault(Exception):
    """Raised by the walker; the CPU converts it into a #PF delivery."""

    address: int
    error_code: int

    def __str__(self) -> str:
        kind = "protection" if self.error_code & PF_PRESENT else "not-present"
        access = "write" if self.error_code & PF_WRITE else "read"
        mode = "user" if self.error_code & PF_USER else "supervisor"
        return (f"page fault at {self.address:#010x} "
                f"({kind}, {access}, {mode})")


def split_vaddr(vaddr: int) -> Tuple[int, int, int]:
    """Split a virtual address into (directory index, table index, offset)."""
    return (vaddr >> 22) & 0x3FF, (vaddr >> 12) & 0x3FF, vaddr & 0xFFF


def make_pte(frame: int, writable: bool = True, user: bool = False,
             present: bool = True) -> int:
    """Build a page-table or page-directory entry."""
    entry = frame & PTE_FRAME_MASK
    if present:
        entry |= PTE_P
    if writable:
        entry |= PTE_W
    if user:
        entry |= PTE_U
    return entry


class Tlb:
    """An LRU translation cache keyed by virtual page number.

    Real TLBs are the reason monitors must flush on CR3 writes; we model
    the flush requirement so the monitors exercise it.  Entries record the
    *effective* permissions from the combined PDE/PTE walk.

    :attr:`generation` counts flushes (full or per-page).  Consumers that
    cache anything derived from a translation — the CPU's decoded-
    instruction cache — compare it to discover that the address space
    may have changed underneath them, which is exactly the contract a
    hardware TLB shoot-down gives a trace cache.
    """

    DEFAULT_CAPACITY = 256

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[int, Tuple[int, bool, bool]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Bumped on every flush/flush_page; never on ordinary eviction
        #: (eviction drops a still-valid translation, a flush signals
        #: that existing translations may now be *wrong*).
        self.generation = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, vpn: int) -> Optional[Tuple[int, bool, bool]]:
        entry = self._entries.get(vpn)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
            self._entries.move_to_end(vpn)
        return entry

    def insert(self, vpn: int, frame: int, writable: bool, user: bool) -> None:
        if len(self._entries) >= self.capacity:
            # True LRU: drop the least recently used translation.
            self._entries.popitem(last=False)
        self._entries[vpn] = (frame, writable, user)

    def flush(self) -> None:
        self._entries.clear()
        self.generation += 1

    def flush_page(self, vpn: int) -> None:
        self._entries.pop(vpn, None)
        self.generation += 1

    def stats(self) -> dict:
        """Counter snapshot for the perf-export layer."""
        total = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
        }


class Mmu:
    """Walks page tables in physical memory.

    ``translate`` returns a physical address or raises :class:`PageFault`.
    When paging is disabled the caller should bypass the MMU entirely;
    the CPU takes care of that via CR0.PG.
    """

    def __init__(self, memory) -> None:
        self._memory = memory
        self.tlb = Tlb()
        self.cr3 = 0

    def set_cr3(self, value: int) -> None:
        self.cr3 = value & PTE_FRAME_MASK
        self.tlb.flush()

    def translate(self, vaddr: int, write: bool, user: bool,
                  update_flags: bool = True) -> int:
        """Translate one byte address.  Callers must not cross page
        boundaries in a single call; use :func:`span_pages` to split."""
        vpn = vaddr >> PAGE_SHIFT
        cached = self.tlb.lookup(vpn)
        if cached is not None:
            frame, can_write, is_user = cached
            self._check_rights(vaddr, write, user, can_write, is_user,
                               present=True)
            return frame | (vaddr & 0xFFF)

        dir_index, table_index, offset = split_vaddr(vaddr)
        pde_addr = self.cr3 + dir_index * 4
        pde = self._memory.read_u32(pde_addr)
        if not pde & PTE_P:
            raise PageFault(vaddr, self._error_code(write, user, present=False))

        pte_addr = (pde & PTE_FRAME_MASK) + table_index * 4
        pte = self._memory.read_u32(pte_addr)
        if not pte & PTE_P:
            raise PageFault(vaddr, self._error_code(write, user, present=False))

        # Effective rights are the AND of both levels, as on x86.
        can_write = bool(pde & PTE_W) and bool(pte & PTE_W)
        is_user = bool(pde & PTE_U) and bool(pte & PTE_U)
        self._check_rights(vaddr, write, user, can_write, is_user, present=True)

        if update_flags:
            self._memory.write_u32(pde_addr, pde | PTE_A)
            new_pte = pte | PTE_A | (PTE_D if write else 0)
            if new_pte != pte:
                self._memory.write_u32(pte_addr, new_pte)

        frame = pte & PTE_FRAME_MASK
        self.tlb.insert(vpn, frame, can_write, is_user)
        return frame | offset

    @staticmethod
    def _error_code(write: bool, user: bool, present: bool) -> int:
        code = 0
        if present:
            code |= PF_PRESENT
        if write:
            code |= PF_WRITE
        if user:
            code |= PF_USER
        return code

    def _check_rights(self, vaddr: int, write: bool, user: bool,
                      can_write: bool, is_user: bool, present: bool) -> None:
        if user and not is_user:
            raise PageFault(vaddr, self._error_code(write, user, present))
        if write and not can_write:
            raise PageFault(vaddr, self._error_code(write, user, present))


def span_pages(addr: int, length: int):
    """Yield (addr, length) chunks of an access split at page boundaries."""
    remaining = length
    cursor = addr
    while remaining > 0:
        in_page = PAGE_SIZE - (cursor & (PAGE_SIZE - 1))
        chunk = min(in_page, remaining)
        yield cursor, chunk
        cursor += chunk
        remaining -= chunk


class PageTableBuilder:
    """Helper for constructing page tables directly in physical memory.

    Used by the monitors and the guest bootstrap to set up identity or
    offset mappings without hand-computing entry addresses.
    """

    def __init__(self, memory, alloc_base: int) -> None:
        self._memory = memory
        self._next_free = alloc_base
        self.directory = self._alloc_table()

    def _alloc_table(self) -> int:
        addr = self._next_free
        self._next_free += PAGE_SIZE
        self._memory.fill(addr, PAGE_SIZE, 0)
        return addr

    @property
    def bytes_used(self) -> int:
        return self._next_free - self.directory

    def map(self, vaddr: int, paddr: int, writable: bool = True,
            user: bool = False) -> None:
        """Map one 4 KiB page."""
        dir_index, table_index, _ = split_vaddr(vaddr)
        pde_addr = self.directory + dir_index * 4
        pde = self._memory.read_u32(pde_addr)
        if not pde & PTE_P:
            table = self._alloc_table()
            # Directory entries get maximal rights; the PTE is authoritative.
            pde = make_pte(table, writable=True, user=True)
            self._memory.write_u32(pde_addr, pde)
        pte_addr = (pde & PTE_FRAME_MASK) + table_index * 4
        self._memory.write_u32(
            pte_addr, make_pte(paddr, writable=writable, user=user))

    def map_range(self, vaddr: int, paddr: int, length: int,
                  writable: bool = True, user: bool = False) -> None:
        """Map a page-aligned range."""
        pages = (length + PAGE_SIZE - 1) // PAGE_SIZE
        for i in range(pages):
            self.map(vaddr + i * PAGE_SIZE, paddr + i * PAGE_SIZE,
                     writable=writable, user=user)

    def identity_map(self, start: int, length: int, writable: bool = True,
                     user: bool = False) -> None:
        self.map_range(start, start, length, writable=writable, user=user)

    def unmap(self, vaddr: int) -> None:
        dir_index, table_index, _ = split_vaddr(vaddr)
        pde = self._memory.read_u32(self.directory + dir_index * 4)
        if not pde & PTE_P:
            return
        pte_addr = (pde & PTE_FRAME_MASK) + table_index * 4
        self._memory.write_u32(pte_addr, 0)
