"""The assembled target machine.

``Machine`` wires together everything on a PC/AT-style board: CPU,
physical memory, the port/MMIO bus, the 8259 PIC pair, the 8254 PIT, the
16550 debug UART, a SCSI HBA with attached disks, and the gigabit NIC.

Execution interleaves the CPU interpreter with the discrete-event queue:
the CPU's retired-cycle counter *is* simulated time, so device delays
(disk service, wire pacing, timer periods) are honoured relative to the
instruction stream.  When the CPU halts, time fast-forwards to the next
device event — exactly the semantics of HLT on the idle loop of a real
OS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import CpuHalted
from repro.hw.bus import IoBus
from repro.hw.cpu import Cpu
from repro.hw.disk import Disk
from repro.hw.mem import PhysicalMemory
from repro.hw.nic import IRQ_NIC, MMIO_BASE_NIC, MMIO_SPAN, Nic
from repro.hw.pic import (
    MASTER_CMD,
    SLAVE_CMD,
    PicPair,
    standard_setup,
)
from repro.hw.pit import PORT_BASE as PIT_PORT_BASE, Pit8254
from repro.hw.scsi import IRQ_SCSI, PORT_BASE_SCSI, PORT_SPAN, ScsiHba
from repro.hw.uart import IRQ_COM1, PORT_BASE_COM1, SerialLink, Uart16550
from repro.sim.budget import CycleBudget
from repro.sim.events import EventQueue

IRQ_PIT = 0

DEFAULT_CPU_HZ = 1.26e9       # the paper's 1.26 GHz Pentium III
DEFAULT_MEMORY = 16 << 20     # 16 MiB is plenty for the guest images


@dataclass
class MachineConfig:
    """Knobs for building a :class:`Machine`."""

    memory_size: int = DEFAULT_MEMORY
    cpu_hz: float = DEFAULT_CPU_HZ
    #: (blocks, seed) per SCSI disk; the paper's rig has three drives.
    disks: List[tuple] = field(default_factory=lambda: [
        (262144, 1), (262144, 2), (262144, 3)])  # 128 MiB each
    disk_rate_bytes_per_sec: float = 40e6
    with_nic: bool = True
    #: Run the translation validator on every compiled superblock and
    #: refuse blocks it cannot prove equivalent (see
    #: :mod:`repro.analysis.tv`).  None defers to ``Cpu.VERIFY_DEFAULT``.
    verify_translations: Optional[bool] = None
    #: Where the NIC's register window lives.  The default sits in
    #: PCI-hole territory above RAM; functional guests that must reach
    #: it through segmentation (whose limits stop below the monitor)
    #: relocate it into a memory hole below the monitor region.
    nic_mmio_base: int = MMIO_BASE_NIC


class Machine:
    """A complete simulated target machine."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()
        self.queue = EventQueue()
        self.budget = CycleBudget(self.config.cpu_hz)
        self.memory = PhysicalMemory(self.config.memory_size)
        self.bus = IoBus()
        self.cpu = Cpu(self.memory, self.bus, self.budget,
                       verify_translations=self.config.verify_translations)

        # Interrupt controller pair.
        self.pic = PicPair()
        self.bus.register_ports(MASTER_CMD, 2, self.pic.master_port(),
                                "pic-master")
        self.bus.register_ports(SLAVE_CMD, 2, self.pic.slave_port(),
                                "pic-slave")
        self.cpu.irq_source = self.pic

        # Timer.
        self.pit = Pit8254(self.queue, self.config.cpu_hz,
                           lambda: self.pic.raise_irq(IRQ_PIT))
        self.bus.register_ports(PIT_PORT_BASE, 4, self.pit, "pit")

        # Debug serial port.
        self.serial_link = SerialLink()
        self.uart = Uart16550(
            self.serial_link,
            raise_irq=lambda: self.pic.raise_irq(IRQ_COM1),
            lower_irq=lambda: self.pic.lower_irq(IRQ_COM1))
        self.bus.register_ports(PORT_BASE_COM1, 8, self.uart, "uart")

        # Storage.
        self.hba = ScsiHba(
            self.queue, self.memory, self.config.cpu_hz,
            raise_irq=lambda: self.pic.raise_irq(IRQ_SCSI),
            lower_irq=lambda: self.pic.lower_irq(IRQ_SCSI))
        self.disks: List[Disk] = []
        for target, (blocks, seed) in enumerate(self.config.disks):
            disk = Disk(blocks, seed=seed,
                        sustained_bytes_per_sec=self.config
                        .disk_rate_bytes_per_sec)
            self.hba.attach(target, disk)
            self.disks.append(disk)
        self.bus.register_ports(PORT_BASE_SCSI, PORT_SPAN, self.hba, "scsi")

        # Wall clock.
        from repro.hw.rtc import IRQ_RTC, PORT_BASE_RTC, Rtc
        self.rtc = Rtc(self.queue, self.config.cpu_hz,
                       raise_irq=lambda: self.pic.raise_irq(IRQ_RTC))
        self.bus.register_ports(PORT_BASE_RTC, 2, self.rtc, "rtc")

        # Network.
        self.nic: Optional[Nic] = None
        self.nic_mmio_base = self.config.nic_mmio_base
        if self.config.with_nic:
            self.nic = Nic(
                self.queue, self.memory, self.config.cpu_hz,
                raise_irq=lambda: self.pic.raise_irq(IRQ_NIC),
                lower_irq=lambda: self.pic.lower_irq(IRQ_NIC))
            self.bus.register_mmio(self.nic_mmio_base, MMIO_SPAN,
                                   self.nic, "nic")

    # ------------------------------------------------------------------

    def program_pic_defaults(self) -> None:
        """Program the PIC pair with the canonical vector bases (32/40)."""
        standard_setup(self.pic)

    def sync_events(self) -> None:
        """Fire every device event due at or before the CPU's cycle count."""
        self.queue.run_until(self.cpu.cycle_count)

    def step(self) -> None:
        """One CPU instruction plus any device events that became due."""
        self.sync_events()
        self.cpu.step()

    def run(self, max_instructions: int = 1_000_000,
            until: Optional[Callable[[], bool]] = None) -> int:
        """Co-simulate CPU and devices.

        Stops when ``until()`` returns True, the instruction cap is hit,
        or the machine is irrecoverably halted.  Returns instructions
        retired.
        """
        executed = 0
        while executed < max_instructions:
            if until is not None and until():
                break
            self.sync_events()
            if self.cpu.halted and not self.pic.has_pending():
                if not self.cpu.interrupts_enabled \
                        and self.cpu.interrupt_hook is None:
                    break  # HLT with IF=0 and no monitor: dead machine
                next_time = self.queue.peek_time()
                if next_time is None:
                    break  # halted forever: nothing will wake us
                # Fast-forward: HLT burns no budget while waiting.
                self.cpu.cycle_count = next_time
                continue
            try:
                self.cpu.step()
            except CpuHalted:
                break
            executed += 1
        return executed

    # ------------------------------------------------------------------

    def load_program(self, program) -> None:
        """Load an assembled :class:`repro.asm.Program` and aim PC at it."""
        program.load_into(self.memory)
        self.cpu.pc = program.origin
