"""The HX32 CPU interpreter.

This is the functional heart of the reproduction: a ring-aware,
segment-checking, paging, trap-delivering interpreter.  Monitors embed
themselves through two hooks:

* :attr:`Cpu.exception_hook` — called before any exception is delivered
  through the guest IDT.  The lightweight VMM uses this exactly the way a
  real monitor owns the hardware IDT: privileged-instruction #GPs become
  emulation, #DB/#BP become debugger events, and everything else is
  *reflected* into the guest.
* :attr:`Cpu.interrupt_hook` — called when an external interrupt is about
  to be accepted, so a monitor can virtualise the interrupt controller.

Running bare metal means leaving both hooks unset: the guest's own IDT
(loaded with LIDT at ring 0) receives every event, as on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from repro.errors import CpuHalted, TripleFault
from repro.hw import isa
from repro.hw.isa import (
    CR0_PG,
    FLAG_CF,
    FLAG_IF,
    FLAG_OF,
    FLAG_SF,
    FLAG_TF,
    FLAG_ZF,
    IOPL_SHIFT,
    IRQ_BASE_VECTOR,
    NUM_GPRS,
    REG_SP,
    SEG_CS,
    SEG_DS,
    SEG_SS,
    VEC_BP,
    VEC_DB,
    VEC_DE,
    VEC_DF,
    VEC_GP,
    VEC_PF,
    VEC_SS,
    VEC_UD,
    VEC_VMCALL,
    ERROR_CODE_VECTORS,
    mask32,
    signed32,
)
from repro.hw.paging import Mmu, PageFault, span_pages
from repro.hw.seg import (
    GdtView,
    SegmentDescriptor,
    selector_index,
    selector_rpl,
)
from repro.sim.budget import CAT_GUEST, CAT_INTERRUPT, CycleBudget

IDT_ENTRY_SIZE = 8
GATE_TYPE_INTERRUPT = 0  # clears IF on entry
GATE_TYPE_TRAP = 1       # leaves IF alone


@dataclass(frozen=True)
class CpuFault(Exception):
    """An architectural exception raised mid-instruction."""

    vector: int
    error_code: int = 0
    fault_address: Optional[int] = None  # CR2 value for #PF

    def __str__(self) -> str:
        return (f"CPU fault vector={self.vector} "
                f"error={self.error_code:#x}")


@dataclass(frozen=True)
class IdtGate:
    """A decoded IDT entry."""

    offset: int
    selector: int
    present: bool
    dpl: int
    gate_type: int

    def pack(self) -> bytes:
        flags = (1 if self.present else 0) | ((self.dpl & 0b11) << 1) \
            | ((self.gate_type & 1) << 3)
        import struct
        return struct.pack("<IHH", self.offset & 0xFFFFFFFF,
                           self.selector & 0xFFFF, flags)

    @classmethod
    def unpack(cls, raw: bytes) -> "IdtGate":
        import struct
        offset, sel, flags = struct.unpack("<IHH", raw)
        return cls(offset=offset, selector=sel,
                   present=bool(flags & 1),
                   dpl=(flags >> 1) & 0b11,
                   gate_type=(flags >> 3) & 1)


class SegmentCache:
    """A loaded segment register: visible selector + hidden descriptor."""

    __slots__ = ("selector", "descriptor")

    def __init__(self, sel: int, descriptor: SegmentDescriptor) -> None:
        self.selector = sel
        self.descriptor = descriptor


class Cpu:
    """One HX32 processor attached to memory and an I/O bus."""

    def __init__(self, memory, bus, budget: Optional[CycleBudget] = None) -> None:
        self.memory = memory
        self.bus = bus
        self.budget = budget or CycleBudget()
        self.mmu = Mmu(memory)
        self.gdt = GdtView(memory)

        self.regs: List[int] = [0] * NUM_GPRS
        self.pc = 0
        self.flags = 0
        self.crs = [0, 0, 0, 0]
        self.idtr_base = 0
        self.idtr_limit = 0
        self.tss_base = 0
        # Boot state: flat ring-0 segments covering all of memory, like the
        # fiction of x86 "unreal" flat mode; real code reloads them early.
        boot = SegmentDescriptor(base=0, limit=memory.size, dpl=0,
                                 code=True, writable=True)
        boot_data = SegmentDescriptor(base=0, limit=memory.size, dpl=0,
                                      code=False, writable=True)
        self.segments = [SegmentCache(0, boot),
                         SegmentCache(0, boot_data),
                         SegmentCache(0, boot_data)]

        self.halted = False
        self.instret = 0
        self.cycle_count = 0
        #: Set of linear addresses that trigger #DB on fetch (debug regs).
        self.code_breakpoints: Set[int] = set()
        #: (addr, length, on_write) watchpoints checked on data access.
        self.watchpoints: List[Tuple[int, int, bool]] = []

        #: Monitor hooks; return True to claim the event.
        self.exception_hook: Optional[
            Callable[["Cpu", int, int], bool]] = None
        self.interrupt_hook: Optional[Callable[["Cpu", int], bool]] = None
        self.vmcall_hook: Optional[Callable[["Cpu"], bool]] = None
        #: Interrupt source (the PIC): .has_pending() / .acknowledge().
        self.irq_source = None
        # STI inhibits interrupts for one instruction, like x86.
        self._interrupt_shadow = False
        #: x86 RF-flag semantics: suppress the instruction breakpoint at
        #: the current PC for one instruction (set when resuming from a
        #: breakpoint so the guest makes progress).
        self.resume_flag = False
        #: I/O permission bitmap: ports listed here are accessible even
        #: when CPL > IOPL (the TSS I/O-bitmap mechanism monitors use to
        #: pass high-throughput devices straight through to the guest).
        #: None means "no bitmap" — IN/OUT strictly gated by IOPL.
        self.io_allowed_ports: Optional[Set[int]] = None

    # ------------------------------------------------------------------
    # Convenience state accessors
    # ------------------------------------------------------------------

    @property
    def cpl(self) -> int:
        return self.segments[SEG_CS].descriptor.dpl

    @property
    def iopl(self) -> int:
        return (self.flags >> IOPL_SHIFT) & 0b11

    @property
    def interrupts_enabled(self) -> bool:
        return bool(self.flags & FLAG_IF)

    @property
    def sp(self) -> int:
        return self.regs[REG_SP]

    @sp.setter
    def sp(self, value: int) -> None:
        self.regs[REG_SP] = mask32(value)

    @property
    def paging_enabled(self) -> bool:
        return bool(self.crs[0] & CR0_PG)

    def _set_flag(self, flag: int, on: bool) -> None:
        if on:
            self.flags |= flag
        else:
            self.flags &= ~flag

    # ------------------------------------------------------------------
    # Address translation and memory access
    # ------------------------------------------------------------------

    def linear(self, seg: int, offset: int, length: int, write: bool) -> int:
        """Segment-check ``offset`` and return the linear address."""
        cache = self.segments[seg]
        descriptor = cache.descriptor
        if not descriptor.contains(offset, length):
            vec = VEC_SS if seg == SEG_SS else VEC_GP
            raise CpuFault(vec, error_code=0)
        if write and not descriptor.writable:
            raise CpuFault(VEC_GP, error_code=0)
        return mask32(descriptor.base + offset)

    def _physical(self, linear_addr: int, write: bool) -> int:
        if not self.paging_enabled:
            return linear_addr
        user = self.cpl == 3
        try:
            return self.mmu.translate(linear_addr, write=write, user=user)
        except PageFault as fault:
            self.crs[2] = fault.address
            raise CpuFault(VEC_PF, error_code=fault.error_code,
                           fault_address=fault.address) from fault

    def _check_watchpoints(self, linear_addr: int, length: int,
                           write: bool) -> None:
        for addr, wlen, on_write in self.watchpoints:
            if write != on_write:
                continue
            if linear_addr < addr + wlen and addr < linear_addr + length:
                raise CpuFault(VEC_DB, error_code=0)

    def read_virtual(self, seg: int, offset: int, length: int) -> bytes:
        """Data read through segmentation + paging (+MMIO routing)."""
        linear_addr = self.linear(seg, offset, length, write=False)
        self._check_watchpoints(linear_addr, length, write=False)
        chunks = []
        for vaddr, chunk in span_pages(linear_addr, length):
            paddr = self._physical(vaddr, write=False)
            if self.bus.is_mmio(paddr):
                if chunk not in (1, 2, 4):
                    raise CpuFault(VEC_GP, error_code=0)
                value = self.bus.mmio_read(paddr, chunk)
                chunks.append(value.to_bytes(chunk, "little"))
            else:
                chunks.append(self.memory.read(paddr, chunk))
        return b"".join(chunks)

    def write_virtual(self, seg: int, offset: int, data: bytes) -> None:
        linear_addr = self.linear(seg, offset, len(data), write=True)
        self._check_watchpoints(linear_addr, len(data), write=True)
        cursor = 0
        for vaddr, chunk in span_pages(linear_addr, len(data)):
            paddr = self._physical(vaddr, write=True)
            piece = data[cursor:cursor + chunk]
            if self.bus.is_mmio(paddr):
                if chunk not in (1, 2, 4):
                    raise CpuFault(VEC_GP, error_code=0)
                self.bus.mmio_write(paddr, int.from_bytes(piece, "little"),
                                    chunk)
            else:
                self.memory.write(paddr, piece)
            cursor += chunk

    # -- debugger-grade access: bypasses watchpoints, never faults -----

    def peek_virtual(self, seg: int, offset: int, length: int) -> Optional[bytes]:
        """Best-effort read for the debug stub; None if unmapped."""
        try:
            return self.read_virtual(seg, offset, length)
        except CpuFault:
            return None

    # ------------------------------------------------------------------
    # Stack helpers
    # ------------------------------------------------------------------

    def push32(self, value: int) -> None:
        new_sp = mask32(self.sp - 4)
        self.write_virtual(SEG_SS, new_sp, mask32(value).to_bytes(4, "little"))
        self.sp = new_sp

    def pop32(self) -> int:
        value = int.from_bytes(self.read_virtual(SEG_SS, self.sp, 4), "little")
        self.sp = mask32(self.sp + 4)
        return value

    # ------------------------------------------------------------------
    # Segment loading
    # ------------------------------------------------------------------

    def _descriptor_for(self, sel: int) -> SegmentDescriptor:
        index = selector_index(sel)
        try:
            descriptor = self.gdt.read(index)
        except IndexError:
            raise CpuFault(VEC_GP, error_code=sel) from None
        if not descriptor.present:
            raise CpuFault(VEC_GP, error_code=sel)
        return descriptor

    def load_segment(self, seg: int, sel: int) -> None:
        """MOVSEG semantics with x86-style privilege checks."""
        if seg == SEG_CS:
            # CS changes only via interrupt delivery and IRET.
            raise CpuFault(VEC_UD)
        descriptor = self._descriptor_for(sel)
        rpl = selector_rpl(sel)
        if seg == SEG_SS:
            if descriptor.code or not descriptor.writable:
                raise CpuFault(VEC_GP, error_code=sel)
            if rpl != self.cpl or descriptor.dpl != self.cpl:
                raise CpuFault(VEC_GP, error_code=sel)
        else:
            if descriptor.code:
                raise CpuFault(VEC_GP, error_code=sel)
            if descriptor.dpl < max(self.cpl, rpl):
                raise CpuFault(VEC_GP, error_code=sel)
        self.segments[seg] = SegmentCache(sel, descriptor)

    def force_segment(self, seg: int, sel: int,
                      descriptor: SegmentDescriptor) -> None:
        """Monitor backdoor: install a segment without privilege checks.

        Used by monitors for world switches — the hardware analogue is the
        monitor running its own ring-0 code that is allowed to do this.
        """
        self.segments[seg] = SegmentCache(sel, descriptor)

    # ------------------------------------------------------------------
    # Interrupt / exception delivery
    # ------------------------------------------------------------------

    def read_idt_gate(self, vector: int, idt_base: Optional[int] = None,
                      idt_limit: Optional[int] = None) -> IdtGate:
        base = self.idtr_base if idt_base is None else idt_base
        limit = self.idtr_limit if idt_limit is None else idt_limit
        offset = vector * IDT_ENTRY_SIZE
        if offset + IDT_ENTRY_SIZE > limit:
            raise CpuFault(VEC_GP, error_code=vector * 8 + 2)
        raw = self.memory.read(base + offset, IDT_ENTRY_SIZE)
        return IdtGate.unpack(raw)

    def deliver(self, vector: int, error_code: int = 0,
                software: bool = False,
                idt_base: Optional[int] = None,
                idt_limit: Optional[int] = None) -> None:
        """Deliver an interrupt/exception through an IDT.

        ``software`` marks INT n, which is subject to the gate-DPL check
        (that is how ring-3 code is prevented from invoking arbitrary
        gates).  ``idt_base``/``idt_limit`` let a monitor deliver through
        the guest's *virtual* IDT when reflecting events.
        """
        gate = self.read_idt_gate(vector, idt_base, idt_limit)
        if not gate.present:
            raise CpuFault(VEC_GP, error_code=vector * 8 + 2)
        if software and gate.dpl < self.cpl:
            raise CpuFault(VEC_GP, error_code=vector * 8 + 2)

        target = self._descriptor_for(gate.selector)
        if not target.code:
            raise CpuFault(VEC_GP, error_code=gate.selector)
        target_ring = target.dpl
        if target_ring > self.cpl:
            # Gates never transfer outward.
            raise CpuFault(VEC_GP, error_code=gate.selector)

        old_cs = self.segments[SEG_CS].selector
        old_ss = self.segments[SEG_SS].selector
        old_sp = self.sp
        old_flags = self.flags

        if target_ring < self.cpl:
            new_sp, new_ss = self._ring_stack(target_ring)
            ss_descriptor = self._descriptor_for(new_ss)
            self.segments[SEG_SS] = SegmentCache(new_ss, ss_descriptor)
            self.sp = new_sp
            self.segments[SEG_CS] = SegmentCache(gate.selector, target)
            self.push32(old_ss)
            self.push32(old_sp)
        else:
            self.segments[SEG_CS] = SegmentCache(gate.selector, target)

        self.push32(old_flags)
        self.push32(old_cs)
        self.push32(self.pc)
        if vector in ERROR_CODE_VECTORS and not software:
            self.push32(error_code)

        self.pc = gate.offset
        self._set_flag(FLAG_TF, False)
        if gate.gate_type == GATE_TYPE_INTERRUPT:
            self._set_flag(FLAG_IF, False)
        self.halted = False
        self.budget.charge(40, CAT_INTERRUPT)
        self.cycle_count += 40

    def _ring_stack(self, ring: int) -> Tuple[int, int]:
        """Read the (SP, SS) pair for ``ring`` from the TSS."""
        base = self.tss_base + ring * 8
        sp = self.memory.read_u32(base)
        ss = self.memory.read_u32(base + 4)
        return sp, ss

    def _stack_word(self, index: int) -> int:
        """Read the ``index``-th word of the stack without popping."""
        return int.from_bytes(
            self.read_virtual(SEG_SS, mask32(self.sp + 4 * index), 4),
            "little")

    def _do_iret(self) -> None:
        # Like hardware: validate the whole frame before committing any
        # state, so a faulting IRET leaves SP (and the frame) intact for
        # the fault handler / monitor to inspect and emulate.
        new_pc = self._stack_word(0)
        new_cs = self._stack_word(1)
        new_flags = self._stack_word(2)
        target_rpl = selector_rpl(new_cs)
        if target_rpl < self.cpl:
            raise CpuFault(VEC_GP, error_code=new_cs)
        descriptor = self._descriptor_for(new_cs)
        if not descriptor.code or descriptor.dpl != target_rpl:
            raise CpuFault(VEC_GP, error_code=new_cs)
        outward = target_rpl > self.cpl
        new_sp = new_ss = ss_descriptor = None
        frame_words = 3
        if outward:
            new_sp = self._stack_word(3)
            new_ss = self._stack_word(4)
            frame_words = 5
            ss_descriptor = self._descriptor_for(new_ss)
            if ss_descriptor.dpl != target_rpl:
                raise CpuFault(VEC_GP, error_code=new_ss)

        # All checks passed: commit atomically from here on.
        self.sp = mask32(self.sp + 4 * frame_words)

        # IF (and IOPL) are privileged: only CPL <= IOPL may change IF, and
        # only ring 0 may change IOPL.  Silently preserved otherwise — the
        # classic x86 virtualisation hole the LVMM works around with its
        # shadow interrupt state.
        preserved = 0
        if self.cpl > self.iopl:
            preserved |= FLAG_IF
        if self.cpl != 0:
            preserved |= isa.IOPL_MASK
        new_flags = (new_flags & ~preserved) | (self.flags & preserved)

        self.segments[SEG_CS] = SegmentCache(new_cs, descriptor)
        self.flags = new_flags
        self.pc = new_pc
        if outward:
            self.segments[SEG_SS] = SegmentCache(new_ss, ss_descriptor)
            self.sp = new_sp

    # ------------------------------------------------------------------
    # Fault handling with double/triple fault semantics
    # ------------------------------------------------------------------

    def _handle_fault(self, fault: CpuFault, saved_pc: int) -> None:
        # Faults restart the instruction: report the faulting PC.
        if fault.vector in isa.FAULT_VECTORS:
            self.pc = saved_pc
        if self.exception_hook is not None:
            if self.exception_hook(self, fault.vector, fault.error_code):
                return
        try:
            self.deliver(fault.vector, fault.error_code)
        except CpuFault:
            try:
                self.deliver(VEC_DF, 0)
            except CpuFault as third:
                raise TripleFault(
                    f"triple fault delivering vector {fault.vector} "
                    f"then #DF: {third}") from third

    # ------------------------------------------------------------------
    # Fetch / decode / execute
    # ------------------------------------------------------------------

    def _fetch(self, length: int) -> bytes:
        return self.read_virtual(SEG_CS, self.pc, length)

    def step(self) -> None:
        """Execute one instruction (or accept one interrupt)."""
        if self._maybe_take_interrupt():
            return
        if self.halted:
            if not self.interrupts_enabled and self.irq_source is None \
                    and self.exception_hook is None:
                raise CpuHalted("HLT with interrupts disabled and no "
                                "interrupt source: machine is dead")
            self.cycle_count += 1
            return

        saved_pc = self.pc
        take_tf = bool(self.flags & FLAG_TF)
        self._interrupt_shadow = False
        suppress_bp = self.resume_flag
        self.resume_flag = False
        try:
            linear_pc = self.linear(SEG_CS, self.pc, 1, write=False)
            if linear_pc in self.code_breakpoints and not suppress_bp:
                raise CpuFault(VEC_DB, error_code=0)
            opcode = self._fetch(1)[0]
            spec = isa.SPECS.get(opcode)
            if spec is None:
                raise CpuFault(VEC_UD)
            self._check_privilege(spec)
            body = self._fetch(spec.length)[1:]
            self.pc = mask32(self.pc + spec.length)
            self._execute(spec, body)
            self.instret += 1
            self.budget.charge(spec.cycles, CAT_GUEST)
            self.cycle_count += spec.cycles
        except CpuFault as fault:
            self._handle_fault(fault, saved_pc)
            return
        if take_tf and (self.flags & FLAG_TF):
            # Single-step trap fires after the instruction completes.
            try:
                raise CpuFault(VEC_DB, error_code=0)
            except CpuFault as fault:
                self._handle_fault(fault, self.pc)

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Step until HLT-with-no-wakeup or the instruction cap."""
        executed = 0
        while executed < max_instructions:
            if self.halted and self.irq_source is None \
                    and self.exception_hook is None:
                break
            before = self.instret
            self.step()
            if self.instret == before and self.halted:
                break
            executed += 1
        return executed

    def _maybe_take_interrupt(self) -> bool:
        if self._interrupt_shadow:
            self._interrupt_shadow = False
            return False
        if self.irq_source is None:
            return False
        if not self.irq_source.has_pending():
            return False
        if self.interrupt_hook is not None:
            # A monitor owns interrupt acceptance outright: it decides
            # whether/when to reflect regardless of the guest's IF, since
            # the guest's IF is virtualised.
            vector = self.irq_source.acknowledge()
            self.halted = False
            if self.interrupt_hook(self, vector):
                return True
            self.deliver(vector)
            return True
        if not self.interrupts_enabled:
            return False
        vector = self.irq_source.acknowledge()
        self.halted = False
        self.deliver(vector)
        return True

    #: IN/OUT defer their privilege check to execution time, when the
    #: port number is known and the I/O bitmap can be consulted.
    _IO_MNEMONICS = frozenset({"INB", "OUTB", "INW", "OUTW"})

    def _check_privilege(self, spec: isa.InsnSpec) -> None:
        if spec.privilege == isa.PRIV_RING0 and self.cpl != 0:
            raise CpuFault(VEC_GP, error_code=0)
        if spec.privilege == isa.PRIV_IOPL and self.cpl > self.iopl \
                and spec.mnemonic not in self._IO_MNEMONICS:
            raise CpuFault(VEC_GP, error_code=0)

    def _check_io_permission(self, port: int) -> None:
        if self.cpl <= self.iopl:
            return
        if self.io_allowed_ports is not None \
                and port in self.io_allowed_ports:
            return
        raise CpuFault(VEC_GP, error_code=0)

    # -- ALU flag helpers ------------------------------------------------

    def _set_zsf(self, result: int) -> None:
        self._set_flag(FLAG_ZF, result == 0)
        self._set_flag(FLAG_SF, bool(result & 0x80000000))

    def _alu_add(self, a: int, b: int) -> int:
        result = a + b
        masked = mask32(result)
        self._set_flag(FLAG_CF, result > 0xFFFFFFFF)
        self._set_flag(
            FLAG_OF,
            (signed32(a) >= 0) == (signed32(b) >= 0)
            and (signed32(masked) >= 0) != (signed32(a) >= 0))
        self._set_zsf(masked)
        return masked

    def _alu_sub(self, a: int, b: int) -> int:
        result = a - b
        masked = mask32(result)
        self._set_flag(FLAG_CF, a < b)
        self._set_flag(
            FLAG_OF,
            (signed32(a) >= 0) != (signed32(b) >= 0)
            and (signed32(masked) >= 0) != (signed32(a) >= 0))
        self._set_zsf(masked)
        return masked

    def _alu_logic(self, result: int) -> int:
        masked = mask32(result)
        self._set_flag(FLAG_CF, False)
        self._set_flag(FLAG_OF, False)
        self._set_zsf(masked)
        return masked

    # -- decode helpers -----------------------------------------------------

    @staticmethod
    def _rr(body: bytes) -> Tuple[int, int]:
        return (body[0] >> 4) & 0x7, body[0] & 0x7

    @staticmethod
    def _imm32(body: bytes, offset: int = 0) -> int:
        return int.from_bytes(body[offset:offset + 4], "little")

    # -- the big dispatch ------------------------------------------------------

    def _execute(self, spec: isa.InsnSpec, body: bytes) -> None:
        name = spec.mnemonic
        regs = self.regs

        if name == "NOP":
            return
        if name == "HLT":
            self.halted = True
            return
        if name == "CLI":
            self._set_flag(FLAG_IF, False)
            return
        if name == "STI":
            self._set_flag(FLAG_IF, True)
            self._interrupt_shadow = True
            return
        if name == "IRET":
            self._do_iret()
            return
        if name == "RET":
            self.pc = self.pop32()
            return
        if name == "BKPT":
            raise CpuFault(VEC_BP)
        if name == "VMCALL":
            if self.vmcall_hook is not None and self.vmcall_hook(self):
                return
            raise CpuFault(VEC_VMCALL)

        if name == "MOVI":
            regs[body[0] & 0x7] = self._imm32(body, 1)
            return
        if name == "MOV":
            ra, rb = self._rr(body)
            regs[ra] = regs[rb]
            return
        if name in ("LD", "LD8", "LD16"):
            ra, rb = self._rr(body)
            offset = mask32(regs[rb] + self._imm32(body, 1))
            size = {"LD": 4, "LD8": 1, "LD16": 2}[name]
            data = self.read_virtual(SEG_DS, offset, size)
            regs[ra] = int.from_bytes(data, "little")
            return
        if name in ("ST", "ST8", "ST16"):
            ra, rb = self._rr(body)
            offset = mask32(regs[rb] + self._imm32(body, 1))
            size = {"ST": 4, "ST8": 1, "ST16": 2}[name]
            self.write_virtual(SEG_DS, offset,
                               (regs[ra] & ((1 << (8 * size)) - 1))
                               .to_bytes(size, "little"))
            return
        if name == "LEA":
            ra, rb = self._rr(body)
            regs[ra] = mask32(regs[rb] + self._imm32(body, 1))
            return
        if name == "PUSH":
            self.push32(regs[body[0] & 0x7])
            return
        if name == "PUSHI":
            self.push32(self._imm32(body))
            return
        if name == "POP":
            regs[body[0] & 0x7] = self.pop32()
            return
        if name == "PUSHF":
            self.push32(self.flags)
            return
        if name == "POPF":
            new_flags = self.pop32()
            # IA-32 semantics: IF only changes when CPL <= IOPL, IOPL
            # only at ring 0 — silently preserved otherwise.  This is
            # the famous virtualisation hole: deprivileged kernels
            # *think* they toggled IF.  Monitors here survive it because
            # all interrupt delivery is virtualised through them anyway.
            preserved = 0
            if self.cpl > self.iopl:
                preserved |= FLAG_IF
            if self.cpl != 0:
                preserved |= isa.IOPL_MASK
            self.flags = (new_flags & ~preserved) | (self.flags & preserved)
            return
        if name == "XCHG":
            ra, rb = self._rr(body)
            regs[ra], regs[rb] = regs[rb], regs[ra]
            return

        if name in ("ADD", "ADDI", "SUB", "SUBI", "AND", "ANDI", "OR", "ORI",
                    "XOR", "XORI", "SHL", "SHLI", "SHR", "SHRI", "MUL",
                    "MULI", "DIV", "DIVI", "CMP", "CMPI", "TEST"):
            self._execute_alu(name, body)
            return
        if name == "NOT":
            reg = body[0] & 0x7
            regs[reg] = self._alu_logic(~regs[reg])
            return
        if name == "NEG":
            reg = body[0] & 0x7
            regs[reg] = self._alu_sub(0, regs[reg])
            return

        if name in ("JMP", "JZ", "JNZ", "JC", "JNC", "JG", "JGE", "JL",
                    "JLE", "JS", "JNS", "CALL"):
            self._execute_branch(name, body)
            return
        if name == "JMPR":
            self.pc = regs[body[0] & 0x7]
            return
        if name == "CALLR":
            self.push32(self.pc)
            self.pc = regs[body[0] & 0x7]
            return

        if name == "INT":
            self.deliver(body[0], software=True)
            return
        if name in ("INB", "INW"):
            ra, rb = self._rr(body)
            port = regs[rb] & 0xFFFF
            self._check_io_permission(port)
            size = 1 if name == "INB" else 4
            regs[ra] = self.bus.port_read(port, size)
            return
        if name in ("OUTB", "OUTW"):
            ra, rb = self._rr(body)
            port = regs[rb] & 0xFFFF
            self._check_io_permission(port)
            size = 1 if name == "OUTB" else 4
            self.bus.port_write(port, regs[ra], size)
            return

        if name == "MOVCR":
            crn, reg = self._rr(body)
            value = regs[reg]
            self.crs[crn] = value
            if crn == 3:
                self.mmu.set_cr3(value)
            return
        if name == "MOVRC":
            crn, reg = self._rr(body)
            regs[reg] = self.crs[crn]
            return
        if name == "LGDT":
            pseudo = regs[body[0] & 0x7]
            limit = int.from_bytes(self.read_virtual(SEG_DS, pseudo, 4),
                                   "little")
            base = int.from_bytes(self.read_virtual(SEG_DS, pseudo + 4, 4),
                                  "little")
            self.gdt.load(base, limit)
            return
        if name == "LIDT":
            pseudo = regs[body[0] & 0x7]
            self.idtr_limit = int.from_bytes(
                self.read_virtual(SEG_DS, pseudo, 4), "little")
            self.idtr_base = int.from_bytes(
                self.read_virtual(SEG_DS, pseudo + 4, 4), "little")
            return
        if name == "LTSS":
            self.tss_base = regs[body[0] & 0x7]
            return
        if name == "MOVSEG":
            segn, reg = self._rr(body)
            self.load_segment(segn, regs[reg] & 0xFFFF)
            return
        if name == "MOVSGR":
            segn, reg = self._rr(body)
            regs[reg] = self.segments[segn].selector
            return

        raise CpuFault(VEC_UD)  # pragma: no cover - table is exhaustive

    def _execute_alu(self, name: str, body: bytes) -> None:
        regs = self.regs
        immediate = name.endswith("I") and name not in ("DIV",)
        if name in ("CMPI", "ADDI", "SUBI", "ANDI", "ORI", "XORI", "SHLI",
                    "SHRI", "MULI", "DIVI"):
            ra = body[0] & 0x7
            operand = self._imm32(body, 1)
        else:
            ra, rb = self._rr(body)
            operand = regs[rb]
        a = regs[ra]
        base = name[:-1] if name.endswith("I") and name != "DIV" else name
        if base == "ADD":
            regs[ra] = self._alu_add(a, operand)
        elif base == "SUB":
            regs[ra] = self._alu_sub(a, operand)
        elif base == "AND":
            regs[ra] = self._alu_logic(a & operand)
        elif base == "OR":
            regs[ra] = self._alu_logic(a | operand)
        elif base == "XOR":
            regs[ra] = self._alu_logic(a ^ operand)
        elif base == "SHL":
            regs[ra] = self._alu_logic(a << (operand & 31))
        elif base == "SHR":
            regs[ra] = self._alu_logic(a >> (operand & 31))
        elif base == "MUL":
            regs[ra] = self._alu_logic(a * operand)
        elif base == "DIV":
            if operand == 0:
                raise CpuFault(VEC_DE)
            regs[ra] = self._alu_logic(a // operand)
        elif base == "CMP":
            self._alu_sub(a, operand)
        elif base == "TEST":
            self._alu_logic(a & operand)
        else:  # pragma: no cover
            raise CpuFault(VEC_UD)

    def _execute_branch(self, name: str, body: bytes) -> None:
        rel = signed32(self._imm32(body))
        target = mask32(self.pc + rel)
        flags = self.flags
        zf = bool(flags & FLAG_ZF)
        cf = bool(flags & FLAG_CF)
        sf = bool(flags & FLAG_SF)
        of = bool(flags & FLAG_OF)
        take = {
            "JMP": True,
            "JZ": zf,
            "JNZ": not zf,
            "JC": cf,
            "JNC": not cf,
            "JG": not zf and sf == of,
            "JGE": sf == of,
            "JL": sf != of,
            "JLE": zf or sf != of,
            "JS": sf,
            "JNS": not sf,
            "CALL": True,
        }[name]
        if name == "CALL":
            self.push32(self.pc)
        if take:
            self.pc = target
