"""The HX32 CPU interpreter.

This is the functional heart of the reproduction: a ring-aware,
segment-checking, paging, trap-delivering interpreter.  Monitors embed
themselves through two hooks:

* :attr:`Cpu.exception_hook` — called before any exception is delivered
  through the guest IDT.  The lightweight VMM uses this exactly the way a
  real monitor owns the hardware IDT: privileged-instruction #GPs become
  emulation, #DB/#BP become debugger events, and everything else is
  *reflected* into the guest.
* :attr:`Cpu.interrupt_hook` — called when an external interrupt is about
  to be accepted, so a monitor can virtualise the interrupt controller.

Running bare metal means leaving both hooks unset: the guest's own IDT
(loaded with LIDT at ring 0) receives every event, as on real hardware.
"""

from __future__ import annotations

import struct

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import CpuHalted, TripleFault
from repro.hw import isa
from repro.hw.isa import (
    CR0_PG,
    FLAG_CF,
    FLAG_IF,
    FLAG_OF,
    FLAG_SF,
    FLAG_TF,
    FLAG_ZF,
    IOPL_SHIFT,
    IRQ_BASE_VECTOR,
    NUM_GPRS,
    REG_SP,
    SEG_CS,
    SEG_DS,
    SEG_SS,
    VEC_BP,
    VEC_DB,
    VEC_DE,
    VEC_DF,
    VEC_GP,
    VEC_PF,
    VEC_SS,
    VEC_UD,
    VEC_VMCALL,
    ERROR_CODE_VECTORS,
    mask32,
    signed32,
)
from repro.hw.paging import Mmu, PAGE_SHIFT, PageFault, span_pages
from repro.hw.seg import (
    GdtView,
    SegmentDescriptor,
    selector_index,
    selector_rpl,
)
from repro.sim.budget import CAT_GUEST, CAT_INTERRUPT, CycleBudget

IDT_ENTRY_SIZE = 8
GATE_TYPE_INTERRUPT = 0  # clears IF on entry
GATE_TYPE_TRAP = 1       # leaves IF alone


@dataclass(frozen=True)
class CpuFault(Exception):
    """An architectural exception raised mid-instruction."""

    vector: int
    error_code: int = 0
    fault_address: Optional[int] = None  # CR2 value for #PF

    def __str__(self) -> str:
        return (f"CPU fault vector={self.vector} "
                f"error={self.error_code:#x}")


@dataclass(frozen=True)
class IdtGate:
    """A decoded IDT entry."""

    offset: int
    selector: int
    present: bool
    dpl: int
    gate_type: int

    def pack(self) -> bytes:
        flags = (1 if self.present else 0) | ((self.dpl & 0b11) << 1) \
            | ((self.gate_type & 1) << 3)
        return struct.pack("<IHH", self.offset & 0xFFFFFFFF,
                           self.selector & 0xFFFF, flags)

    @classmethod
    def unpack(cls, raw: bytes) -> "IdtGate":
        offset, sel, flags = struct.unpack("<IHH", raw)
        return cls(offset=offset, selector=sel,
                   present=bool(flags & 1),
                   dpl=(flags >> 1) & 0b11,
                   gate_type=(flags >> 3) & 1)


class SegmentCache:
    """A loaded segment register: visible selector + hidden descriptor."""

    __slots__ = ("selector", "descriptor")

    def __init__(self, sel: int, descriptor: SegmentDescriptor) -> None:
        self.selector = sel
        self.descriptor = descriptor


class _ObservedSet(set):
    """A set that notifies its owner on every mutation.

    ``Cpu.code_breakpoints`` is one of these: inserting or removing a
    breakpoint must drop decoded-instruction cache entries, the same way
    inserting an INT3 into real code invalidates any trace cache built
    over those bytes (cf. the virtual-breakpoint literature).
    """

    __slots__ = ("_on_change",)

    def __init__(self, on_change: Callable[[], None], iterable=()) -> None:
        super().__init__(iterable)
        self._on_change = on_change

    def add(self, element) -> None:
        super().add(element)
        self._on_change()

    def discard(self, element) -> None:
        super().discard(element)
        self._on_change()

    def remove(self, element) -> None:
        super().remove(element)
        self._on_change()

    def clear(self) -> None:
        super().clear()
        self._on_change()

    def update(self, *others) -> None:
        super().update(*others)
        self._on_change()

    def pop(self):
        element = super().pop()
        self._on_change()
        return element


class Cpu:
    """One HX32 processor attached to memory and an I/O bus."""

    #: The decode cache is flushed wholesale (trace-cache style) rather
    #: than evicted entry-by-entry when it grows past this bound.
    DECODE_CACHE_CAPACITY = 1 << 16

    #: Default for the ``translate`` constructor argument — whether hot
    #: traces are compiled into superblocks (requires the decode cache).
    #: Class-level so determinism regressions can ablate it globally.
    TRANSLATE_DEFAULT = True

    #: Default for the ``verify_translations`` constructor argument —
    #: whether every compiled superblock must pass the translation
    #: validator before it is installed (repro.analysis.tv).
    #: Class-level so determinism tests can force it globally.
    VERIFY_DEFAULT = False

    def __init__(self, memory, bus, budget: Optional[CycleBudget] = None,
                 decode_cache: bool = True,
                 translate: Optional[bool] = None,
                 verify_translations: Optional[bool] = None) -> None:
        self.memory = memory
        self.bus = bus
        self.budget = budget or CycleBudget()
        self.mmu = Mmu(memory)
        self.gdt = GdtView(memory)

        # -- superblock translation state (created last, but the fields
        #    must exist before anything can call invalidate_decode_cache).
        self._sb_engine = None
        self._sb_blocks: Dict[int, tuple] = {}
        #: Run-loop pacing: a block may only execute while it provably
        #: stays at or below both limits (instret cap / profiler stride,
        #: and the next device-event due time).  Both are 0 outside a
        #: run loop, so bare ``step()`` never enters a block.
        self.block_instret_limit = 0
        self.block_cycle_limit = 0
        #: Instructions retired by the last dispatch beyond the usual
        #: one; run loops add it to ``executed`` and reset it.
        self.block_extra_steps = 0

        self.regs: List[int] = [0] * NUM_GPRS
        self.pc = 0
        self.flags = 0
        self.crs = [0, 0, 0, 0]
        self.idtr_base = 0
        self.idtr_limit = 0
        self.tss_base = 0
        # Boot state: flat ring-0 segments covering all of memory, like the
        # fiction of x86 "unreal" flat mode; real code reloads them early.
        boot = SegmentDescriptor(base=0, limit=memory.size, dpl=0,
                                 code=True, writable=True)
        boot_data = SegmentDescriptor(base=0, limit=memory.size, dpl=0,
                                      code=False, writable=True)
        self.segments = [SegmentCache(0, boot),
                         SegmentCache(0, boot_data),
                         SegmentCache(0, boot_data)]

        self.halted = False
        self.instret = 0
        self.cycle_count = 0
        #: Set of linear addresses that trigger #DB on fetch (debug regs).
        #: Mutations invalidate the decoded-instruction cache.
        self.code_breakpoints: Set[int] = _ObservedSet(
            self.invalidate_decode_cache)
        #: (addr, length, on_write) watchpoints checked on data access.
        self.watchpoints: List[Tuple[int, int, bool]] = []

        # -- decoded-instruction cache + per-opcode dispatch table ------
        # Dispatch: opcode byte -> (bound handler, operand decoder, spec),
        # built once so execution never string-compares mnemonics.
        self._dispatch: Dict[int, tuple] = {
            opcode: (getattr(self, "_op_" + spec.mnemonic.lower()),
                     isa.OPERAND_DECODERS[spec.fmt], spec)
            for opcode, spec in isa.SPECS.items()
        }
        #: Ablation flag: False forces full fetch/decode on every step.
        self.decode_cache_enabled = decode_cache
        # linear PC -> (handler, operands, length, cycles, spec,
        #               CS descriptor, ((phys page, generation), ...),
        #               needs privilege check, paging enabled at fill).
        self._decode_cache: Dict[int, tuple] = {}
        self._decode_tlb_gen = self.mmu.tlb.generation
        self.decode_cache_hits = 0
        self.decode_cache_misses = 0
        self.decode_cache_invalidations = 0

        #: Monitor hooks; return True to claim the event.
        self.exception_hook: Optional[
            Callable[["Cpu", int, int], bool]] = None
        self.interrupt_hook: Optional[Callable[["Cpu", int], bool]] = None
        self.vmcall_hook: Optional[Callable[["Cpu"], bool]] = None
        #: Interrupt source (the PIC): .has_pending() / .acknowledge().
        self.irq_source = None
        # STI inhibits interrupts for one instruction, like x86.
        self._interrupt_shadow = False
        #: x86 RF-flag semantics: suppress the instruction breakpoint at
        #: the current PC for one instruction (set when resuming from a
        #: breakpoint so the guest makes progress).
        self.resume_flag = False
        #: I/O permission bitmap: ports listed here are accessible even
        #: when CPL > IOPL (the TSS I/O-bitmap mechanism monitors use to
        #: pass high-throughput devices straight through to the guest).
        #: None means "no bitmap" — IN/OUT strictly gated by IOPL.
        self.io_allowed_ports: Optional[Set[int]] = None

        if translate is None:
            translate = self.TRANSLATE_DEFAULT
        if verify_translations is None:
            verify_translations = self.VERIFY_DEFAULT
        if translate and decode_cache:
            # Imported here: repro.interp.translate imports CpuFault
            # from this module at its top level.
            from repro.interp.translate import SuperblockEngine
            self._sb_engine = SuperblockEngine(self)
            self._sb_engine.verify = verify_translations
            self._sb_blocks = self._sb_engine.blocks

    # ------------------------------------------------------------------
    # Convenience state accessors
    # ------------------------------------------------------------------

    @property
    def cpl(self) -> int:
        return self.segments[SEG_CS].descriptor.dpl

    @property
    def iopl(self) -> int:
        return (self.flags >> IOPL_SHIFT) & 0b11

    @property
    def interrupts_enabled(self) -> bool:
        return bool(self.flags & FLAG_IF)

    @property
    def sp(self) -> int:
        return self.regs[REG_SP]

    @sp.setter
    def sp(self, value: int) -> None:
        self.regs[REG_SP] = mask32(value)

    @property
    def paging_enabled(self) -> bool:
        return bool(self.crs[0] & CR0_PG)

    def _set_flag(self, flag: int, on: bool) -> None:
        if on:
            self.flags |= flag
        else:
            self.flags &= ~flag

    # ------------------------------------------------------------------
    # Address translation and memory access
    # ------------------------------------------------------------------

    def linear(self, seg: int, offset: int, length: int, write: bool) -> int:
        """Segment-check ``offset`` and return the linear address."""
        cache = self.segments[seg]
        descriptor = cache.descriptor
        if not descriptor.contains(offset, length):
            vec = VEC_SS if seg == SEG_SS else VEC_GP
            raise CpuFault(vec, error_code=0)
        if write and not descriptor.writable:
            raise CpuFault(VEC_GP, error_code=0)
        return mask32(descriptor.base + offset)

    def _physical(self, linear_addr: int, write: bool) -> int:
        if not self.paging_enabled:
            return linear_addr
        user = self.cpl == 3
        try:
            return self.mmu.translate(linear_addr, write=write, user=user)
        except PageFault as fault:
            self.crs[2] = fault.address
            raise CpuFault(VEC_PF, error_code=fault.error_code,
                           fault_address=fault.address) from fault

    def _check_watchpoints(self, linear_addr: int, length: int,
                           write: bool) -> None:
        for addr, wlen, on_write in self.watchpoints:
            if write != on_write:
                continue
            if linear_addr < addr + wlen and addr < linear_addr + length:
                raise CpuFault(VEC_DB, error_code=0)

    def read_virtual(self, seg: int, offset: int, length: int) -> bytes:
        """Data read through segmentation + paging (+MMIO routing)."""
        linear_addr = self.linear(seg, offset, length, write=False)
        self._check_watchpoints(linear_addr, length, write=False)
        chunks = []
        for vaddr, chunk in span_pages(linear_addr, length):
            paddr = self._physical(vaddr, write=False)
            if self.bus.is_mmio(paddr):
                if chunk not in (1, 2, 4):
                    raise CpuFault(VEC_GP, error_code=0)
                value = self.bus.mmio_read(paddr, chunk)
                chunks.append(value.to_bytes(chunk, "little"))
            else:
                chunks.append(self.memory.read(paddr, chunk))
        return b"".join(chunks)

    def write_virtual(self, seg: int, offset: int, data: bytes) -> None:
        linear_addr = self.linear(seg, offset, len(data), write=True)
        self._check_watchpoints(linear_addr, len(data), write=True)
        cursor = 0
        for vaddr, chunk in span_pages(linear_addr, len(data)):
            paddr = self._physical(vaddr, write=True)
            piece = data[cursor:cursor + chunk]
            if self.bus.is_mmio(paddr):
                if chunk not in (1, 2, 4):
                    raise CpuFault(VEC_GP, error_code=0)
                self.bus.mmio_write(paddr, int.from_bytes(piece, "little"),
                                    chunk)
            else:
                self.memory.write(paddr, piece)
            cursor += chunk

    # -- debugger-grade access: bypasses watchpoints, never faults -----

    def peek_virtual(self, seg: int, offset: int, length: int) -> Optional[bytes]:
        """Best-effort read for the debug stub; None if unmapped."""
        try:
            return self.read_virtual(seg, offset, length)
        except CpuFault:
            return None

    # ------------------------------------------------------------------
    # Stack helpers
    # ------------------------------------------------------------------

    def push32(self, value: int) -> None:
        new_sp = mask32(self.sp - 4)
        self.write_virtual(SEG_SS, new_sp, mask32(value).to_bytes(4, "little"))
        self.sp = new_sp

    def pop32(self) -> int:
        value = int.from_bytes(self.read_virtual(SEG_SS, self.sp, 4), "little")
        self.sp = mask32(self.sp + 4)
        return value

    # ------------------------------------------------------------------
    # Segment loading
    # ------------------------------------------------------------------

    def _descriptor_for(self, sel: int) -> SegmentDescriptor:
        index = selector_index(sel)
        try:
            descriptor = self.gdt.read(index)
        except IndexError:
            raise CpuFault(VEC_GP, error_code=sel) from None
        if not descriptor.present:
            raise CpuFault(VEC_GP, error_code=sel)
        return descriptor

    def load_segment(self, seg: int, sel: int) -> None:
        """MOVSEG semantics with x86-style privilege checks."""
        if seg == SEG_CS:
            # CS changes only via interrupt delivery and IRET.
            raise CpuFault(VEC_UD)
        descriptor = self._descriptor_for(sel)
        rpl = selector_rpl(sel)
        if seg == SEG_SS:
            if descriptor.code or not descriptor.writable:
                raise CpuFault(VEC_GP, error_code=sel)
            if rpl != self.cpl or descriptor.dpl != self.cpl:
                raise CpuFault(VEC_GP, error_code=sel)
        else:
            if descriptor.code:
                raise CpuFault(VEC_GP, error_code=sel)
            if descriptor.dpl < max(self.cpl, rpl):
                raise CpuFault(VEC_GP, error_code=sel)
        self.segments[seg] = SegmentCache(sel, descriptor)

    def force_segment(self, seg: int, sel: int,
                      descriptor: SegmentDescriptor) -> None:
        """Monitor backdoor: install a segment without privilege checks.

        Used by monitors for world switches — the hardware analogue is the
        monitor running its own ring-0 code that is allowed to do this.
        """
        self.segments[seg] = SegmentCache(sel, descriptor)

    # ------------------------------------------------------------------
    # Interrupt / exception delivery
    # ------------------------------------------------------------------

    def read_idt_gate(self, vector: int, idt_base: Optional[int] = None,
                      idt_limit: Optional[int] = None) -> IdtGate:
        base = self.idtr_base if idt_base is None else idt_base
        limit = self.idtr_limit if idt_limit is None else idt_limit
        offset = vector * IDT_ENTRY_SIZE
        if offset + IDT_ENTRY_SIZE > limit:
            raise CpuFault(VEC_GP, error_code=vector * 8 + 2)
        raw = self.memory.read(base + offset, IDT_ENTRY_SIZE)
        return IdtGate.unpack(raw)

    def deliver(self, vector: int, error_code: int = 0,
                software: bool = False,
                idt_base: Optional[int] = None,
                idt_limit: Optional[int] = None) -> None:
        """Deliver an interrupt/exception through an IDT.

        ``software`` marks INT n, which is subject to the gate-DPL check
        (that is how ring-3 code is prevented from invoking arbitrary
        gates).  ``idt_base``/``idt_limit`` let a monitor deliver through
        the guest's *virtual* IDT when reflecting events.
        """
        gate = self.read_idt_gate(vector, idt_base, idt_limit)
        if not gate.present:
            raise CpuFault(VEC_GP, error_code=vector * 8 + 2)
        if software and gate.dpl < self.cpl:
            raise CpuFault(VEC_GP, error_code=vector * 8 + 2)

        target = self._descriptor_for(gate.selector)
        if not target.code:
            raise CpuFault(VEC_GP, error_code=gate.selector)
        target_ring = target.dpl
        if target_ring > self.cpl:
            # Gates never transfer outward.
            raise CpuFault(VEC_GP, error_code=gate.selector)

        old_cs = self.segments[SEG_CS].selector
        old_ss = self.segments[SEG_SS].selector
        old_sp = self.sp
        old_flags = self.flags

        if target_ring < self.cpl:
            new_sp, new_ss = self._ring_stack(target_ring)
            ss_descriptor = self._descriptor_for(new_ss)
            self.segments[SEG_SS] = SegmentCache(new_ss, ss_descriptor)
            self.sp = new_sp
            self.segments[SEG_CS] = SegmentCache(gate.selector, target)
            self.push32(old_ss)
            self.push32(old_sp)
        else:
            self.segments[SEG_CS] = SegmentCache(gate.selector, target)

        self.push32(old_flags)
        self.push32(old_cs)
        self.push32(self.pc)
        if vector in ERROR_CODE_VECTORS and not software:
            self.push32(error_code)

        self.pc = gate.offset
        self._set_flag(FLAG_TF, False)
        if gate.gate_type == GATE_TYPE_INTERRUPT:
            self._set_flag(FLAG_IF, False)
        self.halted = False
        self.budget.charge(40, CAT_INTERRUPT)
        self.cycle_count += 40

    def _ring_stack(self, ring: int) -> Tuple[int, int]:
        """Read the (SP, SS) pair for ``ring`` from the TSS."""
        base = self.tss_base + ring * 8
        sp = self.memory.read_u32(base)
        ss = self.memory.read_u32(base + 4)
        return sp, ss

    def _stack_word(self, index: int) -> int:
        """Read the ``index``-th word of the stack without popping."""
        return int.from_bytes(
            self.read_virtual(SEG_SS, mask32(self.sp + 4 * index), 4),
            "little")

    def _do_iret(self) -> None:
        # Like hardware: validate the whole frame before committing any
        # state, so a faulting IRET leaves SP (and the frame) intact for
        # the fault handler / monitor to inspect and emulate.
        new_pc = self._stack_word(0)
        new_cs = self._stack_word(1)
        new_flags = self._stack_word(2)
        target_rpl = selector_rpl(new_cs)
        if target_rpl < self.cpl:
            raise CpuFault(VEC_GP, error_code=new_cs)
        descriptor = self._descriptor_for(new_cs)
        if not descriptor.code or descriptor.dpl != target_rpl:
            raise CpuFault(VEC_GP, error_code=new_cs)
        outward = target_rpl > self.cpl
        new_sp = new_ss = ss_descriptor = None
        frame_words = 3
        if outward:
            new_sp = self._stack_word(3)
            new_ss = self._stack_word(4)
            frame_words = 5
            ss_descriptor = self._descriptor_for(new_ss)
            if ss_descriptor.dpl != target_rpl:
                raise CpuFault(VEC_GP, error_code=new_ss)

        # All checks passed: commit atomically from here on.
        self.sp = mask32(self.sp + 4 * frame_words)

        # IF (and IOPL) are privileged: only CPL <= IOPL may change IF, and
        # only ring 0 may change IOPL.  Silently preserved otherwise — the
        # classic x86 virtualisation hole the LVMM works around with its
        # shadow interrupt state.
        preserved = 0
        if self.cpl > self.iopl:
            preserved |= FLAG_IF
        if self.cpl != 0:
            preserved |= isa.IOPL_MASK
        new_flags = (new_flags & ~preserved) | (self.flags & preserved)

        self.segments[SEG_CS] = SegmentCache(new_cs, descriptor)
        self.flags = new_flags
        self.pc = new_pc
        if outward:
            self.segments[SEG_SS] = SegmentCache(new_ss, ss_descriptor)
            self.sp = new_sp

    # ------------------------------------------------------------------
    # Fault handling with double/triple fault semantics
    # ------------------------------------------------------------------

    def _handle_fault(self, fault: CpuFault, saved_pc: int) -> None:
        # Faults restart the instruction: report the faulting PC.
        if fault.vector in isa.FAULT_VECTORS:
            self.pc = saved_pc
        if self.exception_hook is not None:
            if self.exception_hook(self, fault.vector, fault.error_code):
                return
        try:
            self.deliver(fault.vector, fault.error_code)
        except CpuFault:
            try:
                self.deliver(VEC_DF, 0)
            except CpuFault as third:
                raise TripleFault(
                    f"triple fault delivering vector {fault.vector} "
                    f"then #DF: {third}") from third

    # ------------------------------------------------------------------
    # Fetch / decode / execute
    # ------------------------------------------------------------------

    def _fetch(self, length: int) -> bytes:
        return self.read_virtual(SEG_CS, self.pc, length)

    # -- decoded-instruction cache ------------------------------------

    def invalidate_decode_cache(self) -> None:
        """Drop every cached decode (breakpoint/PG-toggle safety).

        Compiled superblocks ride the exact same triggers: whatever
        invalidates a decoded instruction invalidates every block."""
        if self._decode_cache:
            self._decode_cache.clear()
            self.decode_cache_invalidations += 1
        if self._sb_engine is not None:
            self._sb_engine.invalidate()

    def _fill_decode_cache(self, linear_pc: int, descriptor, spec,
                           handler, operands) -> None:
        """Cache one successfully fetched+decoded instruction.

        Records the physical page(s) backing the instruction bytes and
        their current write generations; a later hit revalidates those
        generations, which is what makes self-modifying code (and DMA
        into code pages) re-decode.  MMIO-backed code is never cached:
        a device can change its contents without a memory write.
        """
        cache = self._decode_cache
        if len(cache) >= self.DECODE_CACHE_CAPACITY:
            self.invalidate_decode_cache()
        pages = []
        page_gens = self.memory.page_gens
        for vaddr, _chunk in span_pages(linear_pc, spec.length):
            paddr = self._physical(vaddr, write=False)
            if self.bus.is_mmio(paddr):
                return
            page = paddr >> PAGE_SHIFT
            pages.append((page, page_gens[page]))
        cache[linear_pc] = (handler, operands, spec.length, spec.cycles,
                           spec, descriptor, tuple(pages),
                           spec.privilege != isa.PRIV_NONE,
                           self.paging_enabled)

    def decode_cache_stats(self) -> dict:
        """Counter snapshot for the perf-export layer."""
        total = self.decode_cache_hits + self.decode_cache_misses
        return {
            "enabled": self.decode_cache_enabled,
            "entries": len(self._decode_cache),
            "hits": self.decode_cache_hits,
            "misses": self.decode_cache_misses,
            "invalidations": self.decode_cache_invalidations,
            "hit_rate": (self.decode_cache_hits / total) if total else 0.0,
        }

    def block_cache_stats(self) -> dict:
        """Superblock counter snapshot (zeros when translation is off)."""
        if self._sb_engine is None:
            return {
                "enabled": False,
                "entries": 0,
                "blocks_compiled": 0,
                "hits": 0,
                "guard_failures": 0,
                "invalidations": 0,
                "insns_translated": 0,
                "hit_rate": 0.0,
            }
        return self._sb_engine.stats()

    def step(self) -> None:
        """Execute one instruction (or accept one interrupt)."""
        if self._maybe_take_interrupt():
            return
        if self.halted:
            if not self.interrupts_enabled and self.irq_source is None \
                    and self.exception_hook is None:
                raise CpuHalted("HLT with interrupts disabled and no "
                                "interrupt source: machine is dead")
            self.cycle_count += 1
            return
        self._step_insn()

    def _step_insn(self) -> None:
        """Fetch/decode/execute one instruction (not halted, IRQs polled).

        Fast path: a decode-cache hit skips the segment check, the MMU
        walk and all byte slicing for both the opcode and body fetch.  A
        hit is valid only when (a) the CS descriptor equals the one at
        fill time (same base/limit/DPL, hence same linear address and
        privilege context; identity is tried first, value equality
        second — interrupt delivery and IRET rebuild the descriptor
        object from the GDT), (b) paging was in the same on/off state,
        (c) the backing physical pages' write generations are unchanged
        (self-modifying code, DMA), and (d) the TLB flush generation is
        unchanged (CR3 writes, explicit flushes).  Breakpoint and
        watchpoint checks still run on every execution, so #DB delivery
        and `resume_flag` suppression are byte-for-byte identical to the
        uncached interpreter.
        """
        saved_pc = self.pc
        take_tf = bool(self.flags & FLAG_TF)
        self._interrupt_shadow = False
        suppress_bp = self.resume_flag
        self.resume_flag = False
        try:
            descriptor = self.segments[SEG_CS].descriptor
            entry = None
            if self.decode_cache_enabled:
                tlb_gen = self.mmu.tlb.generation
                if tlb_gen != self._decode_tlb_gen:
                    self._decode_tlb_gen = tlb_gen
                    self.invalidate_decode_cache()
                linear_pc = (descriptor.base + saved_pc) & 0xFFFFFFFF
                blocks = self._sb_blocks
                if blocks and not take_tf and not self.watchpoints:
                    # Superblock dispatch.  Static guards mirror the
                    # decode cache (descriptor, paging state, code-page
                    # generation); a static miss evicts the stale block
                    # so the hot counter can rebuild it.  The limit
                    # check is pacing, not staleness: the block runs
                    # only while it provably cannot overshoot the run
                    # cap, the next profiler stride or the next device
                    # event, so per-instruction observables stay
                    # byte-identical to the interpreter.
                    block = blocks.get(linear_pc)
                    if block is not None:
                        if (block[3] is descriptor
                                or block[3] == descriptor) \
                                and block[4] == self.paging_enabled \
                                and self.memory.page_gens[block[5]] \
                                == block[6]:
                            if self.instret + block[1] \
                                    <= self.block_instret_limit \
                                    and self.cycle_count + block[2] \
                                    <= self.block_cycle_limit:
                                engine = self._sb_engine
                                engine.hits += 1
                                block[0](self)
                                engine.insns_translated += \
                                    self.block_extra_steps + 1
                                return
                        else:
                            self._sb_engine.evict(linear_pc)
                entry = self._decode_cache.get(linear_pc)
            if entry is not None \
                    and (entry[5] is descriptor or entry[5] == descriptor) \
                    and entry[8] == self.paging_enabled:
                page_gens = self.memory.page_gens
                for page, generation in entry[6]:
                    if page_gens[page] != generation:
                        entry = None
                        break
            else:
                entry = None
            if entry is not None:
                self.decode_cache_hits += 1
                linear_pc = (descriptor.base + saved_pc) & 0xFFFFFFFF
                if linear_pc in self.code_breakpoints and not suppress_bp:
                    raise CpuFault(VEC_DB, error_code=0)
                # Mirror the uncached check order: opcode fetch,
                # privilege, body fetch.
                if self.watchpoints:
                    self._check_watchpoints(linear_pc, 1, write=False)
                if entry[7]:
                    self._check_privilege(entry[4])
                if self.watchpoints:
                    self._check_watchpoints(linear_pc, entry[2],
                                            write=False)
                self.pc = (saved_pc + entry[2]) & 0xFFFFFFFF
                entry[0](entry[1])
                cycles = entry[3]
            else:
                linear_pc = self.linear(SEG_CS, saved_pc, 1, write=False)
                if linear_pc in self.code_breakpoints and not suppress_bp:
                    raise CpuFault(VEC_DB, error_code=0)
                opcode = self._fetch(1)[0]
                dispatch = self._dispatch.get(opcode)
                if dispatch is None:
                    raise CpuFault(VEC_UD)
                handler, decoder, spec = dispatch
                self._check_privilege(spec)
                body = self._fetch(spec.length)[1:]
                operands = decoder(body) if decoder is not None else None
                if self.decode_cache_enabled:
                    self.decode_cache_misses += 1
                    self._fill_decode_cache(linear_pc, descriptor, spec,
                                            handler, operands)
                self.pc = (saved_pc + spec.length) & 0xFFFFFFFF
                handler(operands)
                cycles = spec.cycles
            self.instret += 1
            self.budget.charge(cycles, CAT_GUEST)
            self.cycle_count += cycles
            if self.pc < saved_pc and self._sb_engine is not None:
                # Taken backward transfer: the classic hot-loop signal.
                self._sb_engine.note_backward(
                    self.pc, self.segments[SEG_CS].descriptor)
        except CpuFault as fault:
            self._handle_fault(fault, saved_pc)
            return
        if take_tf and (self.flags & FLAG_TF):
            # Single-step trap fires after the instruction completes.
            try:
                raise CpuFault(VEC_DB, error_code=0)
            except CpuFault as fault:
                self._handle_fault(fault, self.pc)

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Step until HLT-with-no-wakeup or the instruction cap."""
        executed = 0
        translate = self._sb_engine is not None
        if translate:
            # Bare runs have no event queue, so blocks are paced by the
            # instruction cap alone.
            self.block_cycle_limit = float("inf")
        try:
            if self.irq_source is None:
                # Fast inner loop: with no interrupt source attached the
                # per-step interrupt poll can never accept anything, so
                # it is hoisted out (``_step_insn`` still clears the STI
                # shadow); the halted checks collapse to one branch.
                step_insn = self._step_insn
                while executed < max_instructions:
                    if self.halted:
                        if self.exception_hook is None:
                            break
                        before = self.instret
                        self.step()  # halted bookkeeping (tick / death)
                        if self.instret == before and self.halted:
                            break
                        executed += 1
                        continue
                    if translate:
                        self.block_instret_limit = self.instret \
                            + (max_instructions - executed)
                    before = self.instret
                    step_insn()
                    extra = self.block_extra_steps
                    self.block_extra_steps = 0
                    # "Last micro-step made no progress and halted" —
                    # for a block, instructions retired before an
                    # in-block fault (== extra) don't count as progress
                    # of the faulting step itself.
                    if self.halted and self.instret - before == extra:
                        executed += extra
                        break
                    executed += 1 + extra
                return executed
            while executed < max_instructions:
                if self.halted and self.irq_source is None \
                        and self.exception_hook is None:
                    break
                if translate:
                    self.block_instret_limit = self.instret \
                        + (max_instructions - executed)
                before = self.instret
                self.step()
                extra = self.block_extra_steps
                self.block_extra_steps = 0
                if self.halted and self.instret - before == extra:
                    executed += extra
                    break
                executed += 1 + extra
            return executed
        finally:
            self.block_instret_limit = 0
            self.block_cycle_limit = 0

    def _maybe_take_interrupt(self) -> bool:
        if self._interrupt_shadow:
            self._interrupt_shadow = False
            return False
        if self.irq_source is None:
            return False
        if not self.irq_source.has_pending():
            return False
        if self.interrupt_hook is not None:
            # A monitor owns interrupt acceptance outright: it decides
            # whether/when to reflect regardless of the guest's IF, since
            # the guest's IF is virtualised.
            vector = self.irq_source.acknowledge()
            self.halted = False
            if self.interrupt_hook(self, vector):
                return True
            self.deliver(vector)
            return True
        if not self.interrupts_enabled:
            return False
        vector = self.irq_source.acknowledge()
        self.halted = False
        self.deliver(vector)
        return True

    #: IN/OUT defer their privilege check to execution time, when the
    #: port number is known and the I/O bitmap can be consulted.
    _IO_MNEMONICS = frozenset({"INB", "OUTB", "INW", "OUTW"})

    def _check_privilege(self, spec: isa.InsnSpec) -> None:
        if spec.privilege == isa.PRIV_RING0 and self.cpl != 0:
            raise CpuFault(VEC_GP, error_code=0)
        if spec.privilege == isa.PRIV_IOPL and self.cpl > self.iopl \
                and spec.mnemonic not in self._IO_MNEMONICS:
            raise CpuFault(VEC_GP, error_code=0)

    def _check_io_permission(self, port: int) -> None:
        if self.cpl <= self.iopl:
            return
        if self.io_allowed_ports is not None \
                and port in self.io_allowed_ports:
            return
        raise CpuFault(VEC_GP, error_code=0)

    # -- ALU flag helpers ------------------------------------------------

    def _set_zsf(self, result: int) -> None:
        self._set_flag(FLAG_ZF, result == 0)
        self._set_flag(FLAG_SF, bool(result & 0x80000000))

    def _alu_add(self, a: int, b: int) -> int:
        result = a + b
        masked = mask32(result)
        self._set_flag(FLAG_CF, result > 0xFFFFFFFF)
        self._set_flag(
            FLAG_OF,
            (signed32(a) >= 0) == (signed32(b) >= 0)
            and (signed32(masked) >= 0) != (signed32(a) >= 0))
        self._set_zsf(masked)
        return masked

    def _alu_sub(self, a: int, b: int) -> int:
        result = a - b
        masked = mask32(result)
        self._set_flag(FLAG_CF, a < b)
        self._set_flag(
            FLAG_OF,
            (signed32(a) >= 0) != (signed32(b) >= 0)
            and (signed32(masked) >= 0) != (signed32(a) >= 0))
        self._set_zsf(masked)
        return masked

    def _alu_logic(self, result: int) -> int:
        masked = mask32(result)
        self._set_flag(FLAG_CF, False)
        self._set_flag(FLAG_OF, False)
        self._set_zsf(masked)
        return masked

    # -- decode helpers -----------------------------------------------------

    @staticmethod
    def _rr(body: bytes) -> Tuple[int, int]:
        return (body[0] >> 4) & 0x7, body[0] & 0x7

    @staticmethod
    def _imm32(body: bytes, offset: int = 0) -> int:
        return int.from_bytes(body[offset:offset + 4], "little")

    # -- table dispatch ------------------------------------------------------
    #
    # One handler per opcode, bound into ``self._dispatch`` at construction
    # and called with pre-decoded operands (see isa.OPERAND_DECODERS), so
    # the hot loop never string-compares mnemonics and a decode-cache hit
    # never touches the instruction bytes again.

    def _execute(self, spec: isa.InsnSpec, body: bytes) -> None:
        """Decode the operand bytes and dispatch (slow-path/compat entry)."""
        handler, decoder, _ = self._dispatch[spec.opcode]
        handler(decoder(body) if decoder is not None else None)

    # -- control -------------------------------------------------------------

    def _op_nop(self, operands) -> None:
        pass

    def _op_hlt(self, operands) -> None:
        self.halted = True

    def _op_cli(self, operands) -> None:
        self._set_flag(FLAG_IF, False)

    def _op_sti(self, operands) -> None:
        self._set_flag(FLAG_IF, True)
        self._interrupt_shadow = True

    def _op_iret(self, operands) -> None:
        self._do_iret()

    def _op_ret(self, operands) -> None:
        self.pc = self.pop32()

    def _op_bkpt(self, operands) -> None:
        raise CpuFault(VEC_BP)

    def _op_vmcall(self, operands) -> None:
        if self.vmcall_hook is not None and self.vmcall_hook(self):
            return
        raise CpuFault(VEC_VMCALL)

    # -- data movement -------------------------------------------------------

    def _op_movi(self, operands) -> None:
        ra, imm = operands
        self.regs[ra] = imm

    def _op_mov(self, operands) -> None:
        ra, rb = operands
        self.regs[ra] = self.regs[rb]

    def _load(self, operands, size: int) -> None:
        ra, rb, imm = operands
        offset = (self.regs[rb] + imm) & 0xFFFFFFFF
        data = self.read_virtual(SEG_DS, offset, size)
        self.regs[ra] = int.from_bytes(data, "little")

    def _store(self, operands, size: int) -> None:
        ra, rb, imm = operands
        offset = (self.regs[rb] + imm) & 0xFFFFFFFF
        self.write_virtual(SEG_DS, offset,
                           (self.regs[ra] & ((1 << (8 * size)) - 1))
                           .to_bytes(size, "little"))

    def _op_ld(self, operands) -> None:
        self._load(operands, 4)

    def _op_ld8(self, operands) -> None:
        self._load(operands, 1)

    def _op_ld16(self, operands) -> None:
        self._load(operands, 2)

    def _op_st(self, operands) -> None:
        self._store(operands, 4)

    def _op_st8(self, operands) -> None:
        self._store(operands, 1)

    def _op_st16(self, operands) -> None:
        self._store(operands, 2)

    def _op_lea(self, operands) -> None:
        ra, rb, imm = operands
        self.regs[ra] = (self.regs[rb] + imm) & 0xFFFFFFFF

    def _op_push(self, operands) -> None:
        self.push32(self.regs[operands])

    def _op_pushi(self, operands) -> None:
        self.push32(operands)

    def _op_pop(self, operands) -> None:
        self.regs[operands] = self.pop32()

    def _op_pushf(self, operands) -> None:
        self.push32(self.flags)

    def _op_popf(self, operands) -> None:
        new_flags = self.pop32()
        # IA-32 semantics: IF only changes when CPL <= IOPL, IOPL
        # only at ring 0 — silently preserved otherwise.  This is
        # the famous virtualisation hole: deprivileged kernels
        # *think* they toggled IF.  Monitors here survive it because
        # all interrupt delivery is virtualised through them anyway.
        preserved = 0
        if self.cpl > self.iopl:
            preserved |= FLAG_IF
        if self.cpl != 0:
            preserved |= isa.IOPL_MASK
        self.flags = (new_flags & ~preserved) | (self.flags & preserved)

    def _op_xchg(self, operands) -> None:
        ra, rb = operands
        regs = self.regs
        regs[ra], regs[rb] = regs[rb], regs[ra]

    # -- ALU -----------------------------------------------------------------

    def _op_add(self, operands) -> None:
        ra, rb = operands
        regs = self.regs
        regs[ra] = self._alu_add(regs[ra], regs[rb])

    def _op_addi(self, operands) -> None:
        ra, imm = operands
        self.regs[ra] = self._alu_add(self.regs[ra], imm)

    def _op_sub(self, operands) -> None:
        ra, rb = operands
        regs = self.regs
        regs[ra] = self._alu_sub(regs[ra], regs[rb])

    def _op_subi(self, operands) -> None:
        ra, imm = operands
        self.regs[ra] = self._alu_sub(self.regs[ra], imm)

    def _op_and(self, operands) -> None:
        ra, rb = operands
        regs = self.regs
        regs[ra] = self._alu_logic(regs[ra] & regs[rb])

    def _op_andi(self, operands) -> None:
        ra, imm = operands
        self.regs[ra] = self._alu_logic(self.regs[ra] & imm)

    def _op_or(self, operands) -> None:
        ra, rb = operands
        regs = self.regs
        regs[ra] = self._alu_logic(regs[ra] | regs[rb])

    def _op_ori(self, operands) -> None:
        ra, imm = operands
        self.regs[ra] = self._alu_logic(self.regs[ra] | imm)

    def _op_xor(self, operands) -> None:
        ra, rb = operands
        regs = self.regs
        regs[ra] = self._alu_logic(regs[ra] ^ regs[rb])

    def _op_xori(self, operands) -> None:
        ra, imm = operands
        self.regs[ra] = self._alu_logic(self.regs[ra] ^ imm)

    def _op_shl(self, operands) -> None:
        ra, rb = operands
        regs = self.regs
        regs[ra] = self._alu_logic(regs[ra] << (regs[rb] & 31))

    def _op_shli(self, operands) -> None:
        ra, imm = operands
        self.regs[ra] = self._alu_logic(self.regs[ra] << (imm & 31))

    def _op_shr(self, operands) -> None:
        ra, rb = operands
        regs = self.regs
        regs[ra] = self._alu_logic(regs[ra] >> (regs[rb] & 31))

    def _op_shri(self, operands) -> None:
        ra, imm = operands
        self.regs[ra] = self._alu_logic(self.regs[ra] >> (imm & 31))

    def _op_mul(self, operands) -> None:
        ra, rb = operands
        regs = self.regs
        regs[ra] = self._alu_logic(regs[ra] * regs[rb])

    def _op_muli(self, operands) -> None:
        ra, imm = operands
        self.regs[ra] = self._alu_logic(self.regs[ra] * imm)

    def _op_div(self, operands) -> None:
        ra, rb = operands
        regs = self.regs
        if regs[rb] == 0:
            raise CpuFault(VEC_DE)
        regs[ra] = self._alu_logic(regs[ra] // regs[rb])

    def _op_divi(self, operands) -> None:
        ra, imm = operands
        if imm == 0:
            raise CpuFault(VEC_DE)
        self.regs[ra] = self._alu_logic(self.regs[ra] // imm)

    def _op_cmp(self, operands) -> None:
        ra, rb = operands
        self._alu_sub(self.regs[ra], self.regs[rb])

    def _op_cmpi(self, operands) -> None:
        ra, imm = operands
        self._alu_sub(self.regs[ra], imm)

    def _op_test(self, operands) -> None:
        ra, rb = operands
        self._alu_logic(self.regs[ra] & self.regs[rb])

    def _op_not(self, operands) -> None:
        self.regs[operands] = self._alu_logic(~self.regs[operands])

    def _op_neg(self, operands) -> None:
        self.regs[operands] = self._alu_sub(0, self.regs[operands])

    # -- control flow --------------------------------------------------------
    # ``operands`` is the pre-sign-extended rel32; PC has already been
    # advanced past the instruction when a handler runs.

    def _op_jmp(self, rel) -> None:
        self.pc = (self.pc + rel) & 0xFFFFFFFF

    def _op_jz(self, rel) -> None:
        if self.flags & FLAG_ZF:
            self.pc = (self.pc + rel) & 0xFFFFFFFF

    def _op_jnz(self, rel) -> None:
        if not self.flags & FLAG_ZF:
            self.pc = (self.pc + rel) & 0xFFFFFFFF

    def _op_jc(self, rel) -> None:
        if self.flags & FLAG_CF:
            self.pc = (self.pc + rel) & 0xFFFFFFFF

    def _op_jnc(self, rel) -> None:
        if not self.flags & FLAG_CF:
            self.pc = (self.pc + rel) & 0xFFFFFFFF

    def _op_jg(self, rel) -> None:
        flags = self.flags
        if not flags & FLAG_ZF \
                and bool(flags & FLAG_SF) == bool(flags & FLAG_OF):
            self.pc = (self.pc + rel) & 0xFFFFFFFF

    def _op_jge(self, rel) -> None:
        flags = self.flags
        if bool(flags & FLAG_SF) == bool(flags & FLAG_OF):
            self.pc = (self.pc + rel) & 0xFFFFFFFF

    def _op_jl(self, rel) -> None:
        flags = self.flags
        if bool(flags & FLAG_SF) != bool(flags & FLAG_OF):
            self.pc = (self.pc + rel) & 0xFFFFFFFF

    def _op_jle(self, rel) -> None:
        flags = self.flags
        if flags & FLAG_ZF \
                or bool(flags & FLAG_SF) != bool(flags & FLAG_OF):
            self.pc = (self.pc + rel) & 0xFFFFFFFF

    def _op_js(self, rel) -> None:
        if self.flags & FLAG_SF:
            self.pc = (self.pc + rel) & 0xFFFFFFFF

    def _op_jns(self, rel) -> None:
        if not self.flags & FLAG_SF:
            self.pc = (self.pc + rel) & 0xFFFFFFFF

    def _op_call(self, rel) -> None:
        target = (self.pc + rel) & 0xFFFFFFFF
        self.push32(self.pc)
        self.pc = target

    def _op_jmpr(self, operands) -> None:
        self.pc = self.regs[operands]

    def _op_callr(self, operands) -> None:
        self.push32(self.pc)
        self.pc = self.regs[operands]

    # -- traps and I/O -------------------------------------------------------

    def _op_int(self, operands) -> None:
        self.deliver(operands, software=True)

    def _op_inb(self, operands) -> None:
        ra, rb = operands
        port = self.regs[rb] & 0xFFFF
        self._check_io_permission(port)
        self.regs[ra] = self.bus.port_read(port, 1)

    def _op_inw(self, operands) -> None:
        ra, rb = operands
        port = self.regs[rb] & 0xFFFF
        self._check_io_permission(port)
        self.regs[ra] = self.bus.port_read(port, 4)

    def _op_outb(self, operands) -> None:
        ra, rb = operands
        port = self.regs[rb] & 0xFFFF
        self._check_io_permission(port)
        self.bus.port_write(port, self.regs[ra], 1)

    def _op_outw(self, operands) -> None:
        ra, rb = operands
        port = self.regs[rb] & 0xFFFF
        self._check_io_permission(port)
        self.bus.port_write(port, self.regs[ra], 4)

    # -- system state --------------------------------------------------------

    def _op_movcr(self, operands) -> None:
        crn, reg = operands
        value = self.regs[reg]
        self.crs[crn] = value
        if crn == 3:
            self.mmu.set_cr3(value)
        elif crn == 0:
            # A CR0.PG toggle changes the fetch address space without
            # touching CR3: drop decoded code outright.
            self.invalidate_decode_cache()

    def _op_movrc(self, operands) -> None:
        crn, reg = operands
        self.regs[reg] = self.crs[crn]

    def _op_lgdt(self, operands) -> None:
        pseudo = self.regs[operands & 0x7]
        limit = int.from_bytes(self.read_virtual(SEG_DS, pseudo, 4),
                               "little")
        base = int.from_bytes(self.read_virtual(SEG_DS, pseudo + 4, 4),
                              "little")
        self.gdt.load(base, limit)

    def _op_lidt(self, operands) -> None:
        pseudo = self.regs[operands & 0x7]
        self.idtr_limit = int.from_bytes(
            self.read_virtual(SEG_DS, pseudo, 4), "little")
        self.idtr_base = int.from_bytes(
            self.read_virtual(SEG_DS, pseudo + 4, 4), "little")

    def _op_ltss(self, operands) -> None:
        self.tss_base = self.regs[operands & 0x7]

    def _op_movseg(self, operands) -> None:
        segn, reg = operands
        self.load_segment(segn, self.regs[reg] & 0xFFFF)

    def _op_movsgr(self, operands) -> None:
        segn, reg = operands
        self.regs[reg] = self.segments[segn].selector
