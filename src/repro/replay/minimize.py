"""Shrink a failing journal to a minimal reproducing core.

A journal that reproduces a failure usually carries far more history
than the failure needs — warm-up run slices, debugger chatter, faults
that missed.  The minimizer searches for a strictly smaller sequence of
*core* frames (replayable inputs + host operations) whose relaxed
replay still satisfies every recorded failure check.

Two stages, both bounded by a test budget:

1. **Prefix truncation** — binary search for the shortest journal
   prefix that still reproduces.  Failures are prefix-monotonic (once
   the guest is dead it stays dead), so this is O(log n) replays and
   usually removes the entire post-failure tail.
2. **ddmin** — classic delta debugging over the surviving core frames:
   try dropping chunks, recurse with finer granularity while removals
   keep reproducing.

Cross-check, rng and checkpoint frames are dropped outright: they are
evidence about the *original* execution and would be stale in any
edited journal.  The minimized journal gets a fresh end frame whose
digest and micro-counters are recomputed from the minimized replay, so
it is itself a valid, verifiable recording.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import JournalError
from repro.replay.journal import FRAME_END, Frame, Journal
from repro.replay.recorder import INPUT_KINDS, OP_KINDS
from repro.replay.replayer import replay_journal

#: Frames the minimizer may keep or drop; everything else is stale
#: evidence in an edited journal.
CORE_KINDS = INPUT_KINDS + OP_KINDS


@dataclass
class MinimizeResult:
    """Outcome of a minimization run."""

    journal: Journal
    reproduced: bool
    original_core_frames: int
    minimized_core_frames: int
    tests_run: int
    stages: List[str] = field(default_factory=list)

    @property
    def reduced(self) -> bool:
        return self.minimized_core_frames < self.original_core_frames

    def stats(self) -> Dict:
        return {"reproduced": self.reproduced,
                "original_core_frames": self.original_core_frames,
                "minimized_core_frames": self.minimized_core_frames,
                "tests_run": self.tests_run,
                "reduced": self.reduced,
                "stages": list(self.stages)}


def _core_frames(journal: Journal) -> List[Frame]:
    return [frame for frame in journal.frames if frame.kind in CORE_KINDS]


def _build_variant(journal: Journal, core: List[Frame],
                   end_data: Dict) -> Journal:
    frames = list(core)
    frames.append(Frame(FRAME_END, dict(end_data)))
    return Journal(header=dict(journal.header), frames=frames)


def minimize_journal(journal: Journal,
                     max_tests: int = 64) -> MinimizeResult:
    """Delta-debug a failing journal down to a reproducing core.

    Raises :class:`JournalError` when the journal is not minimizable
    (no end frame, no re-evaluable checks) or when the unmodified
    journal does not reproduce its own failure — a minimizer must never
    "shrink" a recording it cannot even confirm.
    """
    end_frame = journal.end_frame
    if end_frame is None:
        raise JournalError("journal is incomplete: nothing to minimize")
    checks = end_frame.data.get("checks") or []
    if not checks:
        raise JournalError(
            "journal records no failure checks; there is no predicate "
            "to minimize against")
    end_data = dict(end_frame.data)
    core = _core_frames(journal)
    original_count = len(core)
    tests_run = 0
    stages: List[str] = []

    def reproduces(subset: List[Frame]) -> bool:
        nonlocal tests_run
        tests_run += 1
        variant = _build_variant(journal, subset, end_data)
        result = replay_journal(variant, strict=False)
        return result.reproduced

    if not reproduces(core):
        raise JournalError(
            "journal does not reproduce its recorded failure; refusing "
            "to minimize an unconfirmed recording")

    # Stage 1: shortest reproducing prefix, by binary search.  Once a
    # failure has happened it stays happened, so reproduction is
    # monotonic in prefix length.
    low, high = 1, len(core)       # invariant: core[:high] reproduces
    while low < high and tests_run < max_tests:
        mid = (low + high) // 2
        if reproduces(core[:mid]):
            high = mid
        else:
            low = mid + 1
    if high < len(core):
        stages.append(f"prefix:{len(core)}->{high}")
        core = core[:high]

    # Stage 2: ddmin over the surviving core, budget permitting.
    chunks = 2
    while chunks <= len(core) and tests_run < max_tests:
        size = max(1, len(core) // chunks)
        removed_any = False
        start = 0
        while start < len(core) and tests_run < max_tests:
            candidate = core[:start] + core[start + size:]
            if candidate and reproduces(candidate):
                stages.append(f"ddmin:-{min(size, len(core) - start)}")
                core = candidate
                chunks = max(chunks - 1, 2)
                removed_any = True
                # Keep position: the next chunk slid into this slot.
            else:
                start += size
        if not removed_any:
            if chunks >= len(core):
                break
            chunks = min(len(core), chunks * 2)

    minimized = _build_variant(journal, core, end_data)
    final = replay_journal(minimized, strict=False)
    # Re-seal the end frame with the minimized execution's own digest
    # and counters so the artifact verifies on its own.
    cpu = final.machine.cpu
    end = dict(end_data)
    end["digest"] = final.final_digest
    end["instret"] = cpu.instret
    end["cycle"] = cpu.cycle_count
    end["t2h"] = final.t2h
    minimized.frames[-1] = Frame(FRAME_END, end)
    return MinimizeResult(journal=minimized,
                          reproduced=final.reproduced,
                          original_core_frames=original_count,
                          minimized_core_frames=len(core),
                          tests_run=tests_run,
                          stages=stages)
