"""Deterministic record/replay flight recorder.

The chaos layer (PR 3) can provoke a failure; this package makes the
failure *portable*.  A :class:`FlightRecorder` journals every source of
nondeterminism that crosses the machine boundary — inbound RSP/UART
bytes, fault-plan triggers, the host's run/service interleaving — into a
crash-consistent, length-prefixed, sha256-framed journal, together with
cross-check evidence (IRQ instants, RTC reads, event scheduling) and
periodic whole-machine state digests.  A :class:`Replayer` re-drives a
fresh machine from the journal; on mismatch, :func:`bisect_divergence`
narrows the split to the exact event, and :func:`minimize_journal`
delta-debugs the journal down to a minimal repro.
"""

from repro.replay.journal import (FRAME_CHECKPOINT, FRAME_END, FRAME_EVENT,
                                  FRAME_HEADER, Frame, Journal,
                                  JournalWriter, load_journal,
                                  loads_journal, save_journal)
from repro.replay.digest import state_digest
from repro.replay.recorder import FlightRecorder
from repro.replay.replayer import (BisectReport, Divergence, Replayer,
                                   ReplayResult, bisect_divergence,
                                   evaluate_checks, replay_journal)
from repro.replay.minimize import MinimizeResult, minimize_journal

__all__ = [
    "FRAME_CHECKPOINT", "FRAME_END", "FRAME_EVENT", "FRAME_HEADER",
    "Frame", "Journal", "load_journal", "loads_journal", "save_journal",
    "state_digest", "FlightRecorder", "BisectReport", "Divergence",
    "Replayer", "ReplayResult", "bisect_divergence", "evaluate_checks",
    "replay_journal", "MinimizeResult", "minimize_journal",
]
