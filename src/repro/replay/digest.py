"""Whole-machine state digests for replay cross-checking.

``state_digest`` folds everything architecturally visible — CPU
registers, the full memory image, PIC/PIT/RTC/UART/NIC/SCSI device
state, disk overlays, the monitor's shadow state — into one sha256 hex
string.  Unlike :func:`repro.core.snapshot.capture` it never refuses:
digests are taken mid-flight (between host operations), so in-flight
device state is part of what they attest.

Host-side link state needs care: the recorder's client drains the
target-to-host queue, but a replayer has no client, so ``a_to_b``
contents differ legitimately.  The digest therefore excludes ``a_to_b``
and the caller mixes in the *rolling* target-to-host stream digest
instead (every byte the target ever sent), which both sides can compute.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional


def _machine_state(machine, monitor=None) -> dict:
    cpu = machine.cpu
    state = {
        "regs": list(cpu.regs),
        "pc": cpu.pc,
        "flags": cpu.flags,
        "crs": list(cpu.crs),
        "segments": [[cache.selector, cache.descriptor.pack().hex()]
                     for cache in cpu.segments],
        "gdtr": [cpu.gdt.base, cpu.gdt.limit],
        "idtr": [cpu.idtr_base, cpu.idtr_limit],
        "tss_base": cpu.tss_base,
        "halted": cpu.halted,
        "instret": cpu.instret,
        "cycle": cpu.cycle_count,
        "now": machine.queue.now,
        "memory": hashlib.sha256(
            machine.memory.read(0, machine.memory.size)).hexdigest(),
        "pic": machine.pic.state(),
        "pit": machine.pit.state(),
        "rtc": machine.rtc.state(),
        "uart": machine.uart.state(),
        "link_b_to_a": list(machine.serial_link.b_to_a),
        "hba": {
            "mailbox": machine.hba._mailbox,
            "in_flight": machine.hba._in_flight,
            "completions": list(machine.hba._completions),
            "sense": {str(k): v
                      for k, v in sorted(machine.hba._sense.items())},
            "requests_started": machine.hba.requests_started,
        },
        "disk_overlays": [
            hashlib.sha256(
                b"".join(struct_key(lba) + block
                         for lba, block in sorted(disk._overlay.items()))
            ).hexdigest()
            for disk in machine.disks],
    }
    if machine.nic is not None:
        state["nic"] = machine.nic.state()
    if monitor is not None:
        shadow = monitor.shadow
        state["monitor"] = {
            "stopped": monitor.stopped,
            "guest_dead": monitor.guest_dead,
            "guest_dead_reason": monitor.guest_dead_reason,
            "vif": shadow.vif,
            "vif_before_reflect": shadow.vif_before_reflect,
            "idtr": [shadow.idtr.base, shadow.idtr.limit],
            "gdtr": [shadow.gdtr.base, shadow.gdtr.limit],
            "tss_base": shadow.tss_base,
            "cr0": shadow.cr0,
            "cr3": shadow.cr3,
            "halted": shadow.halted,
            "vpic": shadow.virtual_pic.state(),
        }
    return state


def struct_key(lba: int) -> bytes:
    return lba.to_bytes(8, "little")


def state_digest(machine, monitor=None,
                 extra: Optional[dict] = None) -> str:
    """One sha256 over the machine's architecturally visible state.

    ``extra`` lets the caller mix in stream evidence the machine no
    longer holds (the rolling target-to-host digest); it must be
    JSON-serialisable and deterministic.
    """
    state = _machine_state(machine, monitor)
    if extra:
        state["extra"] = extra
    encoded = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
