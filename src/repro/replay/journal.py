"""Journal container: length-prefixed, sha256-framed, crash-consistent.

A journal is a flat sequence of frames::

    magic "LVMMJRNL" | u16 version
    frame := u32 payload_len (LE) | u8 type | payload | digest[8]

where ``payload`` is canonical JSON (sorted keys, compact separators,
UTF-8) and ``digest`` is the first 8 bytes of
``sha256(magic | version | type | payload)``.  Every frame is
self-checking, so a journal whose tail was lost to a crash (the writer
died mid-frame) loads cleanly up to the last intact frame instead of
raising; the loader marks such journals ``truncated``.

Frame types give tooling a structural skeleton without parsing JSON:

* ``FRAME_HEADER`` — machine configuration + guest image, always first;
* ``FRAME_EVENT`` — one recorded event (replayable input, host
  operation, or cross-check evidence; the payload's ``kind`` says which,
  see :mod:`repro.replay.recorder`);
* ``FRAME_CHECKPOINT`` — a periodic whole-machine state digest;
* ``FRAME_END`` — final digest + invariant verdict; its presence marks
  the journal ``complete``.
"""

from __future__ import annotations

import json
import os
import signal
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import JournalError

from hashlib import sha256

MAGIC = b"LVMMJRNL"
VERSION = 1
DIGEST_LEN = 8
_HEAD = struct.Struct("<IB")  # payload_len, frame type

FRAME_HEADER = 1
FRAME_EVENT = 2
FRAME_CHECKPOINT = 3
FRAME_END = 4

_TYPE_NAMES = {FRAME_HEADER: "header", FRAME_EVENT: "event",
               FRAME_CHECKPOINT: "checkpoint", FRAME_END: "end"}

#: Maximum accepted payload size — a corrupted length prefix must not
#: make the loader try to slurp gigabytes.
MAX_PAYLOAD = 16 * 1024 * 1024


def _canonical(data: dict) -> bytes:
    return json.dumps(data, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _frame_digest(frame_type: int, payload: bytes) -> bytes:
    hasher = sha256(MAGIC)
    hasher.update(struct.pack("<HB", VERSION, frame_type))
    hasher.update(payload)
    return hasher.digest()[:DIGEST_LEN]


@dataclass
class Frame:
    """One journal frame: a structural type plus a JSON payload."""

    type: int
    data: Dict = field(default_factory=dict)

    @property
    def kind(self) -> str:
        """The payload's event kind, or the structural type name."""
        return self.data.get("kind", _TYPE_NAMES.get(self.type, "?"))

    def encode(self) -> bytes:
        payload = _canonical(self.data)
        if len(payload) > MAX_PAYLOAD:
            raise JournalError(
                f"frame payload of {len(payload)} bytes exceeds "
                f"the {MAX_PAYLOAD}-byte frame limit")
        return (_HEAD.pack(len(payload), self.type) + payload
                + _frame_digest(self.type, payload))


@dataclass
class Journal:
    """A parsed journal: header + frames (+ loader verdicts)."""

    header: Dict
    frames: List[Frame] = field(default_factory=list)
    #: True when the loader had to discard a damaged tail.
    truncated: bool = False

    @property
    def complete(self) -> bool:
        """A FRAME_END was written: the recording finished cleanly."""
        return bool(self.frames) and self.frames[-1].type == FRAME_END

    @property
    def end_frame(self) -> Optional[Frame]:
        return self.frames[-1] if self.complete else None

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for frame in self.frames:
            counts[frame.kind] = counts.get(frame.kind, 0) + 1
        return counts

    def to_bytes(self) -> bytes:
        out = bytearray(MAGIC)
        out += struct.pack("<H", VERSION)
        out += Frame(FRAME_HEADER, self.header).encode()
        for frame in self.frames:
            out += frame.encode()
        return bytes(out)

    @property
    def size_bytes(self) -> int:
        return len(self.to_bytes())


def loads_journal(data: bytes, strict: bool = False) -> Journal:
    """Parse journal bytes.

    With ``strict=False`` (the default, the crash-recovery mode) a
    damaged tail — short frame, bad digest, bad JSON — ends the parse at
    the last intact frame and sets ``truncated``.  With ``strict=True``
    any damage raises :class:`JournalError`.
    """
    prefix = len(MAGIC) + 2
    if len(data) < prefix or data[:len(MAGIC)] != MAGIC:
        raise JournalError("not a journal: bad magic")
    (version,) = struct.unpack_from("<H", data, len(MAGIC))
    if version != VERSION:
        raise JournalError(f"unsupported journal version {version}")

    frames: List[Frame] = []
    truncated = False
    offset = prefix
    while offset < len(data):
        try:
            frame, offset = _decode_frame(data, offset)
        except JournalError:
            if strict:
                raise
            truncated = True
            break
        frames.append(frame)

    if not frames or frames[0].type != FRAME_HEADER:
        raise JournalError("journal has no intact header frame")
    header_frame = frames.pop(0)
    return Journal(header=header_frame.data, frames=frames,
                   truncated=truncated)


def _decode_frame(data: bytes, offset: int):
    if offset + _HEAD.size > len(data):
        raise JournalError("truncated frame header")
    payload_len, frame_type = _HEAD.unpack_from(data, offset)
    if payload_len > MAX_PAYLOAD:
        raise JournalError(f"frame payload length {payload_len} too large")
    if frame_type not in _TYPE_NAMES:
        raise JournalError(f"unknown frame type {frame_type}")
    start = offset + _HEAD.size
    end = start + payload_len + DIGEST_LEN
    if end > len(data):
        raise JournalError("truncated frame body")
    payload = data[start:start + payload_len]
    digest = data[start + payload_len:end]
    if digest != _frame_digest(frame_type, payload):
        raise JournalError("frame digest mismatch")
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalError(f"frame payload is not valid JSON: {exc}")
    if not isinstance(decoded, dict):
        raise JournalError("frame payload must be a JSON object")
    return Frame(frame_type, decoded), end


class JournalWriter:
    """Incremental, kill-safe journal spooling.

    The in-memory :class:`~repro.replay.recorder.FlightRecorder` only
    materialises its journal at :meth:`finish` — useless if the
    recording *process* is the thing that dies (a fleet worker hit by
    ``SIGKILL``).  The writer streams the identical byte format to disk
    as frames are appended, flushing and (by default) ``fsync``-ing at
    every frame boundary, so the on-disk journal is always either
    frame-complete or torn only in its final frame — exactly the damage
    :func:`loads_journal`'s truncated-tail recovery absorbs.

    ``close`` is idempotent and safe to call from a signal handler;
    :meth:`install_sigterm_close` arms a ``SIGTERM`` handler that
    closes the spool (flush + fsync) before the process exits with the
    conventional 143, so a politely-terminated worker never leaves a
    torn tail at all.
    """

    def __init__(self, path, header: Dict, fsync: bool = True) -> None:
        self.path = str(path)
        self.fsync = fsync
        self.frames_written = 0
        self.bytes_written = 0
        self._closed = False
        self._handle = open(self.path, "wb")
        self._write(MAGIC + struct.pack("<H", VERSION)
                    + Frame(FRAME_HEADER, header).encode())

    def _write(self, blob: bytes) -> None:
        self._handle.write(blob)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.bytes_written += len(blob)

    def append(self, frame: Frame) -> None:
        """Durably append one frame (flush + fsync at the boundary)."""
        if self._closed:
            raise JournalError(
                f"journal writer for {self.path!r} is closed")
        self._write(frame.encode())
        self.frames_written += 1

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush, fsync and close the spool file (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        finally:
            self._handle.close()

    def install_sigterm_close(self) -> None:
        """Arm a SIGTERM handler that seals the spool before exiting.

        Every append is already fsync'd, so the handler only has to
        close the file; it then exits with status 143 (the shell
        convention for death-by-SIGTERM) instead of unwinding through
        arbitrary interpreter state.
        """
        def _handler(_signum, _frame) -> None:
            self.close()
            os._exit(143)

        signal.signal(signal.SIGTERM, _handler)


def save_journal(journal: Journal, path) -> None:
    with open(path, "wb") as handle:
        handle.write(journal.to_bytes())


def load_journal(path, strict: bool = False) -> Journal:
    with open(path, "rb") as handle:
        return loads_journal(handle.read(), strict=strict)
