"""Command-line front end for replay journals.

    repro-replay info    crash.journal
    repro-replay verify  crash.journal [--relaxed] [--json out.json]
    repro-replay bisect  crash.journal [--json out.json]
    repro-replay minimize crash.journal -o minimal.journal
    repro-replay record  --scenario wild-writes --seed 1234 -o crash.journal

``verify`` exits 0 when the journal replays without divergence AND
every recorded failure check re-evaluates true — the property CI gates
on.  ``record`` is a convenience wrapper around the chaos campaign's
recordable scenarios (strict-guest mode, journal always kept).
"""

from __future__ import annotations

import json
import sys
from argparse import ArgumentParser
from typing import List, Optional

from repro.errors import ReproError
from repro.replay.journal import load_journal, save_journal
from repro.replay.minimize import minimize_journal
from repro.replay.replayer import bisect_divergence, replay_journal


def _cmd_info(args) -> int:
    journal = load_journal(args.journal)
    header = journal.header
    print(f"scenario:  {header.get('scenario') or '-'}")
    print(f"seed:      {header.get('seed')}")
    print(f"monitor:   {header.get('monitor')}")
    print(f"frames:    {len(journal.frames)}")
    print(f"bytes:     {journal.size_bytes}")
    print(f"complete:  {journal.complete}")
    print(f"truncated: {journal.truncated}")
    for kind, count in sorted(journal.counts_by_kind().items()):
        print(f"  {kind:<14} {count}")
    end = journal.end_frame
    if end is not None:
        print(f"violations: {end.data.get('violations')}")
        print(f"checks:     {end.data.get('checks')}")
    return 0


def _cmd_verify(args) -> int:
    journal = load_journal(args.journal)
    result = replay_journal(journal, strict=not args.relaxed)
    print(f"frames applied: {result.frames_applied}")
    print(f"final digest:   {result.final_digest[:16]}")
    for name, passed in sorted(result.checks.items()):
        print(f"check {name}: {'reproduced' if passed else 'MISSING'}")
    if result.divergence is not None:
        d = result.divergence
        print(f"DIVERGED at frame {d.frame_index} ({d.kind}): "
              f"{d.message}")
        print(f"  expected: {d.expected}")
        print(f"  actual:   {d.actual}")
        print(f"  instret={d.instret} cycle={d.cycle}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"experiment": "replay-verify",
                       "stats": result.stats()}, handle, indent=2)
    ok = result.ok and (result.reproduced or not result.checks)
    print("verdict: " + ("REPLAYS" if ok else "FAILED"))
    return 0 if ok else 1


def _cmd_bisect(args) -> int:
    journal = load_journal(args.journal)
    report = bisect_divergence(journal)
    if report is None:
        print("no divergence: the journal replays faithfully")
        return 0
    print(f"last good frame:  {report.last_good_frame}")
    print(f"first bad frame:  {report.first_bad_frame}")
    print(f"probe replays:    {report.probes_run}")
    if report.divergence is not None:
        d = report.divergence
        print(f"first divergent event: frame {d.frame_index} "
              f"({d.kind}) — {d.message}")
        print(f"  expected: {d.expected}")
        print(f"  actual:   {d.actual}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"experiment": "replay-bisect",
                       "report": report.to_dict()}, handle, indent=2)
    return 1


def _cmd_minimize(args) -> int:
    journal = load_journal(args.journal)
    result = minimize_journal(journal, max_tests=args.max_tests)
    print(f"core frames: {result.original_core_frames} -> "
          f"{result.minimized_core_frames} "
          f"({result.tests_run} test replays)")
    if not result.reduced:
        print("journal is already minimal")
    save_journal(result.journal, args.output)
    print(f"minimized journal written to {args.output} "
          f"({result.journal.size_bytes} bytes)")
    return 0


def _cmd_record(args) -> int:
    from repro.faults.campaign import RECORDABLE, run_scenario
    if args.scenario not in RECORDABLE:
        print(f"scenario {args.scenario!r} is not recordable "
              f"(pick from {', '.join(RECORDABLE)})", file=sys.stderr)
        return 2
    import os
    journal_dir = os.path.dirname(os.path.abspath(args.output))
    result = run_scenario(args.scenario, args.seed, record=True,
                          strict_guest=args.strict_guest,
                          journal_dir=journal_dir, journal_all=True)
    emitted = result.get("journal")
    if emitted is None:
        print("scenario produced no journal", file=sys.stderr)
        return 1
    if emitted != args.output:
        os.replace(emitted, args.output)
    status = "ok" if result["ok"] else "FAIL"
    print(f"{args.scenario} seed={args.seed} {status}")
    for violation in result["violations"]:
        print(f"  violation: {violation}")
    print(f"journal written to {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = ArgumentParser(
        prog="repro-replay",
        description="Inspect, verify, bisect and minimize replay "
                    "journals from the flight recorder.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="summarise a journal")
    p.add_argument("journal")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("verify",
                       help="replay a journal and cross-check it")
    p.add_argument("journal")
    p.add_argument("--relaxed", action="store_true",
                   help="apply inputs only; skip evidence checks")
    p.add_argument("--json", metavar="PATH",
                   help="write replay stats as JSON")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("bisect",
                       help="locate the first divergent step")
    p.add_argument("journal")
    p.add_argument("--json", metavar="PATH",
                   help="write the bisect report as JSON")
    p.set_defaults(func=_cmd_bisect)

    p = sub.add_parser("minimize",
                       help="delta-debug a failing journal")
    p.add_argument("journal")
    p.add_argument("-o", "--output", required=True,
                   help="where to write the minimized journal")
    p.add_argument("--max-tests", type=int, default=64,
                   help="replay budget for the search")
    p.set_defaults(func=_cmd_minimize)

    p = sub.add_parser("record",
                       help="record a chaos scenario to a journal")
    p.add_argument("--scenario", required=True)
    p.add_argument("--seed", type=int, default=1234)
    p.add_argument("--strict-guest", action="store_true",
                   help="treat a dead guest as a violation")
    p.add_argument("-o", "--output", required=True,
                   help="where to write the journal")
    p.set_defaults(func=_cmd_record)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
