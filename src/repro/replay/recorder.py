"""The flight recorder: journal every nondeterministic input.

The simulator itself is deterministic; nondeterminism enters only at
the host boundary — which bytes the debugger sends, when the campaign
injects a fault, and how the host interleaves ``monitor.run`` slices
with ``service_debugger`` calls.  The recorder journals exactly that
boundary:

* **input frames** (replayed verbatim): ``uart-rx`` (host-to-target
  bytes entering the serial link), ``wild-write`` and ``spurious-irq``
  (campaign fault triggers);
* **op frames** (the host interleaving): ``run`` and ``svc``, appended
  when the operation *ends* so journal order is the interleaving — no
  timestamps needed.  Each carries a micro-digest (instructions
  retired, cycle, rolling target-to-host stream digest) that anchors
  bisection;
* **cross-check frames** (``xc-*``, evidence only): IRQ assertion
  instants, RTC reads, device-completion scheduling, debug stops and
  guest death.  Replay must regenerate them in order;
* **rng frames** (provenance): fault-plan RNG draws.  Faults are
  journaled post-decision, so draws are not replayed — they document
  that the plan, not the workload, was random;
* **checkpoint frames**: whole-machine state digests every
  ``checkpoint_every`` completed run slices;
* one **end frame**: final digest, the scenario's invariant verdict,
  and re-evaluable failure checks for the minimizer.

Overhead is counters plus one sha256 update per target byte; state
digests cost a full-memory hash but only at checkpoint cadence (see
``benchmarks/bench_replay_overhead.py``).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.errors import MonitorError
from repro.obs.taps import TapPoint
from repro.replay.digest import state_digest
from repro.replay.journal import (FRAME_CHECKPOINT, FRAME_END, FRAME_EVENT,
                                  Frame, Journal)

#: Frame kinds that are replayed verbatim (the actual nondeterminism).
INPUT_KINDS = ("uart-rx", "wild-write", "spurious-irq")
#: Host-interleaving operations re-executed by the replayer.
OP_KINDS = ("run", "svc")
#: Evidence the replayer must regenerate, in order.
XC_KINDS = ("xc-irq", "xc-rtc", "xc-sched", "xc-stop", "xc-death")


class FlightRecorder:
    """Attach to a machine + monitor and journal the run.

    Construct it *before* booting the guest so boot-time device
    scheduling is part of the record; the replayer mirrors that order.
    """

    def __init__(self, machine, monitor, program=None, plan=None,
                 scenario: str = "", seed: Optional[int] = None,
                 checkpoint_every: int = 4, spool=None,
                 spool_fsync: bool = True) -> None:
        if not hasattr(monitor, "record_tap"):
            raise MonitorError(
                "flight recording needs a monitor with record_tap "
                "(the lightweight VMM)")
        if monitor.record_tap is not None:
            raise MonitorError("a recorder is already attached")
        self.machine = machine
        self.monitor = monitor
        self.plan = plan
        self.checkpoint_every = checkpoint_every
        config = machine.config
        self.header: Dict = {
            "scenario": scenario,
            "seed": seed,
            "monitor": "lvmm",
            "checkpoint_every": checkpoint_every,
            "config": {
                "memory_size": config.memory_size,
                "cpu_hz": config.cpu_hz,
                "disks": [list(entry) for entry in config.disks],
                "disk_rate_bytes_per_sec": config.disk_rate_bytes_per_sec,
                "with_nic": config.with_nic,
                "nic_mmio_base": config.nic_mmio_base,
            },
        }
        if program is not None:
            self.header["guest"] = {"origin": program.origin,
                                    "image": program.image.hex()}
        #: Optional kill-safe spool: every appended frame is also
        #: streamed to disk with flush+fsync at the frame boundary (see
        #: :class:`repro.replay.journal.JournalWriter`), so a recording
        #: killed mid-run leaves a journal recoverable via the loader's
        #: truncated-tail logic.
        self.writer = None
        if spool is not None:
            from repro.replay.journal import JournalWriter
            self.writer = JournalWriter(spool, dict(self.header),
                                        fsync=spool_fsync)
        self.frames: List[Frame] = []
        self.finished = False
        self._rx_buffer = bytearray()
        self._t2h = hashlib.sha256()
        self._t2h_count = 0
        self._run_depth = 0
        self._pre_stopped = False
        self._runs_completed = 0
        self._journal_bytes = 0
        self.counters = {"input_frames": 0, "op_frames": 0,
                         "xc_frames": 0, "rng_frames": 0,
                         "checkpoints": 0, "uart_rx_bytes": 0}
        #: Multicast observation point notified as ``taps(frame)`` for
        #: every journal frame appended.  The tracer subscribes here;
        #: observers must only observe.
        self.frame_taps = TapPoint()
        self._install_taps()
        monitor.recorder = self

    # -- tap plumbing --------------------------------------------------------

    def _install_taps(self) -> None:
        machine, monitor = self.machine, self.monitor
        machine.serial_link.tap = self._on_link_byte
        machine.pic.raise_tap = self._on_irq_raise
        machine.rtc.read_tap = self._on_rtc_read
        machine.queue.schedule_tap = self._on_schedule
        monitor.record_tap = self._on_monitor_event
        if self.plan is not None:
            self.plan.draw_tap = self._on_rng_draw

    def detach(self) -> None:
        """Remove every tap (idempotent)."""
        self.machine.serial_link.tap = None
        self.machine.pic.raise_tap = None
        self.machine.rtc.read_tap = None
        self.machine.queue.schedule_tap = None
        self.monitor.record_tap = None
        if self.plan is not None:
            self.plan.draw_tap = None

    # -- frame assembly ------------------------------------------------------

    def _append(self, frame: Frame) -> None:
        if self.finished:
            return
        if frame.data.get("kind") != "uart-rx":
            self._flush_rx()
        self.frames.append(frame)
        self._journal_bytes += len(frame.encode())
        if self.writer is not None:
            self.writer.append(frame)
        if self.frame_taps:
            self.frame_taps(frame)

    def _flush_rx(self) -> None:
        if not self._rx_buffer:
            return
        data = bytes(self._rx_buffer)
        self._rx_buffer.clear()
        frame = Frame(FRAME_EVENT, {"kind": "uart-rx",
                                    "data": data.hex()})
        self.counters["input_frames"] += 1
        self.counters["uart_rx_bytes"] += len(data)
        self._append(frame)

    def _t2h_evidence(self) -> List:
        return [self._t2h_count, self._t2h.hexdigest()[:16]]

    def _micro(self) -> Dict:
        cpu = self.machine.cpu
        return {"instret": cpu.instret, "cycle": cpu.cycle_count,
                "t2h": self._t2h_evidence()}

    # -- taps ----------------------------------------------------------------

    def _on_link_byte(self, direction: str, byte: int) -> None:
        if direction == "h2t":
            self._rx_buffer.append(byte)
        else:
            self._t2h.update(bytes([byte]))
            self._t2h_count += 1

    def _on_irq_raise(self, line: int) -> None:
        self.counters["xc_frames"] += 1
        self._append(Frame(FRAME_EVENT, {
            "kind": "xc-irq", "line": line,
            "cycle": self.machine.cpu.cycle_count}))

    def _on_rtc_read(self, register: int, value: int) -> None:
        self.counters["xc_frames"] += 1
        self._append(Frame(FRAME_EVENT, {
            "kind": "xc-rtc", "reg": register, "value": value,
            "cycle": self.machine.cpu.cycle_count}))

    def _on_schedule(self, time: int, name: str) -> None:
        self.counters["xc_frames"] += 1
        self._append(Frame(FRAME_EVENT, {
            "kind": "xc-sched", "name": name, "at": time,
            "cycle": self.machine.cpu.cycle_count}))

    def _on_rng_draw(self, purpose: str, value) -> None:
        self.counters["rng_frames"] += 1
        self._append(Frame(FRAME_EVENT, {
            "kind": "rng", "purpose": purpose, "value": repr(value)}))

    def _on_monitor_event(self, kind: str, payload: Dict) -> None:
        if kind == "run-begin":
            self._flush_rx()
            if self._run_depth == 0:
                self._pre_stopped = payload["pre_stopped"]
            self._run_depth += 1
            return
        if kind == "run-end":
            self._run_depth -= 1
            if self._run_depth > 0:
                return  # nested run (shouldn't happen, but be safe)
            data = {"kind": "run", "max": payload["max"],
                    "executed": payload["executed"],
                    "pre_stopped": self._pre_stopped}
            data.update(self._micro())
            self.counters["op_frames"] += 1
            self._append(Frame(FRAME_EVENT, data))
            self._runs_completed += 1
            if self.checkpoint_every \
                    and self._runs_completed % self.checkpoint_every == 0:
                self.checkpoint()
            return
        if kind == "svc":
            if self._run_depth > 0:
                return  # internal service (inside run): replay regenerates
            data = {"kind": "svc"}
            data.update(self._micro())
            self.counters["op_frames"] += 1
            self._append(Frame(FRAME_EVENT, data))
            return
        if kind in ("wild-write", "spurious-irq"):
            data = {"kind": kind}
            data.update(payload)
            self.counters["input_frames"] += 1
            self._append(Frame(FRAME_EVENT, data))
            return
        if kind in ("stop", "death"):
            data = {"kind": "xc-" + kind,
                    "cycle": self.machine.cpu.cycle_count}
            data.update(payload)
            self.counters["xc_frames"] += 1
            self._append(Frame(FRAME_EVENT, data))
            return

    # -- resume support ------------------------------------------------------

    def seed_t2h(self, count: int, hasher) -> None:
        """Adopt a rolling target-to-host digest from a prior epoch.

        A recorder attached to a machine rebuilt by journal replay must
        continue the *recorded* t2h stream digest, not start a fresh
        one, or its micro-digests and checkpoints would never line up
        with an uninterrupted run.  ``hasher`` is a live sha256 object
        (the replayer's); it is copied, never shared.
        """
        self._t2h = hasher.copy()
        self._t2h_count = count

    # -- checkpoints and completion ------------------------------------------

    def checkpoint(self) -> str:
        """Append a whole-machine digest frame; returns the digest."""
        self._flush_rx()
        digest = state_digest(self.machine, self.monitor,
                              extra={"t2h": self._t2h_evidence()})
        data = {"kind": "checkpoint", "digest": digest}
        data.update(self._micro())
        self.counters["checkpoints"] += 1
        self._append(Frame(FRAME_CHECKPOINT, data))
        return digest

    def finish(self, violations: Optional[List[str]] = None,
               checks: Optional[List[Dict]] = None) -> Journal:
        """Seal the journal with an end frame and detach all taps.

        ``checks`` are re-evaluable failure predicates for the
        replayer/minimizer (see :func:`repro.replay.evaluate_checks`).
        When omitted, a ``guest-dead`` check is derived automatically if
        the guest died.
        """
        if self.finished:
            raise MonitorError("recorder already finished")
        self._flush_rx()
        if checks is None:
            checks = []
            if self.monitor.guest_dead:
                checks.append({"check": "guest-dead"})
        digest = state_digest(self.machine, self.monitor,
                              extra={"t2h": self._t2h_evidence()})
        data = {"kind": "end", "violations": list(violations or []),
                "checks": checks, "digest": digest}
        data.update(self._micro())
        self._append(Frame(FRAME_END, data))
        self.finished = True
        if self.writer is not None:
            self.writer.close()
        self.detach()
        self.journal = Journal(header=dict(self.header),
                               frames=list(self.frames))
        return self.journal

    # -- accounting ----------------------------------------------------------

    def stats(self) -> Dict:
        """Recorder overhead counters (``repro.perf`` shape)."""
        stats = dict(self.counters)
        stats["frames"] = len(self.frames)
        stats["journal_bytes"] = self._journal_bytes
        stats["t2h_bytes"] = self._t2h_count
        stats["checkpoint_every"] = self.checkpoint_every
        stats["finished"] = self.finished
        if self.writer is not None:
            stats["spooled_frames"] = self.writer.frames_written
            stats["spooled_bytes"] = self.writer.bytes_written
        return stats
