"""Re-drive a fresh machine from a journal and cross-check it.

The walker applies frames in order: ``uart-rx`` bytes are pushed into
the serial link, ``run``/``svc`` frames re-execute the recorded host
interleaving, ``wild-write``/``spurious-irq`` frames re-fire the
campaign triggers.  Because the simulator is deterministic, everything
else must *re-happen* — and the journal carries the evidence to prove
it did:

* ``xc-*`` frames are matched against the events the replay actually
  generates, via an expectation queue: the walker queues the evidence
  frames it passes, taps consume them in order, and a tap with no
  queued expectation looks ahead past the current frame (evidence
  recorded during input processing lands *after* its input frame).
  Any mismatch, leftover expectation, or unexpected event is the first
  divergence — pinned to a frame index, instruction count and cycle;
* ``run``/``svc`` frames carry micro-digests (instructions retired,
  cycle, rolling target-to-host stream digest) checked when the
  operation completes;
* ``checkpoint``/``end`` frames carry whole-machine state digests.

:func:`bisect_divergence` runs O(log n) relaxed prefix replays against
the recorded micro-digests to bracket a divergence between the last
good and first bad evidence frame, then a bounded strict replay names
the exact event.  :func:`evaluate_checks` re-evaluates a journal's
failure predicates against the final replayed state — the contract the
minimizer shrinks against.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import JournalError, TripleFault
from repro.hw.machine import Machine, MachineConfig
from repro.replay.digest import state_digest
from repro.replay.journal import Journal
from repro.replay.recorder import OP_KINDS, XC_KINDS

#: Frame kinds that carry checkable evidence (bisection probe points).
EVIDENCE_KINDS = ("run", "svc", "checkpoint", "end")


@dataclass
class Divergence:
    """Where — and how — replay split from the recording."""

    frame_index: int
    kind: str                  # "event", "micro", "digest", "missing"
    message: str
    expected: Optional[Dict] = None
    actual: Optional[Dict] = None
    instret: int = 0
    cycle: int = 0

    def to_dict(self) -> Dict:
        return {"frame_index": self.frame_index, "kind": self.kind,
                "message": self.message, "expected": self.expected,
                "actual": self.actual, "instret": self.instret,
                "cycle": self.cycle}


@dataclass
class ReplayResult:
    """Outcome of one replay pass."""

    ok: bool
    divergence: Optional[Divergence] = None
    frames_applied: int = 0
    final_digest: str = ""
    t2h: List = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    machine: Optional[Machine] = None
    monitor: Optional[object] = None

    @property
    def reproduced(self) -> bool:
        """Every recorded failure predicate re-evaluated true."""
        return bool(self.checks) and all(self.checks.values())

    def stats(self) -> Dict:
        return {
            "ok": self.ok,
            "frames_applied": self.frames_applied,
            "diverged": self.divergence is not None,
            "divergence_frame": (self.divergence.frame_index
                                 if self.divergence else None),
            "checks": dict(self.checks),
            "final_digest": self.final_digest,
        }


def evaluate_checks(checks: List[Dict], machine, monitor) -> Dict[str, bool]:
    """Re-evaluate recorded failure predicates against replayed state.

    Known checks: ``guest-dead`` (the guest died) and
    ``monitor-corrupt`` (the protected region hash differs from the
    recorded ``baseline``).  Unknown checks evaluate False so a
    minimizer can never "succeed" against a predicate it does not
    understand.
    """
    results: Dict[str, bool] = {}
    for check in checks:
        name = check.get("check", "?")
        if name == "guest-dead":
            results[name] = bool(monitor.guest_dead)
        elif name == "monitor-corrupt":
            results[name] = (monitor.monitor_region_hash()
                             != check.get("baseline"))
        else:
            results[name] = False
    return results


class Replayer:
    """One replay pass over a journal.

    ``strict=True`` verifies every piece of evidence and stops at the
    first divergence.  ``strict=False`` (the minimizer's mode) applies
    inputs and operations only.  ``probe_frame`` — relaxed application
    up to that frame, then verify just its evidence (bisection's
    primitive).  ``stop_after`` bounds the walk.
    """

    def __init__(self, journal: Journal, strict: bool = True,
                 probe_frame: Optional[int] = None,
                 stop_after: Optional[int] = None) -> None:
        self.journal = journal
        self.strict = strict
        self.probe_frame = probe_frame
        self.stop_after = stop_after
        self.divergence: Optional[Divergence] = None
        self._expected = deque()
        self._consumed = set()
        self._cursor = 0
        self._t2h = hashlib.sha256()
        self._t2h_count = 0
        self.frames_applied = 0
        self._build_machine()

    # -- machine construction ------------------------------------------------

    def _build_machine(self) -> None:
        from repro.vmm.monitor import LightweightVmm
        header = self.journal.header
        config = header.get("config", {})
        if header.get("monitor") != "lvmm":
            raise JournalError(
                f"cannot replay monitor {header.get('monitor')!r}")
        guest = header.get("guest")
        if not guest:
            raise JournalError("journal has no guest image to replay")
        machine_config = MachineConfig(
            memory_size=config["memory_size"],
            cpu_hz=config["cpu_hz"],
            disks=[tuple(entry) for entry in config["disks"]],
            disk_rate_bytes_per_sec=config["disk_rate_bytes_per_sec"],
            with_nic=config["with_nic"],
            nic_mmio_base=config["nic_mmio_base"])
        self.machine = Machine(machine_config)
        self.monitor = LightweightVmm(self.machine)
        self.monitor.install()
        self._install_taps()
        # Mirror DebugSession.load_and_boot: image, boot, attach stopped.
        image = bytes.fromhex(guest["image"])
        self.machine.memory.write(guest["origin"], image)
        self.monitor.boot_guest(guest["origin"])
        self.monitor.stopped = True

    def _install_taps(self) -> None:
        # The t2h stream digest is maintained in every mode (evidence
        # and final digests depend on it); event cross-checking only in
        # strict mode.
        self.machine.serial_link.tap = self._on_link_byte
        if self.strict:
            self.machine.pic.raise_tap = self._on_irq_raise
            self.machine.rtc.read_tap = self._on_rtc_read
            self.machine.queue.schedule_tap = self._on_schedule
        self.monitor.record_tap = self._on_monitor_event

    def detach(self) -> None:
        """Remove every replay tap from the rebuilt machine (idempotent).

        After a relaxed replay the machine/monitor pair is a faithful
        reconstruction of the recorded state; detaching frees the
        primary tap slots so a new :class:`FlightRecorder` (or any
        other observer) can take over — the fleet's journal-based
        worker recovery resumes sessions this way.
        """
        self.machine.serial_link.tap = None
        self.machine.pic.raise_tap = None
        self.machine.rtc.read_tap = None
        self.machine.queue.schedule_tap = None
        self.monitor.record_tap = None

    # -- expectation matching ------------------------------------------------

    def _observe(self, payload: Dict) -> None:
        """An event happened during replay; match it against evidence."""
        if not self.strict or self.divergence is not None:
            return
        if not self._expected:
            self._lookahead()
        if not self._expected:
            self._diverge("event", self._cursor,
                          "replay generated an event the recording "
                          f"does not contain: {payload}",
                          expected=None, actual=payload)
            return
        index, frame = self._expected.popleft()
        if frame.data != payload:
            self._diverge("event", index,
                          "replayed event differs from recorded evidence",
                          expected=frame.data, actual=payload)

    def _lookahead(self) -> None:
        """Queue evidence recorded *after* the frame being applied.

        Evidence generated while an input frame is processed (IRQ raise
        from delivered UART bytes, death from a wild write) lands after
        that input frame in the journal; pull the run of xc/rng frames
        that follows the cursor.
        """
        index = self._cursor + 1
        frames = self.journal.frames
        while index < len(frames) and index not in self._consumed:
            kind = frames[index].kind
            if kind in XC_KINDS:
                self._expected.append((index, frames[index]))
                self._consumed.add(index)
            elif kind != "rng":
                break
            index += 1

    def _diverge(self, kind: str, frame_index: int, message: str,
                 expected=None, actual=None) -> None:
        if self.divergence is not None:
            return
        cpu = self.machine.cpu
        self.divergence = Divergence(
            frame_index=frame_index, kind=kind, message=message,
            expected=expected, actual=actual,
            instret=cpu.instret, cycle=cpu.cycle_count)

    # -- replay-side taps ----------------------------------------------------

    def _on_link_byte(self, direction: str, byte: int) -> None:
        if direction == "t2h":
            self._t2h.update(bytes([byte]))
            self._t2h_count += 1

    def _on_irq_raise(self, line: int) -> None:
        self._observe({"kind": "xc-irq", "line": line,
                       "cycle": self.machine.cpu.cycle_count})

    def _on_rtc_read(self, register: int, value: int) -> None:
        self._observe({"kind": "xc-rtc", "reg": register, "value": value,
                       "cycle": self.machine.cpu.cycle_count})

    def _on_schedule(self, time: int, name: str) -> None:
        self._observe({"kind": "xc-sched", "name": name, "at": time,
                       "cycle": self.machine.cpu.cycle_count})

    def _on_monitor_event(self, kind: str, payload: Dict) -> None:
        if kind in ("stop", "death"):
            data = {"kind": "xc-" + kind,
                    "cycle": self.machine.cpu.cycle_count}
            data.update(payload)
            self._observe(data)
        # run-begin/run-end/svc/wild-write/spurious-irq are driven by
        # the walker itself; nothing to match.

    # -- evidence checks -----------------------------------------------------

    def _t2h_evidence(self) -> List:
        return [self._t2h_count, self._t2h.hexdigest()[:16]]

    def _check_micro(self, index: int, frame,
                     executed: Optional[int] = None) -> bool:
        cpu = self.machine.cpu
        actual = {"instret": cpu.instret, "cycle": cpu.cycle_count,
                  "t2h": self._t2h_evidence()}
        expected = {"instret": frame.data["instret"],
                    "cycle": frame.data["cycle"],
                    "t2h": frame.data["t2h"]}
        if executed is not None:
            actual["executed"] = executed
            expected["executed"] = frame.data["executed"]
        if actual != expected:
            self._diverge("micro", index,
                          f"{frame.kind} micro-digest mismatch",
                          expected=expected, actual=actual)
            return False
        return True

    def _check_digest(self, index: int, frame) -> bool:
        digest = state_digest(self.machine, self.monitor,
                              extra={"t2h": self._t2h_evidence()})
        if digest != frame.data["digest"]:
            self._diverge("digest", index,
                          f"{frame.kind} state digest mismatch",
                          expected={"digest": frame.data["digest"]},
                          actual={"digest": digest})
            return False
        return True

    # -- the walk ------------------------------------------------------------

    def run(self) -> ReplayResult:
        frames = self.journal.frames
        checks: Dict[str, bool] = {}
        violations: List[str] = []
        total = len(frames)
        for index, frame in enumerate(frames):
            if self.stop_after is not None and index > self.stop_after:
                break
            if self.strict and self.divergence is not None:
                break
            self.monitor.replay_status = {
                "frame": index, "total": total, "mode": self._mode(),
                "divergence": (self.divergence.to_dict()
                               if self.divergence else None)}
            if index in self._consumed:
                continue
            kind = frame.kind
            if kind == "rng":
                continue
            if kind in XC_KINDS:
                if self.strict:
                    self._expected.append((index, frame))
                    self._consumed.add(index)
                continue
            self._cursor = index
            probe_here = (self.probe_frame is not None
                          and index == self.probe_frame)
            verify = self.strict or probe_here
            if kind == "uart-rx":
                link = self.machine.serial_link
                link.b_to_a.extend(bytes.fromhex(frame.data["data"]))
                link._kick()
            elif kind == "svc":
                self.monitor.service_debugger()
                if verify:
                    self._check_micro(index, frame)
            elif kind == "run":
                self.monitor.stopped = frame.data["pre_stopped"]
                try:
                    executed = self.monitor.run(frame.data["max"])
                except TripleFault as fault:
                    self.monitor._guest_died(str(fault))
                    executed = 0
                if verify:
                    self._check_micro(index, frame, executed=executed)
            elif kind == "wild-write":
                self.monitor.inject_wild_write(
                    frame.data["addr"], bytes.fromhex(frame.data["data"]))
            elif kind == "spurious-irq":
                self.monitor.inject_spurious_interrupt(frame.data["line"])
            elif kind == "checkpoint":
                if verify:
                    self._check_digest(index, frame)
            elif kind == "end":
                if verify:
                    self._check_digest(index, frame)
                checks = evaluate_checks(frame.data.get("checks", []),
                                         self.machine, self.monitor)
                violations = list(frame.data.get("violations", []))
            else:
                self._diverge("event", index,
                              f"journal contains unknown frame kind "
                              f"{kind!r}")
            self.frames_applied += 1
            if self.strict and kind in OP_KINDS and self._expected \
                    and self.divergence is None:
                missing_index, missing = self._expected[0]
                self._diverge("missing", missing_index,
                              "recorded event did not occur during "
                              "replay", expected=missing.data, actual=None)
            if probe_here:
                break
        if self.strict and self._expected and self.divergence is None:
            missing_index, missing = self._expected[0]
            self._diverge("missing", missing_index,
                          "recorded event did not occur during replay",
                          expected=missing.data, actual=None)
        final_digest = state_digest(self.machine, self.monitor,
                                    extra={"t2h": self._t2h_evidence()})
        self.monitor.replay_status = {
            "frame": self.frames_applied, "total": total,
            "mode": self._mode(),
            "divergence": (self.divergence.to_dict()
                           if self.divergence else None)}
        return ReplayResult(
            ok=self.divergence is None,
            divergence=self.divergence,
            frames_applied=self.frames_applied,
            final_digest=final_digest,
            t2h=self._t2h_evidence(),
            checks=checks,
            violations=violations,
            machine=self.machine,
            monitor=self.monitor)

    def _mode(self) -> str:
        if self.probe_frame is not None:
            return "probe"
        return "strict" if self.strict else "relaxed"


def replay_journal(journal: Journal, strict: bool = True,
                   probe_frame: Optional[int] = None,
                   stop_after: Optional[int] = None) -> ReplayResult:
    """One-shot replay; see :class:`Replayer`."""
    if probe_frame is not None:
        strict = False
        stop_after = probe_frame
    return Replayer(journal, strict=strict, probe_frame=probe_frame,
                    stop_after=stop_after).run()


@dataclass
class BisectReport:
    """Bracketing of a divergence by evidence probes."""

    last_good_frame: Optional[int]
    first_bad_frame: Optional[int]
    probes_run: int
    divergence: Optional[Divergence]

    def to_dict(self) -> Dict:
        return {"last_good_frame": self.last_good_frame,
                "first_bad_frame": self.first_bad_frame,
                "probes_run": self.probes_run,
                "divergence": (self.divergence.to_dict()
                               if self.divergence else None)}


def bisect_divergence(journal: Journal) -> Optional[BisectReport]:
    """Locate the first divergent step with O(log n) prefix replays.

    Each probe replays the journal prefix without verification and then
    checks a single evidence frame (micro-digest or state digest).
    Binary search over the evidence frames brackets the divergence
    between the last probe that matches and the first that does not; a
    strict replay bounded to the bad probe then names the exact event.
    Returns None when every probe matches and a full strict replay is
    clean — the journal replays faithfully.
    """
    probes = [index for index, frame in enumerate(journal.frames)
              if frame.kind in EVIDENCE_KINDS]
    probes_run = 0

    def probe_ok(frame_index: int) -> bool:
        return replay_journal(journal, probe_frame=frame_index).ok

    if not probes:
        strict = replay_journal(journal, strict=True)
        return None if strict.ok else BisectReport(
            None, None, 0, strict.divergence)

    # Fast path: if the final evidence matches, digest-level state never
    # split; a strict pass still cross-checks the event stream.
    probes_run += 1
    if probe_ok(probes[-1]):
        strict = replay_journal(journal, strict=True)
        if strict.ok:
            return None
        return BisectReport(None, strict.divergence.frame_index,
                            probes_run, strict.divergence)

    low, high = 0, len(probes) - 1   # invariant: probes[high] is bad
    while low < high:
        mid = (low + high) // 2
        probes_run += 1
        if probe_ok(probes[mid]):
            low = mid + 1
        else:
            high = mid
    first_bad = probes[high]
    last_good = probes[high - 1] if high > 0 else None
    strict = replay_journal(journal, strict=True, stop_after=first_bad)
    divergence = strict.divergence
    if divergence is None:
        # Evidence mismatched under probe but the event stream was
        # clean: re-run the probe to report the micro/digest failure.
        divergence = replay_journal(journal,
                                    probe_frame=first_bad).divergence
    return BisectReport(last_good, first_bad, probes_run, divergence)
