"""CPU-cycle budget accounting.

The paper's Figure 3.1 plots *CPU load* against transfer rate.  CPU load
is the fraction of available processor cycles consumed by the guest OS,
its drivers, and (under a monitor) the monitor's own trap handling and
device emulation.  :class:`CycleBudget` is the single ledger everything
charges against; at the end of a run the load is simply
``charged / (elapsed_seconds * hz)``.

Charges are tagged with a category so experiments can break load down
into guest work, world switches, device emulation and data copies — the
decomposition that explains *why* the full VMM loses by ~5.4x.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.errors import SimulationError

#: Canonical charge categories.  Free-form strings are allowed, but the
#: benchmarks report these.
CAT_GUEST = "guest"                # guest OS + application compute
CAT_DRIVER = "driver"              # guest driver register programming
CAT_COPY = "copy"                  # per-byte data touching (checksum, memcpy)
CAT_WORLD_SWITCH = "world_switch"  # monitor entry/exit on a trap
CAT_EMULATION = "emulation"        # monitor device-model execution
CAT_INTERRUPT = "interrupt"        # interrupt delivery / EOI path
CAT_IDLE = "idle"                  # cycles explicitly modelled as idle


class CycleBudget:
    """Ledger of consumed CPU cycles, broken down by category."""

    def __init__(self, hz: float = 1.26e9) -> None:
        if hz <= 0:
            raise SimulationError(f"CPU frequency must be positive, got {hz}")
        self.hz = hz
        self._charges: Dict[str, int] = defaultdict(int)

    def charge(self, cycles: int, category: str = CAT_GUEST) -> None:
        """Record ``cycles`` of work in ``category``."""
        if cycles < 0:
            raise SimulationError(f"negative charge {cycles} ({category})")
        self._charges[category] += cycles

    @property
    def total(self) -> int:
        """Total busy cycles across every category except idle."""
        return sum(v for k, v in self._charges.items() if k != CAT_IDLE)

    def by_category(self) -> Dict[str, int]:
        """A copy of the per-category ledger."""
        return dict(self._charges)

    def load(self, elapsed_cycles: int) -> float:
        """CPU load over a window of ``elapsed_cycles`` simulated cycles.

        Load is clamped to [0, 1]: a saturated processor cannot exceed
        100% even if the model *demanded* more cycles than existed (that
        situation is what the rate sweep detects as "unsustainable").
        """
        if elapsed_cycles <= 0:
            raise SimulationError(
                f"elapsed window must be positive, got {elapsed_cycles}")
        return min(1.0, self.total / elapsed_cycles)

    def demanded_load(self, elapsed_cycles: int) -> float:
        """Like :meth:`load` but unclamped — may exceed 1.0 when the
        workload demands more CPU than exists (oversubscription)."""
        if elapsed_cycles <= 0:
            raise SimulationError(
                f"elapsed window must be positive, got {elapsed_cycles}")
        return self.total / elapsed_cycles

    def reset(self) -> None:
        self._charges.clear()

    def snapshot(self) -> "CycleBudget":
        """An independent copy (for windowed sampling)."""
        copy = CycleBudget(self.hz)
        copy._charges = defaultdict(int, self._charges)
        return copy

    def delta_since(self, earlier: "CycleBudget") -> Dict[str, int]:
        """Per-category charges accumulated since ``earlier`` snapshot."""
        out: Dict[str, int] = {}
        for key, value in self._charges.items():
            diff = value - earlier._charges.get(key, 0)
            if diff:
                out[key] = diff
        return out
