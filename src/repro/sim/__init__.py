"""Discrete-event simulation kernel and cycle accounting."""

from repro.sim.budget import (
    CAT_COPY,
    CAT_DRIVER,
    CAT_EMULATION,
    CAT_GUEST,
    CAT_IDLE,
    CAT_INTERRUPT,
    CAT_WORLD_SWITCH,
    CycleBudget,
)
from repro.sim.events import Event, EventQueue, cycles_for_seconds, seconds_for_cycles

__all__ = [
    "Event",
    "EventQueue",
    "CycleBudget",
    "cycles_for_seconds",
    "seconds_for_cycles",
    "CAT_GUEST",
    "CAT_DRIVER",
    "CAT_COPY",
    "CAT_WORLD_SWITCH",
    "CAT_EMULATION",
    "CAT_INTERRUPT",
    "CAT_IDLE",
]
