"""Discrete-event simulation kernel.

The performance experiments (E1--E3 and the ablations) are driven by a
classic event-queue simulation: device completions, timer ticks and
pacing deadlines are events ordered by simulated time.  Simulated time is
measured in **CPU cycles** of the modelled 1.26 GHz Pentium III so that
CPU-load accounting and event scheduling share one clock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.taps import TapPoint, tap_property


@dataclass(order=True)
class _QueueEntry:
    time: int
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback.

    Events are single-shot; cancelling an already-fired or already-cancelled
    event is a silent no-op, which keeps device models simple (they can
    unconditionally cancel a pending completion when reset).
    """

    __slots__ = ("callback", "name", "time", "_cancelled", "_fired")

    def __init__(self, callback: Callable[[], None], name: str = "") -> None:
        self.callback = callback
        self.name = name or getattr(callback, "__name__", "event")
        #: Absolute due cycle, set by the queue at scheduling time.  Device
        #: snapshot/restore uses it to re-arm timers with the remaining
        #: delay (due - now) since simulated time never rewinds.
        self.time = 0
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired


class EventQueue:
    """Priority queue of events keyed by (simulated cycle, insertion order).

    Ties are broken by insertion order so the simulation is deterministic:
    two events scheduled for the same cycle fire in the order they were
    scheduled.
    """

    def __init__(self) -> None:
        self._heap: List[_QueueEntry] = []
        self._counter = itertools.count()
        self.now: int = 0
        #: Multicast observation point notified as ``taps(time, name)``
        #: for every scheduled event.  The flight recorder journals
        #: device-completion scheduling as cross-check evidence (via the
        #: legacy :attr:`schedule_tap` primary slot); the tracer
        #: subscribes alongside it.  Observers must only observe (never
        #: schedule or mutate device state).
        self.schedule_taps = TapPoint()

    schedule_tap = tap_property("schedule_taps")

    def __len__(self) -> int:
        return sum(1 for entry in self._heap if not entry.event.cancelled)

    def schedule_at(self, time: int, callback: Callable[[], None],
                    name: str = "") -> Event:
        """Schedule ``callback`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event {name!r} at cycle {time}, "
                f"already at cycle {self.now}")
        event = Event(callback, name)
        event.time = time
        heapq.heappush(self._heap, _QueueEntry(time, next(self._counter), event))
        if self.schedule_taps:
            self.schedule_taps(time, event.name)
        return event

    def schedule_in(self, delay: int, callback: Callable[[], None],
                    name: str = "") -> Event:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {name!r}")
        return self.schedule_at(self.now + delay, callback, name)

    def peek_time(self) -> Optional[int]:
        """Cycle of the next live event, or None when the queue is drained."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        self.now = entry.time
        entry.event._fired = True
        entry.event.callback()
        return True

    def run_until(self, deadline: int) -> None:
        """Fire events up to and including ``deadline``, then set now=deadline."""
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.step()
        if deadline > self.now:
            self.now = deadline

    def run(self, max_events: int = 10_000_000) -> int:
        """Drain the queue; returns the number of events fired.

        ``max_events`` guards against runaway self-rescheduling models.
        """
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; "
                    "a model is probably rescheduling itself unconditionally")
        return fired


def cycles_for_seconds(seconds: float, hz: float) -> int:
    """Convert wall seconds of the modelled machine into cycles."""
    if seconds < 0:
        raise SimulationError(f"negative duration {seconds}")
    return int(round(seconds * hz))


def seconds_for_cycles(cycles: int, hz: float) -> float:
    """Convert cycles back to modelled seconds."""
    return cycles / hz
